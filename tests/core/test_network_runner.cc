/**
 * @file
 * NetworkRunner tests: layer chaining, per-layer stats and agreement
 * with a manually-driven accelerator chain.
 */

#include <gtest/gtest.h>

#include "core/accelerator.hh"
#include "core/network_runner.hh"
#include "helpers.hh"

namespace {

using namespace eie;

TEST(NetworkRunner, ChainsLayersAndMatchesManualExecution)
{
    const unsigned n_pe = 4;
    core::EieConfig config;
    config.n_pe = n_pe;

    const auto l1 = test::randomCompressedLayer(48, 32, 0.25, n_pe, 501);
    const auto l2 = test::randomCompressedLayer(16, 48, 0.25, n_pe, 502);

    core::NetworkRunner runner(config);
    runner.addLayer(l1, nn::Nonlinearity::ReLU);
    runner.addLayer(l2, nn::Nonlinearity::None);
    EXPECT_EQ(runner.layerCount(), 2u);
    EXPECT_EQ(runner.inputSize(), 32u);
    EXPECT_EQ(runner.outputSize(), 16u);

    const auto input = test::randomActivations(32, 0.5, 503);
    const core::FunctionalModel functional(config);
    const auto raw = functional.quantizeInput(input);
    const auto result = runner.run(raw);

    // Manual chain with a bare Accelerator.
    const core::Accelerator accel(config);
    auto act = raw;
    act = accel.run(core::planLayer(l1, nn::Nonlinearity::ReLU,
                                    config), act).output_raw;
    act = accel.run(core::planLayer(l2, nn::Nonlinearity::None,
                                    config), act).output_raw;

    EXPECT_EQ(result.output_raw, act);
    ASSERT_EQ(result.per_layer.size(), 2u);
    EXPECT_EQ(result.totalCycles(),
              result.per_layer[0].cycles + result.per_layer[1].cycles);
    EXPECT_NEAR(result.totalTimeUs(),
                result.per_layer[0].timeUs() +
                    result.per_layer[1].timeUs(), 1e-12);
}

TEST(NetworkRunner, FloatWrapper)
{
    const unsigned n_pe = 4;
    core::EieConfig config;
    config.n_pe = n_pe;
    const auto l1 = test::randomCompressedLayer(24, 16, 0.3, n_pe, 511);

    core::NetworkRunner runner(config);
    runner.addLayer(l1, nn::Nonlinearity::ReLU);

    const auto input = test::randomActivations(16, 0.8, 512);
    core::NetworkResult details;
    const auto out = runner.runFloat(input, &details);

    const nn::Vector golden =
        nn::relu(l1.quantizedWeights().spmv(input));
    ASSERT_EQ(out.size(), golden.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out[i], golden[i], 0.1);
    EXPECT_EQ(details.per_layer.size(), 1u);
}

TEST(NetworkRunner, MultiLayerBatchMatchesScalarOracleRaggedSizes)
{
    // Three chained layers, PE-parallel execution, and ragged batch
    // sizes: a single frame, an odd count, and one larger than the
    // serving queue's default micro-batch (16). Every frame must be
    // bit-exact with the scalar interpreter walked layer by layer.
    const unsigned n_pe = 4;
    core::EieConfig config;
    config.n_pe = n_pe;

    core::NetworkRunner runner(config);
    runner.addLayer(test::randomCompressedLayer(64, 40, 0.2, n_pe, 531),
                    nn::Nonlinearity::ReLU);
    runner.addLayer(test::randomCompressedLayer(56, 64, 0.25, n_pe, 532),
                    nn::Nonlinearity::ReLU);
    runner.addLayer(test::randomCompressedLayer(24, 56, 0.3, n_pe, 533),
                    nn::Nonlinearity::None);

    const core::FunctionalModel model(config);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{33}}) {
        core::kernel::Batch frames;
        for (std::size_t b = 0; b < batch; ++b)
            frames.push_back(model.quantizeInput(test::randomActivations(
                40, 0.5, 534 + 17 * batch + b)));

        core::kernel::Batch reference;
        for (const auto &frame : frames) {
            std::vector<std::int64_t> act = frame;
            for (std::size_t l = 0; l < runner.layerCount(); ++l)
                act = model.run(runner.plan(l), act).output_raw;
            reference.push_back(std::move(act));
        }

        for (unsigned threads : {1u, 3u}) {
            const auto outputs = runner.runBatch(frames, threads);
            ASSERT_EQ(outputs.size(), batch);
            for (std::size_t b = 0; b < batch; ++b)
                EXPECT_EQ(outputs[b], reference[b])
                    << "batch " << batch << ", " << threads
                    << " threads, frame " << b;
        }
    }
}

TEST(NetworkRunnerDeath, RejectsMismatchedChain)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto l1 = test::randomCompressedLayer(48, 32, 0.25, 4, 521);
    const auto l2 = test::randomCompressedLayer(16, 40, 0.25, 4, 522);

    core::NetworkRunner runner(config);
    runner.addLayer(l1, nn::Nonlinearity::ReLU);
    EXPECT_EXIT(runner.addLayer(l2, nn::Nonlinearity::None),
                ::testing::ExitedWithCode(1), "chain");
}

TEST(NetworkRunnerDeath, EmptyNetwork)
{
    core::EieConfig config;
    config.n_pe = 2;
    core::NetworkRunner runner(config);
    EXPECT_EXIT(runner.run({}), ::testing::ExitedWithCode(1),
                "no layers");
}

} // namespace
