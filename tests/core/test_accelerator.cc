/**
 * @file
 * The central verification of the reproduction: the cycle-accurate
 * simulator must match the untimed functional model bit-for-bit, and
 * both must match the floating-point golden model up to fixed-point
 * quantisation error, across layer shapes, sparsities, PE counts,
 * FIFO depths and SRAM widths.
 */

#include <gtest/gtest.h>

#include "core/accelerator.hh"
#include "core/functional.hh"
#include "core/plan.hh"
#include "helpers.hh"

namespace {

using namespace eie;

struct Scenario
{
    std::size_t rows;
    std::size_t cols;
    double w_density;
    double a_density;
    unsigned n_pe;
    unsigned fifo_depth;
    unsigned width_bits;
    const char *label;
};

std::ostream &
operator<<(std::ostream &os, const Scenario &s)
{
    return os << s.label;
}

class AcceleratorEquivalence : public ::testing::TestWithParam<Scenario>
{};

TEST_P(AcceleratorEquivalence, TimingMatchesFunctionalBitExact)
{
    const Scenario s = GetParam();

    auto layer = test::randomCompressedLayer(s.rows, s.cols, s.w_density,
                                             s.n_pe, /*seed=*/17);
    core::EieConfig config;
    config.n_pe = s.n_pe;
    config.fifo_depth = s.fifo_depth;
    config.spmat_width_bits = s.width_bits;
    config.enforce_capacity = false;

    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);

    const auto input =
        test::randomActivations(s.cols, s.a_density, /*seed=*/23);

    const core::FunctionalModel functional(config);
    const auto input_raw = functional.quantizeInput(input);
    const auto golden = functional.run(plan, input_raw);

    const core::Accelerator accel(config);
    const auto result = accel.run(plan, input_raw);

    // Bit-exact agreement between the two machines.
    ASSERT_EQ(result.output_raw.size(), golden.output_raw.size());
    for (std::size_t i = 0; i < result.output_raw.size(); ++i)
        ASSERT_EQ(result.output_raw[i], golden.output_raw[i])
            << "output row " << i;

    // Work accounting agrees.
    EXPECT_EQ(result.stats.total_entries, golden.work.total_entries);
    EXPECT_EQ(result.stats.padding_entries, golden.work.padding_entries);
    EXPECT_EQ(result.stats.broadcasts, golden.work.broadcasts);

    // Timing sanity: at least one cycle per per-PE entry, and the
    // machine cannot beat perfect balance.
    EXPECT_GE(result.stats.cycles, result.stats.theoretical_cycles);

    // The float golden model agrees up to quantisation error. The
    // error bound is loose: each output accumulates up to
    // rows*density products of two quantised values.
    const nn::Vector float_golden =
        nn::relu(layer.quantizedWeights().spmv(input));
    const core::FunctionalModel fm(config);
    const nn::Vector out = fm.dequantize(result.output_raw);
    const double tolerance =
        0.01 * static_cast<double>(s.cols) * s.w_density + 0.05;
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_NEAR(out[i], float_golden[i], tolerance)
            << "output row " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AcceleratorEquivalence,
    ::testing::Values(
        Scenario{64, 32, 0.10, 0.40, 4, 8, 64, "tiny_4pe"},
        Scenario{128, 96, 0.15, 0.30, 8, 8, 64, "small_8pe"},
        Scenario{256, 128, 0.09, 0.35, 16, 8, 64, "alex_like_16pe"},
        Scenario{512, 256, 0.04, 0.18, 64, 8, 64, "vgg_like_64pe"},
        Scenario{300, 200, 0.10, 1.00, 64, 8, 64, "nt_like_dense_act"},
        Scenario{256, 128, 0.10, 0.35, 64, 1, 64, "fifo_depth_1"},
        Scenario{256, 128, 0.10, 0.35, 64, 256, 64, "fifo_depth_256"},
        Scenario{256, 128, 0.10, 0.35, 32, 8, 32, "width_32"},
        Scenario{256, 128, 0.10, 0.35, 32, 8, 512, "width_512"},
        Scenario{100, 64, 0.50, 0.80, 8, 8, 64, "dense_weights"},
        Scenario{97, 61, 0.13, 0.37, 7, 3, 64, "odd_sizes_7pe"},
        Scenario{512, 40, 0.02, 0.50, 64, 8, 64, "padding_heavy"},
        Scenario{64, 64, 0.10, 0.00, 8, 8, 64, "all_zero_input"},
        Scenario{1, 1, 1.00, 1.00, 1, 1, 64, "degenerate_1x1"}),
    [](const ::testing::TestParamInfo<Scenario> &info) {
        return info.param.label;
    });

TEST(Accelerator, MultiBatchOutputSplit)
{
    // Outputs exceed regfile_entries * n_pe, forcing row batches
    // (the NT-Wd situation).
    const unsigned n_pe = 8;
    auto layer =
        test::randomCompressedLayer(200, 64, 0.2, n_pe, /*seed=*/5);

    core::EieConfig config;
    config.n_pe = n_pe;
    config.regfile_entries = 8; // 64 outputs per batch -> 4 batches
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    EXPECT_EQ(plan.batches(), 4u);

    const auto input = test::randomActivations(64, 0.5, /*seed=*/7);
    const core::FunctionalModel functional(config);
    const auto raw = functional.quantizeInput(input);
    const auto golden = functional.run(plan, raw);
    const auto result = core::Accelerator(config).run(plan, raw);
    EXPECT_EQ(result.output_raw, golden.output_raw);
    // Each batch re-scans the input.
    EXPECT_EQ(result.stats.broadcasts, golden.work.broadcasts);
}

TEST(Accelerator, MultiPassColumnSplit)
{
    // Columns exceed the pointer SRAM, forcing passes (the VGG-6
    // situation).
    const unsigned n_pe = 8;
    auto layer =
        test::randomCompressedLayer(64, 300, 0.1, n_pe, /*seed=*/9);

    core::EieConfig config;
    config.n_pe = n_pe;
    config.ptr_capacity = 101; // at most 100 columns per pass
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    EXPECT_EQ(plan.passes(), 3u);

    const auto input = test::randomActivations(300, 0.4, /*seed=*/11);
    const core::FunctionalModel functional(config);
    const auto raw = functional.quantizeInput(input);
    const auto golden = functional.run(plan, raw);
    const auto result = core::Accelerator(config).run(plan, raw);
    EXPECT_EQ(result.output_raw, golden.output_raw);
}

TEST(Accelerator, BypassAblationSameResultMoreCycles)
{
    auto layer =
        test::randomCompressedLayer(64, 128, 0.3, 4, /*seed=*/3);

    core::EieConfig with_bypass;
    with_bypass.n_pe = 4;
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, with_bypass);

    core::EieConfig no_bypass = with_bypass;
    no_bypass.enable_bypass = false;

    const auto input = test::randomActivations(128, 0.6, /*seed=*/4);
    const core::FunctionalModel functional(with_bypass);
    const auto raw = functional.quantizeInput(input);

    const auto fast = core::Accelerator(with_bypass).run(plan, raw);
    const auto slow = core::Accelerator(no_bypass).run(plan, raw);

    EXPECT_EQ(fast.output_raw, slow.output_raw);
    EXPECT_GE(slow.stats.cycles, fast.stats.cycles);
    EXPECT_GT(slow.stats.hazard_stalls, 0u);
    EXPECT_EQ(fast.stats.hazard_stalls, 0u);
}

TEST(Accelerator, DeeperFifoNeverSlower)
{
    auto layer =
        test::randomCompressedLayer(256, 128, 0.08, 16, /*seed=*/21);
    const auto input = test::randomActivations(128, 0.4, /*seed=*/22);

    bool first = true;
    std::uint64_t prev_cycles = 0;
    for (unsigned depth : {1u, 2u, 4u, 8u, 32u}) {
        core::EieConfig config;
        config.n_pe = 16;
        config.fifo_depth = depth;
        const auto plan =
            core::planLayer(layer, nn::Nonlinearity::ReLU, config);
        const core::FunctionalModel functional(config);
        const auto raw = functional.quantizeInput(input);
        const auto result = core::Accelerator(config).run(plan, raw);
        // Deeper queues can only remove starvation, modulo a couple
        // of cycles of pipeline noise.
        if (!first)
            EXPECT_LE(result.stats.cycles, prev_cycles + 2)
                << "depth " << depth;
        prev_cycles = result.stats.cycles;
        first = false;
    }
}

} // namespace
