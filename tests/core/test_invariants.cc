/**
 * @file
 * Property sweep over random machine configurations and layers: the
 * structural invariants every run must satisfy, regardless of
 * parameters.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/random.hh"
#include "core/accelerator.hh"
#include "core/functional.hh"
#include "core/plan.hh"
#include "helpers.hh"

namespace {

using namespace eie;

class RandomConfigInvariants
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomConfigInvariants, HoldOnRandomMachineAndLayer)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    core::EieConfig config;
    config.n_pe =
        static_cast<unsigned>(1u << rng.uniformInt(0, 5)); // 1..32
    config.fifo_depth = static_cast<unsigned>(rng.uniformInt(1, 32));
    config.spmat_width_bits =
        static_cast<unsigned>(8u << rng.uniformInt(2, 6)); // 32..512
    config.enable_bypass = rng.bernoulli(0.8);
    config.enforce_capacity = false;
    config.regfile_entries =
        static_cast<unsigned>(rng.uniformInt(8, 64));

    const auto rows = static_cast<std::size_t>(rng.uniformInt(8, 300));
    const auto cols = static_cast<std::size_t>(rng.uniformInt(8, 200));
    const double w_density = rng.uniformReal(0.02, 0.6);
    const double a_density = rng.uniformReal(0.0, 1.0);

    const auto layer = test::randomCompressedLayer(
        rows, cols, w_density, config.n_pe, seed * 3 + 1);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const auto input =
        test::randomActivations(cols, a_density, seed * 5 + 2);

    const core::FunctionalModel functional(config);
    const auto raw = functional.quantizeInput(input);
    const auto golden = functional.run(plan, raw);
    const auto result = core::Accelerator(config).run(plan, raw);

    // 1. Bit-exact output agreement.
    ASSERT_EQ(result.output_raw, golden.output_raw);

    // 2. Work conservation: MACs == functional entry walk; per-PE
    //    busy cycles sum to total MACs (one issue per busy cycle).
    EXPECT_EQ(result.stats.total_entries, golden.work.total_entries);
    const std::uint64_t busy_sum =
        std::accumulate(result.stats.pe_busy.begin(),
                        result.stats.pe_busy.end(), std::uint64_t{0});
    EXPECT_EQ(busy_sum, result.stats.total_entries);

    // 3. Timing bounds: no machine beats perfect balance, and the
    //    load-balance metric is a valid fraction.
    EXPECT_GE(result.stats.cycles, result.stats.theoretical_cycles);
    EXPECT_GE(result.stats.loadBalance(), 0.0);
    EXPECT_LE(result.stats.loadBalance(), 1.0 + 1e-12);

    // 4. Flow conservation: broadcasts equal the non-zero quantised
    //    activations times the number of row batches (re-scans).
    std::uint64_t nnz_input = 0;
    for (auto v : raw)
        if (v != 0)
            ++nnz_input;
    EXPECT_EQ(result.stats.broadcasts, nnz_input * plan.batches());

    // 5. With the bypass enabled there are no hazard stalls.
    if (config.enable_bypass)
        EXPECT_EQ(result.stats.hazard_stalls, 0u);

    // 6. ReLU outputs are non-negative.
    for (auto v : result.output_raw)
        EXPECT_GE(v, 0);

    // 7. SRAM traffic exists iff work exists.
    if (result.stats.total_entries > 0) {
        EXPECT_GT(result.stats.spmat_row_fetches, 0u);
        EXPECT_GT(result.stats.ptr_sram_reads, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigInvariants,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
