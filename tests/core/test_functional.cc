/**
 * @file
 * Functional-model tests: agreement with the float golden model,
 * activation-sparsity skipping, and work accounting.
 */

#include <gtest/gtest.h>

#include "core/functional.hh"
#include "core/plan.hh"
#include "helpers.hh"

namespace {

using namespace eie;

TEST(FunctionalModel, MatchesFloatGoldenWithinQuantization)
{
    const unsigned n_pe = 8;
    auto layer = test::randomCompressedLayer(128, 96, 0.15, n_pe, 31);
    core::EieConfig config;
    config.n_pe = n_pe;
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);

    const auto input = test::randomActivations(96, 0.5, 32);
    const core::FunctionalModel model(config);
    const auto result = model.run(plan, model.quantizeInput(input));
    const auto out = model.dequantize(result.output_raw);

    const nn::Vector golden =
        nn::relu(layer.quantizedWeights().spmv(input));
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_NEAR(out[i], golden[i], 0.25) << "row " << i;
}

TEST(FunctionalModel, SkipsZeroActivationColumns)
{
    const unsigned n_pe = 4;
    auto layer = test::randomCompressedLayer(64, 40, 0.2, n_pe, 33);
    core::EieConfig config;
    config.n_pe = n_pe;
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const core::FunctionalModel model(config);

    // Dense input: every column is walked.
    std::vector<std::int64_t> dense(40, 256);
    const auto full = model.run(plan, dense);
    EXPECT_EQ(full.work.broadcasts, 40u);
    EXPECT_EQ(full.work.total_entries,
              plan.tiles[0][0].storage.totalEntries());

    // Half the columns zeroed: only the rest are walked.
    auto half = dense;
    for (std::size_t j = 0; j < 40; j += 2)
        half[j] = 0;
    const auto partial = model.run(plan, half);
    EXPECT_EQ(partial.work.broadcasts, 20u);
    EXPECT_LT(partial.work.total_entries, full.work.total_entries);

    // All-zero input: no work at all, all outputs zero.
    std::vector<std::int64_t> zeros(40, 0);
    const auto none = model.run(plan, zeros);
    EXPECT_EQ(none.work.broadcasts, 0u);
    EXPECT_EQ(none.work.total_entries, 0u);
    for (auto v : none.output_raw)
        EXPECT_EQ(v, 0);
}

TEST(FunctionalModel, PerPeWorkSumsToTotal)
{
    const unsigned n_pe = 16;
    auto layer = test::randomCompressedLayer(256, 64, 0.1, n_pe, 35);
    core::EieConfig config;
    config.n_pe = n_pe;
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const core::FunctionalModel model(config);
    const auto input = test::randomActivations(64, 0.6, 36);
    const auto result = model.run(plan, model.quantizeInput(input));

    std::uint64_t sum = 0;
    for (auto c : result.work.pe_entries)
        sum += c;
    EXPECT_EQ(sum, result.work.total_entries);
    EXPECT_EQ(result.work.theoreticalCycles(n_pe),
              (result.work.total_entries + n_pe - 1) / n_pe);
}

TEST(FunctionalModel, NoneNonlinearityKeepsNegatives)
{
    const unsigned n_pe = 4;
    // Use a layer guaranteed to produce some negative outputs.
    auto layer = test::randomCompressedLayer(64, 32, 0.3, n_pe, 37);
    core::EieConfig config;
    config.n_pe = n_pe;
    const auto relu_plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const auto raw_plan =
        core::planLayer(layer, nn::Nonlinearity::None, config);
    const core::FunctionalModel model(config);
    const auto input = test::randomActivations(32, 1.0, 38);
    const auto raw = model.quantizeInput(input);

    const auto with_relu = model.run(relu_plan, raw);
    const auto without = model.run(raw_plan, raw);

    bool saw_negative = false;
    for (std::size_t i = 0; i < without.output_raw.size(); ++i) {
        if (without.output_raw[i] < 0) {
            saw_negative = true;
            EXPECT_EQ(with_relu.output_raw[i], 0);
        } else {
            EXPECT_EQ(with_relu.output_raw[i], without.output_raw[i]);
        }
    }
    EXPECT_TRUE(saw_negative);
}

} // namespace
