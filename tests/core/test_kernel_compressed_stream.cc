/**
 * @file
 * Compressed-stream codec tests: every compiled slice round-trips
 * through CompressedSliceStream::encode/decode bit for bit, targeted
 * malformed streams throw CompressedStreamError with the documented
 * reason, and seeded fuzz (mutations of valid streams plus
 * pure-garbage streams) must decode-or-throw the typed error — never
 * crash, hang, read out of bounds, or trip a sanitizer. This is the
 * decoder's survival property against corrupt model bytes, mirroring
 * the wire codec's garbage-frame fuzz in tests/serve/test_wire.cc;
 * tools/check.sh runs it under ASan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/kernel/compiled_layer.hh"
#include "core/kernel/compressed_stream.hh"
#include "core/plan.hh"
#include "helpers.hh"

namespace {

using namespace eie;

using core::kernel::CompressedSliceStream;
using core::kernel::CompressedStreamError;
using core::kernel::SliceStream;

/** Every compressed tile slice of a representative layer (built side
 *  by side with the decoded streams so the round-trip has its
 *  oracle). */
std::vector<const core::kernel::CompiledSlice *>
compiledSlices(const core::kernel::CompiledLayer &layer)
{
    std::vector<const core::kernel::CompiledSlice *> slices;
    for (const auto &batch_tiles : layer.tiles)
        for (const auto &tile : batch_tiles)
            for (const auto &slice : tile.slices)
                slices.push_back(&slice);
    return slices;
}

core::kernel::CompiledLayer
compileWithCompressed(unsigned seed, double density = 0.25)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer =
        test::randomCompressedLayer(96, 64, density, 4, seed);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    core::kernel::CompileOptions options;
    options.compressed_stream = true;
    return core::kernel::CompiledLayer::compile(plan, config, options);
}

TEST(CompressedStream, RoundTripsEveryCompiledSlice)
{
    for (const unsigned seed : {7u, 8u}) {
        const auto compiled = compileWithCompressed(seed);
        ASSERT_TRUE(compiled.has_compressed_stream);
        ASSERT_TRUE(compiled.has_host_stream);

        SliceStream scratch;
        for (const auto *slice : compiledSlices(compiled)) {
            slice->compressed.decode(scratch);
            EXPECT_EQ(scratch.rows, slice->stream.rows);
            EXPECT_EQ(scratch.weights, slice->stream.weights);
            EXPECT_EQ(scratch.col_ptr, slice->stream.col_ptr);
            // The decoded form pays ~12 bytes/entry; the compressed
            // one must undercut it on any non-tiny slice.
            const std::size_t decoded_bytes =
                slice->stream.rows.size() * sizeof(std::uint32_t) +
                slice->stream.weights.size() * sizeof(std::int32_t) +
                slice->stream.col_ptr.size() * sizeof(std::uint32_t) +
                slice->stream.packed.size() * sizeof(std::uint32_t);
            if (slice->compressed.entry_count > 64)
                EXPECT_LT(slice->compressed.byteSize(),
                          decoded_bytes);
        }
    }
}

TEST(CompressedStream, TargetedMalformationsThrowTyped)
{
    const auto compiled = compileWithCompressed(7);
    const auto slices = compiledSlices(compiled);
    ASSERT_FALSE(slices.empty());
    const CompressedSliceStream &clean = slices.front()->compressed;
    ASSERT_GT(clean.entry_count, 0u);
    SliceStream scratch;

    {
        CompressedSliceStream bad = clean;
        bad.n_pe = 0;
        EXPECT_THROW(bad.decode(scratch), CompressedStreamError);
    }
    {
        CompressedSliceStream bad = clean;
        bad.col_ptr.clear();
        EXPECT_THROW(bad.decode(scratch), CompressedStreamError);
    }
    {
        CompressedSliceStream bad = clean;
        bad.col_ptr.front() = 1; // must start at 0
        EXPECT_THROW(bad.decode(scratch), CompressedStreamError);
    }
    {
        CompressedSliceStream bad = clean;
        bad.col_ptr.back() = clean.entry_count + 1;
        EXPECT_THROW(bad.decode(scratch), CompressedStreamError);
    }
    {
        CompressedSliceStream bad = clean;
        bad.nibbles.pop_back();
        EXPECT_THROW(bad.decode(scratch), CompressedStreamError);
    }
    {
        // Truncated bitstream: the cursor runs dry mid-symbol.
        CompressedSliceStream bad = clean;
        bad.delta_bit_count = bad.delta_bit_count / 2;
        EXPECT_THROW(bad.decode(scratch), CompressedStreamError);
    }
    {
        CompressedSliceStream bad = clean;
        bad.delta_bit_count = bad.delta_bits.size() * 8 + 1;
        EXPECT_THROW(bad.decode(scratch), CompressedStreamError);
    }
    {
        // Over-subscribed code-length table: more 1-bit codewords
        // than the code space holds.
        CompressedSliceStream bad = clean;
        bad.code_lengths.fill(1);
        EXPECT_THROW(bad.decode(scratch), CompressedStreamError);
    }
    {
        // Entries but no codewords at all.
        CompressedSliceStream bad = clean;
        bad.code_lengths.fill(0);
        EXPECT_THROW(bad.decode(scratch), CompressedStreamError);
    }
    {
        // Rows walk past the slice's range.
        CompressedSliceStream bad = clean;
        bad.local_rows = 1;
        try {
            bad.decode(scratch);
        } catch (const CompressedStreamError &) {
            // Expected for any slice with a row past 0; a 1-row
            // decode success would also be in-bounds.
        }
    }
    {
        // Row range would overflow 32-bit global row indices.
        CompressedSliceStream bad = clean;
        bad.n_pe = 0xffffffffu;
        bad.pe = 0xfffffffeu;
        EXPECT_THROW(bad.decode(scratch), CompressedStreamError);
    }
}

/** splitmix64: the deterministic byte source of the fuzz tests. */
std::uint64_t
splitmix(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Decode must finish or throw the typed error; anything else
 *  (crash, sanitizer trip, other exception type) fails the test. */
void
decodeOrTypedThrow(const CompressedSliceStream &stream,
                   SliceStream &scratch)
{
    try {
        stream.decode(scratch);
        // Landing on another valid stream is fine; crashing is not.
    } catch (const CompressedStreamError &) {
        // The typed rejection path: also fine.
    }
}

TEST(CompressedStreamFuzz, SeededMutationsOfValidStreamsFailTyped)
{
    // Deterministic mutation fuzz over every field a corrupt model
    // file could damage: bit flips and byte stomps in the nibble and
    // delta arrays, stomped column pointers and code lengths,
    // perturbed scalar header fields, truncations and extensions.
    // Seeded, so a failure reproduces exactly.
    std::uint64_t rng = 0xc0dec0dec0dec0deull;
    const auto compiled = compileWithCompressed(7);
    SliceStream scratch;

    for (const auto *slice : compiledSlices(compiled)) {
        const CompressedSliceStream &clean = slice->compressed;
        ASSERT_NO_THROW(clean.decode(scratch));

        for (int round = 0; round < 200; ++round) {
            CompressedSliceStream mutated = clean;
            const unsigned edits =
                1 + static_cast<unsigned>(splitmix(rng) % 3);
            for (unsigned e = 0; e < edits; ++e) {
                switch (splitmix(rng) % 8) {
                  case 0: // flip one bit of the delta stream
                    if (!mutated.delta_bits.empty())
                        mutated.delta_bits[splitmix(rng) %
                                           mutated.delta_bits
                                               .size()] ^=
                            static_cast<std::uint8_t>(
                                1u << (splitmix(rng) % 8));
                    break;
                  case 1: // stomp one nibble byte
                    if (!mutated.nibbles.empty())
                        mutated.nibbles[splitmix(rng) %
                                        mutated.nibbles.size()] =
                            static_cast<std::uint8_t>(splitmix(rng));
                    break;
                  case 2: // stomp one column pointer
                    mutated.col_ptr[splitmix(rng) %
                                    mutated.col_ptr.size()] =
                        static_cast<std::uint32_t>(
                            splitmix(rng) % (2 * clean.entry_count +
                                             2));
                    break;
                  case 3: // stomp one code length
                    mutated.code_lengths[splitmix(rng) % 256] =
                        static_cast<std::uint8_t>(splitmix(rng) % 40);
                    break;
                  case 4: // perturb a scalar header field
                    switch (splitmix(rng) % 4) {
                      case 0:
                        mutated.local_rows = static_cast<
                            std::uint32_t>(splitmix(rng) % 200);
                        break;
                      case 1:
                        mutated.delta_bit_count =
                            splitmix(rng) %
                            (8 * mutated.delta_bits.size() + 9);
                        break;
                      case 2:
                        mutated.pe = static_cast<std::uint32_t>(
                            splitmix(rng));
                        break;
                      default:
                        mutated.n_pe = static_cast<std::uint32_t>(
                            splitmix(rng) % 9);
                        break;
                    }
                    break;
                  case 5: // truncate the delta stream
                    if (!mutated.delta_bits.empty()) {
                        mutated.delta_bits.resize(
                            splitmix(rng) %
                            mutated.delta_bits.size());
                        mutated.delta_bit_count = std::min<
                            std::uint64_t>(
                            mutated.delta_bit_count,
                            mutated.delta_bits.size() * 8);
                    }
                    break;
                  case 6: // append trailing garbage bits
                    for (std::uint64_t n = 1 + splitmix(rng) % 8;
                         n > 0; --n)
                        mutated.delta_bits.push_back(
                            static_cast<std::uint8_t>(splitmix(rng)));
                    mutated.delta_bit_count =
                        mutated.delta_bits.size() * 8;
                    break;
                  default: // truncate the column pointers
                    if (mutated.col_ptr.size() > 1)
                        mutated.col_ptr.resize(
                            1 + splitmix(rng) %
                                    mutated.col_ptr.size());
                    break;
                }
            }
            decodeOrTypedThrow(mutated, scratch);
        }
    }
}

TEST(CompressedStreamFuzz, PureGarbageStreamsFailTyped)
{
    // Streams that were never an encode(): every field filled from
    // the deterministic byte source, sizes bounded so a "success"
    // cannot allocate absurdly (decode validates entry_count against
    // the nibble array and column extents before any array walk).
    std::uint64_t rng = 0x5eed5eed5eed5eedull;
    SliceStream scratch;
    for (int round = 0; round < 400; ++round) {
        CompressedSliceStream garbage;
        garbage.n_pe = static_cast<std::uint32_t>(splitmix(rng) % 6);
        garbage.pe = static_cast<std::uint32_t>(splitmix(rng) % 8);
        garbage.local_rows =
            static_cast<std::uint32_t>(splitmix(rng) % 300);
        garbage.entry_count =
            static_cast<std::uint32_t>(splitmix(rng) % 512);
        const std::uint64_t cols = splitmix(rng) % 20;
        for (std::uint64_t j = 0; j < cols; ++j)
            garbage.col_ptr.push_back(static_cast<std::uint32_t>(
                splitmix(rng) % 600));
        if (splitmix(rng) % 2 == 0 && !garbage.col_ptr.empty()) {
            // Half the rounds: structurally plausible pointers, so
            // the fuzz reaches the Huffman walk itself.
            garbage.col_ptr.front() = 0;
            garbage.col_ptr.back() = garbage.entry_count;
        }
        const std::uint64_t nibble_bytes = splitmix(rng) % 300;
        for (std::uint64_t i = 0; i < nibble_bytes; ++i)
            garbage.nibbles.push_back(
                static_cast<std::uint8_t>(splitmix(rng)));
        if (splitmix(rng) % 2 == 0)
            garbage.nibbles.resize(
                (static_cast<std::size_t>(garbage.entry_count) + 1) /
                2);
        const std::uint64_t delta_bytes = splitmix(rng) % 200;
        for (std::uint64_t i = 0; i < delta_bytes; ++i)
            garbage.delta_bits.push_back(
                static_cast<std::uint8_t>(splitmix(rng)));
        garbage.delta_bit_count =
            splitmix(rng) % (8 * delta_bytes + 9);
        for (unsigned s = 0; s < 256; ++s)
            if (splitmix(rng) % 4 == 0)
                garbage.code_lengths[s] =
                    static_cast<std::uint8_t>(splitmix(rng) % 40);
        for (unsigned v = 0; v < 16; ++v)
            garbage.weight_lut[v] =
                static_cast<std::int32_t>(splitmix(rng));
        decodeOrTypedThrow(garbage, scratch);
    }
}

} // namespace
