/**
 * @file
 * Extension feature tests (§VII-C and §VII-A): 1x1 convolution,
 * Winograd 3x3 convolution, and the partitioning cost models.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/ext/column_partition.hh"
#include "core/ext/conv1x1.hh"
#include "core/ext/winograd.hh"
#include "helpers.hh"
#include "nn/generate.hh"

namespace {

using namespace eie;
using namespace eie::core::ext;

FeatureMap
randomMap(std::size_t channels, std::size_t h, std::size_t w,
          double density, Rng &rng)
{
    FeatureMap map(channels, h, w);
    for (std::size_t c = 0; c < channels; ++c)
        for (std::size_t y = 0; y < h; ++y)
            for (std::size_t x = 0; x < w; ++x)
                if (rng.bernoulli(density))
                    map.at(c, y, x) = static_cast<float>(
                        std::abs(rng.normal(0.0, 1.0)));
    return map;
}

TEST(Conv1x1, EieMatchesGolden)
{
    const auto layer = test::randomCompressedLayer(12, 8, 0.4, 4, 201);
    const Conv1x1 conv(layer);
    Rng rng(202);
    const auto input = randomMap(8, 5, 5, 0.5, rng);

    const auto golden = conv.forward(input);
    core::EieConfig config;
    config.n_pe = 4;
    core::RunStats stats;
    const auto eie_out = conv.forwardOnEie(input, config, &stats);

    ASSERT_EQ(eie_out.channels(), 12u);
    for (std::size_t c = 0; c < 12; ++c)
        for (std::size_t y = 0; y < 5; ++y)
            for (std::size_t x = 0; x < 5; ++x)
                EXPECT_NEAR(eie_out.at(c, y, x), golden.at(c, y, x),
                            0.05);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.total_entries, 0u);
}

TEST(Conv1x1, ZeroInputPixelsCostNoBroadcasts)
{
    const auto layer = test::randomCompressedLayer(8, 8, 0.5, 4, 203);
    const Conv1x1 conv(layer);
    FeatureMap zeros(8, 3, 3);
    core::EieConfig config;
    config.n_pe = 4;
    core::RunStats stats;
    const auto out = conv.forwardOnEie(zeros, config, &stats);
    EXPECT_EQ(stats.broadcasts, 0u);
    for (std::size_t c = 0; c < 8; ++c)
        EXPECT_EQ(out.at(c, 1, 1), 0.0f);
}

TEST(Winograd, DirectConvolutionKnownValue)
{
    // Identity-ish kernel: picks the centre pixel of channel 0.
    Conv3x3Kernels kernels(1, 1);
    kernels.at(0, 0, 1, 1) = 1.0f;
    FeatureMap input(1, 4, 4);
    float v = 0.0f;
    for (std::size_t y = 0; y < 4; ++y)
        for (std::size_t x = 0; x < 4; ++x)
            input.at(0, y, x) = v++;
    const auto out = directConv3x3(kernels, input);
    ASSERT_EQ(out.height(), 2u);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), input.at(0, 1, 1));
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), input.at(0, 2, 2));
}

TEST(Winograd, TransformMatchesDirectWithoutQuantisation)
{
    // Use a wide codebook-friendly weight set: all kernel weights
    // drawn from a tiny value set so the 16-entry codebook of every
    // U_k is nearly exact; agreement must then be tight.
    Rng rng(204);
    Conv3x3Kernels kernels(4, 3);
    for (std::size_t co = 0; co < 4; ++co)
        for (std::size_t ci = 0; ci < 3; ++ci)
            for (std::size_t k = 0; k < 9; ++k)
                if (rng.bernoulli(0.7))
                    kernels.at(co, ci, k / 3, k % 3) =
                        0.25f * static_cast<float>(
                                    rng.uniformInt(-2, 2));

    const auto input = randomMap(3, 6, 6, 0.8, rng);
    const auto direct = directConv3x3(kernels, input);

    compress::CompressionOptions copts;
    copts.interleave.n_pe = 2;
    const WinogradConv3x3 winograd(kernels, copts);
    const auto wino = winograd.forward(input);

    ASSERT_EQ(wino.height(), direct.height());
    double max_diff = 0.0;
    for (std::size_t c = 0; c < 4; ++c)
        for (std::size_t y = 0; y < direct.height(); ++y)
            for (std::size_t x = 0; x < direct.width(); ++x)
                max_diff = std::max(
                    max_diff,
                    std::abs(static_cast<double>(
                        wino.at(c, y, x) - direct.at(c, y, x))));
    EXPECT_LT(max_diff, 0.2);
}

TEST(Winograd, EieExecutionMatchesFloatWinograd)
{
    Rng rng(205);
    Conv3x3Kernels kernels(4, 4);
    for (std::size_t co = 0; co < 4; ++co)
        for (std::size_t ci = 0; ci < 4; ++ci)
            for (std::size_t k = 0; k < 9; ++k)
                if (rng.bernoulli(0.6))
                    kernels.at(co, ci, k / 3, k % 3) =
                        static_cast<float>(rng.normal(0.0, 0.3));

    const auto input = randomMap(4, 6, 6, 0.6, rng);
    compress::CompressionOptions copts;
    copts.interleave.n_pe = 4;
    const WinogradConv3x3 winograd(kernels, copts);

    const auto gold = winograd.forward(input);
    core::EieConfig config;
    config.n_pe = 4;
    std::uint64_t cycles = 0;
    const auto eie_out = winograd.forwardOnEie(input, config, &cycles);

    for (std::size_t c = 0; c < 4; ++c)
        for (std::size_t y = 0; y < gold.height(); ++y)
            for (std::size_t x = 0; x < gold.width(); ++x)
                EXPECT_NEAR(eie_out.at(c, y, x), gold.at(c, y, x),
                            0.25);
    EXPECT_GT(cycles, 0u);
    EXPECT_DOUBLE_EQ(WinogradConv3x3::multiplySavings(), 2.25);
}

TEST(Partitioning, ColumnSchemeIdlesZeroActivationPes)
{
    // 8 columns on 8 PEs; half the activations zero: the column
    // scheme idles exactly those PEs, the row scheme idles none.
    const auto weights = test::randomWeights(64, 8, 0.5, 206);
    nn::Vector acts(8, 1.0f);
    for (std::size_t j = 0; j < 8; j += 2)
        acts[j] = 0.0f;

    const auto col = columnPartitionCost(weights, acts, 8);
    EXPECT_EQ(col.idle_pes, 4u);
    EXPECT_GT(col.reduction_cycles, 0u);

    const auto row = rowPartitionCost(weights, acts, 8);
    EXPECT_EQ(row.idle_pes, 0u);
    EXPECT_EQ(row.reduction_cycles, 0u);
    EXPECT_EQ(row.total_entries, col.total_entries);
    EXPECT_LT(row.totalCycles(), col.totalCycles());
}

TEST(Partitioning, DenseActivationsStillPayReduction)
{
    const auto weights = test::randomWeights(128, 64, 0.2, 207);
    const nn::Vector acts(64, 1.0f);
    const auto col = columnPartitionCost(weights, acts, 16);
    const auto row = rowPartitionCost(weights, acts, 16);
    EXPECT_EQ(col.idle_pes, 0u);
    // Reduction: ceil(log2 16) stages x ceil(128/4) transfers.
    EXPECT_EQ(col.reduction_cycles, 4u * 32u);
    EXPECT_EQ(row.reduction_cycles, 0u);
}

TEST(Partitioning, SinglePeDegenerate)
{
    const auto weights = test::randomWeights(16, 16, 0.3, 208);
    const nn::Vector acts(16, 1.0f);
    const auto col = columnPartitionCost(weights, acts, 1);
    EXPECT_EQ(col.reduction_cycles, 0u);
    EXPECT_EQ(col.compute_cycles, weights.nnz());
}

} // namespace
