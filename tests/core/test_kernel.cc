/**
 * @file
 * Compiled-kernel tests: the batched execution path (pre-decoded
 * format, PE-parallel worker pool) must be bit-exact with the scalar
 * FunctionalModel interpreter for every configuration, batch size and
 * thread count, and padding entries must vanish from the compiled
 * image without changing any output.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "core/functional.hh"
#include "core/kernel/compiled_layer.hh"
#include "core/kernel/executor.hh"
#include "core/kernel/variant.hh"
#include "core/kernel/worker_pool.hh"
#include "core/network_runner.hh"
#include "core/plan.hh"
#include "helpers.hh"

namespace {

using namespace eie;

using core::kernel::KernelVariant;

/** Every registry variant, explicit and auto. */
const std::vector<KernelVariant> kAllVariants{
    KernelVariant::Auto, KernelVariant::Reference,
    KernelVariant::Vector, KernelVariant::Fused,
    KernelVariant::ActSparse};

/** Quantized random frames at the given activation density. */
core::kernel::Batch
makeFrames(const core::FunctionalModel &model, std::size_t n,
           std::size_t batch, double density, std::uint64_t seed)
{
    core::kernel::Batch frames;
    for (std::size_t b = 0; b < batch; ++b)
        frames.push_back(model.quantizeInput(
            test::randomActivations(n, density, seed + 31 * b)));
    return frames;
}

/** Per-frame scalar reference outputs. */
core::kernel::Batch
scalarReference(const core::FunctionalModel &model,
                const core::LayerPlan &plan,
                const core::kernel::Batch &frames)
{
    core::kernel::Batch reference;
    for (const auto &frame : frames)
        reference.push_back(model.run(plan, frame).output_raw);
    return reference;
}

TEST(CompiledKernel, RandomizedEquivalenceAcrossConfigs)
{
    struct Point
    {
        unsigned n_pe;
        unsigned regfile; // small values force several row batches
        unsigned ptr_cap; // small values force several column passes
        std::size_t rows, cols;
        double w_density, a_density;
    };
    const Point points[] = {
        {1, 64, 16384, 96, 64, 0.3, 0.5},
        {4, 8, 16384, 200, 80, 0.15, 0.4},   // 3 row batches
        {8, 64, 33, 128, 96, 0.1, 0.5},      // 3 column passes
        {16, 4, 25, 300, 70, 0.2, 0.3},      // batches x passes grid
    };

    std::uint64_t seed = 1000;
    for (const Point &p : points) {
        core::EieConfig config;
        config.n_pe = p.n_pe;
        config.regfile_entries = p.regfile;
        config.ptr_capacity = p.ptr_cap;

        const auto layer = test::randomCompressedLayer(
            p.rows, p.cols, p.w_density, p.n_pe, seed++);
        const auto plan =
            core::planLayer(layer, nn::Nonlinearity::ReLU, config);
        const core::FunctionalModel model(config);

        for (std::size_t batch : {1u, 4u, 16u}) {
            const auto frames = makeFrames(model, p.cols, batch,
                                           p.a_density, seed += 100);
            const auto reference = scalarReference(model, plan, frames);

            for (unsigned threads : {1u, 4u}) {
                for (const KernelVariant kernel : kAllVariants) {
                    const auto outputs =
                        model.runBatch(plan, frames, threads, kernel);
                    ASSERT_EQ(outputs.size(), reference.size());
                    for (std::size_t b = 0; b < batch; ++b)
                        EXPECT_EQ(outputs[b], reference[b])
                            << p.n_pe << " PEs, batch " << batch
                            << ", " << threads << " threads, kernel "
                            << core::kernel::kernelVariantName(kernel)
                            << ", frame " << b;
                }
            }
        }
    }
}

TEST(CompiledKernel, NonePreservesNegativesLikeScalar)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(64, 48, 0.3, 4, 77);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::None, config);
    const core::FunctionalModel model(config);

    const auto frames = makeFrames(model, 48, 8, 1.0, 78);
    const auto reference = scalarReference(model, plan, frames);

    bool saw_negative = false;
    for (const KernelVariant kernel : kAllVariants) {
        const auto outputs = model.runBatch(plan, frames, 1, kernel);
        for (std::size_t b = 0; b < frames.size(); ++b) {
            EXPECT_EQ(outputs[b], reference[b])
                << core::kernel::kernelVariantName(kernel);
            for (auto v : outputs[b])
                saw_negative |= v < 0;
        }
    }
    EXPECT_TRUE(saw_negative);
}

TEST(CompiledKernel, PaddingEntriesAreStrippedAndContributeZero)
{
    // Very sparse tall layer on few PEs: zero runs far beyond 15 force
    // padding entries into the interleaved image.
    core::EieConfig config;
    config.n_pe = 2;
    const auto layer =
        test::randomCompressedLayer(600, 32, 0.01, 2, 91);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    ASSERT_GT(plan.paddingEntries(), 0u);

    const auto compiled =
        core::kernel::CompiledLayer::compile(plan, config);
    EXPECT_EQ(compiled.stripped_padding, plan.paddingEntries());
    EXPECT_EQ(compiled.real_entries,
              plan.totalEntries() - plan.paddingEntries());

    // The scalar interpreter executes the padding MACs (they are real
    // work, §III-B); the compiled path never sees them. Outputs must
    // still agree bit for bit, i.e. padding contributed exactly zero.
    const core::FunctionalModel model(config);
    const auto frames = makeFrames(model, 32, 4, 1.0, 92);
    const auto reference = scalarReference(model, plan, frames);
    for (const KernelVariant kernel : kAllVariants) {
        const auto outputs = model.runBatch(plan, frames, 1, kernel);
        for (std::size_t b = 0; b < frames.size(); ++b)
            EXPECT_EQ(outputs[b], reference[b])
                << core::kernel::kernelVariantName(kernel);
    }
}

TEST(CompiledKernel, NetworkRunnerBatchMatchesPerFrameRun)
{
    core::EieConfig config;
    config.n_pe = 8;
    core::NetworkRunner net(config);
    const auto l1 = test::randomCompressedLayer(96, 64, 0.2, 8, 101);
    const auto l2 = test::randomCompressedLayer(48, 96, 0.25, 8, 102);
    net.addLayer(l1, nn::Nonlinearity::ReLU);
    net.addLayer(l2, nn::Nonlinearity::ReLU);

    const core::FunctionalModel model(config);
    const auto frames = makeFrames(model, 64, 6, 0.6, 103);

    for (unsigned threads : {1u, 3u}) {
        const auto outputs = net.runBatch(frames, threads);
        ASSERT_EQ(outputs.size(), frames.size());
        for (std::size_t b = 0; b < frames.size(); ++b) {
            const auto single = net.run(frames[b]);
            EXPECT_EQ(outputs[b], single.output_raw)
                << "frame " << b << ", " << threads << " threads";
        }
    }
}

TEST(WorkerPool, CoversEveryIndexExactlyOnce)
{
    core::kernel::WorkerPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    for (auto &h : hits)
        h = 0;
    for (int round = 0; round < 3; ++round) {
        pool.parallelFor(kCount,
                         [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < kCount; ++i)
            ASSERT_EQ(hits[i].load(), round + 1) << "index " << i;
    }

    // Degenerate shapes.
    pool.parallelFor(0, [&](std::size_t) { FAIL(); });
    std::atomic<int> once{0};
    pool.parallelFor(1, [&](std::size_t) { once.fetch_add(1); });
    EXPECT_EQ(once.load(), 1);

    core::kernel::WorkerPool solo(1);
    EXPECT_EQ(solo.threads(), 1u);
    std::atomic<int> count{0};
    solo.parallelFor(17, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 17);
}

} // namespace
