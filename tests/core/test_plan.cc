/**
 * @file
 * Compiler/scheduler tests: tiling decisions, capacity handling and
 * plan-level statistics.
 */

#include <gtest/gtest.h>

#include "core/plan.hh"
#include "helpers.hh"

namespace {

using namespace eie;

TEST(Planner, SingleTileWhenEverythingFits)
{
    auto layer = test::randomCompressedLayer(128, 64, 0.1, 8, 1);
    core::EieConfig config;
    config.n_pe = 8;
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    EXPECT_EQ(plan.batches(), 1u);
    EXPECT_EQ(plan.passes(), 1u);
    EXPECT_EQ(plan.tiles[0][0].row_begin, 0u);
    EXPECT_EQ(plan.tiles[0][0].row_end, 128u);
    EXPECT_EQ(plan.tiles[0][0].col_begin, 0u);
    EXPECT_EQ(plan.tiles[0][0].col_end, 64u);
}

TEST(Planner, RowBatchingFollowsRegfile)
{
    auto layer = test::randomCompressedLayer(1000, 32, 0.1, 4, 2);
    core::EieConfig config;
    config.n_pe = 4;
    config.regfile_entries = 64; // 256 rows per batch
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    EXPECT_EQ(plan.batches(), 4u); // ceil(1000/256)
    EXPECT_EQ(plan.tiles[3][0].row_begin, 768u);
    EXPECT_EQ(plan.tiles[3][0].row_end, 1000u);
}

TEST(Planner, ColumnPassesFollowPointerCapacity)
{
    auto layer = test::randomCompressedLayer(32, 500, 0.1, 4, 3);
    core::EieConfig config;
    config.n_pe = 4;
    config.ptr_capacity = 201; // 200 columns per pass
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    EXPECT_EQ(plan.passes(), 3u);
    EXPECT_EQ(plan.tiles[0][2].col_begin, 400u);
    EXPECT_EQ(plan.tiles[0][2].col_end, 500u);
}

TEST(Planner, EntriesArePreservedAcrossTiling)
{
    auto layer = test::randomCompressedLayer(300, 300, 0.15, 8, 4);
    core::EieConfig config;
    config.n_pe = 8;
    config.regfile_entries = 16; // 128 rows per batch
    config.ptr_capacity = 129;   // 128 cols per pass
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    EXPECT_GT(plan.batches(), 1u);
    EXPECT_GT(plan.passes(), 1u);

    // Real (non-padding) entries must equal the layer's nnz exactly;
    // padding may differ from the untiled encoding.
    EXPECT_EQ(plan.totalEntries() - plan.paddingEntries(),
              layer.quantizedWeights().nnz());
    EXPECT_GT(plan.realWorkRatio(), 0.0);
    EXPECT_LE(plan.realWorkRatio(), 1.0);
}

TEST(PlannerDeath, CapacityEnforcement)
{
    auto layer = test::randomCompressedLayer(512, 128, 0.5, 2, 5);
    core::EieConfig config;
    config.n_pe = 2;
    config.spmat_capacity_entries = 64; // far too small
    config.enforce_capacity = true;
    EXPECT_EXIT(
        core::planLayer(layer, nn::Nonlinearity::ReLU, config),
        ::testing::ExitedWithCode(1), "Spmat");
}

TEST(Planner, RelaxedCapacityOnlyWarns)
{
    auto layer = test::randomCompressedLayer(512, 128, 0.5, 2, 5);
    core::EieConfig config;
    config.n_pe = 2;
    config.spmat_capacity_entries = 64;
    config.enforce_capacity = false;
    eie::Logger::setQuiet(true);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    eie::Logger::setQuiet(false);
    // Row batching still applies (512 rows / (64 regs * 2 PEs) = 4
    // batches); the too-small Spmat capacity only warns.
    EXPECT_EQ(plan.batches(), 4u);
}

} // namespace
