/**
 * @file
 * Leading non-zero detection: node selection, tree construction and
 * the distributed scan schedule.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/lnzd.hh"

namespace {

using namespace eie::core;

TEST(LnzdSelect, PicksSmallestValidIndex)
{
    std::vector<LnzdCandidate> children(4);
    EXPECT_FALSE(lnzdSelect(children).valid);

    children[2] = {true, 7, 42};
    auto pick = lnzdSelect(children);
    EXPECT_TRUE(pick.valid);
    EXPECT_EQ(pick.index, 7u);
    EXPECT_EQ(pick.value, 42);

    children[0] = {true, 9, 1};
    children[3] = {true, 3, -5};
    pick = lnzdSelect(children);
    EXPECT_EQ(pick.index, 3u);
    EXPECT_EQ(pick.value, -5);
}

TEST(LnzdTree, NodeCountAndDepth)
{
    EXPECT_EQ(LnzdTree(64, 4).nodeCount(), 21u);
    EXPECT_EQ(LnzdTree(64, 4).depth(), 3u);
    EXPECT_EQ(LnzdTree(256, 4).nodeCount(), 85u);
    EXPECT_EQ(LnzdTree(16, 4).nodeCount(), 5u);
    EXPECT_EQ(LnzdTree(1, 4).nodeCount(), 0u);
    // Non-power-of-fanin leaf counts still reduce to one root.
    EXPECT_EQ(LnzdTree(7, 4).depth(), 2u);
}

TEST(LnzdTree, ScanProducesAscendingNonZeros)
{
    eie::Rng rng(99);
    for (unsigned n_pe : {1u, 3u, 4u, 16u, 64u}) {
        LnzdTree tree(n_pe, 4);
        std::vector<std::int64_t> acts(301);
        for (auto &a : acts)
            a = rng.bernoulli(0.3) ? rng.uniformInt(-100, 100) : 0;

        const auto schedule = tree.scan(acts, n_pe);

        // Exactly the non-zeros, in ascending index order.
        std::size_t expected = 0;
        for (std::size_t i = 0; i < acts.size(); ++i)
            if (acts[i] != 0)
                ++expected;
        ASSERT_EQ(schedule.size(), expected) << n_pe << " PEs";

        std::uint32_t prev = 0;
        bool first = true;
        for (const auto &[index, value] : schedule) {
            EXPECT_EQ(value, acts[index]);
            EXPECT_NE(value, 0);
            if (!first)
                EXPECT_GT(index, prev);
            prev = index;
            first = false;
        }
    }
}

TEST(LnzdTree, AllZeroAndAllDense)
{
    LnzdTree tree(8, 4);
    std::vector<std::int64_t> zeros(50, 0);
    EXPECT_TRUE(tree.scan(zeros, 8).empty());

    std::vector<std::int64_t> dense(50, 3);
    const auto schedule = tree.scan(dense, 8);
    ASSERT_EQ(schedule.size(), 50u);
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_EQ(schedule[i].first, i);
}

} // namespace
