/**
 * @file
 * CCU broadcast sequencer tests: LNZD pipeline latency, 1/cycle
 * throughput, and queue-full gating.
 */

#include <gtest/gtest.h>

#include "core/ccu.hh"
#include "sim/simulator.hh"

namespace {

using namespace eie;
using namespace eie::core;

TEST(Ccu, LatencyThenOnePerCycle)
{
    sim::Simulator simulator("t");
    EieConfig config;
    Ccu ccu(config, simulator.stats());
    simulator.add(&ccu);
    ccu.attachQueueFull([] { return false; });

    ccu.configurePass({{2, 10}, {5, 20}, {9, 30}}, /*latency=*/3);

    std::vector<std::pair<std::uint32_t, std::int64_t>> seen;
    for (int cycle = 0; cycle < 10; ++cycle) {
        simulator.step();
        const Broadcast &b = ccu.broadcastOut();
        if (b.valid)
            seen.emplace_back(b.col, b.value);
    }

    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], (std::pair<std::uint32_t, std::int64_t>{2, 10}));
    EXPECT_EQ(seen[2], (std::pair<std::uint32_t, std::int64_t>{9, 30}));
    EXPECT_TRUE(ccu.done());
    EXPECT_EQ(simulator.stats().value("broadcasts"), 3u);
}

TEST(Ccu, BackToBackThroughput)
{
    sim::Simulator simulator("t");
    EieConfig config;
    Ccu ccu(config, simulator.stats());
    simulator.add(&ccu);
    ccu.attachQueueFull([] { return false; });

    std::vector<std::pair<std::uint32_t, std::int64_t>> schedule;
    for (std::uint32_t j = 0; j < 6; ++j)
        schedule.emplace_back(j, j + 1);
    ccu.configurePass(schedule, /*latency=*/0);

    // With zero latency and no gating: exactly one per cycle.
    for (int cycle = 0; cycle < 6; ++cycle) {
        simulator.step();
        ASSERT_TRUE(ccu.broadcastOut().valid) << "cycle " << cycle;
        EXPECT_EQ(ccu.broadcastOut().col,
                  static_cast<std::uint32_t>(cycle));
    }
    simulator.step();
    EXPECT_FALSE(ccu.broadcastOut().valid);
}

TEST(Ccu, GatedWhileAnyQueueFull)
{
    sim::Simulator simulator("t");
    EieConfig config;
    Ccu ccu(config, simulator.stats());
    simulator.add(&ccu);

    bool full = true;
    ccu.attachQueueFull([&full] { return full; });
    ccu.configurePass({{0, 1}}, 0);

    simulator.run(4); // gated: nothing emitted
    EXPECT_FALSE(ccu.broadcastOut().valid);
    EXPECT_FALSE(ccu.done());
    EXPECT_EQ(simulator.stats().value("gated_cycles"), 4u);

    full = false;
    simulator.step();
    EXPECT_TRUE(ccu.broadcastOut().valid);
    EXPECT_TRUE(ccu.done());
}

TEST(Ccu, ReconfigureResetsState)
{
    sim::Simulator simulator("t");
    EieConfig config;
    Ccu ccu(config, simulator.stats());
    simulator.add(&ccu);
    ccu.attachQueueFull([] { return false; });

    ccu.configurePass({{1, 1}}, 0);
    simulator.step();
    EXPECT_TRUE(ccu.done());

    ccu.configurePass({{7, 7}, {8, 8}}, 1);
    EXPECT_FALSE(ccu.done());
    simulator.step(); // latency cycle
    EXPECT_FALSE(ccu.broadcastOut().valid);
    simulator.step();
    EXPECT_TRUE(ccu.broadcastOut().valid);
    EXPECT_EQ(ccu.broadcastOut().col, 7u);
}

} // namespace
