/**
 * @file
 * Unit tests of the PE's building blocks: banked pointer reads, the
 * wide-row Spmat streamer, the 4-stage arithmetic pipeline, and the
 * activation read/write unit.
 */

#include <gtest/gtest.h>

#include "core/act_rw.hh"
#include "core/arith.hh"
#include "core/config.hh"
#include "core/ptr_read.hh"
#include "core/spmat_read.hh"
#include "sim/stats.hh"

namespace {

using namespace eie;
using namespace eie::core;

TEST(PointerReadUnit, BankedLookup)
{
    EieConfig config;
    sim::StatGroup stats("test");
    PointerReadUnit unit(config, stats);

    const std::vector<std::uint32_t> ptr{0, 3, 4, 6, 6, 8, 10, 11, 13};
    unit.loadPointers(ptr);

    for (std::uint32_t col = 0; col + 1 < ptr.size(); ++col) {
        unit.request(col);
        EXPECT_TRUE(unit.busy());
        EXPECT_FALSE(unit.ready());
        unit.tick();
        ASSERT_TRUE(unit.ready());
        const auto [begin, end] = unit.pointers();
        EXPECT_EQ(begin, ptr[col]) << "col " << col;
        EXPECT_EQ(end, ptr[col + 1]) << "col " << col;
    }

    // One read per bank per lookup.
    EXPECT_EQ(stats.value("ptr_even_reads") + stats.value("ptr_odd_reads"),
              2 * (ptr.size() - 1));
}

std::vector<core::kernel::SimEntry>
makeEntries(std::size_t count)
{
    // Pre-decoded stream entries (the payload is irrelevant to the
    // streamer's timing; rows/weights just need to be recognisable).
    std::vector<core::kernel::SimEntry> entries(count);
    for (std::size_t i = 0; i < count; ++i) {
        entries[i].local_row = static_cast<std::uint32_t>(i);
        entries[i].weight_raw = static_cast<std::int32_t>(1 + i % 15);
        entries[i].is_padding = false;
    }
    return entries;
}

TEST(SpmatReadUnit, StreamsOneEntryPerCycleSteadyState)
{
    EieConfig config; // 64-bit rows: 8 entries per fetch
    sim::StatGroup stats("test");
    SpmatReadUnit unit(config, stats);
    unit.loadEntries(makeEntries(40));

    unit.startColumn(0, 40);
    EXPECT_TRUE(unit.columnActive());
    EXPECT_FALSE(unit.entryReady()); // nothing fetched yet

    std::size_t consumed = 0;
    std::size_t cycles = 0;
    while (unit.columnActive() && cycles < 200) {
        if (unit.entryReady()) {
            EXPECT_EQ(unit.peekEntry().weight_raw,
                      static_cast<std::int32_t>(1 + consumed % 15));
            unit.consumeEntry();
            ++consumed;
        }
        unit.prefetch(false, 0, 0);
        unit.tick();
        ++cycles;
    }
    EXPECT_EQ(consumed, 40u);
    // 40 entries in 5 rows; one warm-up cycle for the first fetch,
    // then one entry per cycle: no more than a couple of bubbles.
    EXPECT_LE(cycles, 43u);
    EXPECT_EQ(unit.rowFetches(), 5u);
}

TEST(SpmatReadUnit, RetainsRowAcrossColumnSwitch)
{
    EieConfig config;
    sim::StatGroup stats("test");
    SpmatReadUnit unit(config, stats);
    unit.loadEntries(makeEntries(8)); // all in one 64-bit row

    // Column A = entries [0,3), column B = [5,8): same SRAM row.
    unit.startColumn(0, 3);
    unit.prefetch(false, 0, 0);
    unit.tick();
    ASSERT_TRUE(unit.entryReady());
    while (unit.columnActive()) {
        unit.consumeEntry();
        unit.tick();
    }
    EXPECT_EQ(unit.rowFetches(), 1u);

    unit.startColumn(5, 8);
    // The row is already buffered: no new fetch needed.
    EXPECT_TRUE(unit.entryReady());
    while (unit.columnActive()) {
        unit.consumeEntry();
        unit.tick();
    }
    EXPECT_EQ(unit.rowFetches(), 1u);
}

TEST(SpmatReadUnit, BorrowedStreamBehavesLikeOwned)
{
    EieConfig config;
    sim::StatGroup stats("test");
    SpmatReadUnit unit(config, stats);

    // Zero-copy load of a caller-owned stream (the CompiledLayer
    // path): identical streaming behaviour and fetch schedule.
    const auto entries = makeEntries(16);
    unit.loadStream(entries.data(), entries.size());
    unit.startColumn(0, 16);
    std::size_t consumed = 0;
    std::size_t cycles = 0;
    while (unit.columnActive() && cycles < 100) {
        if (unit.entryReady()) {
            EXPECT_EQ(unit.peekEntry().local_row, consumed);
            unit.consumeEntry();
            ++consumed;
        }
        unit.prefetch(false, 0, 0);
        unit.tick();
        ++cycles;
    }
    EXPECT_EQ(consumed, 16u);
    EXPECT_EQ(unit.rowFetches(), 2u); // 16 entries in 2 64-bit rows
}

TEST(SpmatReadUnit, NarrowWidthFetchesMoreRows)
{
    EieConfig config;
    config.spmat_width_bits = 32; // 4 entries per row
    sim::StatGroup stats("test");
    SpmatReadUnit unit(config, stats);
    unit.loadEntries(makeEntries(40));

    unit.startColumn(0, 40);
    std::size_t cycles = 0;
    while (unit.columnActive() && cycles < 400) {
        if (unit.entryReady())
            unit.consumeEntry();
        unit.prefetch(false, 0, 0);
        unit.tick();
        ++cycles;
    }
    EXPECT_EQ(unit.rowFetches(), 10u);
}

compress::Codebook
simpleCodebook()
{
    return compress::Codebook({0.0f, 1.0f, -2.0f, 0.5f});
}

TEST(ArithmeticUnit, MacSemanticsAndPadding)
{
    EieConfig config;
    sim::StatGroup stats("test");
    ArithmeticUnit unit(config, stats);
    const auto codebook = simpleCodebook();
    unit.loadCodebook(codebook);

    unit.configureBatch(4);
    ASSERT_EQ(unit.accumulators().size(), 4u);

    // a = 2.0 in Q8.8 raw = 512; w = 1.0 raw = 256.
    const std::int64_t act = quantize(2.0, fixed16);
    unit.issue(1, 0, act);
    unit.tick();
    EXPECT_EQ(unit.accumulators()[0], quantize(2.0, fixed16));

    // Padding entry (index 0): occupies a slot, changes nothing.
    unit.issue(0, 1, act);
    unit.tick();
    EXPECT_EQ(unit.accumulators()[1], 0);
    EXPECT_EQ(stats.value("padding_macs"), 1u);
    EXPECT_EQ(stats.value("macs"), 2u);

    // Accumulate w = -2.0 twice into row 0: 2 + (-4) + (-4) = -6.
    unit.issue(2, 0, act);
    unit.tick();
    unit.issue(2, 0, act);
    unit.tick();
    EXPECT_EQ(unit.accumulators()[0], quantize(-6.0, fixed16));

    unit.applyRelu();
    EXPECT_EQ(unit.accumulators()[0], 0);
}

TEST(ArithmeticUnit, IssueRawMatchesCodebookIssue)
{
    EieConfig config;
    sim::StatGroup stats("test");
    ArithmeticUnit indexed(config, stats);
    sim::StatGroup raw_stats("raw");
    ArithmeticUnit raw(config, raw_stats);

    const auto codebook = simpleCodebook();
    indexed.loadCodebook(codebook);
    indexed.configureBatch(3);
    raw.configureBatch(3);

    // The pre-decoded path must be architecturally identical to the
    // codebook-indexed path, padding accounting included.
    const std::int64_t act = quantize(1.5, fixed16);
    const auto &lut = codebook.rawValues();
    const std::uint8_t sequence[] = {1, 2, 0, 3, 2};
    for (std::size_t i = 0; i < std::size(sequence); ++i) {
        const std::uint8_t wi = sequence[i];
        const auto row = static_cast<std::uint32_t>(i % 3);
        indexed.issue(wi, row, act);
        indexed.tick();
        raw.issueRaw(lut[wi], row, act, wi == 0);
        raw.tick();
    }
    EXPECT_EQ(indexed.accumulators(), raw.accumulators());
    EXPECT_EQ(stats.value("macs"), raw_stats.value("macs"));
    EXPECT_EQ(stats.value("padding_macs"),
              raw_stats.value("padding_macs"));
    EXPECT_EQ(raw_stats.value("padding_macs"), 1u);
}

TEST(ArithmeticUnit, BypassDisabledCreatesHazards)
{
    EieConfig config;
    config.enable_bypass = false;
    sim::StatGroup stats("test");
    ArithmeticUnit unit(config, stats);
    const auto codebook = simpleCodebook();
    unit.loadCodebook(codebook);
    unit.configureBatch(2);

    unit.issue(1, 0, 256);
    // Same accumulator next cycle: blocked until the update retires.
    unit.tick();
    EXPECT_FALSE(unit.canIssue(0));
    EXPECT_TRUE(unit.canIssue(1));
    unit.tick();
    EXPECT_FALSE(unit.canIssue(0));
    unit.tick();
    EXPECT_TRUE(unit.canIssue(0));
    EXPECT_TRUE(unit.pipelineEmpty());
}

TEST(ArithmeticUnit, BypassEnabledNeverStalls)
{
    EieConfig config;
    sim::StatGroup stats("test");
    ArithmeticUnit unit(config, stats);
    const auto codebook = simpleCodebook();
    unit.loadCodebook(codebook);
    unit.configureBatch(1);

    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(unit.canIssue(0));
        unit.issue(1, 0, 256);
        unit.tick();
    }
    // 5 x (1.0 * 1.0) accumulated.
    EXPECT_EQ(unit.accumulators()[0], 5 * 256);
}

TEST(ArithmeticUnit, SaturationOnOverflow)
{
    EieConfig config;
    sim::StatGroup stats("test");
    ArithmeticUnit unit(config, stats);
    // Large positive weight * large activation, repeatedly.
    compress::Codebook codebook({0.0f, 100.0f});
    unit.loadCodebook(codebook);
    unit.configureBatch(1);
    const std::int64_t big_act = quantize(100.0, fixed16);
    for (int i = 0; i < 10; ++i) {
        unit.issue(1, 0, big_act);
        unit.tick();
    }
    EXPECT_EQ(unit.accumulators()[0], fixed16.maxRaw());
}

TEST(ActRwUnit, DrainPacksFourPerWrite)
{
    EieConfig config;
    sim::StatGroup stats("test");
    ActRwUnit unit(config, stats);

    unit.loadSourceShare(10); // 3 scan reads (ceil(10/4))
    EXPECT_EQ(stats.value("act_scan_reads"), 3u);
    unit.accountScanPass();
    EXPECT_EQ(stats.value("act_scan_reads"), 6u);

    std::vector<std::int64_t> values(9, 42);
    unit.startDrain(values);
    std::size_t cycles = 0;
    while (unit.draining()) {
        unit.drainCycle();
        unit.tick();
        ++cycles;
    }
    EXPECT_EQ(cycles, 3u); // ceil(9/4)
    EXPECT_EQ(unit.writes(), 3u);
    EXPECT_EQ(unit.drained(), values);
}

} // namespace
