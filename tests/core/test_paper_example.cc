/**
 * @file
 * Reproduces the paper's worked example: the 16x8 matrix of Figure 2
 * distributed over 4 PEs, and PE0's interleaved CSC image of Figure 3
 * (virtual weights, relative row indices and column pointers),
 * followed by the broadcast-order computation of §III-C.
 */

#include <gtest/gtest.h>

#include "compress/interleaved.hh"
#include "core/accelerator.hh"
#include "core/functional.hh"
#include "core/lnzd.hh"
#include "core/plan.hh"
#include "nn/sparse.hh"

namespace {

using namespace eie;

/**
 * The Figure 2 sparsity pattern. Two cells are typeset inconsistently
 * in the paper (row 3 lists "w0,5" and row 5's first entry sits in
 * column 3); we use the structurally consistent reading (3,5) and
 * (5,3).
 */
const std::vector<std::pair<int, int>> kFig2Pattern = {
    {0, 0}, {0, 2}, {0, 4}, {0, 5}, {0, 6},
    {1, 1}, {1, 3}, {1, 6},
    {2, 2}, {2, 4}, {2, 7},
    {3, 1}, {3, 5},
    {4, 1}, {4, 4},
    {5, 3}, {5, 7},
    {6, 4}, {6, 6},
    {7, 0}, {7, 4}, {7, 7},
    {8, 0}, {8, 7},
    {9, 0}, {9, 6}, {9, 7},
    {10, 4},
    {11, 2}, {11, 7},
    {12, 0}, {12, 2}, {12, 5}, {12, 7},
    {13, 0}, {13, 2}, {13, 6},
    {14, 2}, {14, 3}, {14, 4}, {14, 5},
    {15, 2}, {15, 3}, {15, 5},
};

/** Codebook with 15 distinct non-zero values; weights use entries
 *  1..15 exactly so the encoding round-trips losslessly. */
compress::Codebook
exampleCodebook()
{
    std::vector<float> table{0.0f};
    for (int i = 1; i <= 15; ++i)
        table.push_back(static_cast<float>(i) * 0.25f - 2.0f);
    return compress::Codebook(std::move(table));
}

nn::SparseMatrix
fig2Matrix(const compress::Codebook &codebook)
{
    nn::SparseMatrix w(16, 8);
    // Insert column-major (ascending rows within a column).
    for (std::size_t j = 0; j < 8; ++j) {
        int n = 0;
        for (const auto &[r, c] : kFig2Pattern) {
            if (static_cast<std::size_t>(c) != j)
                continue;
            // Cycle through codebook entries 1..15 deterministically.
            const auto idx = static_cast<std::uint8_t>(
                1 + (r + c + n) % 15);
            w.insert(static_cast<std::size_t>(r), j,
                     codebook.decode(idx));
            ++n;
        }
    }
    return w;
}

TEST(PaperExample, Figure3Pe0Layout)
{
    const auto codebook = exampleCodebook();
    const auto w = fig2Matrix(codebook);
    ASSERT_EQ(w.nnz(), kFig2Pattern.size());

    compress::InterleaveOptions opts;
    opts.n_pe = 4;
    compress::InterleavedCsc csc(w, codebook, opts);

    const auto &pe0 = csc.pe(0);
    // Figure 3: column pointers 0 3 4 6 6 8 10 11 13.
    const std::vector<std::uint32_t> expected_ptr =
        {0, 3, 4, 6, 6, 8, 10, 11, 13};
    EXPECT_EQ(pe0.colPtr(), expected_ptr);

    // Figure 3: relative row indices 0 1 0 1 0 2 0 0 0 2 0 2 0.
    const std::vector<std::uint8_t> expected_rel =
        {0, 1, 0, 1, 0, 2, 0, 0, 0, 2, 0, 2, 0};
    ASSERT_EQ(pe0.entries().size(), expected_rel.size());
    for (std::size_t i = 0; i < expected_rel.size(); ++i)
        EXPECT_EQ(pe0.entries()[i].zero_count, expected_rel[i])
            << "entry " << i;

    // No padding needed anywhere in this small example.
    EXPECT_EQ(csc.paddingEntries(), 0u);

    // Decoding recovers the matrix exactly.
    const auto decoded = csc.decode();
    EXPECT_EQ(decoded.nnz(), w.nnz());
    for (std::size_t j = 0; j < 8; ++j)
        EXPECT_EQ(decoded.column(j), w.column(j)) << "column " << j;
}

TEST(PaperExample, Section3CBroadcastOrder)
{
    // a = (0, 0, a2, 0, a4, a5, 0, a7): the first non-zero broadcast
    // is a2, and only columns 2, 4, 5, 7 are ever broadcast.
    core::LnzdTree tree(4, 4);
    std::vector<std::int64_t> acts{0, 0, 70, 0, 12, -5, 0, 9};
    const auto schedule = tree.scan(acts, 4);
    ASSERT_EQ(schedule.size(), 4u);
    EXPECT_EQ(schedule[0].first, 2u);
    EXPECT_EQ(schedule[0].second, 70);
    EXPECT_EQ(schedule[1].first, 4u);
    EXPECT_EQ(schedule[2].first, 5u);
    EXPECT_EQ(schedule[3].first, 7u);
}

TEST(PaperExample, EndToEndMatchesGolden)
{
    const auto codebook = exampleCodebook();
    const auto w = fig2Matrix(codebook);

    compress::CompressionOptions copts;
    copts.interleave.n_pe = 4;
    auto layer = compress::CompressedLayer::compress("fig2", w, copts);

    core::EieConfig config;
    config.n_pe = 4;
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);

    nn::Vector a{0.0f, 0.0f, 1.5f, 0.0f, -0.75f, 2.0f, 0.0f, 0.5f};

    // Float golden: ReLU(W_q a) with the quantised weights.
    const nn::Vector golden =
        nn::relu(layer.quantizedWeights().spmv(a));

    const core::Accelerator accel(config);
    core::RunStats stats;
    const nn::Vector out = accel.runFloat(plan, a, &stats);

    ASSERT_EQ(out.size(), golden.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out[i], golden[i], 0.05) << "output " << i;

    EXPECT_EQ(stats.broadcasts, 4u);
    EXPECT_GT(stats.cycles, 0u);
}

} // namespace
