/**
 * @file
 * PE micro-architecture timing tests: a single PE driven by a real
 * CCU through the Simulator, checking the cycle-level behaviours the
 * model promises — front-end latency, one-entry-per-cycle streaming,
 * head-of-queue retirement semantics, and drain timing.
 */

#include <gtest/gtest.h>

#include "compress/interleaved.hh"
#include "core/ccu.hh"
#include "core/pe.hh"
#include "sim/simulator.hh"

namespace {

using namespace eie;
using namespace eie::core;

/** One-PE fixture with a programmable single-column matrix. */
struct SinglePeHarness
{
    sim::Simulator simulator{"t"};
    EieConfig config;
    compress::Codebook codebook{{0.0f, 1.0f, -1.0f}};
    std::unique_ptr<Ccu> ccu;
    std::unique_ptr<Pe> pe;
    std::unique_ptr<compress::InterleavedCsc> storage;

    explicit SinglePeHarness(const nn::SparseMatrix &w,
                             unsigned fifo_depth = 8)
    {
        config.n_pe = 1;
        config.fifo_depth = fifo_depth;
        config.enforce_capacity = false;
        ccu = std::make_unique<Ccu>(config, simulator.stats());
        pe = std::make_unique<Pe>(0, config, *ccu, simulator.stats());
        simulator.add(ccu.get());
        simulator.add(pe.get());
        ccu->attachQueueFull([this] { return pe->queueFull(); });

        compress::InterleaveOptions opts;
        opts.n_pe = 1;
        storage = std::make_unique<compress::InterleavedCsc>(
            w, codebook, opts);
        pe->loadTile(storage->pe(0), codebook, true);
    }

    /** Cycles until the PE is idle after the schedule is issued. */
    std::uint64_t
    runToIdle(
        std::vector<std::pair<std::uint32_t, std::int64_t>> schedule)
    {
        ccu->configurePass(std::move(schedule), 0);
        const std::uint64_t start = simulator.cycle();
        const bool done = simulator.runUntil(
            [this] { return ccu->done() && pe->idle(); }, 10000);
        EXPECT_TRUE(done);
        return simulator.cycle() - start;
    }
};

nn::SparseMatrix
columnMatrix(std::size_t rows, std::size_t cols,
             const std::vector<std::vector<std::size_t>> &col_rows)
{
    nn::SparseMatrix w(rows, cols);
    for (std::size_t j = 0; j < col_rows.size(); ++j)
        for (std::size_t r : col_rows[j])
            w.insert(r, j, 1.0f);
    return w;
}

TEST(PeTiming, SingleColumnFrontEndLatency)
{
    // One column with 4 entries: broadcast (1) -> pointer read (1) ->
    // first row fetch (1) -> 4 issue cycles -> 3-stage retire.
    SinglePeHarness h(columnMatrix(8, 1, {{0, 1, 2, 3}}));
    const auto cycles = h.runToIdle({{0, 256}});
    // Lower bound: 4 issues + ~4 front-end/retire cycles.
    EXPECT_GE(cycles, 8u);
    EXPECT_LE(cycles, 14u);
    EXPECT_EQ(h.pe->macs(), 4u);
    EXPECT_EQ(h.pe->busyCycles(), 4u);
}

TEST(PeTiming, LongColumnStreamsOneEntryPerCycle)
{
    // 40 entries in one column: issue must be back-to-back after the
    // front end fills (row prefetch keeps up at 8 entries/row).
    std::vector<std::size_t> rows(40);
    for (std::size_t i = 0; i < 40; ++i)
        rows[i] = i;
    SinglePeHarness h(columnMatrix(40, 1, {rows}));
    const auto cycles = h.runToIdle({{0, 256}});
    EXPECT_EQ(h.pe->macs(), 40u);
    EXPECT_EQ(h.pe->fetchStalls(), 0u); // prefetch never starves it
    EXPECT_LE(cycles, 40u + 10u);
}

TEST(PeTiming, BackToBackColumnsOverlapFrontEnd)
{
    // Two 8-entry columns: the second column's pointer read overlaps
    // the first column's tail, so total is ~16 + front end, not
    // 2 x (8 + front end).
    std::vector<std::size_t> rows(8);
    for (std::size_t i = 0; i < 8; ++i)
        rows[i] = i;
    SinglePeHarness h(columnMatrix(8, 2, {rows, rows}));
    const auto cycles = h.runToIdle({{0, 256}, {1, 256}});
    EXPECT_EQ(h.pe->macs(), 16u);
    EXPECT_LE(cycles, 16u + 10u);
}

TEST(PeTiming, DepthOneQueueSerialisesColumns)
{
    // Short columns make the front end the bottleneck: with FIFO
    // depth 1 the head entry is retired only at column switch, so
    // the broadcaster stalls between columns and the run takes
    // strictly longer than with depth 8 (where queued columns keep
    // the pipeline fed).
    const std::vector<std::size_t> two{0, 1};
    const auto w =
        columnMatrix(8, 6, {two, two, two, two, two, two});
    const std::vector<std::pair<std::uint32_t, std::int64_t>>
        schedule{{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}};

    SinglePeHarness deep(w, /*fifo_depth=*/8);
    const auto deep_cycles = deep.runToIdle(schedule);

    SinglePeHarness shallow(w, /*fifo_depth=*/1);
    const auto shallow_cycles = shallow.runToIdle(schedule);

    EXPECT_GT(shallow_cycles, deep_cycles);
    EXPECT_GT(shallow.simulator.stats().value("gated_cycles"), 0u);
    EXPECT_EQ(deep.pe->macs(), shallow.pe->macs());
}

TEST(PeTiming, EmptyColumnsConsumeQuickly)
{
    // Columns where this PE holds nothing retire at ~1/cycle without
    // touching the arithmetic unit.
    SinglePeHarness h(columnMatrix(8, 6, {{0}, {}, {}, {}, {}, {1}}));
    const auto cycles = h.runToIdle(
        {{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}});
    EXPECT_EQ(h.pe->macs(), 2u);
    EXPECT_LE(cycles, 20u);
}

TEST(PeTiming, DrainWritesAccumulators)
{
    SinglePeHarness h(columnMatrix(9, 1, {{0, 4, 8}}));
    h.runToIdle({{0, 256}});

    h.pe->applyRelu();
    h.pe->startBatchDrain();
    const bool drained = h.simulator.runUntil(
        [&] { return !h.pe->draining(); }, 100);
    EXPECT_TRUE(drained);
    // 9 local rows at 4 activations per 64-bit write -> 3 writes.
    EXPECT_EQ(h.pe->actWrites(), 3u);
    const auto &values = h.pe->drainedValues();
    ASSERT_EQ(values.size(), 9u);
    // Rows 0, 4, 8 accumulated 1.0 * a; a = 256 raw (1.0) -> 256.
    EXPECT_EQ(values[0], 256);
    EXPECT_EQ(values[4], 256);
    EXPECT_EQ(values[8], 256);
    EXPECT_EQ(values[1], 0);
}

} // namespace
