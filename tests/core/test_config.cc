/**
 * @file
 * EieConfig derived-value checks against the paper's published
 * design point.
 */

#include <gtest/gtest.h>

#include "core/config.hh"

namespace {

using eie::core::EieConfig;

TEST(EieConfig, PaperDesignPoint)
{
    EieConfig config; // defaults = the paper's 64-PE machine
    config.validate();

    // 64 PEs at 800 MHz, one MAC (2 ops) per PE per cycle:
    // 102.4 GOP/s (§VI: "102 GOP/s").
    EXPECT_NEAR(config.peakGops(), 102.4, 1e-9);

    // 64-bit Spmat rows carry 8 entries (§IV).
    EXPECT_EQ(config.entriesPerSpmatRow(), 8u);

    // 21 LNZD nodes for 64 PEs: 16 + 4 + 1 (§VI).
    EXPECT_EQ(config.lnzdNodeCount(), 21u);

    // Quadtree depth 3 plus one pipeline stage.
    EXPECT_EQ(config.lnzdLatency(), 4u);
}

TEST(EieConfig, LnzdNodeCountsScale)
{
    EieConfig config;
    config.n_pe = 256;
    EXPECT_EQ(config.lnzdNodeCount(), 64u + 16u + 4u + 1u);
    config.n_pe = 4;
    EXPECT_EQ(config.lnzdNodeCount(), 1u);
    config.n_pe = 1;
    EXPECT_EQ(config.lnzdNodeCount(), 0u);
    EXPECT_EQ(config.lnzdLatency(), 1u);
}

TEST(EieConfig, WidthSweepEntriesPerRow)
{
    EieConfig config;
    for (unsigned width : {32u, 64u, 128u, 256u, 512u}) {
        config.spmat_width_bits = width;
        config.validate();
        EXPECT_EQ(config.entriesPerSpmatRow(), width / 8);
    }
}

TEST(EieConfigDeath, RejectsBadParameters)
{
    EieConfig config;
    config.n_pe = 0;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "at least one PE");

    config = EieConfig{};
    config.spmat_width_bits = 20;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "multiple of 8");
}

} // namespace
