/**
 * @file
 * Kernel-variant tests: the variant registry (auto / reference /
 * vector / fused) must resolve as documented, every variant must be
 * bit-exact with the scalar oracle exactly at the saturation
 * boundary of the accumulator format, and ragged / all-zero
 * activation batches (the panel skip paths and the SIMD tail lanes)
 * must flow through every variant — including the threads>1
 * WorkerPool route — without divergence.
 *
 * The column-partitioned serving caveat that motivates the
 * saturation suite (splitting a saturating layer across shards
 * reorders the saturating adds and may change outputs; PR 3 ships
 * partitioned placement with exactly that caveat) is asserted in
 * tests/serve/test_cluster.cc.
 */

#include <gtest/gtest.h>

#include "core/functional.hh"
#include "core/kernel/compiled_layer.hh"
#include "core/kernel/executor.hh"
#include "core/kernel/variant.hh"
#include "core/kernel/worker_pool.hh"
#include "core/plan.hh"
#include "helpers.hh"

namespace {

using namespace eie;

using core::kernel::KernelVariant;

const std::vector<KernelVariant> kAllVariants{
    KernelVariant::Auto, KernelVariant::Reference,
    KernelVariant::Vector, KernelVariant::Fused,
    KernelVariant::ActSparse};

const std::vector<KernelVariant> kExplicitVariants{
    KernelVariant::Reference, KernelVariant::Vector,
    KernelVariant::Fused, KernelVariant::ActSparse};

/**
 * A dense layer whose partial sums slam into both accumulator rails:
 * every row holds @p cols/2 weights of +magnitude followed by cols/2
 * of -magnitude, so a frame of ones drives each accumulator up into
 * +saturation and then down through -saturation while the
 * unsaturated sum would be exactly zero.
 */
compress::CompressedLayer
saturatingLayer(std::size_t rows, std::size_t cols, unsigned n_pe,
                float magnitude)
{
    nn::SparseMatrix weights(rows, cols);
    for (std::size_t j = 0; j < cols; ++j)
        for (std::size_t i = 0; i < rows; ++i)
            weights.insert(i, j, j < cols / 2 ? magnitude : -magnitude);
    compress::CompressionOptions opts;
    opts.interleave.n_pe = n_pe;
    return compress::CompressedLayer::compress("saturating", weights,
                                               opts);
}

TEST(KernelVariants, RegistryNamesRoundTrip)
{
    ASSERT_EQ(core::kernel::kernelVariantNames().size(), 6u);
    for (const std::string &name : core::kernel::kernelVariantNames())
        EXPECT_STREQ(core::kernel::kernelVariantName(
                         core::kernel::kernelVariantFromName(name)),
                     name.c_str());
}

TEST(KernelVariants, VectorEligibilityPredicate)
{
    // The paper's default Q16.8 x Q16.8 datapath fits 32-bit lanes.
    EXPECT_TRUE(core::kernel::vectorEligible(fixed16, fixed16));

    // A negative shift-and-add alignment (left shift) is out.
    EXPECT_FALSE(core::kernel::vectorEligible(FixedFormat{16, 6},
                                              FixedFormat{16, 13}));

    // A 32-bit weight operand overflows the product lane.
    EXPECT_FALSE(core::kernel::vectorEligible(FixedFormat{32, 8},
                                              FixedFormat{16, 8}));
}

TEST(KernelVariants, ResolutionFollowsTheDocumentedRules)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(64, 48, 0.3, 4, 11);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const auto compiled =
        core::kernel::CompiledLayer::compile(plan, config);
    ASSERT_TRUE(compiled.has_fused_stream);
    ASSERT_TRUE(core::kernel::vectorEligible(compiled));

    using core::kernel::resolveKernelVariant;
    // Auto: wide batch fills SIMD lanes; serial small batch takes the
    // fused stream; pooled small batch the per-slice reference loop.
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled, 64, 1),
              KernelVariant::Vector);
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled, 1, 1),
              KernelVariant::Fused);
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled, 1, 4),
              KernelVariant::Reference);
    // Fusion is the 1-thread form: a pooled request demotes.
    EXPECT_EQ(
        resolveKernelVariant(KernelVariant::Fused, compiled, 8, 4),
        KernelVariant::Reference);
    EXPECT_EQ(
        resolveKernelVariant(KernelVariant::Fused, compiled, 8, 1),
        KernelVariant::Fused);
    // Explicit requests stick where legal.
    EXPECT_EQ(
        resolveKernelVariant(KernelVariant::Vector, compiled, 1, 4),
        KernelVariant::Vector);
    EXPECT_EQ(
        resolveKernelVariant(KernelVariant::Reference, compiled, 64, 1),
        KernelVariant::Reference);

    // Without the fused stream every fused request demotes and Auto
    // never selects it.
    core::kernel::CompileOptions no_fused;
    no_fused.fused_stream = false;
    const auto lean =
        core::kernel::CompiledLayer::compile(plan, config, no_fused);
    ASSERT_FALSE(lean.has_fused_stream);
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Fused, lean, 1, 1),
              KernelVariant::Reference);
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, lean, 1, 1),
              KernelVariant::Reference);

    // An explicit actsparse request never demotes: it needs neither
    // SIMD eligibility, a fused stream, nor a single thread.
    EXPECT_EQ(resolveKernelVariant(KernelVariant::ActSparse, compiled,
                                   64, 4),
              KernelVariant::ActSparse);
    EXPECT_EQ(
        resolveKernelVariant(KernelVariant::ActSparse, lean, 1, 1),
        KernelVariant::ActSparse);
}

TEST(KernelVariants, AutoResolutionIsDensityAware)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(64, 48, 0.3, 4, 11);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const auto compiled =
        core::kernel::CompiledLayer::compile(plan, config);
    ASSERT_TRUE(compiled.has_fused_stream);
    ASSERT_TRUE(core::kernel::vectorEligible(compiled));

    using core::kernel::kActSparseAutoMaxDensity;
    using core::kernel::kVectorAutoBatch;
    using core::kernel::resolveKernelVariant;

    // Small batch + sparse activations: the nonzero-queue walk wins.
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled, 1, 1,
                                   0.35),
              KernelVariant::ActSparse);
    // The crossover is inclusive at the documented threshold...
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled, 1, 1,
                                   kActSparseAutoMaxDensity),
              KernelVariant::ActSparse);
    // ...and dense activations above it keep the fused sweep.
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled, 1, 1,
                                   0.75),
              KernelVariant::Fused);
    // Batch wins over density: SIMD lanes fill at kVectorAutoBatch
    // regardless of how sparse the activations are.
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled,
                                   kVectorAutoBatch, 1, 0.05),
              KernelVariant::Vector);
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled,
                                   kVectorAutoBatch - 1, 1, 0.05),
              KernelVariant::ActSparse);
    // The sparse walk is pool-safe (PE rows are disjoint), so a
    // pooled low-density call still takes it where a fused request
    // would have demoted to reference.
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled, 2, 4,
                                   0.2),
              KernelVariant::ActSparse);
    // Unknown density (no probe) preserves the density-blind rules.
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled, 1, 1,
                                   -1.0),
              KernelVariant::Fused);
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, compiled, 1, 4,
                                   -1.0),
              KernelVariant::Reference);
}

TEST(KernelVariants, FusedStreamMergesEverySliceRowSorted)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(96, 40, 0.25, 4, 21);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const auto compiled =
        core::kernel::CompiledLayer::compile(plan, config);

    for (const auto &batch_tiles : compiled.tiles) {
        for (const auto &tile : batch_tiles) {
            std::size_t slice_entries = 0;
            for (const auto &slice : tile.slices)
                slice_entries += slice.stream.entryCount();
            ASSERT_EQ(tile.fused.entryCount(), slice_entries);
            ASSERT_EQ(tile.fused.col_ptr.size(),
                      tile.slices.front().stream.col_ptr.size());
            // Rows ascend within each column of the merged stream and
            // are unique (distinct accumulators: the fusion cannot
            // reorder any accumulator's MAC sequence).
            const auto &col_ptr = tile.fused.col_ptr;
            for (std::size_t j = 0; j + 1 < col_ptr.size(); ++j)
                for (std::uint32_t e = col_ptr[j];
                     e + 1 < col_ptr[j + 1]; ++e)
                    ASSERT_LT(tile.fused.rows[e],
                              tile.fused.rows[e + 1]);
        }
    }
}

TEST(KernelVariants, SaturationBoundaryBitExactAcrossVariants)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = saturatingLayer(8, 16, 4, 100.0f);
    // None (not ReLU) so the -saturated outputs stay observable.
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::None, config);
    const core::FunctionalModel model(config);

    core::kernel::Batch frames;
    frames.push_back(model.quantizeInput(nn::Vector(16, 1.0f)));
    frames.push_back(model.quantizeInput(nn::Vector(16, 0.5f)));
    frames.push_back(model.quantizeInput(
        test::randomActivations(16, 1.0, 31)));

    core::kernel::Batch reference;
    for (const auto &frame : frames)
        reference.push_back(model.run(plan, frame).output_raw);

    // The ones-frame proves the partials saturated: its unsaturated
    // sum is exactly zero per row, but the saturating MAC walk pins
    // every accumulator to the negative rail.
    for (const std::int64_t out : reference[0]) {
        ASSERT_NE(out, 0);
        ASSERT_EQ(out, config.act_format.minRaw());
    }

    for (unsigned threads : {1u, 4u}) {
        for (const KernelVariant kernel : kAllVariants) {
            const auto outputs =
                model.runBatch(plan, frames, threads, kernel);
            for (std::size_t b = 0; b < frames.size(); ++b)
                EXPECT_EQ(outputs[b], reference[b])
                    << core::kernel::kernelVariantName(kernel) << ", "
                    << threads << " threads, frame " << b;
        }
    }
}

TEST(KernelVariants, IneligibleFormatsFallBackBitExact)
{
    // A negative shift-and-add alignment keeps "vector" out; Auto
    // must route around it and stay bit-exact.
    core::EieConfig config;
    config.n_pe = 4;
    config.weight_format = FixedFormat{16, 6};
    config.act_format = FixedFormat{16, 13};
    const auto layer = test::randomCompressedLayer(64, 48, 0.3, 4, 41);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const auto compiled =
        core::kernel::CompiledLayer::compile(plan, config);
    ASSERT_FALSE(core::kernel::vectorEligible(compiled));
    EXPECT_EQ(core::kernel::resolveKernelVariant(KernelVariant::Auto,
                                                 compiled, 64, 1),
              KernelVariant::Fused);

    const core::FunctionalModel model(config);
    core::kernel::Batch frames;
    for (std::size_t b = 0; b < 9; ++b)
        frames.push_back(model.quantizeInput(
            test::randomActivations(48, 0.5, 42 + b)));

    core::kernel::Batch reference;
    for (const auto &frame : frames)
        reference.push_back(model.run(plan, frame).output_raw);

    for (const KernelVariant kernel :
         {KernelVariant::Auto, KernelVariant::Reference,
          KernelVariant::Fused}) {
        const auto outputs =
            core::kernel::runBatch(compiled, frames, nullptr, kernel);
        for (std::size_t b = 0; b < frames.size(); ++b)
            EXPECT_EQ(outputs[b], reference[b])
                << core::kernel::kernelVariantName(kernel);
    }
}

TEST(KernelVariants, OutOfFormatActivationsFallBackToReference)
{
    // The wire protocol carries raw int64 activations verbatim, so a
    // remote client can submit values outside act_format. The vector
    // variant's 32-bit lanes cannot represent them; runBatch must
    // demote to the reference loop (same defined int64 semantics as
    // the scalar oracle), not crash or wrap.
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(64, 48, 0.3, 4, 71);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const auto compiled =
        core::kernel::CompiledLayer::compile(plan, config);
    const core::FunctionalModel model(config);

    core::kernel::Batch frames;
    for (std::size_t b = 0; b < 9; ++b)
        frames.push_back(model.quantizeInput(
            test::randomActivations(48, 0.5, 72 + b)));
    frames[4][7] = std::int64_t{1} << 40;  // far outside Q16.8
    frames[8][0] = -(std::int64_t{1} << 33);

    core::kernel::Batch reference;
    for (const auto &frame : frames)
        reference.push_back(model.run(plan, frame).output_raw);

    for (const KernelVariant kernel : kAllVariants) {
        const auto outputs =
            core::kernel::runBatch(compiled, frames, nullptr, kernel);
        for (std::size_t b = 0; b < frames.size(); ++b)
            EXPECT_EQ(outputs[b], reference[b])
                << core::kernel::kernelVariantName(kernel)
                << ", frame " << b;
    }
}

TEST(KernelVariants, RaggedAndAllZeroBatchesAcrossVariants)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(96, 64, 0.2, 4, 51);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const auto compiled =
        core::kernel::CompiledLayer::compile(plan, config);
    const core::FunctionalModel model(config);
    core::kernel::WorkerPool pool(3);

    const std::vector<std::int64_t> zero_frame(64, 0);

    // Ragged batch sizes exercise the SIMD tail lanes (1, 3, 5, 9 are
    // all off the 4/8-lane grid); interleaved all-zero frames and the
    // all-zero batch exercise the activation-panel skip path.
    std::vector<core::kernel::Batch> batches;
    for (const std::size_t batch : {1u, 3u, 5u, 9u}) {
        core::kernel::Batch frames;
        for (std::size_t b = 0; b < batch; ++b)
            frames.push_back(model.quantizeInput(
                test::randomActivations(64, 0.4, 60 + 13 * b)));
        batches.push_back(std::move(frames));
    }
    {
        core::kernel::Batch mixed;
        for (std::size_t b = 0; b < 6; ++b)
            mixed.push_back(b % 2 == 0 ? zero_frame
                                       : model.quantizeInput(
                                             test::randomActivations(
                                                 64, 0.4, 80 + b)));
        batches.push_back(std::move(mixed));
    }
    batches.push_back(core::kernel::Batch(5, zero_frame));
    batches.push_back(core::kernel::Batch{}); // empty batch

    for (const auto &frames : batches) {
        core::kernel::Batch reference;
        for (const auto &frame : frames)
            reference.push_back(model.run(plan, frame).output_raw);

        for (core::kernel::WorkerPool *p :
             {static_cast<core::kernel::WorkerPool *>(nullptr),
              &pool}) {
            for (const KernelVariant kernel : kAllVariants) {
                const auto outputs =
                    core::kernel::runBatch(compiled, frames, p, kernel);
                ASSERT_EQ(outputs.size(), frames.size());
                for (std::size_t b = 0; b < frames.size(); ++b)
                    EXPECT_EQ(outputs[b], reference[b])
                        << core::kernel::kernelVariantName(kernel)
                        << ", batch " << frames.size() << ", "
                        << (p ? "pooled" : "serial") << ", frame "
                        << b;
            }
        }
    }

    // Explicit variants on the all-zero batch: outputs are exactly
    // the zero vector after ReLU.
    const core::kernel::Batch zeros(3, zero_frame);
    for (const KernelVariant kernel : kExplicitVariants) {
        const auto outputs =
            core::kernel::runBatch(compiled, zeros, nullptr, kernel);
        for (const auto &out : outputs)
            EXPECT_EQ(out, std::vector<std::int64_t>(96, 0))
                << core::kernel::kernelVariantName(kernel);
    }
}

TEST(KernelVariants, ActSparseBitExactAcrossDensitySweep)
{
    // The actsparse queue walk must reproduce the reference
    // saturating-MAC sequence exactly at every activation density:
    // empty queues (0%), a single nonzero, the paper's 35%, fully
    // dense (100%, where the queue degenerates to the dense walk),
    // all-zero frames mixed into live batches, ragged batch sizes,
    // and the pooled per-slice route.
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(96, 64, 0.2, 4, 91);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const auto compiled =
        core::kernel::CompiledLayer::compile(plan, config);
    const core::FunctionalModel model(config);
    core::kernel::WorkerPool pool(3);

    std::vector<core::kernel::Batch> batches;
    for (const double density : {0.0, 0.35, 1.0}) {
        for (const std::size_t batch : {1u, 3u, 5u, 9u}) {
            core::kernel::Batch frames;
            for (std::size_t b = 0; b < batch; ++b)
                frames.push_back(
                    model.quantizeInput(test::randomActivations(
                        64, density, 900 + 13 * b)));
            batches.push_back(std::move(frames));
        }
    }
    {
        // Exactly one nonzero activation: the smallest live queue.
        std::vector<std::int64_t> one_hot(64, 0);
        one_hot[17] = model.quantizeInput(nn::Vector(1, 0.75f))[0];
        batches.push_back(core::kernel::Batch{std::move(one_hot)});
    }
    {
        // All-zero frames interleaved with dense ones: per-frame
        // queues of wildly different lengths in one batch.
        core::kernel::Batch mixed;
        for (std::size_t b = 0; b < 6; ++b)
            mixed.push_back(
                b % 2 == 0
                    ? std::vector<std::int64_t>(64, 0)
                    : model.quantizeInput(
                          test::randomActivations(64, 1.0, 950 + b)));
        batches.push_back(std::move(mixed));
    }

    for (const auto &frames : batches) {
        core::kernel::Batch reference;
        for (const auto &frame : frames)
            reference.push_back(model.run(plan, frame).output_raw);

        for (core::kernel::WorkerPool *p :
             {static_cast<core::kernel::WorkerPool *>(nullptr),
              &pool}) {
            const auto outputs = core::kernel::runBatch(
                compiled, frames, p, KernelVariant::ActSparse);
            ASSERT_EQ(outputs.size(), frames.size());
            for (std::size_t b = 0; b < frames.size(); ++b)
                EXPECT_EQ(outputs[b], reference[b])
                    << "batch " << frames.size() << ", "
                    << (p ? "pooled" : "serial") << ", frame " << b;
        }
    }
}

TEST(KernelVariants, CompressedResolutionFollowsResidency)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(64, 48, 0.3, 4, 11);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);

    using core::kernel::resolveKernelVariant;

    // Decoded residency + a compressed side stream: only an explicit
    // compressed request decodes on the fly; everything else keeps
    // its documented resolution.
    core::kernel::CompileOptions both;
    both.compressed_stream = true;
    const auto dual =
        core::kernel::CompiledLayer::compile(plan, config, both);
    ASSERT_TRUE(dual.has_host_stream);
    ASSERT_TRUE(dual.has_compressed_stream);
    EXPECT_EQ(dual.residency, core::kernel::Residency::Decoded);
    EXPECT_EQ(
        resolveKernelVariant(KernelVariant::Compressed, dual, 64, 1),
        KernelVariant::Compressed);
    EXPECT_EQ(resolveKernelVariant(KernelVariant::Auto, dual, 64, 1),
              KernelVariant::Vector);

    // Compressed residency: the compressed stream is the only
    // resident form, so every request — Auto and every explicit
    // variant alike — resolves to the decode-on-the-fly executor.
    core::kernel::CompileOptions resident;
    resident.residency = core::kernel::Residency::Compressed;
    const auto compact =
        core::kernel::CompiledLayer::compile(plan, config, resident);
    ASSERT_FALSE(compact.has_host_stream);
    ASSERT_TRUE(compact.has_compressed_stream);
    EXPECT_EQ(compact.residency, core::kernel::Residency::Compressed);
    EXPECT_LT(compact.compressed_stream_bytes,
              dual.decoded_stream_bytes);
    for (const KernelVariant kernel :
         {KernelVariant::Auto, KernelVariant::Reference,
          KernelVariant::Vector, KernelVariant::Fused,
          KernelVariant::ActSparse, KernelVariant::Compressed})
        EXPECT_EQ(resolveKernelVariant(kernel, compact, 64, 4),
                  KernelVariant::Compressed)
            << core::kernel::kernelVariantName(kernel);

    // Auto residency resolves by decoded footprint: a layer this
    // small stays decoded.
    core::kernel::CompileOptions adaptive;
    adaptive.residency = core::kernel::Residency::Auto;
    const auto resolved =
        core::kernel::CompiledLayer::compile(plan, config, adaptive);
    EXPECT_EQ(resolved.residency, core::kernel::Residency::Decoded);
    EXPECT_TRUE(resolved.has_host_stream);
}

TEST(KernelVariants, CompressedBitExactAcrossDensitySweep)
{
    // The decode-on-the-fly executor must reproduce the reference
    // saturating-MAC sequence exactly from the compressed stream:
    // every activation density (empty queues at 0%, the paper's 9%
    // weight / 35% activation regime, fully dense), ragged batch
    // sizes off the SIMD lane grid, serial and pooled routes, and
    // both residency modes (compressed-only resident and the
    // decoded+compressed dual form).
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(96, 64, 0.2, 4, 91);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const core::FunctionalModel model(config);
    core::kernel::WorkerPool pool(3);

    core::kernel::CompileOptions resident;
    resident.residency = core::kernel::Residency::Compressed;
    core::kernel::CompileOptions dual;
    dual.compressed_stream = true;
    const std::vector<core::kernel::CompiledLayer> forms{
        core::kernel::CompiledLayer::compile(plan, config, resident),
        core::kernel::CompiledLayer::compile(plan, config, dual)};

    std::vector<core::kernel::Batch> batches;
    for (const double density : {0.0, 0.09, 0.35, 1.0}) {
        for (const std::size_t batch : {1u, 3u, 5u, 9u}) {
            core::kernel::Batch frames;
            for (std::size_t b = 0; b < batch; ++b)
                frames.push_back(
                    model.quantizeInput(test::randomActivations(
                        64, density, 700 + 13 * b)));
            batches.push_back(std::move(frames));
        }
    }
    batches.push_back(core::kernel::Batch{}); // empty batch

    for (const auto &frames : batches) {
        core::kernel::Batch reference;
        for (const auto &frame : frames)
            reference.push_back(model.run(plan, frame).output_raw);

        for (const auto &compiled : forms) {
            for (core::kernel::WorkerPool *p :
                 {static_cast<core::kernel::WorkerPool *>(nullptr),
                  &pool}) {
                core::kernel::DispatchInfo info;
                const auto outputs = core::kernel::runBatch(
                    compiled, frames, p, KernelVariant::Compressed,
                    &info);
                ASSERT_EQ(outputs.size(), frames.size());
                // An empty batch never dispatches, so info keeps its
                // defaults.
                if (!frames.empty()) {
                    EXPECT_EQ(info.variant,
                              KernelVariant::Compressed);
                    EXPECT_GE(info.decode_us, 0.0);
                }
                for (std::size_t b = 0; b < frames.size(); ++b)
                    EXPECT_EQ(outputs[b], reference[b])
                        << core::kernel::residencyName(
                               compiled.residency)
                        << " residency, batch " << frames.size()
                        << ", " << (p ? "pooled" : "serial")
                        << ", frame " << b;
            }
        }
    }
}

TEST(KernelVariants, DispatchInfoReportsDensityAndVariant)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(64, 48, 0.3, 4, 61);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const auto compiled =
        core::kernel::CompiledLayer::compile(plan, config);
    const core::FunctionalModel model(config);

    // A quarter-dense single frame: the probe must measure low
    // density and Auto must dispatch the actsparse walk.
    core::kernel::Batch sparse_frames;
    sparse_frames.push_back(model.quantizeInput(
        test::randomActivations(48, 0.25, 1001)));
    core::kernel::DispatchInfo info;
    core::kernel::runBatch(compiled, sparse_frames, nullptr,
                           KernelVariant::Auto, &info);
    EXPECT_EQ(info.variant, KernelVariant::ActSparse);
    ASSERT_GE(info.act_density, 0.0);
    EXPECT_LE(info.act_density,
              core::kernel::kActSparseAutoMaxDensity);

    // A fully dense frame probes high and keeps the fused sweep.
    core::kernel::Batch dense_frames;
    dense_frames.push_back(
        model.quantizeInput(test::randomActivations(48, 1.0, 1002)));
    core::kernel::runBatch(compiled, dense_frames, nullptr,
                           KernelVariant::Auto, &info);
    EXPECT_EQ(info.variant, KernelVariant::Fused);
    EXPECT_GT(info.act_density,
              core::kernel::kActSparseAutoMaxDensity);

    // An empty batch reports an unknown density.
    core::kernel::runBatch(compiled, {}, nullptr, KernelVariant::Auto,
                           &info);
    EXPECT_LT(info.act_density, 0.0);
}

} // namespace
