/**
 * @file
 * TCP loopback end-to-end tests: the full serving stack — EIEM model
 * file on disk, ModelRegistry load, ServingDirectory + ClusterEngine,
 * wire frames over a real socket — verified bit-exact against
 * FunctionalModel on the same vectors, plus pipelining, error
 * responses, stats/info frames and deadline propagation over the
 * wire.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "compress/model_file.hh"
#include "core/functional.hh"
#include "helpers.hh"
#include "serve/cluster.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"

namespace {

using namespace eie;
namespace fs = std::filesystem;

/** Registry + directory + listening server on an ephemeral port. */
struct TcpFixture
{
    fs::path dir;
    core::EieConfig config;
    compress::CompressedLayer layer;
    serve::ModelRegistry registry;
    serve::ServingDirectory directory;
    serve::TcpServer server;
    core::FunctionalModel functional;
    core::LayerPlan oracle_plan;

    explicit TcpFixture(
        serve::Placement placement = serve::Placement::Replicated,
        unsigned shards = 2)
        : dir(scratchDir()), config(makeConfig()),
          layer(test::randomCompressedLayer(96, 64, 0.25, 4, 1101)),
          registry(dir.string(), config),
          directory(registry, makeClusterOptions(placement, shards)),
          server(directory), functional(config),
          oracle_plan(core::planLayer(layer, nn::Nonlinearity::ReLU,
                                      config))
    {
        // The satellite round trip: the model reaches the serving
        // stack only through its on-disk EIEM file.
        registry.publish("fc", 1, layer.storage());
        server.start();
    }

    ~TcpFixture()
    {
        server.stop();
        directory.stopAll();
        fs::remove_all(dir);
    }

    static fs::path
    scratchDir()
    {
        static int counter = 0;
        return fs::temp_directory_path() /
            ("eie_tcp_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    }

    static core::EieConfig
    makeConfig()
    {
        core::EieConfig config;
        config.n_pe = 4;
        return config;
    }

    static serve::ClusterOptions
    makeClusterOptions(serve::Placement placement, unsigned shards)
    {
        serve::ClusterOptions options;
        options.shards = shards;
        options.placement = placement;
        options.server.max_batch = 8;
        options.server.max_delay = std::chrono::microseconds(200);
        return options;
    }

    std::vector<std::int64_t>
    randomInput(std::uint64_t seed) const
    {
        return functional.quantizeInput(
            test::randomActivations(64, 0.6, seed));
    }

    /** The FunctionalModel oracle on the original (pre-file) plan. */
    std::vector<std::int64_t>
    oracle(const std::vector<std::int64_t> &input) const
    {
        return functional.run(oracle_plan, input).output_raw;
    }
};

TEST(TcpServing, ModelFileRoundTripServesBitExactOverTheWire)
{
    TcpFixture fx;
    serve::TcpClient client("127.0.0.1", fx.server.port());

    const serve::wire::InfoResponse info = client.info("fc");
    ASSERT_TRUE(info.ok) << info.error;
    EXPECT_EQ(info.input_size, 64u);
    EXPECT_EQ(info.output_size, 96u);
    EXPECT_EQ(info.shards, 2u);
    EXPECT_EQ(info.placement, "replicated");

    for (int i = 0; i < 16; ++i) {
        const auto input = fx.randomInput(1200 + i);
        EXPECT_EQ(client.infer("fc", input), fx.oracle(input))
            << "request " << i;
    }

    // A version written straight through compress::saveModelFile
    // (no publish() involved — e.g. rsync'd in by an operator) must
    // be served just the same.
    compress::saveModelFile((fx.dir / "fc" / "v2.eiem").string(),
                            fx.layer.storage());
    const auto input = fx.randomInput(1299);
    EXPECT_EQ(client.infer("fc", input, /*version=*/2),
              fx.oracle(input));
    const serve::wire::InfoResponse v2 = client.info("fc", 0);
    EXPECT_TRUE(v2.ok);
    EXPECT_EQ(v2.version, 2u); // version 0 now resolves to v2
}

TEST(TcpServing, PartitionedClusterServesBitExactOverTheWire)
{
    TcpFixture fx(serve::Placement::ColumnPartitioned, 4);
    serve::TcpClient client("127.0.0.1", fx.server.port());
    for (int i = 0; i < 12; ++i) {
        const auto input = fx.randomInput(1300 + i);
        EXPECT_EQ(client.infer("fc", input), fx.oracle(input))
            << "request " << i;
    }
}

TEST(TcpServing, PipelinedBurstCorrelatesResponsesById)
{
    TcpFixture fx;
    serve::TcpClient client("127.0.0.1", fx.server.port());

    // Every request in flight at once; the async client correlates
    // each response to its future by id, whatever the arrival order.
    constexpr int kRequests = 256;
    std::vector<std::vector<std::int64_t>> inputs;
    std::vector<std::future<serve::wire::InferResponse>> futures;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(fx.randomInput(1400 + i));
        futures.push_back(client.submitInfer("fc", 0, inputs.back()));
    }
    for (int i = 0; i < kRequests; ++i) {
        const serve::wire::InferResponse response = futures[i].get();
        ASSERT_TRUE(response.ok) << response.error;
        EXPECT_EQ(response.output, fx.oracle(inputs[i]))
            << "request " << i;
    }

    const std::string stats = client.stats();
    EXPECT_NE(stats.find("\"requests\":256"), std::string::npos)
        << stats;
}

TEST(TcpServing, ConcurrentConnectionsShareTheCluster)
{
    TcpFixture fx;
    constexpr int kClients = 3;
    constexpr int kPerClient = 32;
    std::vector<std::thread> threads;
    std::vector<std::string> failures(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            try {
                serve::TcpClient client("127.0.0.1",
                                        fx.server.port());
                for (int i = 0; i < kPerClient; ++i) {
                    const auto input =
                        fx.randomInput(1500 + 41 * c + 100 * i);
                    if (client.infer("fc", input) !=
                        fx.oracle(input)) {
                        failures[c] = "diverged at request " +
                            std::to_string(i);
                        return;
                    }
                }
            } catch (const std::exception &error) {
                failures[c] = error.what();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_TRUE(failures[c].empty())
            << "client " << c << ": " << failures[c];
    EXPECT_EQ(fx.server.connectionsAccepted(), 3u);
}

TEST(TcpServing, UnknownModelAndWrongSizeYieldErrorResponses)
{
    TcpFixture fx;
    serve::TcpClient client("127.0.0.1", fx.server.port());

    const serve::wire::InfoResponse info = client.info("missing");
    EXPECT_FALSE(info.ok);
    EXPECT_NE(info.error.find("not found"), std::string::npos);

    EXPECT_THROW(client.infer("missing", fx.randomInput(1600)),
                 std::runtime_error);

    // Wrong input length: an error response, not a dead daemon.
    EXPECT_THROW(client.infer("fc", std::vector<std::int64_t>(3, 1)),
                 std::runtime_error);

    // And the connection is still healthy afterwards.
    const auto input = fx.randomInput(1601);
    EXPECT_EQ(client.infer("fc", input), fx.oracle(input));
}

TEST(TcpServing, DeadlinesDropOverTheWire)
{
    TcpFixture fx;
    // Forming deadline far beyond the request deadlines and a batch
    // cap a small burst cannot reach: every request expires queued.
    serve::ClusterOptions options = TcpFixture::makeClusterOptions(
        serve::Placement::Replicated, 1);
    options.server.max_batch = 1000;
    options.server.max_delay = std::chrono::milliseconds(200);
    serve::ServingDirectory directory(fx.registry, options);
    serve::TcpServer server(directory);
    server.start();

    serve::TcpClient client("127.0.0.1", server.port());
    constexpr int kRequests = 8;
    std::vector<std::future<serve::wire::InferResponse>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(client.submitInfer(
            "fc", 0, fx.randomInput(1700 + i), 0,
            /*deadline_us=*/2000));
    for (int i = 0; i < kRequests; ++i) {
        const serve::wire::InferResponse response = futures[i].get();
        EXPECT_FALSE(response.ok);
        EXPECT_EQ(response.code,
                  serve::wire::ErrorCode::DeadlineExpired);
        EXPECT_NE(response.error.find("deadline"), std::string::npos)
            << response.error;
    }
    server.stop();
    directory.stopAll();
}

TEST(TcpServing, FinishedConnectionsAreReaped)
{
    TcpFixture fx;
    for (int i = 0; i < 3; ++i) {
        serve::TcpClient client("127.0.0.1", fx.server.port());
        const auto input = fx.randomInput(1900 + i);
        EXPECT_EQ(client.infer("fc", input), fx.oracle(input));
    } // destructor closes; the server notices EOF asynchronously

    // Reaping happens on accept: fresh probe connections must shake
    // the three finished ones out (probe + at most one lingering
    // previous probe may still be tracked).
    bool reaped = false;
    for (int attempt = 0; attempt < 100 && !reaped; ++attempt) {
        serve::TcpClient probe("127.0.0.1", fx.server.port());
        const auto input = fx.randomInput(1950);
        EXPECT_EQ(probe.infer("fc", input), fx.oracle(input));
        reaped = fx.server.trackedConnections() <= 2;
        if (!reaped)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(reaped) << "finished connections were never reaped";
}

namespace {

/** Connect a raw client socket to @p port. */
int
rawConnect(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

/** Receive exactly @p size bytes (test helper; fails on short read). */
std::vector<std::uint8_t>
rawRecv(int fd, std::size_t size)
{
    std::vector<std::uint8_t> bytes(size);
    std::size_t at = 0;
    while (at < size) {
        const ssize_t got =
            ::recv(fd, bytes.data() + at, size - at, 0);
        if (got <= 0)
            break;
        at += static_cast<std::size_t>(got);
    }
    EXPECT_EQ(at, size);
    return bytes;
}

} // namespace

TEST(TcpServing, OldClientGetsACleanVersionRejection)
{
    TcpFixture fx;

    // Simulate a protocol-v1 client: its Hello carries version 1 and
    // it can only decode the protocol-only HelloAck layout. A v2
    // server must answer exactly that layout (the v1 client's own
    // handshake check then rejects the foreign version cleanly)
    // instead of leaving the peer to misdecode a longer ack.
    const int fd = rawConnect(fx.server.port());
    const std::uint8_t v1_hello[] = {5, 0, 0, 0, // body length
                                     1,          // MsgType::Hello
                                     1, 0, 0, 0}; // protocol = 1
    ASSERT_EQ(::send(fd, v1_hello, sizeof(v1_hello), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(v1_hello)));

    // Expect a 5-byte body: HelloAck tag + u32 protocol — nothing
    // else (the v2 tail would be undefined bytes to a v1 decoder).
    const std::vector<std::uint8_t> header = rawRecv(fd, 4);
    std::uint32_t body_len = 0;
    std::memcpy(&body_len, header.data(), 4);
    ASSERT_EQ(body_len, 5u);
    const std::vector<std::uint8_t> ack_body = rawRecv(fd, body_len);
    EXPECT_EQ(ack_body[0],
              static_cast<std::uint8_t>(serve::wire::MsgType::HelloAck));
    std::uint32_t protocol = 0;
    std::memcpy(&protocol, ack_body.data() + 1, 4);
    EXPECT_EQ(protocol, serve::wire::kProtocolVersion);

    // ... and the server closes the connection.
    char byte = 0;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);

    // The daemon keeps serving current-version clients.
    serve::TcpClient client("127.0.0.1", fx.server.port());
    const auto input = fx.randomInput(2100);
    EXPECT_EQ(client.infer("fc", input), fx.oracle(input));
}

TEST(TcpServing, NewClientRejectsOldServerCleanly)
{
    // Simulate a protocol-v1 server on a raw listener. Two historic
    // behaviours exist: answering with a v1 HelloAck carrying its own
    // version, or (the deployed v1 daemon) closing without an ack.
    // Both must surface as a clean handshake error on the client.
    for (const bool send_v1_ack : {true, false}) {
        const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(listener, 0);
        const int one = 1;
        ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = 0;
        ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr),
                  1);
        ASSERT_EQ(::bind(listener,
                         reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ASSERT_EQ(::listen(listener, 1), 0);
        sockaddr_in bound{};
        socklen_t bound_len = sizeof(bound);
        ASSERT_EQ(::getsockname(listener,
                                reinterpret_cast<sockaddr *>(&bound),
                                &bound_len),
                  0);
        const std::uint16_t port = ntohs(bound.sin_port);

        std::thread old_server([listener, send_v1_ack] {
            const int fd = ::accept(listener, nullptr, nullptr);
            ASSERT_GE(fd, 0);
            rawRecv(fd, 9); // the client's Hello frame
            if (send_v1_ack) {
                const std::uint8_t v1_ack[] = {5, 0, 0, 0, // length
                                               2, // MsgType::HelloAck
                                               1, 0, 0, 0}; // v1
                ::send(fd, v1_ack, sizeof(v1_ack), MSG_NOSIGNAL);
            }
            ::close(fd);
        });

        try {
            serve::TcpClient client("127.0.0.1", port);
            FAIL() << "handshake with a v1 server must fail "
                   << "(send_v1_ack=" << send_v1_ack << ")";
        } catch (const serve::wire::WireError &error) {
            // Clean rejection naming the mismatch, not garbage
            // decoding.
            const std::string what = error.what();
            EXPECT_TRUE(what.find("version") != std::string::npos ||
                        what.find("HelloAck") != std::string::npos)
                << what;
        }
        old_server.join();
        ::close(listener);
    }
}

TEST(TcpServing, GarbageFramesDropTheConnectionNotTheServer)
{
    TcpFixture fx;

    // Raw socket sending an absurd frame length: the server must
    // drop this connection (recv returns EOF for us) and keep
    // serving everyone else.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::uint32_t absurd_len = 0xffffffffu;
    ASSERT_EQ(::send(fd, &absurd_len, sizeof(absurd_len),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(absurd_len)));
    char byte = 0;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0); // server closed on us
    ::close(fd);

    // The server keeps serving healthy clients.
    serve::TcpClient client("127.0.0.1", fx.server.port());
    const auto input = fx.randomInput(1800);
    EXPECT_EQ(client.infer("fc", input), fx.oracle(input));
}

} // namespace
