/**
 * @file
 * Wire-protocol codec tests: every message type round-trips through
 * encodeFrame/decodeBody, and malformed frames (truncation, trailing
 * garbage, unknown types, oversized fields) throw WireError instead
 * of crashing — the daemon's survival property against byte-level
 * garbage from the network.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <span>

#include "serve/wire.hh"

namespace {

using namespace eie::serve;

/** Strip the length prefix, returning the frame body. */
std::vector<std::uint8_t>
body(const std::vector<std::uint8_t> &frame)
{
    EXPECT_GE(frame.size(), 5u);
    std::uint32_t body_len = 0;
    std::memcpy(&body_len, frame.data(), 4);
    EXPECT_EQ(body_len, frame.size() - 4);
    return {frame.begin() + 4, frame.end()};
}

/** Encode, frame-check, decode. */
wire::Message
roundTrip(const wire::Message &message)
{
    return wire::decodeBody(body(wire::encodeFrame(message)));
}

TEST(Wire, HelloRoundTrip)
{
    const auto decoded = roundTrip(wire::Hello{});
    const auto *hello = std::get_if<wire::Hello>(&decoded);
    ASSERT_NE(hello, nullptr);
    EXPECT_EQ(hello->protocol, wire::kProtocolVersion);

    const auto ack = roundTrip(wire::HelloAck{});
    EXPECT_TRUE(std::holds_alternative<wire::HelloAck>(ack));
}

TEST(Wire, InferRequestRoundTrip)
{
    wire::InferRequest request;
    request.id = 0x1122334455667788ull;
    request.model = "alex-7";
    request.version = 3;
    request.priority = -2;
    request.deadline_us = 1500;
    request.input = {0, -5, 127, -32768, 32767, 42};

    const auto decoded = roundTrip(request);
    const auto *out = std::get_if<wire::InferRequest>(&decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, request.id);
    EXPECT_EQ(out->model, request.model);
    EXPECT_EQ(out->version, request.version);
    EXPECT_EQ(out->priority, request.priority);
    EXPECT_EQ(out->deadline_us, request.deadline_us);
    EXPECT_EQ(out->input, request.input);
}

TEST(Wire, InferResponseRoundTripsBothArms)
{
    wire::InferResponse ok;
    ok.id = 7;
    ok.ok = true;
    ok.output = {1, 2, 3, -9000000000ll};
    const auto decoded_ok = roundTrip(ok);
    const auto *out = std::get_if<wire::InferResponse>(&decoded_ok);
    ASSERT_NE(out, nullptr);
    EXPECT_TRUE(out->ok);
    EXPECT_EQ(out->output, ok.output);
    EXPECT_TRUE(out->error.empty());

    wire::InferResponse failed;
    failed.id = 8;
    failed.ok = false;
    failed.error = "deadline expired";
    const auto decoded_err = roundTrip(failed);
    const auto *err = std::get_if<wire::InferResponse>(&decoded_err);
    ASSERT_NE(err, nullptr);
    EXPECT_FALSE(err->ok);
    EXPECT_EQ(err->error, failed.error);
    EXPECT_TRUE(err->output.empty());
}

TEST(Wire, StatsAndInfoRoundTrip)
{
    EXPECT_TRUE(std::holds_alternative<wire::StatsRequest>(
        roundTrip(wire::StatsRequest{})));

    wire::StatsResponse stats;
    stats.json = "{\"clusters\":[]}";
    const auto decoded = roundTrip(stats);
    const auto *out = std::get_if<wire::StatsResponse>(&decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->json, stats.json);

    wire::InfoRequest info_request;
    info_request.model = "m";
    info_request.version = 9;
    const auto decoded_req = roundTrip(info_request);
    const auto *req = std::get_if<wire::InfoRequest>(&decoded_req);
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->model, "m");
    EXPECT_EQ(req->version, 9u);

    wire::InfoResponse info;
    info.ok = true;
    info.model = "m";
    info.version = 9;
    info.input_size = 4096;
    info.output_size = 4096;
    info.shards = 4;
    info.placement = "partitioned";
    const auto decoded_info = roundTrip(info);
    const auto *out_info = std::get_if<wire::InfoResponse>(&decoded_info);
    ASSERT_NE(out_info, nullptr);
    EXPECT_TRUE(out_info->ok);
    EXPECT_EQ(out_info->input_size, 4096u);
    EXPECT_EQ(out_info->shards, 4u);
    EXPECT_EQ(out_info->placement, "partitioned");
}

TEST(Wire, MalformedFramesThrowInsteadOfCrashing)
{
    // Empty body.
    EXPECT_THROW(wire::decodeBody({}), wire::WireError);

    // Unknown type tag.
    const std::vector<std::uint8_t> unknown{0xff, 0, 0, 0, 0};
    EXPECT_THROW(wire::decodeBody(unknown), wire::WireError);

    // Truncations at every prefix length of a valid frame.
    wire::InferRequest request;
    request.model = "m";
    request.input = {1, 2, 3};
    const auto frame_body = body(wire::encodeFrame(request));
    for (std::size_t len = 1; len < frame_body.size(); ++len) {
        const std::span<const std::uint8_t> prefix(frame_body.data(),
                                                   len);
        EXPECT_THROW(wire::decodeBody(prefix), wire::WireError)
            << "prefix length " << len;
    }

    // Trailing garbage after a complete payload.
    auto padded = frame_body;
    padded.push_back(0);
    EXPECT_THROW(wire::decodeBody(padded), wire::WireError);
}

TEST(Wire, RejectsOversizedDeclaredFields)
{
    // A model-name length beyond kMaxModelName must be rejected
    // before any allocation happens.
    std::vector<std::uint8_t> evil;
    evil.push_back(
        static_cast<std::uint8_t>(wire::MsgType::InferRequest));
    for (int i = 0; i < 8; ++i)
        evil.push_back(0); // id
    const std::uint32_t huge = 0x10000000;
    const auto *p = reinterpret_cast<const std::uint8_t *>(&huge);
    evil.insert(evil.end(), p, p + 4); // name length
    EXPECT_THROW(wire::decodeBody(evil), wire::WireError);

    // A vector count larger than the remaining frame bytes, too.
    wire::InferRequest request;
    request.model = "m";
    request.input = {1};
    auto frame_body = body(wire::encodeFrame(request));
    // The input count field sits 4+8+4+1+4+4+4 = 25 bytes in; bump it.
    const std::size_t count_at = frame_body.size() - 4 - 8;
    std::uint32_t bogus = 1000;
    std::memcpy(frame_body.data() + count_at, &bogus, 4);
    EXPECT_THROW(wire::decodeBody(frame_body), wire::WireError);
}

TEST(Wire, MessageTypeTagsAreStable)
{
    // The wire tags are protocol surface: renumbering breaks every
    // deployed peer, so pin them.
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::Hello), 1u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::HelloAck), 2u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::InferRequest), 3u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::InferResponse), 4u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::StatsRequest), 5u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::StatsResponse), 6u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::InfoRequest), 7u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::InfoResponse), 8u);
}

} // namespace
