/**
 * @file
 * Wire-protocol codec tests: every message type round-trips through
 * encodeFrame/decodeBody, and malformed frames (truncation, trailing
 * garbage, unknown types, oversized fields) throw WireError instead
 * of crashing — the daemon's survival property against byte-level
 * garbage from the network.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <span>

#include "serve/wire.hh"

namespace {

using namespace eie::serve;

/** Strip the length prefix, returning the frame body. */
std::vector<std::uint8_t>
body(const std::vector<std::uint8_t> &frame)
{
    EXPECT_GE(frame.size(), 5u);
    std::uint32_t body_len = 0;
    std::memcpy(&body_len, frame.data(), 4);
    EXPECT_EQ(body_len, frame.size() - 4);
    return {frame.begin() + 4, frame.end()};
}

/** Encode, frame-check, decode. */
wire::Message
roundTrip(const wire::Message &message)
{
    return wire::decodeBody(body(wire::encodeFrame(message)));
}

TEST(Wire, HelloRoundTrip)
{
    const auto decoded = roundTrip(wire::Hello{});
    const auto *hello = std::get_if<wire::Hello>(&decoded);
    ASSERT_NE(hello, nullptr);
    EXPECT_EQ(hello->protocol, wire::kProtocolVersion);

    const auto ack = roundTrip(wire::HelloAck{});
    EXPECT_TRUE(std::holds_alternative<wire::HelloAck>(ack));
}

TEST(Wire, InferRequestRoundTrip)
{
    wire::InferRequest request;
    request.id = 0x1122334455667788ull;
    request.model = "alex-7";
    request.version = 3;
    request.priority = -2;
    request.deadline_us = 1500;
    request.input = {0, -5, 127, -32768, 32767, 42};

    const auto decoded = roundTrip(request);
    const auto *out = std::get_if<wire::InferRequest>(&decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, request.id);
    EXPECT_EQ(out->model, request.model);
    EXPECT_EQ(out->version, request.version);
    EXPECT_EQ(out->priority, request.priority);
    EXPECT_EQ(out->deadline_us, request.deadline_us);
    EXPECT_EQ(out->input, request.input);
}

TEST(Wire, InferResponseRoundTripsBothArms)
{
    wire::InferResponse ok;
    ok.id = 7;
    ok.ok = true;
    ok.output = {1, 2, 3, -9000000000ll};
    const auto decoded_ok = roundTrip(ok);
    const auto *out = std::get_if<wire::InferResponse>(&decoded_ok);
    ASSERT_NE(out, nullptr);
    EXPECT_TRUE(out->ok);
    EXPECT_EQ(out->output, ok.output);
    EXPECT_TRUE(out->error.empty());

    wire::InferResponse failed;
    failed.id = 8;
    failed.ok = false;
    failed.code = wire::ErrorCode::DeadlineExpired;
    failed.error = "deadline expired";
    const auto decoded_err = roundTrip(failed);
    const auto *err = std::get_if<wire::InferResponse>(&decoded_err);
    ASSERT_NE(err, nullptr);
    EXPECT_FALSE(err->ok);
    EXPECT_EQ(err->code, wire::ErrorCode::DeadlineExpired);
    EXPECT_EQ(err->error, failed.error);
    EXPECT_TRUE(err->output.empty());
}

TEST(Wire, HelloAckNegotiatesBothLayouts)
{
    // v2 layout: ok/error travel (a mismatched client gets the
    // reason).
    wire::HelloAck rejection;
    rejection.ok = false;
    rejection.error = "unsupported protocol version 7";
    const auto decoded = roundTrip(rejection);
    const auto *ack = std::get_if<wire::HelloAck>(&decoded);
    ASSERT_NE(ack, nullptr);
    EXPECT_FALSE(ack->ok);
    EXPECT_EQ(ack->error, rejection.error);
    EXPECT_EQ(ack->wire_layout, 2u);

    // v1 legacy layout: protocol only — what a v1 peer can decode.
    // Its absence of a tail must decode as an ok ack (a v1 server's
    // acks carried no error channel).
    wire::HelloAck legacy;
    legacy.protocol = 1;
    legacy.wire_layout = 1;
    const auto legacy_frame = body(wire::encodeFrame(legacy));
    EXPECT_EQ(legacy_frame.size(), 1u + 4u); // tag + u32 only
    const auto decoded_legacy = wire::decodeBody(legacy_frame);
    const auto *old = std::get_if<wire::HelloAck>(&decoded_legacy);
    ASSERT_NE(old, nullptr);
    EXPECT_TRUE(old->ok);
    EXPECT_EQ(old->protocol, 1u);
    EXPECT_EQ(old->wire_layout, 1u);
}

TEST(Wire, SessionMessagesRoundTrip)
{
    wire::SessionOpen open;
    open.session_id = 11;
    open.model = "nt-lstm";
    open.version = 2;
    const auto decoded_open = roundTrip(open);
    const auto *open_out = std::get_if<wire::SessionOpen>(&decoded_open);
    ASSERT_NE(open_out, nullptr);
    EXPECT_EQ(open_out->session_id, 11u);
    EXPECT_EQ(open_out->model, "nt-lstm");
    EXPECT_EQ(open_out->version, 2u);

    wire::SessionAck ack;
    ack.session_id = 11;
    ack.ok = true;
    ack.input_size = 600;
    ack.hidden_size = 600;
    const auto decoded_ack = roundTrip(ack);
    const auto *ack_out = std::get_if<wire::SessionAck>(&decoded_ack);
    ASSERT_NE(ack_out, nullptr);
    EXPECT_TRUE(ack_out->ok);
    EXPECT_EQ(ack_out->input_size, 600u);
    EXPECT_EQ(ack_out->hidden_size, 600u);

    wire::SessionAck nack;
    nack.session_id = 12;
    nack.code = wire::ErrorCode::InvalidArgument;
    nack.error = "model 64 -> 96 is not LSTM-shaped";
    const auto decoded_nack = roundTrip(nack);
    const auto *nack_out = std::get_if<wire::SessionAck>(&decoded_nack);
    ASSERT_NE(nack_out, nullptr);
    EXPECT_FALSE(nack_out->ok);
    EXPECT_EQ(nack_out->code, wire::ErrorCode::InvalidArgument);
    EXPECT_EQ(nack_out->error, nack.error);

    // Step/state: float payloads must round-trip bit-exactly (they
    // carry the recurrent trajectory).
    wire::SessionStep step;
    step.session_id = 11;
    step.id = 99;
    step.priority = 3;
    step.deadline_us = 250;
    step.x = {0.0f, -1.5f, 3.25e-7f, 1024.5f};
    const auto decoded_step = roundTrip(step);
    const auto *step_out = std::get_if<wire::SessionStep>(&decoded_step);
    ASSERT_NE(step_out, nullptr);
    EXPECT_EQ(step_out->session_id, 11u);
    EXPECT_EQ(step_out->id, 99u);
    EXPECT_EQ(step_out->priority, 3);
    EXPECT_EQ(step_out->deadline_us, 250u);
    EXPECT_EQ(step_out->x, step.x);

    wire::SessionState state;
    state.session_id = 11;
    state.id = 99;
    state.ok = true;
    state.h = {0.5f, -0.25f, 0.0f};
    const auto decoded_state = roundTrip(state);
    const auto *state_out =
        std::get_if<wire::SessionState>(&decoded_state);
    ASSERT_NE(state_out, nullptr);
    EXPECT_TRUE(state_out->ok);
    EXPECT_EQ(state_out->h, state.h);

    wire::SessionClose close_msg;
    close_msg.session_id = 11;
    const auto decoded_close = roundTrip(close_msg);
    const auto *close_out =
        std::get_if<wire::SessionClose>(&decoded_close);
    ASSERT_NE(close_out, nullptr);
    EXPECT_EQ(close_out->session_id, 11u);
}

TEST(Wire, StatsAndInfoRoundTrip)
{
    EXPECT_TRUE(std::holds_alternative<wire::StatsRequest>(
        roundTrip(wire::StatsRequest{})));

    wire::StatsResponse stats;
    stats.json = "{\"clusters\":[]}";
    const auto decoded = roundTrip(stats);
    const auto *out = std::get_if<wire::StatsResponse>(&decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->json, stats.json);

    wire::InfoRequest info_request;
    info_request.model = "m";
    info_request.version = 9;
    const auto decoded_req = roundTrip(info_request);
    const auto *req = std::get_if<wire::InfoRequest>(&decoded_req);
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->model, "m");
    EXPECT_EQ(req->version, 9u);

    wire::InfoResponse info;
    info.ok = true;
    info.model = "m";
    info.version = 9;
    info.input_size = 4096;
    info.output_size = 4096;
    info.shards = 4;
    info.placement = "partitioned";
    const auto decoded_info = roundTrip(info);
    const auto *out_info = std::get_if<wire::InfoResponse>(&decoded_info);
    ASSERT_NE(out_info, nullptr);
    EXPECT_TRUE(out_info->ok);
    EXPECT_EQ(out_info->input_size, 4096u);
    EXPECT_EQ(out_info->shards, 4u);
    EXPECT_EQ(out_info->placement, "partitioned");
}

TEST(Wire, MalformedFramesThrowInsteadOfCrashing)
{
    // Empty body.
    EXPECT_THROW(wire::decodeBody({}), wire::WireError);

    // Unknown type tag.
    const std::vector<std::uint8_t> unknown{0xff, 0, 0, 0, 0};
    EXPECT_THROW(wire::decodeBody(unknown), wire::WireError);

    // Truncations at every prefix length of a valid frame.
    wire::InferRequest request;
    request.model = "m";
    request.input = {1, 2, 3};
    const auto frame_body = body(wire::encodeFrame(request));
    for (std::size_t len = 1; len < frame_body.size(); ++len) {
        const std::span<const std::uint8_t> prefix(frame_body.data(),
                                                   len);
        EXPECT_THROW(wire::decodeBody(prefix), wire::WireError)
            << "prefix length " << len;
    }

    // Trailing garbage after a complete payload.
    auto padded = frame_body;
    padded.push_back(0);
    EXPECT_THROW(wire::decodeBody(padded), wire::WireError);
}

TEST(Wire, RejectsOversizedDeclaredFields)
{
    // A model-name length beyond kMaxModelName must be rejected
    // before any allocation happens.
    std::vector<std::uint8_t> evil;
    evil.push_back(
        static_cast<std::uint8_t>(wire::MsgType::InferRequest));
    for (int i = 0; i < 8; ++i)
        evil.push_back(0); // id
    const std::uint32_t huge = 0x10000000;
    const auto *p = reinterpret_cast<const std::uint8_t *>(&huge);
    evil.insert(evil.end(), p, p + 4); // name length
    EXPECT_THROW(wire::decodeBody(evil), wire::WireError);

    // A vector count larger than the remaining frame bytes, too.
    wire::InferRequest request;
    request.model = "m";
    request.input = {1};
    auto frame_body = body(wire::encodeFrame(request));
    // The input count field sits 4+8+4+1+4+4+4 = 25 bytes in; bump it.
    const std::size_t count_at = frame_body.size() - 4 - 8;
    std::uint32_t bogus = 1000;
    std::memcpy(frame_body.data() + count_at, &bogus, 4);
    EXPECT_THROW(wire::decodeBody(frame_body), wire::WireError);
}

/** Every frame type the protocol speaks, with non-trivial payloads
 *  so mutations have structure to corrupt. */
std::vector<wire::Message>
sampleFrames()
{
    std::vector<wire::Message> frames;
    frames.push_back(wire::Hello{});
    wire::HelloAck hello_ack;
    hello_ack.ok = true;
    frames.push_back(hello_ack);
    wire::InferRequest request;
    request.id = 42;
    request.model = "fuzz-model";
    request.version = 3;
    request.priority = -7;
    request.deadline_us = 12345;
    request.input = {0, -5, 127, -32768, 32767, 42, -1};
    frames.push_back(request);
    wire::InferResponse response;
    response.id = 42;
    response.ok = true;
    response.output = {1, 2, 3, -9000000000ll, 77};
    frames.push_back(response);
    wire::InferResponse failure;
    failure.id = 43;
    failure.code = wire::ErrorCode::Unavailable;
    failure.error = "request shed: server queue is full";
    frames.push_back(failure);
    frames.push_back(wire::StatsRequest{});
    frames.push_back(
        wire::StatsResponse{"{\"clusters\":[{\"requests\":9}]}"});
    wire::InfoRequest info_request;
    info_request.model = "fuzz-model";
    info_request.version = 1;
    frames.push_back(info_request);
    wire::InfoResponse info_response;
    info_response.ok = true;
    info_response.model = "fuzz-model";
    info_response.version = 1;
    info_response.input_size = 64;
    info_response.output_size = 96;
    info_response.shards = 4;
    info_response.placement = "replicated";
    frames.push_back(info_response);
    wire::SessionOpen open;
    open.session_id = 11;
    open.model = "lstm";
    frames.push_back(open);
    wire::SessionAck ack;
    ack.session_id = 11;
    ack.ok = true;
    ack.input_size = 16;
    ack.hidden_size = 32;
    frames.push_back(ack);
    wire::SessionStep step;
    step.session_id = 11;
    step.id = 9;
    step.x = {0.5f, -1.0f, 0.25f};
    frames.push_back(step);
    wire::SessionState state;
    state.session_id = 11;
    state.id = 9;
    state.ok = true;
    state.h = {0.1f, 0.2f};
    frames.push_back(state);
    wire::SessionClose close_msg;
    close_msg.session_id = 11;
    frames.push_back(close_msg);
    return frames;
}

/** splitmix64: the deterministic byte source of the fuzz tests. */
std::uint64_t
splitmix(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

TEST(WireFuzz, SeededMutationsOfEveryFrameTypeFailTyped)
{
    // Deterministic garbage-frame fuzz: mutate each valid frame body
    // (bit flips, byte stomps, truncations, extensions) and require
    // decodeBody to either produce a Message or throw WireError —
    // never crash, hang, or trip a sanitizer. Seeded, so a failure
    // reproduces exactly.
    std::uint64_t rng = 0xe1ef0e7c0ffee123ull;
    for (const wire::Message &message : sampleFrames()) {
        const auto clean = body(wire::encodeFrame(message));
        ASSERT_NO_THROW((void)wire::decodeBody(clean));

        for (int round = 0; round < 200; ++round) {
            auto mutated = clean;
            const unsigned edits =
                1 + static_cast<unsigned>(splitmix(rng) % 4);
            for (unsigned e = 0; e < edits; ++e) {
                switch (splitmix(rng) % 4) {
                  case 0: // flip one bit
                    mutated[splitmix(rng) % mutated.size()] ^=
                        static_cast<std::uint8_t>(
                            1u << (splitmix(rng) % 8));
                    break;
                  case 1: // stomp one byte
                    mutated[splitmix(rng) % mutated.size()] =
                        static_cast<std::uint8_t>(splitmix(rng));
                    break;
                  case 2: // truncate to a strict prefix
                    mutated.resize(1 +
                                   splitmix(rng) % mutated.size());
                    break;
                  default: // append trailing garbage
                    for (std::uint64_t n = 1 + splitmix(rng) % 8;
                         n > 0; --n)
                        mutated.push_back(static_cast<std::uint8_t>(
                            splitmix(rng)));
                    break;
                }
            }
            try {
                (void)wire::decodeBody(mutated);
                // A mutation may land on another valid encoding —
                // decoding successfully is fine; crashing is not.
            } catch (const wire::WireError &) {
                // The typed rejection path: also fine.
            }
        }
    }
}

TEST(WireFuzz, PureGarbageBodiesFailTyped)
{
    // Bodies that were never a frame: every type tag with random
    // payload bytes, and fully random bodies of varied length.
    std::uint64_t rng = 0x5eed5eed5eed5eedull;
    for (unsigned tag = 0; tag < 32; ++tag) {
        for (int round = 0; round < 50; ++round) {
            std::vector<std::uint8_t> garbage;
            garbage.push_back(static_cast<std::uint8_t>(tag));
            const std::uint64_t len = splitmix(rng) % 64;
            for (std::uint64_t i = 0; i < len; ++i)
                garbage.push_back(
                    static_cast<std::uint8_t>(splitmix(rng)));
            try {
                (void)wire::decodeBody(garbage);
            } catch (const wire::WireError &) {
            }
        }
    }
}

TEST(Wire, MessageTypeTagsAreStable)
{
    // The wire tags are protocol surface: renumbering breaks every
    // deployed peer, so pin them.
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::Hello), 1u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::HelloAck), 2u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::InferRequest), 3u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::InferResponse), 4u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::StatsRequest), 5u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::StatsResponse), 6u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::InfoRequest), 7u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::InfoResponse), 8u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::SessionOpen), 9u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::SessionAck), 10u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::SessionStep), 11u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::SessionState), 12u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::SessionClose), 13u);

    // Error codes are wire surface too.
    EXPECT_EQ(static_cast<unsigned>(wire::ErrorCode::Internal), 0u);
    EXPECT_EQ(static_cast<unsigned>(wire::ErrorCode::InvalidArgument),
              1u);
    EXPECT_EQ(static_cast<unsigned>(wire::ErrorCode::NotFound), 2u);
    EXPECT_EQ(static_cast<unsigned>(wire::ErrorCode::DeadlineExpired),
              3u);
    EXPECT_EQ(static_cast<unsigned>(wire::ErrorCode::Unavailable), 4u);

    // The telemetry queries are the v3 bump.
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::MetricsRequest),
              14u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::MetricsResponse),
              15u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::TraceRequest),
              16u);
    EXPECT_EQ(static_cast<unsigned>(wire::MsgType::TraceResponse),
              17u);

    // The session messages and negotiated HelloAck were the v2 bump;
    // the telemetry queries (and the optional trailing trace id on
    // InferRequest/SessionStep) are v3. v2 peers stay accepted.
    EXPECT_EQ(wire::kProtocolVersion, 3u);
    EXPECT_EQ(wire::kMinProtocolVersion, 2u);
}

} // namespace
