/**
 * @file
 * Deterministic fault-injection suite: every named fault point in the
 * serving stack must resolve to a clean typed error — never a hang, a
 * crash, or a silently wrong answer. Covers the faultpoint harness
 * semantics, admission-control shedding (both policies), the shard
 * circuit breaker with failover and probe recovery, corrupt model
 * files through the registry and all three client transports, the
 * stalled-batcher deadline path, and a dropped TCP connection.
 * Runs under ThreadSanitizer and ASan/UBSan in tools/check.sh.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <vector>

#include "client/client.hh"
#include "common/faultpoint.hh"
#include "core/functional.hh"
#include "core/network_runner.hh"
#include "engine/backend.hh"
#include "engine/server.hh"
#include "helpers.hh"
#include "serve/cluster.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"

namespace {

using namespace eie;
namespace fs = std::filesystem;

/** Every test leaves the global fault registry clean. */
struct FaultGuard
{
    FaultGuard() { fault::disarmAll(); }
    ~FaultGuard() { fault::disarmAll(); }
};

core::EieConfig
makeConfig()
{
    core::EieConfig config;
    config.n_pe = 4;
    return config;
}

fs::path
scratchDir(const char *tag)
{
    static int counter = 0;
    return fs::temp_directory_path() /
        ("eie_faults_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter++));
}

/** One compiled layer behind an InferenceServer. */
struct ServerFixture
{
    core::EieConfig config;
    core::NetworkRunner net;
    core::FunctionalModel model;

    ServerFixture() : config(makeConfig()), net(config), model(config)
    {
        net.addLayer(test::randomCompressedLayer(48, 32, 0.25, 4, 801),
                     nn::Nonlinearity::ReLU);
    }

    std::unique_ptr<engine::ExecutionBackend>
    backend() const
    {
        return engine::makeBackend("compiled", config, {&net.plan(0)});
    }

    std::vector<std::int64_t>
    input(std::uint64_t seed) const
    {
        return model.quantizeInput(
            test::randomActivations(32, 0.6, seed));
    }
};

TEST(FaultPoints, HarnessSemantics)
{
    FaultGuard guard;

    // Disarmed points never fire.
    EXPECT_FALSE(fault::fire("test.point"));
    EXPECT_EQ(fault::hits("test.point"), 0u);

    // An armed point fires and counts its hits.
    fault::arm("test.point");
    EXPECT_TRUE(fault::fire("test.point"));
    EXPECT_TRUE(fault::fire("test.point"));
    EXPECT_EQ(fault::hits("test.point"), 2u);

    // Other points stay disarmed.
    EXPECT_FALSE(fault::fire("test.other"));

    // skip consumes the first N candidate firings; count bounds the
    // total.
    fault::FaultSpec spec;
    spec.skip = 2;
    spec.count = 1;
    fault::arm("test.bounded", spec);
    EXPECT_FALSE(fault::fire("test.bounded"));
    EXPECT_FALSE(fault::fire("test.bounded"));
    EXPECT_TRUE(fault::fire("test.bounded"));
    EXPECT_FALSE(fault::fire("test.bounded")); // count exhausted
    EXPECT_EQ(fault::hits("test.bounded"), 1u);

    // match restricts firing to details containing the substring.
    fault::FaultSpec match_spec;
    match_spec.match = "shard1";
    fault::arm("test.matched", match_spec);
    EXPECT_FALSE(fault::fire("test.matched", "shard0"));
    EXPECT_TRUE(fault::fire("test.matched", "shard1"));
    EXPECT_FALSE(fault::fire("test.matched"));

    // disarm removes exactly one point; disarmAll removes the rest.
    fault::disarm("test.point");
    EXPECT_FALSE(fault::fire("test.point"));
    EXPECT_TRUE(fault::fire("test.matched", "shard1"));
    fault::disarmAll();
    EXPECT_FALSE(fault::fire("test.matched", "shard1"));
}

TEST(FaultPoints, AdmissionControlShedsRejectNew)
{
    FaultGuard guard;
    ServerFixture fx;

    engine::ServerOptions options;
    options.max_batch = 1;
    options.max_delay = std::chrono::microseconds(50);
    options.max_queue = 1;
    engine::InferenceServer server(fx.backend(), options);

    // Stall every batch 25 ms so a burst must overflow the one-slot
    // queue; excess requests shed with ServerOverloaded instead of
    // queueing without bound.
    fault::arm("batcher.stall");
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(server.submit(fx.input(10 + i)));

    std::uint64_t ok = 0, shed = 0;
    for (auto &future : futures) {
        ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
                  std::future_status::ready)
            << "a shed/served request must never hang";
        try {
            future.get();
            ++ok;
        } catch (const engine::ServerOverloaded &error) {
            EXPECT_STREQ(error.what(),
                         "request shed: server queue is full");
            ++shed;
        }
    }
    EXPECT_EQ(ok + shed, 8u);
    EXPECT_GE(shed, 1u);
    EXPECT_GE(ok, 1u);
    EXPECT_EQ(server.stats().requests_shed, shed);
    fault::disarmAll();
    server.stop();
}

TEST(FaultPoints, AdmissionControlEvictsLowestPriority)
{
    FaultGuard guard;
    ServerFixture fx;

    engine::ServerOptions options;
    options.max_batch = 1;
    options.max_delay = std::chrono::microseconds(50);
    options.max_queue = 1;
    options.shed_policy = engine::ShedPolicy::EvictLowestPriority;
    engine::InferenceServer server(fx.backend(), options);

    fault::arm("batcher.stall");
    // A occupies the backend (stalled); B sits in the single queue
    // slot at priority 0; the priority-5 newcomer C must evict B.
    auto future_a = server.submit(fx.input(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    engine::SubmitOptions low;
    low.priority = 0;
    auto future_b = server.submit(fx.input(2), low);
    engine::SubmitOptions high;
    high.priority = 5;
    auto future_c = server.submit(fx.input(3), high);

    EXPECT_NO_THROW(future_a.get());
    EXPECT_THROW(future_b.get(), engine::ServerOverloaded);
    EXPECT_NO_THROW(future_c.get());
    EXPECT_EQ(server.stats().requests_shed, 1u);

    // An equal-priority newcomer is shed itself: FIFO within a level.
    auto future_d = server.submit(fx.input(4));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto future_e = server.submit(fx.input(5), low);
    auto future_f = server.submit(fx.input(6), low);
    EXPECT_NO_THROW(future_d.get());
    EXPECT_NO_THROW(future_e.get());
    EXPECT_THROW(future_f.get(), engine::ServerOverloaded);

    fault::disarmAll();
    server.stop();
}

TEST(FaultPoints, InfeasibleDeadlineShedsUpfront)
{
    FaultGuard guard;
    ServerFixture fx;

    engine::ServerOptions options;
    options.max_batch = 1;
    options.max_delay = std::chrono::milliseconds(10);
    options.max_queue = 8;
    options.shed_infeasible_deadlines = true;
    engine::InferenceServer server(fx.backend(), options);

    // A 1 us deadline cannot survive even one 10 ms forming window:
    // the server must say "overloaded" immediately rather than admit
    // the request and expire it in the queue.
    engine::SubmitOptions doomed;
    doomed.deadline = std::chrono::microseconds(1);
    EXPECT_THROW(server.submit(fx.input(1), doomed).get(),
                 engine::ServerOverloaded);
    EXPECT_EQ(server.stats().requests_shed, 1u);

    // A generous deadline passes the feasibility check.
    engine::SubmitOptions fine;
    fine.deadline = std::chrono::seconds(10);
    EXPECT_NO_THROW(server.submit(fx.input(2), fine).get());
    server.stop();
}

TEST(FaultPoints, ShardFailureEjectsFailsOverAndRecovers)
{
    FaultGuard guard;
    core::EieConfig config = makeConfig();
    const auto layer =
        test::randomCompressedLayer(96, 64, 0.25, 4, 802);
    const auto model = serve::LoadedModel::fromStorage(
        "breaker", 1, layer.storage(), nn::Nonlinearity::ReLU,
        config);
    core::FunctionalModel functional(config);
    const core::LayerPlan oracle_plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);

    serve::ClusterOptions options;
    options.shards = 2;
    options.placement = serve::Placement::Replicated;
    options.server.max_batch = 4;
    options.server.max_delay = std::chrono::microseconds(100);
    options.eject_after_failures = 2;
    options.probe_interval = 2;
    serve::ClusterEngine cluster(model, options);

    // Shard 0 fails every submit; the breaker must eject it and the
    // failover path must keep every request bit-exact.
    fault::FaultSpec spec;
    spec.match = "shard0";
    fault::arm("shard.submit_fail", spec);

    for (int i = 0; i < 12; ++i) {
        const auto input = functional.quantizeInput(
            test::randomActivations(64, 0.6, 900 + i));
        const auto expected =
            functional.run(oracle_plan, input).output_raw;
        EXPECT_EQ(cluster.infer(input), expected) << "request " << i;
    }

    serve::ClusterStats sick = cluster.stats();
    EXPECT_TRUE(sick.shards[0].ejected);
    EXPECT_FALSE(sick.shards[1].ejected);
    EXPECT_EQ(sick.shards_ejected, 1u);
    EXPECT_GE(sick.shards[0].failures, 2u);
    EXPECT_GE(sick.failovers, 2u);
    EXPECT_GE(fault::hits("shard.submit_fail"), 2u);

    // Heal the shard: recovery probes route live traffic back to it,
    // and one success re-admits it to rotation.
    fault::disarmAll();
    for (int i = 0; i < 12; ++i) {
        const auto input = functional.quantizeInput(
            test::randomActivations(64, 0.6, 950 + i));
        const auto expected =
            functional.run(oracle_plan, input).output_raw;
        EXPECT_EQ(cluster.infer(input), expected);
    }
    serve::ClusterStats healed = cluster.stats();
    EXPECT_FALSE(healed.shards[0].ejected);
    EXPECT_EQ(healed.shards_ejected, 0u);
    EXPECT_GE(healed.shards[0].probes, 1u);
    cluster.stop();
}

TEST(FaultPoints, RegistryTruncateReadIsTypedCorrupt)
{
    FaultGuard guard;
    const fs::path dir = scratchDir("registry");
    core::EieConfig config = makeConfig();
    serve::ModelRegistry registry(dir.string(), config);
    const auto layer =
        test::randomCompressedLayer(48, 32, 0.25, 4, 803);
    registry.publish("fc", 1, layer.storage());

    // Injected mid-file truncation on the read path: the checksum
    // catches it and load() reports Corrupt — typed, not fatal.
    Logger::setQuiet(true);
    fault::arm("registry.truncate_read");
    serve::LoadError error = serve::LoadError::None;
    std::string detail;
    EXPECT_EQ(registry.load("fc", 1, nn::Nonlinearity::ReLU, &error,
                            &detail),
              nullptr);
    EXPECT_EQ(error, serve::LoadError::Corrupt);
    EXPECT_NE(detail.find("checksum"), std::string::npos) << detail;
    Logger::setQuiet(false);

    // The corrupt result is not cached: with the fault disarmed the
    // same load succeeds (recovery by republish/repair needs no
    // process restart).
    fault::disarmAll();
    error = serve::LoadError::None;
    EXPECT_NE(registry.load("fc", 1, nn::Nonlinearity::ReLU, &error,
                            &detail),
              nullptr);
    EXPECT_EQ(error, serve::LoadError::None);
    fs::remove_all(dir);
}

TEST(FaultPoints, CorruptModelFileSurfacesOnEveryTransport)
{
    FaultGuard guard;
    const fs::path dir = scratchDir("corrupt");
    core::EieConfig config = makeConfig();
    serve::ModelRegistry registry(dir.string(), config);
    const auto layer =
        test::randomCompressedLayer(48, 32, 0.25, 4, 804);
    const std::string path =
        registry.publish("fc", 1, layer.storage());

    // Physically truncate the published file mid-byte.
    const auto size = fs::file_size(path);
    fs::resize_file(path, size / 2);

    serve::ClusterOptions cluster_options;
    cluster_options.shards = 2;
    serve::ServingDirectory directory(registry, cluster_options);
    serve::TcpServer server(directory);
    server.start();

    Logger::setQuiet(true);
    // The directory reports a typed Rejected lookup, not a crash.
    std::string error;
    serve::ServingDirectory::LookupStatus lookup;
    EXPECT_EQ(directory.cluster("fc", 1, error,
                                nn::Nonlinearity::ReLU, &lookup),
              nullptr);
    EXPECT_EQ(lookup, serve::ServingDirectory::LookupStatus::Rejected);
    EXPECT_NE(error.find("unreadable"), std::string::npos) << error;

    // Every client transport turns the damage into a typed Status
    // (NotFound from a registry-backed local lookup, Internal for a
    // server-side policy rejection) — and stays alive.
    client::ClientOptions options;
    options.config = config;
    options.cluster = cluster_options;
    const std::vector<std::string> endpoints{
        "local:compiled,dir=" + dir.string(),
        "cluster:" + dir.string(),
        "tcp://127.0.0.1:" + std::to_string(server.port())};
    for (const std::string &endpoint : endpoints) {
        client::Status status;
        auto client = client::Client::connect(endpoint, options,
                                              status);
        ASSERT_NE(client, nullptr) << endpoint;
        const auto input = core::FunctionalModel(config).quantizeInput(
            test::randomActivations(32, 0.6, 42));
        const client::InferenceResult result =
            client->inferRaw("fc", input);
        EXPECT_FALSE(result.ok()) << endpoint;
        EXPECT_TRUE(result.status.code ==
                        client::StatusCode::NotFound ||
                    result.status.code ==
                        client::StatusCode::Internal)
            << endpoint << ": " << result.status.toString();
        client->close();
    }
    Logger::setQuiet(false);

    server.stop();
    directory.stopAll();
    fs::remove_all(dir);
}

TEST(FaultPoints, BatcherStallHonorsQueuedDeadlines)
{
    FaultGuard guard;
    ServerFixture fx;

    engine::ServerOptions options;
    options.max_batch = 1;
    options.max_delay = std::chrono::microseconds(50);
    engine::InferenceServer server(fx.backend(), options);

    // A wedged backend: the first request stalls in execution while
    // the second's 5 ms deadline expires in the queue. The deadline
    // must fire (typed), not hang behind the stall.
    fault::arm("batcher.stall");
    auto slow = server.submit(fx.input(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    engine::SubmitOptions tight;
    tight.deadline = std::chrono::milliseconds(5);
    auto dropped = server.submit(fx.input(2), tight);

    ASSERT_EQ(dropped.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_THROW(dropped.get(), engine::DeadlineExpired);
    EXPECT_NO_THROW(slow.get());
    fault::disarmAll();
    server.stop();
}

TEST(FaultPoints, TcpConnectionDropFailsPendingCleanly)
{
    FaultGuard guard;
    const fs::path dir = scratchDir("drop");
    core::EieConfig config = makeConfig();
    serve::ModelRegistry registry(dir.string(), config);
    const auto layer =
        test::randomCompressedLayer(48, 32, 0.25, 4, 805);
    registry.publish("fc", 1, layer.storage());

    serve::ClusterOptions cluster_options;
    serve::ServingDirectory directory(registry, cluster_options);
    serve::TcpServer server(directory);
    server.start();

    serve::TcpClient client("127.0.0.1", server.port());
    core::FunctionalModel functional(config);
    const auto input = functional.quantizeInput(
        test::randomActivations(32, 0.6, 7));

    // Healthy first: one round trip (also flushes the handshake).
    serve::wire::InferResponse first =
        client.submitInfer("fc", 1, input).get();
    ASSERT_TRUE(first.ok) << first.error;

    // Drop the connection right after the next response is written.
    // Whether that response survives is a kernel race (the server's
    // close can RST it out of the client's receive buffer), so the
    // contract is: delivered bit-exact, or failed typed Unavailable
    // — never a hang or a protocol error.
    fault::FaultSpec once;
    once.count = 1;
    fault::arm("tcp.drop_after_write", once);
    auto second_future = client.submitInfer("fc", 1, input);
    ASSERT_EQ(second_future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    const serve::wire::InferResponse second = second_future.get();
    if (second.ok)
        EXPECT_EQ(second.output, first.output);
    else
        EXPECT_EQ(second.code, serve::wire::ErrorCode::Unavailable)
            << second.error;

    auto third = client.submitInfer("fc", 1, input);
    ASSERT_EQ(third.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "a request on a dropped connection must fail, not hang";
    const serve::wire::InferResponse response = third.get();
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.code, serve::wire::ErrorCode::Unavailable);
    EXPECT_EQ(fault::hits("tcp.drop_after_write"), 1u);

    client.close();
    server.stop();
    directory.stopAll();
    fs::remove_all(dir);
}

} // namespace
