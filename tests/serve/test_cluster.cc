/**
 * @file
 * ClusterEngine tests: bit-exact serving against the scalar oracle
 * under both placement policies, concurrent clients across shards,
 * aggregated statistics, deadline propagation and drain-on-stop.
 * The concurrent suites double as the ThreadSanitizer workload in
 * tools/check.sh.
 */

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "core/functional.hh"
#include "engine/backend.hh"
#include "helpers.hh"
#include "serve/cluster.hh"

namespace {

using namespace eie;

/** A small single-layer model shared by the cluster tests. */
struct ClusterFixture
{
    core::EieConfig config;
    compress::CompressedLayer layer;
    std::shared_ptr<const serve::LoadedModel> model;
    core::FunctionalModel functional;
    core::LayerPlan oracle_plan;

    ClusterFixture()
        : config(makeConfig()),
          layer(test::randomCompressedLayer(96, 64, 0.25, 4, 901)),
          model(serve::LoadedModel::fromStorage(
              "fixture", 1, layer.storage(), nn::Nonlinearity::ReLU,
              config)),
          functional(config),
          oracle_plan(core::planLayer(layer, nn::Nonlinearity::ReLU,
                                      config))
    {}

    static core::EieConfig
    makeConfig()
    {
        core::EieConfig config;
        config.n_pe = 4;
        return config;
    }

    std::vector<std::int64_t>
    randomInput(std::uint64_t seed) const
    {
        return functional.quantizeInput(
            test::randomActivations(64, 0.6, seed));
    }

    std::vector<std::int64_t>
    oracle(const std::vector<std::int64_t> &input) const
    {
        return functional.run(oracle_plan, input).output_raw;
    }

    serve::ClusterOptions
    options(unsigned shards, serve::Placement placement) const
    {
        serve::ClusterOptions opts;
        opts.shards = shards;
        opts.placement = placement;
        opts.server.max_batch = 8;
        opts.server.max_delay = std::chrono::microseconds(200);
        return opts;
    }
};

TEST(ClusterEngine, ReplicatedShardsServeBitExactUnderConcurrency)
{
    ClusterFixture fx;
    serve::ClusterEngine cluster(
        fx.model,
        fx.options(3, serve::Placement::Replicated));
    EXPECT_EQ(cluster.shardCount(), 3u);

    constexpr int kClients = 4;
    constexpr int kPerClient = 24;
    std::vector<std::thread> clients;
    std::vector<std::vector<std::vector<std::int64_t>>> inputs(
        kClients);
    std::vector<std::vector<std::vector<std::int64_t>>> outputs(
        kClients);
    for (int c = 0; c < kClients; ++c) {
        for (int i = 0; i < kPerClient; ++i)
            inputs[c].push_back(
                fx.randomInput(1000 + 37 * c + 100 * i));
        outputs[c].resize(kPerClient);
        clients.emplace_back([&, c] {
            std::vector<std::future<std::vector<std::int64_t>>>
                futures;
            for (int i = 0; i < kPerClient; ++i)
                futures.push_back(cluster.submit(inputs[c][i]));
            for (int i = 0; i < kPerClient; ++i)
                outputs[c][i] = futures[i].get();
        });
    }
    for (auto &client : clients)
        client.join();

    for (int c = 0; c < kClients; ++c)
        for (int i = 0; i < kPerClient; ++i)
            EXPECT_EQ(outputs[c][i], fx.oracle(inputs[c][i]))
                << "client " << c << ", request " << i;

    const serve::ClusterStats stats = cluster.stats();
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kClients * kPerClient));
    EXPECT_EQ(stats.dropped_deadline, 0u);
    ASSERT_EQ(stats.shards.size(), 3u);
    double utilization = 0.0;
    for (const serve::ShardStats &shard : stats.shards) {
        utilization += shard.utilization;
        EXPECT_EQ(shard.queue_depth, 0u); // drained
    }
    EXPECT_NEAR(utilization, 1.0, 1e-9);
    EXPECT_LE(stats.p50_latency_us, stats.p99_latency_us + 1e-9);
}

TEST(ClusterEngine, LeastLoadedRoutingSpreadsABurstAcrossShards)
{
    ClusterFixture fx;
    serve::ClusterEngine cluster(
        fx.model, fx.options(4, serve::Placement::Replicated));

    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(cluster.submit(fx.randomInput(2000 + i)));
    for (auto &future : futures)
        future.get();

    // Every shard must have taken a meaningful share of the burst —
    // round-robin-on-tie alone guarantees this even if queue depths
    // never differ.
    const serve::ClusterStats stats = cluster.stats();
    for (const serve::ShardStats &shard : stats.shards)
        EXPECT_GE(shard.server.requests, 4u);
}

TEST(ClusterEngine, ColumnPartitionedMatchesOracleAndReplicated)
{
    ClusterFixture fx;
    serve::ClusterEngine partitioned(
        fx.model, fx.options(4, serve::Placement::ColumnPartitioned));
    serve::ClusterEngine replicated(
        fx.model, fx.options(2, serve::Placement::Replicated));

    // Contiguous cover of the input columns, one range per shard.
    const std::vector<std::size_t> &bounds =
        partitioned.columnBounds();
    ASSERT_EQ(bounds.size(), 5u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), 64u);
    for (std::size_t s = 0; s + 1 < bounds.size(); ++s)
        EXPECT_LT(bounds[s], bounds[s + 1]);

    for (int i = 0; i < 16; ++i) {
        const auto input = fx.randomInput(3000 + i);
        const auto expected = fx.oracle(input);
        EXPECT_EQ(partitioned.infer(input), expected) << "input " << i;
        EXPECT_EQ(replicated.infer(input), expected) << "input " << i;
    }

    const serve::ClusterStats stats = partitioned.stats();
    EXPECT_EQ(stats.requests, 16u);
    EXPECT_EQ(stats.failed, 0u);
    ASSERT_EQ(stats.shards.size(), 4u);
    // Scatter means every shard saw every request.
    for (const serve::ShardStats &shard : stats.shards)
        EXPECT_EQ(shard.server.requests, 16u);
}

TEST(ClusterEngine, ColumnPartitionedScattersConcurrentClients)
{
    ClusterFixture fx;
    serve::ClusterEngine cluster(
        fx.model, fx.options(4, serve::Placement::ColumnPartitioned));

    constexpr int kClients = 3;
    constexpr int kPerClient = 16;
    std::vector<std::thread> clients;
    std::vector<std::string> failures(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < kPerClient; ++i) {
                const auto input =
                    fx.randomInput(4000 + 31 * c + 100 * i);
                if (cluster.infer(input) != fx.oracle(input)) {
                    failures[c] = "client " + std::to_string(c) +
                        " request " + std::to_string(i);
                    return;
                }
            }
        });
    }
    for (auto &client : clients)
        client.join();
    for (const std::string &failure : failures)
        EXPECT_TRUE(failure.empty()) << failure;
}

TEST(ClusterEngine, StopDrainsAndRejectsLateSubmits)
{
    ClusterFixture fx;
    auto cluster = std::make_unique<serve::ClusterEngine>(
        fx.model, fx.options(2, serve::Placement::ColumnPartitioned));

    std::vector<std::vector<std::int64_t>> inputs;
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < 24; ++i) {
        inputs.push_back(fx.randomInput(5000 + i));
        futures.push_back(cluster->submit(inputs.back()));
    }
    cluster->stop();
    for (int i = 0; i < 24; ++i)
        EXPECT_EQ(futures[i].get(), fx.oracle(inputs[i]))
            << "request " << i;

    auto late = cluster->submit(fx.randomInput(6000));
    EXPECT_THROW(late.get(), engine::ServerStopped);
    cluster.reset(); // double-stop via destructor is fine
}

TEST(ClusterEngine, DeadlinesPropagateToShardsAndAreCounted)
{
    ClusterFixture fx;
    // A forming deadline far longer than the request deadlines and a
    // batch cap the burst cannot reach: every request must expire in
    // the queue before the batcher would run it.
    serve::ClusterOptions opts =
        fx.options(2, serve::Placement::Replicated);
    opts.server.max_batch = 1000;
    opts.server.max_delay = std::chrono::milliseconds(200);
    serve::ClusterEngine cluster(fx.model, opts);

    engine::SubmitOptions submit;
    submit.deadline = std::chrono::milliseconds(2);
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < 12; ++i)
        futures.push_back(
            cluster.submit(fx.randomInput(7000 + i), submit));
    for (auto &future : futures)
        EXPECT_THROW(future.get(), engine::DeadlineExpired);

    const serve::ClusterStats stats = cluster.stats();
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_EQ(stats.dropped_deadline, 12u);
}

TEST(ClusterEngine, PartitionedDeadlineDropsCountClientRequestsOnce)
{
    ClusterFixture fx;
    serve::ClusterOptions opts =
        fx.options(4, serve::Placement::ColumnPartitioned);
    opts.server.max_batch = 1000;
    opts.server.max_delay = std::chrono::milliseconds(200);
    serve::ClusterEngine cluster(fx.model, opts);

    engine::SubmitOptions submit;
    submit.deadline = std::chrono::milliseconds(2);
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < 6; ++i)
        futures.push_back(
            cluster.submit(fx.randomInput(8000 + i), submit));
    for (auto &future : futures)
        EXPECT_THROW(future.get(), engine::DeadlineExpired);

    // 6 client requests dropped — not 6 x 4 shard sub-requests.
    const serve::ClusterStats stats = cluster.stats();
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_EQ(stats.dropped_deadline, 6u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(ClusterEngineDeath, RejectsWrongInputSizeAndZeroShards)
{
    ClusterFixture fx;
    serve::ClusterEngine cluster(
        fx.model, fx.options(1, serve::Placement::Replicated));
    EXPECT_EXIT(cluster.submit(std::vector<std::int64_t>(5, 1)),
                ::testing::ExitedWithCode(1), "input length");

    serve::ClusterOptions zero;
    zero.shards = 0;
    EXPECT_EXIT(serve::ClusterEngine(fx.model, zero),
                ::testing::ExitedWithCode(1), "at least one shard");
}

TEST(ClusterEngine, KernelVariantsServeBitExactOnEveryPlacement)
{
    ClusterFixture fx;
    for (const core::kernel::KernelVariant kernel :
         {core::kernel::KernelVariant::Reference,
          core::kernel::KernelVariant::Vector,
          core::kernel::KernelVariant::Fused,
          core::kernel::KernelVariant::ActSparse,
          core::kernel::KernelVariant::Compressed}) {
        // The decode-on-the-fly kernel must serve bit-exact with the
        // compressed stream side by side (decoded residency) and as
        // the only resident form (compressed residency).
        const std::vector<core::kernel::Residency> residencies =
            kernel == core::kernel::KernelVariant::Compressed
                ? std::vector<core::kernel::Residency>{
                      core::kernel::Residency::Decoded,
                      core::kernel::Residency::Compressed}
                : std::vector<core::kernel::Residency>{
                      core::kernel::Residency::Decoded};
        for (const core::kernel::Residency residency : residencies) {
            for (const serve::Placement placement :
                 {serve::Placement::Replicated,
                  serve::Placement::ColumnPartitioned}) {
                serve::ClusterOptions opts = fx.options(2, placement);
                opts.kernel = kernel;
                opts.residency = residency;
                serve::ClusterEngine cluster(fx.model, opts);
                for (int i = 0; i < 6; ++i) {
                    const auto input = fx.randomInput(7000 + i);
                    EXPECT_EQ(cluster.infer(input), fx.oracle(input))
                        << core::kernel::kernelVariantName(kernel)
                        << ", "
                        << core::kernel::residencyName(residency)
                        << ", " << serve::placementName(placement)
                        << ", input " << i;
                }
            }
        }
    }
}

/**
 * The PR 3 caveat, asserted: column-partitioned placement reorders
 * the saturating adds (each shard saturates its own partial before
 * the gather sums them), so a layer whose partials saturate can
 * diverge from the oracle — replicated placement cannot. Weights
 * +127 in columns 0-1 and -127 in columns 2-3 with a ones input
 * drive each row's accumulator to +sat then down: the oracle walks
 * 32512, sat -> 32767, 255, -32257, while two column shards produce
 * sat(+65024) = 32767 and sat(-65024) = -32768, gathering to -1.
 * Saturating workloads must shard replicated.
 */
TEST(ClusterEngine, ColumnPartitionedSaturationCaveatIsReal)
{
    core::EieConfig config;
    config.n_pe = 2;

    nn::SparseMatrix weights(4, 4);
    for (std::size_t j = 0; j < 4; ++j)
        for (std::size_t i = 0; i < 4; ++i)
            weights.insert(i, j, j < 2 ? 127.0f : -127.0f);
    compress::CompressionOptions copts;
    copts.interleave.n_pe = 2;
    const auto layer = compress::CompressedLayer::compress(
        "saturating", weights, copts);
    // None (not ReLU) keeps the negative results observable.
    const auto model = serve::LoadedModel::fromStorage(
        "saturating", 1, layer.storage(), nn::Nonlinearity::None,
        config);

    const core::FunctionalModel functional(config);
    const auto input = functional.quantizeInput(nn::Vector(4, 1.0f));
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::None, config);
    const auto oracle = functional.run(plan, input).output_raw;
    ASSERT_EQ(oracle, std::vector<std::int64_t>(4, -32257));

    serve::ClusterOptions opts;
    opts.shards = 2;
    opts.placement = serve::Placement::Replicated;
    serve::ClusterEngine replicated(model, opts);
    EXPECT_EQ(replicated.infer(input), oracle);

    opts.placement = serve::Placement::ColumnPartitioned;
    serve::ClusterEngine partitioned(model, opts);
    ASSERT_EQ(partitioned.columnBounds(),
              (std::vector<std::size_t>{0, 2, 4}));
    const auto partitioned_out = partitioned.infer(input);
    EXPECT_EQ(partitioned_out, std::vector<std::int64_t>(4, -1));
    EXPECT_NE(partitioned_out, oracle)
        << "partitioned placement unexpectedly matched the oracle on "
           "a saturating layer — if the gather semantics changed, "
           "update the documented caveat";
}

TEST(ClusterEngine, PlacementNamesRoundTrip)
{
    EXPECT_EQ(serve::placementFromName("replicated"),
              serve::Placement::Replicated);
    EXPECT_EQ(serve::placementFromName("partitioned"),
              serve::Placement::ColumnPartitioned);
    EXPECT_STREQ(serve::placementName(serve::Placement::Replicated),
                 "replicated");
    EXPECT_STREQ(
        serve::placementName(serve::Placement::ColumnPartitioned),
        "partitioned");
}

} // namespace
