/**
 * @file
 * ModelRegistry tests: publish/list/load round trips through the
 * EIEM file format, version resolution, the shared-artifact cache,
 * and bit-exactness of a registry-loaded plan against the original
 * in-process compression pipeline — including re-planning for a
 * different PE count than the file was encoded with.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include <unistd.h>

#include "core/functional.hh"
#include "helpers.hh"
#include "serve/registry.hh"

namespace {

using namespace eie;
namespace fs = std::filesystem;

/** A unique scratch registry directory, removed on destruction. */
struct ScratchDir
{
    fs::path path;

    ScratchDir()
    {
        static int counter = 0;
        path = fs::temp_directory_path() /
            ("eie_registry_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
        fs::remove_all(path);
    }

    ~ScratchDir() { fs::remove_all(path); }
};

core::EieConfig
makeConfig(unsigned n_pe = 4)
{
    core::EieConfig config;
    config.n_pe = n_pe;
    return config;
}

TEST(ModelRegistry, PublishListLatestHas)
{
    ScratchDir dir;
    serve::ModelRegistry registry(dir.path.string(), makeConfig());

    const auto layer =
        test::randomCompressedLayer(32, 24, 0.3, 4, 101);
    registry.publish("fc6", 1, layer.storage());
    registry.publish("fc6", 3, layer.storage());
    registry.publish("fc7", 2, layer.storage());

    const auto models = registry.list();
    ASSERT_EQ(models.size(), 3u);
    EXPECT_EQ(models[0].name, "fc6");
    EXPECT_EQ(models[0].version, 1u);
    EXPECT_EQ(models[1].name, "fc6");
    EXPECT_EQ(models[1].version, 3u);
    EXPECT_EQ(models[2].name, "fc7");
    EXPECT_EQ(models[2].version, 2u);

    EXPECT_EQ(registry.latestVersion("fc6"), 3u);
    EXPECT_EQ(registry.latestVersion("fc7"), 2u);
    EXPECT_EQ(registry.latestVersion("absent"), 0u);
    EXPECT_TRUE(registry.has("fc6", 3));
    EXPECT_FALSE(registry.has("fc6", 2));
}

TEST(ModelRegistry, LoadedPlanIsBitExactWithTheOriginalPipeline)
{
    ScratchDir dir;
    const core::EieConfig config = makeConfig();
    serve::ModelRegistry registry(dir.path.string(), config);

    const auto layer =
        test::randomCompressedLayer(48, 40, 0.25, 4, 202);
    registry.publish("m", 1, layer.storage());
    const auto loaded = registry.load("m");
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->name(), "m");
    EXPECT_EQ(loaded->version(), 1u);
    EXPECT_EQ(loaded->inputSize(), 40u);
    EXPECT_EQ(loaded->outputSize(), 48u);

    const core::LayerPlan original =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const core::FunctionalModel model(config);
    for (int i = 0; i < 8; ++i) {
        const auto input = model.quantizeInput(
            test::randomActivations(40, 0.5, 300 + i));
        EXPECT_EQ(model.run(loaded->plan(), input).output_raw,
                  model.run(original, input).output_raw)
            << "input " << i;
    }
}

TEST(ModelRegistry, ReplansForADifferentPeCountBitExactly)
{
    ScratchDir dir;
    // The file is encoded for 4 PEs; the serving machine has 8. The
    // per-accumulator MAC order is column-ascending regardless of the
    // interleaving, so outputs must not change.
    const auto layer =
        test::randomCompressedLayer(48, 40, 0.25, 4, 404);
    const core::EieConfig config4 = makeConfig(4);
    const core::EieConfig config8 = makeConfig(8);

    serve::ModelRegistry registry(dir.path.string(), config8);
    registry.publish("m", 1, layer.storage());
    const auto loaded = registry.load("m");
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->plan().n_pe, 8u);

    const core::LayerPlan original =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config4);
    const core::FunctionalModel model4(config4);
    const core::FunctionalModel model8(config8);
    for (int i = 0; i < 8; ++i) {
        const auto input = model4.quantizeInput(
            test::randomActivations(40, 0.5, 500 + i));
        EXPECT_EQ(model8.run(loaded->plan(), input).output_raw,
                  model4.run(original, input).output_raw)
            << "input " << i;
    }
}

TEST(ModelRegistry, VersionZeroResolvesLatestAndCacheShares)
{
    ScratchDir dir;
    serve::ModelRegistry registry(dir.path.string(), makeConfig());

    const auto v1 = test::randomCompressedLayer(32, 24, 0.3, 4, 601);
    const auto v2 = test::randomCompressedLayer(32, 24, 0.3, 4, 602);
    registry.publish("m", 1, v1.storage());
    registry.publish("m", 2, v2.storage());

    const auto latest = registry.load("m");
    ASSERT_NE(latest, nullptr);
    EXPECT_EQ(latest->version(), 2u);

    // Cache identity: the same (name, version) is one artifact.
    EXPECT_EQ(registry.load("m", 2).get(), latest.get());
    EXPECT_EQ(registry.load("m", 0).get(), latest.get());
    EXPECT_NE(registry.load("m", 1).get(), latest.get());
}

TEST(ModelRegistry, RepublishInvalidatesTheCachedArtifact)
{
    ScratchDir dir;
    serve::ModelRegistry registry(dir.path.string(), makeConfig());

    const auto v1 = test::randomCompressedLayer(32, 24, 0.3, 4, 701);
    registry.publish("m", 1, v1.storage());
    const auto before = registry.load("m", 1);
    ASSERT_NE(before, nullptr);

    const auto v2 = test::randomCompressedLayer(32, 24, 0.3, 4, 702);
    registry.publish("m", 1, v2.storage());
    const auto after = registry.load("m", 1);
    ASSERT_NE(after, nullptr);
    EXPECT_NE(after.get(), before.get());
}

TEST(ModelRegistry, MissingModelsReturnNull)
{
    ScratchDir dir;
    serve::ModelRegistry registry(dir.path.string(), makeConfig());
    EXPECT_EQ(registry.load("nope"), nullptr);
    EXPECT_EQ(registry.load("nope", 7), nullptr);
    EXPECT_EQ(registry.load("../escape"), nullptr);
    EXPECT_TRUE(registry.list().empty());
}

TEST(ModelRegistryDeath, RejectsInvalidNamesAndVersionZero)
{
    ScratchDir dir;
    serve::ModelRegistry registry(dir.path.string(), makeConfig());
    const auto layer =
        test::randomCompressedLayer(32, 24, 0.3, 4, 801);
    EXPECT_EXIT(registry.publish("bad/name", 1, layer.storage()),
                ::testing::ExitedWithCode(1), "invalid model name");
    EXPECT_EXIT(registry.publish("ok", 0, layer.storage()),
                ::testing::ExitedWithCode(1), "versions start at 1");
}

} // namespace
