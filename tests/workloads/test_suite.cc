/**
 * @file
 * Benchmark suite tests: Table III definitions, deterministic
 * generation, and end-to-end suite execution on the simulator.
 */

#include <gtest/gtest.h>

#include "nn/tensor.hh"
#include "workloads/suite.hh"

namespace {

using namespace eie;
using namespace eie::workloads;

TEST(Suite, TableIIIRows)
{
    const auto &benchmarks = suite();
    ASSERT_EQ(benchmarks.size(), 9u);

    const auto &alex6 = findBenchmark("Alex-6");
    EXPECT_EQ(alex6.input, 9216u);
    EXPECT_EQ(alex6.output, 4096u);
    EXPECT_DOUBLE_EQ(alex6.weight_density, 0.09);
    EXPECT_DOUBLE_EQ(alex6.act_density, 0.351);

    const auto &vgg6 = findBenchmark("VGG-6");
    EXPECT_EQ(vgg6.input, 25088u);
    EXPECT_DOUBLE_EQ(vgg6.weight_density, 0.04);

    const auto &nt_lstm = findBenchmark("NT-LSTM");
    EXPECT_EQ(nt_lstm.input, 1201u);  // 600 + 600 + 1
    EXPECT_EQ(nt_lstm.output, 2400u); // 4 gates x 600
    EXPECT_DOUBLE_EQ(nt_lstm.act_density, 1.0);
}

TEST(Suite, FindBenchmarkFatalOnUnknown)
{
    EXPECT_EXIT(findBenchmark("Alex-9"), ::testing::ExitedWithCode(1),
                "no benchmark");
}

TEST(Suite, WorkloadConversion)
{
    const auto w = workloadOf(findBenchmark("NT-Wd"));
    EXPECT_EQ(w.rows, 8791u);
    EXPECT_EQ(w.cols, 600u);
    EXPECT_DOUBLE_EQ(w.weight_density, 0.11);
}

TEST(SuiteRunner, GeneratedStatisticsMatchTargets)
{
    SuiteRunner runner;
    const auto &bench = findBenchmark("Alex-8");
    const auto &layer = runner.layer(bench);
    EXPECT_EQ(layer.outputSize(), 1000u);
    EXPECT_EQ(layer.inputSize(), 4096u);
    EXPECT_NEAR(layer.quantizedWeights().density(), 0.25, 0.01);

    const auto &input = runner.input(bench);
    EXPECT_NEAR(1.0 - nn::zeroFraction(input), 0.375, 0.005);
}

TEST(SuiteRunner, DeterministicAcrossInstances)
{
    SuiteRunner a(7);
    SuiteRunner b(7);
    const auto &bench = findBenchmark("NT-We");
    EXPECT_EQ(a.layer(bench).quantizedWeights().nnz(),
              b.layer(bench).quantizedWeights().nnz());
    EXPECT_EQ(a.input(bench), b.input(bench));

    SuiteRunner c(8);
    EXPECT_NE(a.input(bench), c.input(bench));
}

TEST(SuiteRunner, CachesLayers)
{
    SuiteRunner runner;
    const auto &bench = findBenchmark("NT-We");
    const auto &first = runner.layer(bench);
    const auto &second = runner.layer(bench);
    EXPECT_EQ(&first, &second);
}

TEST(SuiteRunner, EndToEndRunOnSmallBenchmark)
{
    SuiteRunner runner;
    const auto &bench = findBenchmark("NT-We"); // smallest layer
    core::EieConfig config;
    config.n_pe = 16;
    const auto result = runner.runEie(bench, config);

    EXPECT_EQ(result.output_raw.size(), 600u);
    EXPECT_GT(result.stats.cycles, 0u);
    // Dense activations: every input column is broadcast, except the
    // handful whose magnitude quantises to zero in 16-bit fixed
    // point (extra dynamic sparsity the accelerator rightly skips).
    EXPECT_LE(result.stats.broadcasts, 4096u);
    EXPECT_GE(result.stats.broadcasts, 4050u);
    EXPECT_GE(result.stats.cycles, result.stats.theoretical_cycles);
}

TEST(SuiteRunner, PrebuiltPlanMatchesFreshPlan)
{
    SuiteRunner runner;
    const auto &bench = findBenchmark("NT-We");
    core::EieConfig config;
    config.n_pe = 8;
    const auto plan = runner.plan(bench, config);
    const auto a = runner.runEie(bench, config);
    const auto b = runner.runEieWithPlan(bench, config, plan);
    EXPECT_EQ(a.output_raw, b.output_raw);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

} // namespace
