/**
 * @file
 * Fixed-point arithmetic tests — the datapath semantics every other
 * component relies on (Figure 10's precision study in particular).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fixed_point.hh"

namespace {

using namespace eie;

TEST(FixedFormat, RangesAndLsb)
{
    EXPECT_EQ(fixed16.maxRaw(), 32767);
    EXPECT_EQ(fixed16.minRaw(), -32768);
    EXPECT_DOUBLE_EQ(fixed16.lsb(), 1.0 / 256.0);
    EXPECT_NEAR(fixed16.maxValue(), 127.996, 0.001);
    EXPECT_DOUBLE_EQ(fixed16.minValue(), -128.0);

    const FixedFormat q8{8, 4};
    EXPECT_EQ(q8.maxRaw(), 127);
    EXPECT_EQ(q8.minRaw(), -128);
    EXPECT_DOUBLE_EQ(q8.lsb(), 1.0 / 16.0);
}

TEST(Quantize, RoundTripWithinHalfLsb)
{
    for (double x : {0.0, 1.0, -1.0, 0.4, -0.4, 3.14159, -2.71828,
                     100.0, -100.0}) {
        const auto raw = quantize(x, fixed16);
        EXPECT_NEAR(toDouble(raw, fixed16), x,
                    quantizationErrorBound(fixed16) + 1e-12)
            << "x = " << x;
    }
}

TEST(Quantize, RoundsHalfAwayFromZero)
{
    // 0.5 lsb cases: 1/512 rounds up to 1/256; -1/512 rounds to -1/256.
    EXPECT_EQ(quantize(1.0 / 512.0, fixed16), 1);
    EXPECT_EQ(quantize(-1.0 / 512.0, fixed16), -1);
}

TEST(Quantize, SaturatesAtRangeEnds)
{
    EXPECT_EQ(quantize(1e9, fixed16), fixed16.maxRaw());
    EXPECT_EQ(quantize(-1e9, fixed16), fixed16.minRaw());
    EXPECT_EQ(quantize(200.0, fixed16), fixed16.maxRaw());
}

TEST(Mac, BasicMultiplyAccumulate)
{
    // acc = 0; w = 1.5, a = 2.0 -> 3.0.
    const auto w = quantize(1.5, fixed16);
    const auto a = quantize(2.0, fixed16);
    const auto acc = macFixed(0, w, a, fixed16, fixed16);
    EXPECT_DOUBLE_EQ(toDouble(acc, fixed16), 3.0);
}

TEST(Mac, ShiftTruncatesTowardNegativeInfinity)
{
    // w = a = 1 lsb: product = 1 raw with 16 fraction bits; realigned
    // to 8 fraction bits -> 0 (truncation), for both signs of acc.
    const auto tiny = macFixed(0, 1, 1, fixed16, fixed16);
    EXPECT_EQ(tiny, 0);
    // (-1 raw) * (1 raw) = -1 >> 8 = -1 (arithmetic shift).
    const auto neg = macFixed(0, -1, 1, fixed16, fixed16);
    EXPECT_EQ(neg, -1);
}

TEST(Mac, SaturatesInsteadOfWrapping)
{
    const auto big = quantize(127.0, fixed16);
    auto acc = macFixed(fixed16.maxRaw(), big, big, fixed16, fixed16);
    EXPECT_EQ(acc, fixed16.maxRaw());
    acc = macFixed(fixed16.minRaw(), big, -big, fixed16, fixed16);
    EXPECT_EQ(acc, fixed16.minRaw());
}

TEST(Mac, MixedFormats)
{
    // 8-bit operands accumulated into 16-bit: shift = 4+4-8 < 0,
    // product shifts left.
    const FixedFormat q8{8, 4};
    const auto w = quantize(1.0, q8);  // 16
    const auto a = quantize(2.0, q8);  // 32
    const auto acc = macFixed(0, w, a, q8, fixed16);
    EXPECT_DOUBLE_EQ(toDouble(acc, fixed16), 2.0);
}

TEST(Relu, ClampsNegatives)
{
    EXPECT_EQ(reluRaw(-1), 0);
    EXPECT_EQ(reluRaw(0), 0);
    EXPECT_EQ(reluRaw(123), 123);
    EXPECT_EQ(reluRaw(fixed16.minRaw()), 0);
}

TEST(QuantizeDeath, RejectsBadFormatsAndNan)
{
    EXPECT_DEATH(quantize(1.0, FixedFormat{1, 0}), "width");
    EXPECT_DEATH(quantize(1.0, FixedFormat{16, 16}), "fraction");
    EXPECT_DEATH(quantize(std::nan(""), fixed16), "NaN");
}

/** Property sweep: quantisation error bounded for every format. */
class QuantizeSweep : public ::testing::TestWithParam<FixedFormat>
{};

TEST_P(QuantizeSweep, ErrorBoundHolds)
{
    const FixedFormat fmt = GetParam();
    const double bound = quantizationErrorBound(fmt);
    for (int i = -100; i <= 100; ++i) {
        const double x = i * 0.013;
        if (x >= fmt.minValue() && x <= fmt.maxValue()) {
            const auto raw = quantize(x, fmt);
            EXPECT_LE(std::abs(toDouble(raw, fmt) - x), bound + 1e-12);
            EXPECT_GE(raw, fmt.minRaw());
            EXPECT_LE(raw, fmt.maxRaw());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, QuantizeSweep,
    ::testing::Values(FixedFormat{16, 8}, FixedFormat{8, 4},
                      FixedFormat{32, 16}, FixedFormat{16, 12},
                      FixedFormat{12, 6}, FixedFormat{4, 2}));

} // namespace
