/**
 * @file
 * Bit-manipulation helper tests.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace {

using namespace eie;

TEST(Bits, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(4), 0xfu);
    EXPECT_EQ(mask(16), 0xffffu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Bits, ExtractAndInsert)
{
    EXPECT_EQ(bits(0xabcd, 4, 4), 0xcu);
    EXPECT_EQ(bits(0xabcd, 0, 16), 0xabcdu);
    EXPECT_EQ(bits(0xff, 8, 8), 0u);
    EXPECT_EQ(insertBits(0x0000, 4, 4, 0xc), 0xc0u);
    EXPECT_EQ(insertBits(0xffff, 4, 8, 0), 0xf00fu);
    // Field wider than count is truncated.
    EXPECT_EQ(insertBits(0, 0, 4, 0x123), 0x3u);
}

TEST(Bits, PowersAndLogs)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(63));

    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);

    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(63), 5u);
    EXPECT_EQ(floorLog2(64), 6u);
}

TEST(Bits, DivCeilAndRoundUp)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
    EXPECT_EQ(roundUp(13, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
}

} // namespace
