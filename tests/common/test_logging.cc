/**
 * @file
 * Logging/error discipline tests.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace {

TEST(Logging, WarnCountsAndQuietMode)
{
    const auto before = eie::Logger::warnCount();
    eie::Logger::setQuiet(true);
    warn("a suppressed warning %d", 1);
    warn("another %s", "warning");
    eie::Logger::setQuiet(false);
    EXPECT_EQ(eie::Logger::warnCount(), before + 2);
}

TEST(Logging, InformDoesNotTerminate)
{
    eie::Logger::setQuiet(true);
    inform("status %d", 42);
    eie::Logger::setQuiet(false);
    SUCCEED();
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("user error %d", 7),
                ::testing::ExitedWithCode(1), "user error 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("internal bug"), "internal bug");
}

TEST(LoggingDeath, ConditionalForms)
{
    fatal_if(false, "must not fire");
    panic_if(false, "must not fire");
    EXPECT_EXIT(fatal_if(true, "fires"),
                ::testing::ExitedWithCode(1), "fires");
    EXPECT_DEATH(panic_if(true, "fires"), "fires");
}

} // namespace
