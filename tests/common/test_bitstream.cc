/**
 * @file
 * Bit-granular reader/writer round-trip tests.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/bits.hh"
#include "common/bitstream.hh"
#include "common/random.hh"

namespace {

using namespace eie;

TEST(Bitstream, SingleBits)
{
    BitWriter w;
    w.writeBit(true);
    w.writeBit(false);
    w.writeBit(true);
    EXPECT_EQ(w.bitCount(), 3u);

    BitReader r(w.bytes(), w.bitCount());
    EXPECT_TRUE(r.readBit());
    EXPECT_FALSE(r.readBit());
    EXPECT_TRUE(r.readBit());
    EXPECT_TRUE(r.exhausted());
}

TEST(Bitstream, MultiBitFields)
{
    BitWriter w;
    w.write(0xA, 4);
    w.write(0x3, 2);
    w.write(0x12345, 20);
    w.write(0, 0); // zero-width write is a no-op

    BitReader r(w.bytes(), w.bitCount());
    EXPECT_EQ(r.read(4), 0xAu);
    EXPECT_EQ(r.read(2), 0x3u);
    EXPECT_EQ(r.read(20), 0x12345u);
    EXPECT_TRUE(r.exhausted());
}

TEST(Bitstream, RandomRoundTrip)
{
    Rng rng(5);
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    BitWriter w;
    for (int i = 0; i < 500; ++i) {
        const auto width =
            static_cast<unsigned>(rng.uniformInt(1, 64));
        const auto value = static_cast<std::uint64_t>(
            rng.uniformInt(0, std::numeric_limits<std::int64_t>::max()))
            & mask(width);
        fields.emplace_back(value, width);
        w.write(value, width);
    }
    BitReader r(w.bytes(), w.bitCount());
    for (const auto &[value, width] : fields)
        EXPECT_EQ(r.read(width), value);
    EXPECT_TRUE(r.exhausted());
}

TEST(BitstreamDeath, Underrun)
{
    BitWriter w;
    w.write(0x5, 3);
    BitReader r(w.bytes(), w.bitCount());
    r.read(3);
    EXPECT_DEATH(r.readBit(), "underrun");
}

} // namespace
