/**
 * @file
 * Deterministic RNG tests.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "common/random.hh"

namespace {

using eie::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30))
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

class SampleWithoutReplacement
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(SampleWithoutReplacement, ExactCountSortedDistinct)
{
    const auto [n, k] = GetParam();
    Rng rng(13);
    const auto sample = rng.sampleWithoutReplacement(n, k);
    ASSERT_EQ(sample.size(), k);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
                sample.end());
    for (auto v : sample)
        EXPECT_LT(v, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleWithoutReplacement,
    ::testing::Values(std::pair{10u, 0u}, std::pair{10u, 1u},
                      std::pair{10u, 10u}, std::pair{1000u, 3u},
                      std::pair{1000u, 500u}, std::pair{1000u, 999u},
                      std::pair{4096u, 369u}));

TEST(Rng, SampleCoversPopulation)
{
    // Dense-mode selection (k >= n/8) must still be uniform-ish:
    // every element should be picked sometimes across trials.
    std::vector<int> seen(20, 0);
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        Rng rng(seed);
        for (auto v : rng.sampleWithoutReplacement(20, 5))
            ++seen[v];
    }
    for (int count : seen)
        EXPECT_GT(count, 0);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

} // namespace
