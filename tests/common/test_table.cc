/**
 * @file
 * Text-table printer tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace {

using eie::TextTable;

TEST(TextTable, RendersAlignedPipes)
{
    TextTable table({"Layer", "Speedup", "Share"});
    table.row().add("Alex-6").addRatio(94.0).addPercent(0.351);
    table.row().add("VGG-6").addRatio(210.2).addPercent(0.183);

    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();

    EXPECT_NE(out.find("| Layer "), std::string::npos);
    EXPECT_NE(out.find("94.0x"), std::string::npos);
    EXPECT_NE(out.find("35.1%"), std::string::npos);
    EXPECT_NE(out.find("210.2x"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("|---"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, NumericFormats)
{
    TextTable table({"a", "b", "c"});
    table.row().add(3.14159, 3).add(std::int64_t{-7}).add(42u);
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("3.142"), std::string::npos);
    EXPECT_NE(os.str().find("-7"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(TextTableDeath, TooManyCellsPanics)
{
    TextTable table({"only"});
    table.row().add("x");
    EXPECT_DEATH(table.add("y"), "already has");
}

TEST(TextTableDeath, AddBeforeRowPanics)
{
    TextTable table({"a"});
    EXPECT_DEATH(table.add("x"), "row()");
}

} // namespace
