/**
 * @file
 * ExecutionBackend tests: the three execution paths selected by name
 * must produce bit-identical raw outputs on randomized layers, the
 * timed backend must report the same cycles as driving the
 * Accelerator by hand, and the factory must reject unknown names and
 * broken stacks.
 */

#include <gtest/gtest.h>

#include "core/accelerator.hh"
#include "core/functional.hh"
#include "core/network_runner.hh"
#include "engine/backend.hh"
#include "engine/backends.hh"
#include "helpers.hh"

namespace {

using namespace eie;

core::kernel::Batch
makeFrames(const core::FunctionalModel &model, std::size_t n,
           std::size_t batch, double density, std::uint64_t seed)
{
    core::kernel::Batch frames;
    for (std::size_t b = 0; b < batch; ++b)
        frames.push_back(model.quantizeInput(
            test::randomActivations(n, density, seed + 31 * b)));
    return frames;
}

TEST(ExecutionBackend, AllBackendsBitIdenticalOnRandomizedLayers)
{
    struct Point
    {
        unsigned n_pe;
        unsigned regfile; // small values force several row batches
        unsigned ptr_cap; // small values force several column passes
        std::size_t mid, in, out;
        double w_density, a_density;
    };
    const Point points[] = {
        {4, 64, 16384, 96, 64, 48, 0.25, 0.5},
        {8, 8, 33, 120, 96, 40, 0.15, 0.4}, // batches x passes grid
    };

    std::uint64_t seed = 4000;
    for (const Point &p : points) {
        core::EieConfig config;
        config.n_pe = p.n_pe;
        config.regfile_entries = p.regfile;
        config.ptr_capacity = p.ptr_cap;

        const auto l1 = test::randomCompressedLayer(
            p.mid, p.in, p.w_density, p.n_pe, seed++);
        const auto l2 = test::randomCompressedLayer(
            p.out, p.mid, p.w_density, p.n_pe, seed++);
        const auto plan1 =
            core::planLayer(l1, nn::Nonlinearity::ReLU, config);
        const auto plan2 =
            core::planLayer(l2, nn::Nonlinearity::None, config);
        const std::vector<const core::LayerPlan *> plans{&plan1,
                                                         &plan2};

        const core::FunctionalModel model(config);
        const auto frames =
            makeFrames(model, p.in, 5, p.a_density, seed += 100);

        core::kernel::Batch reference;
        for (const std::string &name : engine::backendNames()) {
            for (unsigned threads : {1u, 3u}) {
                const auto backend = engine::makeBackend(
                    name, config, plans, threads);
                EXPECT_EQ(backend->name(), name);
                EXPECT_EQ(backend->inputSize(), p.in);
                EXPECT_EQ(backend->outputSize(), p.out);
                EXPECT_EQ(backend->layerCount(), 2u);

                const auto report = backend->runBatch(frames);
                ASSERT_EQ(report.outputs.size(), frames.size());
                if (reference.empty())
                    reference = report.outputs;
                for (std::size_t b = 0; b < frames.size(); ++b)
                    EXPECT_EQ(report.outputs[b], reference[b])
                        << name << ", " << threads << " threads, frame "
                        << b;

                if (backend->timed()) {
                    ASSERT_EQ(report.stats.size(), frames.size());
                    EXPECT_EQ(report.stats[0].size(), 2u);
                    EXPECT_GT(report.totalCycles(), 0u);
                } else {
                    EXPECT_TRUE(report.stats.empty());
                    EXPECT_EQ(report.totalCycles(), 0u);
                }
            }
        }
    }
}

TEST(ExecutionBackend, SimBackendCyclesMatchManualAccelerator)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto layer = test::randomCompressedLayer(64, 48, 0.2, 4, 610);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);

    const core::FunctionalModel model(config);
    const auto input = model.quantizeInput(
        test::randomActivations(48, 0.5, 611));

    const auto backend =
        engine::makeBackend("sim", config, {&plan});
    const auto report = backend->run(input);

    const core::Accelerator accel(config);
    const auto manual = accel.run(plan, input);

    EXPECT_EQ(report.outputs[0], manual.output_raw);
    ASSERT_EQ(report.stats.size(), 1u);
    ASSERT_EQ(report.stats[0].size(), 1u);
    EXPECT_EQ(report.stats[0][0].cycles, manual.stats.cycles);
    EXPECT_EQ(report.stats[0][0].total_entries,
              manual.stats.total_entries);
    EXPECT_EQ(report.totalCycles(), manual.stats.cycles);
    EXPECT_NEAR(report.totalTimeUs(), manual.stats.timeUs(), 1e-12);
}

TEST(ExecutionBackend, NetworkRunnerHandsOutCachedBackends)
{
    core::EieConfig config;
    config.n_pe = 4;
    core::NetworkRunner net(config);
    net.addLayer(test::randomCompressedLayer(32, 24, 0.3, 4, 620),
                 nn::Nonlinearity::ReLU);

    engine::ExecutionBackend &compiled = net.backend("compiled");
    engine::ExecutionBackend &again = net.backend("compiled");
    EXPECT_EQ(&compiled, &again); // cached per (name, threads, kernel)
    EXPECT_NE(&compiled, &net.backend("compiled", 2));
    EXPECT_NE(&compiled, &net.backend("scalar"));
    EXPECT_NE(&compiled,
              &net.backend("compiled", 1,
                           core::kernel::KernelVariant::Vector));
    // Non-compiled backends normalize the kernel key: one instance.
    EXPECT_EQ(&net.backend("scalar"),
              &net.backend("scalar", 1,
                           core::kernel::KernelVariant::Fused));

    // addLayer invalidates: a new stack means new backends.
    net.addLayer(test::randomCompressedLayer(16, 32, 0.3, 4, 621),
                 nn::Nonlinearity::ReLU);
    EXPECT_EQ(net.backend("compiled").layerCount(), 2u);
}

TEST(ExecutionBackend, FunctionalRunBatchCachesCompiledBackend)
{
    // The satellite regression: FunctionalModel::runBatch used to
    // recompile the plan per call. Repeat calls must agree with the
    // scalar interpreter (cache hit), and swapping in a different
    // plan (same model) must not serve the stale kernel.
    core::EieConfig config;
    config.n_pe = 2;
    const core::FunctionalModel model(config);

    const auto layer_a = test::randomCompressedLayer(40, 24, 0.3, 2, 630);
    const auto layer_b = test::randomCompressedLayer(40, 24, 0.3, 2, 631);
    const auto plan_a =
        core::planLayer(layer_a, nn::Nonlinearity::ReLU, config);
    const auto plan_b =
        core::planLayer(layer_b, nn::Nonlinearity::ReLU, config);

    const auto frames = makeFrames(model, 24, 3, 0.6, 632);
    for (const auto *plan : {&plan_a, &plan_b, &plan_a, &plan_a}) {
        const auto outputs = model.runBatch(*plan, frames);
        for (std::size_t b = 0; b < frames.size(); ++b)
            EXPECT_EQ(outputs[b],
                      model.run(*plan, frames[b]).output_raw);
    }
}

TEST(ExecutionBackend, CompiledKernelVariantsMatchScalarOnAStack)
{
    core::EieConfig config;
    config.n_pe = 4;
    const auto l1 = test::randomCompressedLayer(96, 64, 0.25, 4, 650);
    const auto l2 = test::randomCompressedLayer(48, 96, 0.2, 4, 651);
    const auto plan1 =
        core::planLayer(l1, nn::Nonlinearity::ReLU, config);
    const auto plan2 =
        core::planLayer(l2, nn::Nonlinearity::ReLU, config);
    const std::vector<const core::LayerPlan *> plans{&plan1, &plan2};

    const core::FunctionalModel model(config);
    const auto frames = makeFrames(model, 64, 9, 0.5, 652);
    const auto scalar = engine::makeBackend("scalar", config, plans);
    const auto reference = scalar->runBatch(frames).outputs;

    for (const core::kernel::KernelVariant kernel :
         {core::kernel::KernelVariant::Auto,
          core::kernel::KernelVariant::Reference,
          core::kernel::KernelVariant::Vector,
          core::kernel::KernelVariant::Fused,
          core::kernel::KernelVariant::ActSparse,
          core::kernel::KernelVariant::Compressed}) {
        // Compressed residency keeps only the compressed stream and
        // resolves every variant request to the decode-on-the-fly
        // path, so all kernels stay valid — and must stay bit-exact.
        for (const core::kernel::Residency residency :
             {core::kernel::Residency::Decoded,
              core::kernel::Residency::Compressed}) {
            for (const unsigned threads : {1u, 4u}) {
                const auto backend =
                    engine::makeBackend("compiled", config, plans,
                                        threads, kernel, residency);
                const auto *compiled =
                    dynamic_cast<engine::CompiledBackend *>(
                        backend.get());
                ASSERT_NE(compiled, nullptr);
                EXPECT_EQ(compiled->kernel(), kernel);
                EXPECT_EQ(backend->runBatch(frames).outputs,
                          reference)
                    << core::kernel::kernelVariantName(kernel) << ", "
                    << core::kernel::residencyName(residency) << ", "
                    << threads << " threads";
            }
        }
    }
}

TEST(ExecutionBackendDeath, UnknownNameAndBrokenStacks)
{
    core::EieConfig config;
    config.n_pe = 2;
    const auto layer = test::randomCompressedLayer(16, 8, 0.5, 2, 640);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);

    EXPECT_EXIT(engine::makeBackend("vliw", config, {&plan}),
                ::testing::ExitedWithCode(1), "unknown execution");
    EXPECT_EXIT(engine::makeBackend("scalar", config, {}),
                ::testing::ExitedWithCode(1), "at least one layer");
    EXPECT_EXIT(engine::makeBackend("scalar", config, {&plan, &plan}),
                ::testing::ExitedWithCode(1), "chain");

    // An explicit "vector" request on formats that overflow 32-bit
    // lanes must fail loudly at construction, not silently diverge.
    core::EieConfig narrow = config;
    narrow.weight_format = FixedFormat{16, 6};
    narrow.act_format = FixedFormat{16, 13};
    const auto narrow_plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, narrow);
    EXPECT_EXIT(
        engine::makeBackend("compiled", narrow, {&narrow_plan}, 1,
                            core::kernel::KernelVariant::Vector),
        ::testing::ExitedWithCode(1), "not bit-exact");
}

} // namespace
