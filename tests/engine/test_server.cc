/**
 * @file
 * InferenceServer tests: bit-exact outputs and request/response
 * pairing under concurrent submitters, micro-batch forming bounds,
 * graceful drain on stop, and statistics sanity. The concurrent
 * tests double as the ThreadSanitizer workload in tools/check.sh.
 */

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "core/functional.hh"
#include "core/network_runner.hh"
#include "engine/backend.hh"
#include "engine/server.hh"
#include "helpers.hh"

namespace {

using namespace eie;

/** A small two-layer network plus its scalar oracle. */
struct ServingFixture
{
    core::EieConfig config;
    core::NetworkRunner net;
    core::FunctionalModel model;

    ServingFixture() : net(makeConfig()), model(makeConfig())
    {
        config = makeConfig();
        net.addLayer(test::randomCompressedLayer(48, 32, 0.25, 4, 701),
                     nn::Nonlinearity::ReLU);
        net.addLayer(test::randomCompressedLayer(24, 48, 0.25, 4, 702),
                     nn::Nonlinearity::ReLU);
    }

    static core::EieConfig
    makeConfig()
    {
        core::EieConfig config;
        config.n_pe = 4;
        return config;
    }

    std::unique_ptr<engine::ExecutionBackend>
    compiledBackend(unsigned threads = 1) const
    {
        return engine::makeBackend("compiled", config,
                                   {&net.plan(0), &net.plan(1)},
                                   threads);
    }

    std::vector<std::int64_t>
    randomInput(std::uint64_t seed) const
    {
        return model.quantizeInput(
            test::randomActivations(32, 0.6, seed));
    }

    std::vector<std::int64_t>
    oracle(const std::vector<std::int64_t> &input) const
    {
        return net.backend("scalar").run(input).outputs.front();
    }
};

TEST(InferenceServer, ConcurrentSubmittersBitExactAndOrdered)
{
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 8;
    options.max_delay = std::chrono::microseconds(200);
    engine::InferenceServer server(fx.compiledBackend(2), options);

    constexpr int kClients = 4;
    constexpr int kPerClient = 32;

    // Each client thread submits its own request sequence and keeps
    // the futures in submission order: the response of request i must
    // be the oracle output of input i (no cross-wiring between
    // clients or within a client).
    std::vector<std::thread> clients;
    std::vector<std::vector<std::vector<std::int64_t>>> inputs(kClients);
    std::vector<std::vector<std::vector<std::int64_t>>> outputs(
        kClients);
    for (int c = 0; c < kClients; ++c) {
        for (int i = 0; i < kPerClient; ++i)
            inputs[c].push_back(
                fx.randomInput(900 + 37 * c + 1000 * i));
        outputs[c].resize(kPerClient);
        clients.emplace_back([&, c] {
            std::vector<std::future<std::vector<std::int64_t>>> futures;
            for (int i = 0; i < kPerClient; ++i)
                futures.push_back(server.submit(inputs[c][i]));
            for (int i = 0; i < kPerClient; ++i)
                outputs[c][i] = futures[i].get();
        });
    }
    for (auto &client : clients)
        client.join();

    for (int c = 0; c < kClients; ++c)
        for (int i = 0; i < kPerClient; ++i)
            EXPECT_EQ(outputs[c][i], fx.oracle(inputs[c][i]))
                << "client " << c << ", request " << i;

    const engine::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kClients * kPerClient));
    EXPECT_GE(stats.batches, 1u);
    EXPECT_LE(stats.batches, stats.requests);
    EXPECT_GE(stats.mean_batch, 1.0);
    EXPECT_LE(stats.p50_latency_us, stats.p99_latency_us + 1e-9);
    EXPECT_LE(stats.p99_latency_us, stats.max_latency_us + 1e-9);
    EXPECT_GE(stats.max_queue_depth, 1u);
}

TEST(InferenceServer, MaxBatchOneServesEveryRequestAlone)
{
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 1;
    engine::InferenceServer server(fx.compiledBackend(), options);

    for (int i = 0; i < 10; ++i) {
        const auto input = fx.randomInput(1200 + i);
        EXPECT_EQ(server.infer(input), fx.oracle(input));
    }
    const engine::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, 10u);
    EXPECT_EQ(stats.batches, 10u); // batch cap of one: no coalescing
    EXPECT_DOUBLE_EQ(stats.mean_batch, 1.0);
}

TEST(InferenceServer, BurstCoalescesIntoFewerSweeps)
{
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 16;
    // A generous deadline so the burst below reliably forms batches
    // instead of racing the batcher request by request.
    options.max_delay = std::chrono::milliseconds(50);
    engine::InferenceServer server(fx.compiledBackend(), options);

    constexpr int kRequests = 64;
    std::vector<std::vector<std::int64_t>> inputs;
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < kRequests; ++i)
        inputs.push_back(fx.randomInput(1300 + i));
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(server.submit(inputs[i]));
    for (int i = 0; i < kRequests; ++i)
        EXPECT_EQ(futures[i].get(), fx.oracle(inputs[i]));

    const engine::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kRequests));
    // 64 requests at max_batch 16 need at least 4 sweeps; coalescing
    // must do visibly better than one sweep per request.
    EXPECT_GE(stats.batches, 4u);
    EXPECT_LE(stats.batches, static_cast<std::uint64_t>(kRequests) / 2);
    EXPECT_GE(stats.mean_batch, 2.0);
}

TEST(InferenceServer, AdaptiveWindowShrinksUnderSequentialStreaming)
{
    // A strictly sequential stream (one request in flight at a time,
    // the recurrent-session shape) executes every sweep at batch 1,
    // so the adaptive forming window must halve its way down to
    // min_delay instead of charging each step the full max_delay.
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 8;
    options.max_delay = std::chrono::microseconds(200);
    options.min_delay = std::chrono::microseconds(20);
    ASSERT_TRUE(options.adaptive_delay); // the default
    engine::InferenceServer server(fx.compiledBackend(), options);

    for (int i = 0; i < 16; ++i) {
        const auto input = fx.randomInput(4400 + i);
        EXPECT_EQ(server.infer(input), fx.oracle(input));
    }
    const engine::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, 16u);
    EXPECT_LE(stats.forming_delay_us,
              static_cast<double>(options.min_delay.count()) + 0.5);
    EXPECT_GE(stats.forming_delay_us, 0.0);
}

TEST(InferenceServer, AdaptiveWindowRegrowsUnderBurstAndStaysExact)
{
    // Drive the window down to min_delay with sequential traffic,
    // then hit the server with a deep burst: full sweeps must double
    // the window back up (recovering batching headroom), capped at
    // max_delay, with every response still bit-exact.
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 4;
    options.max_delay = std::chrono::microseconds(200);
    options.min_delay = std::chrono::microseconds(20);
    engine::InferenceServer server(fx.compiledBackend(), options);

    for (int i = 0; i < 8; ++i)
        server.infer(fx.randomInput(4500 + i));
    EXPECT_LE(server.stats().forming_delay_us,
              static_cast<double>(options.min_delay.count()) + 0.5);

    constexpr int kBurst = 128;
    std::vector<std::vector<std::int64_t>> inputs;
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < kBurst; ++i)
        inputs.push_back(fx.randomInput(4600 + i));
    for (int i = 0; i < kBurst; ++i)
        futures.push_back(server.submit(inputs[i]));
    for (int i = 0; i < kBurst; ++i)
        EXPECT_EQ(futures[i].get(), fx.oracle(inputs[i]));

    const engine::ServerStats stats = server.stats();
    EXPECT_GT(stats.forming_delay_us,
              static_cast<double>(options.min_delay.count()));
    EXPECT_LE(stats.forming_delay_us,
              static_cast<double>(options.max_delay.count()) + 0.5);
    // The burst still coalesced: full sweeps, not one per request.
    EXPECT_LE(stats.batches, static_cast<std::uint64_t>(kBurst));
    EXPECT_GE(stats.mean_batch, 1.0);
}

TEST(InferenceServer, FixedWindowWhenAdaptiveDisabled)
{
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 8;
    options.max_delay = std::chrono::microseconds(200);
    options.adaptive_delay = false;
    engine::InferenceServer server(fx.compiledBackend(), options);

    for (int i = 0; i < 8; ++i)
        server.infer(fx.randomInput(4700 + i));
    EXPECT_DOUBLE_EQ(server.stats().forming_delay_us,
                     static_cast<double>(options.max_delay.count()));
}

TEST(InferenceServer, AdaptiveWindowNeverViolatesDeadlines)
{
    // The adaptive window only ever shrinks below max_delay, so any
    // deadline feasible under the fixed window stays feasible: a
    // sequential stream with deadlines comfortably above max_delay
    // must see zero deadline drops at every window size.
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 8;
    options.max_delay = std::chrono::microseconds(200);
    options.min_delay = std::chrono::microseconds(20);
    engine::InferenceServer server(fx.compiledBackend(), options);

    engine::SubmitOptions submit;
    submit.deadline = std::chrono::milliseconds(250);
    for (int i = 0; i < 24; ++i) {
        const auto input = fx.randomInput(4800 + i);
        auto future = server.submit(input, submit);
        EXPECT_EQ(future.get(), fx.oracle(input));
    }
    const engine::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, 24u);
    EXPECT_EQ(stats.dropped_deadline, 0u);
}

TEST(InferenceServer, StopDrainsQueuedRequests)
{
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 4;
    options.max_delay = std::chrono::milliseconds(20);
    auto server = std::make_unique<engine::InferenceServer>(
        fx.compiledBackend(), options);

    std::vector<std::vector<std::int64_t>> inputs;
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < 12; ++i) {
        inputs.push_back(fx.randomInput(1400 + i));
        futures.push_back(server->submit(inputs[i]));
    }
    server->stop(); // must complete everything already queued
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(futures[i].get(), fx.oracle(inputs[i]));
    server.reset(); // double-stop via destructor is fine
}

TEST(InferenceServer, WorksOverTheScalarBackendToo)
{
    ServingFixture fx;
    engine::InferenceServer server(engine::makeBackend(
        "scalar", fx.config, {&fx.net.plan(0), &fx.net.plan(1)}));
    const auto input = fx.randomInput(1500);
    EXPECT_EQ(server.infer(input), fx.oracle(input));
}

TEST(InferenceServerDeath, RejectsWrongInputSize)
{
    ServingFixture fx;
    engine::InferenceServer server(fx.compiledBackend());
    EXPECT_EXIT(server.submit(std::vector<std::int64_t>(7, 1)),
                ::testing::ExitedWithCode(1), "input length");
}

// ---------------------------------------------------------------------
// Batch-forming policy (priorities + deadlines), tested as the pure
// queue transformation so there is no timing race to fight.

engine::detail::Pending
makePending(int tag, int priority,
            std::chrono::steady_clock::time_point deadline =
                std::chrono::steady_clock::time_point::max())
{
    engine::detail::Pending pending;
    pending.input = {tag};
    pending.priority = priority;
    pending.enqueued = std::chrono::steady_clock::now();
    pending.deadline = deadline;
    return pending;
}

int
tagOf(const engine::detail::Pending &pending)
{
    return static_cast<int>(pending.input.front());
}

TEST(FormBatch, PopsHigherPrioritiesFirstFifoWithinLevel)
{
    std::deque<engine::detail::Pending> queue;
    queue.push_back(makePending(0, 0));
    queue.push_back(makePending(1, 5));
    queue.push_back(makePending(2, 0));
    queue.push_back(makePending(3, 5));
    queue.push_back(makePending(4, 9));

    auto formed = engine::detail::formBatch(
        queue, 3, std::chrono::steady_clock::now());
    ASSERT_EQ(formed.batch.size(), 3u);
    EXPECT_EQ(tagOf(formed.batch[0]), 4); // highest priority
    EXPECT_EQ(tagOf(formed.batch[1]), 1); // FIFO within priority 5
    EXPECT_EQ(tagOf(formed.batch[2]), 3);
    EXPECT_TRUE(formed.dropped.empty());

    // The remainder keeps arrival order.
    ASSERT_EQ(queue.size(), 2u);
    EXPECT_EQ(tagOf(queue[0]), 0);
    EXPECT_EQ(tagOf(queue[1]), 2);

    // Promises of selected requests must still be fulfillable.
    for (auto &pending : formed.batch)
        pending.promise.set_value({});
    for (auto &pending : queue)
        pending.promise.set_value({});
}

TEST(FormBatch, DropsExpiredRequestsBeforeSelection)
{
    const auto now = std::chrono::steady_clock::now();
    std::deque<engine::detail::Pending> queue;
    queue.push_back(
        makePending(0, 9, now - std::chrono::microseconds(1)));
    queue.push_back(makePending(1, 0));
    queue.push_back(
        makePending(2, 9, now - std::chrono::microseconds(1)));
    queue.push_back(
        makePending(3, 0, now + std::chrono::seconds(10)));

    auto formed = engine::detail::formBatch(queue, 8, now);
    ASSERT_EQ(formed.dropped.size(), 2u);
    EXPECT_EQ(tagOf(formed.dropped[0]), 0);
    EXPECT_EQ(tagOf(formed.dropped[1]), 2);
    ASSERT_EQ(formed.batch.size(), 2u);
    EXPECT_EQ(tagOf(formed.batch[0]), 1);
    EXPECT_EQ(tagOf(formed.batch[1]), 3);
    EXPECT_TRUE(queue.empty());

    for (auto &pending : formed.batch)
        pending.promise.set_value({});
    for (auto &pending : formed.dropped)
        pending.promise.set_exception(std::make_exception_ptr(
            std::runtime_error("dropped")));
}

TEST(InferenceServer, ExpiredDeadlinesDropAndAreCounted)
{
    ServingFixture fx;
    // A batch cap the burst cannot reach and a forming deadline far
    // beyond the request deadlines: every request must expire queued,
    // deterministically.
    engine::ServerOptions options;
    options.max_batch = 1000;
    options.max_delay = std::chrono::milliseconds(200);
    engine::InferenceServer server(fx.compiledBackend(), options);

    engine::SubmitOptions submit;
    submit.deadline = std::chrono::milliseconds(2);
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < 10; ++i)
        futures.push_back(
            server.submit(fx.randomInput(1600 + i), submit));
    for (auto &future : futures)
        EXPECT_THROW(future.get(), engine::DeadlineExpired);

    const engine::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_EQ(stats.dropped_deadline, 10u);
}

TEST(InferenceServer, MixedPriorityBurstStaysBitExact)
{
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 4;
    options.max_delay = std::chrono::microseconds(500);
    engine::InferenceServer server(fx.compiledBackend(), options);

    // Priorities reorder execution, never responses: every future
    // must still resolve to its own request's oracle output.
    std::vector<std::vector<std::int64_t>> inputs;
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < 32; ++i) {
        engine::SubmitOptions submit;
        submit.priority = i % 3;
        inputs.push_back(fx.randomInput(1700 + i));
        futures.push_back(server.submit(inputs.back(), submit));
    }
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[i].get(), fx.oracle(inputs[i]))
            << "request " << i;
    EXPECT_EQ(server.stats().dropped_deadline, 0u);
}

// ---------------------------------------------------------------------
// Shutdown ordering: destroying the server mid-burst must complete
// every already-obtained future (with an output or a clear error) —
// the TSan pass in tools/check.sh runs this against the real thread
// interleavings.

TEST(InferenceServer, StopWithFullQueueMidBurstCompletesEveryFuture)
{
    ServingFixture fx;
    for (int round = 0; round < 3; ++round) {
        engine::ServerOptions options;
        options.max_batch = 4;
        options.max_delay = std::chrono::microseconds(100);
        auto server = std::make_unique<engine::InferenceServer>(
            fx.compiledBackend(), options);

        constexpr int kSubmitters = 4;
        constexpr int kPerSubmitter = 24;
        std::vector<std::thread> submitters;
        // completed[c][i]: 1 = served bit-exact, 2 = failed with a
        // runtime_error (submit raced stop), 0 = abandoned future or
        // wrong output — the bugs this test guards against.
        std::vector<std::vector<int>> completed(
            kSubmitters, std::vector<int>(kPerSubmitter, 0));
        for (int c = 0; c < kSubmitters; ++c) {
            submitters.emplace_back([&, c] {
                for (int i = 0; i < kPerSubmitter; ++i) {
                    const auto input = fx.randomInput(
                        2000 + 997 * round + 59 * c + 17 * i);
                    auto future = server->submit(input);
                    try {
                        completed[c][i] =
                            future.get() == fx.oracle(input) ? 1 : 0;
                    } catch (const engine::ServerStopped &) {
                        completed[c][i] = 2;
                    }
                }
            });
        }
        // Stop while the burst is in full flight: the queue holds
        // un-executed requests and more submits are racing in.
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        server->stop();
        for (auto &submitter : submitters)
            submitter.join();
        server.reset(); // double-stop via destructor

        for (int c = 0; c < kSubmitters; ++c)
            for (int i = 0; i < kPerSubmitter; ++i)
                EXPECT_NE(completed[c][i], 0)
                    << "abandoned or wrong: round " << round
                    << ", client " << c << ", request " << i;
    }
}

TEST(InferenceServer, SubmitAfterStopFailsTheFutureNotTheProcess)
{
    ServingFixture fx;
    engine::InferenceServer server(fx.compiledBackend());
    server.stop();
    auto future = server.submit(fx.randomInput(2100));
    EXPECT_THROW(future.get(), engine::ServerStopped);
    EXPECT_EQ(server.queueDepth(), 0u);
}

} // namespace
