/**
 * @file
 * InferenceServer tests: bit-exact outputs and request/response
 * pairing under concurrent submitters, micro-batch forming bounds,
 * graceful drain on stop, and statistics sanity. The concurrent
 * tests double as the ThreadSanitizer workload in tools/check.sh.
 */

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "core/functional.hh"
#include "core/network_runner.hh"
#include "engine/backend.hh"
#include "engine/server.hh"
#include "helpers.hh"

namespace {

using namespace eie;

/** A small two-layer network plus its scalar oracle. */
struct ServingFixture
{
    core::EieConfig config;
    core::NetworkRunner net;
    core::FunctionalModel model;

    ServingFixture() : net(makeConfig()), model(makeConfig())
    {
        config = makeConfig();
        net.addLayer(test::randomCompressedLayer(48, 32, 0.25, 4, 701),
                     nn::Nonlinearity::ReLU);
        net.addLayer(test::randomCompressedLayer(24, 48, 0.25, 4, 702),
                     nn::Nonlinearity::ReLU);
    }

    static core::EieConfig
    makeConfig()
    {
        core::EieConfig config;
        config.n_pe = 4;
        return config;
    }

    std::unique_ptr<engine::ExecutionBackend>
    compiledBackend(unsigned threads = 1) const
    {
        return engine::makeBackend("compiled", config,
                                   {&net.plan(0), &net.plan(1)},
                                   threads);
    }

    std::vector<std::int64_t>
    randomInput(std::uint64_t seed) const
    {
        return model.quantizeInput(
            test::randomActivations(32, 0.6, seed));
    }

    std::vector<std::int64_t>
    oracle(const std::vector<std::int64_t> &input) const
    {
        return net.backend("scalar").run(input).outputs.front();
    }
};

TEST(InferenceServer, ConcurrentSubmittersBitExactAndOrdered)
{
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 8;
    options.max_delay = std::chrono::microseconds(200);
    engine::InferenceServer server(fx.compiledBackend(2), options);

    constexpr int kClients = 4;
    constexpr int kPerClient = 32;

    // Each client thread submits its own request sequence and keeps
    // the futures in submission order: the response of request i must
    // be the oracle output of input i (no cross-wiring between
    // clients or within a client).
    std::vector<std::thread> clients;
    std::vector<std::vector<std::vector<std::int64_t>>> inputs(kClients);
    std::vector<std::vector<std::vector<std::int64_t>>> outputs(
        kClients);
    for (int c = 0; c < kClients; ++c) {
        for (int i = 0; i < kPerClient; ++i)
            inputs[c].push_back(
                fx.randomInput(900 + 37 * c + 1000 * i));
        outputs[c].resize(kPerClient);
        clients.emplace_back([&, c] {
            std::vector<std::future<std::vector<std::int64_t>>> futures;
            for (int i = 0; i < kPerClient; ++i)
                futures.push_back(server.submit(inputs[c][i]));
            for (int i = 0; i < kPerClient; ++i)
                outputs[c][i] = futures[i].get();
        });
    }
    for (auto &client : clients)
        client.join();

    for (int c = 0; c < kClients; ++c)
        for (int i = 0; i < kPerClient; ++i)
            EXPECT_EQ(outputs[c][i], fx.oracle(inputs[c][i]))
                << "client " << c << ", request " << i;

    const engine::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kClients * kPerClient));
    EXPECT_GE(stats.batches, 1u);
    EXPECT_LE(stats.batches, stats.requests);
    EXPECT_GE(stats.mean_batch, 1.0);
    EXPECT_LE(stats.p50_latency_us, stats.p99_latency_us + 1e-9);
    EXPECT_LE(stats.p99_latency_us, stats.max_latency_us + 1e-9);
    EXPECT_GE(stats.max_queue_depth, 1u);
}

TEST(InferenceServer, MaxBatchOneServesEveryRequestAlone)
{
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 1;
    engine::InferenceServer server(fx.compiledBackend(), options);

    for (int i = 0; i < 10; ++i) {
        const auto input = fx.randomInput(1200 + i);
        EXPECT_EQ(server.infer(input), fx.oracle(input));
    }
    const engine::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, 10u);
    EXPECT_EQ(stats.batches, 10u); // batch cap of one: no coalescing
    EXPECT_DOUBLE_EQ(stats.mean_batch, 1.0);
}

TEST(InferenceServer, BurstCoalescesIntoFewerSweeps)
{
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 16;
    // A generous deadline so the burst below reliably forms batches
    // instead of racing the batcher request by request.
    options.max_delay = std::chrono::milliseconds(50);
    engine::InferenceServer server(fx.compiledBackend(), options);

    constexpr int kRequests = 64;
    std::vector<std::vector<std::int64_t>> inputs;
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < kRequests; ++i)
        inputs.push_back(fx.randomInput(1300 + i));
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(server.submit(inputs[i]));
    for (int i = 0; i < kRequests; ++i)
        EXPECT_EQ(futures[i].get(), fx.oracle(inputs[i]));

    const engine::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kRequests));
    // 64 requests at max_batch 16 need at least 4 sweeps; coalescing
    // must do visibly better than one sweep per request.
    EXPECT_GE(stats.batches, 4u);
    EXPECT_LE(stats.batches, static_cast<std::uint64_t>(kRequests) / 2);
    EXPECT_GE(stats.mean_batch, 2.0);
}

TEST(InferenceServer, StopDrainsQueuedRequests)
{
    ServingFixture fx;
    engine::ServerOptions options;
    options.max_batch = 4;
    options.max_delay = std::chrono::milliseconds(20);
    auto server = std::make_unique<engine::InferenceServer>(
        fx.compiledBackend(), options);

    std::vector<std::vector<std::int64_t>> inputs;
    std::vector<std::future<std::vector<std::int64_t>>> futures;
    for (int i = 0; i < 12; ++i) {
        inputs.push_back(fx.randomInput(1400 + i));
        futures.push_back(server->submit(inputs[i]));
    }
    server->stop(); // must complete everything already queued
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(futures[i].get(), fx.oracle(inputs[i]));
    server.reset(); // double-stop via destructor is fine
}

TEST(InferenceServer, WorksOverTheScalarBackendToo)
{
    ServingFixture fx;
    engine::InferenceServer server(engine::makeBackend(
        "scalar", fx.config, {&fx.net.plan(0), &fx.net.plan(1)}));
    const auto input = fx.randomInput(1500);
    EXPECT_EQ(server.infer(input), fx.oracle(input));
}

TEST(InferenceServerDeath, RejectsWrongInputSize)
{
    ServingFixture fx;
    engine::InferenceServer server(fx.compiledBackend());
    EXPECT_EXIT(server.submit(std::vector<std::int64_t>(7, 1)),
                ::testing::ExitedWithCode(1), "input length");
}

} // namespace
