/**
 * @file
 * HTTP helper tests: the defensive request/response parser (unit
 * cases plus the seeded garbage/mutation fuzz that mirrors the wire
 * codec's — arbitrary bytes must yield Ok/NeedMore/Bad, never UB),
 * and the listener/client-connection round trip with keep-alive,
 * pipelined parses, handler exceptions and malformed input.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "gateway/http.hh"

namespace {

using namespace eie::gateway;

/** Parse @p data expecting one complete request. */
HttpRequest
parseOk(const std::string &data, std::size_t *consumed_out = nullptr)
{
    HttpRequest request;
    std::size_t consumed = 0;
    std::string error;
    const HttpParse verdict =
        parseHttpRequest(data, request, consumed, error);
    EXPECT_EQ(verdict, HttpParse::Ok) << error;
    EXPECT_LE(consumed, data.size());
    if (consumed_out)
        *consumed_out = consumed;
    return request;
}

HttpParse
verdictOf(const std::string &data, std::string *error_out = nullptr)
{
    HttpRequest request;
    std::size_t consumed = 0;
    std::string error;
    const HttpParse verdict =
        parseHttpRequest(data, request, consumed, error);
    if (error_out)
        *error_out = error;
    return verdict;
}

TEST(HttpParser, ParsesRequestLineHeadersAndBody)
{
    std::size_t consumed = 0;
    const std::string raw = "POST /v1/infer?debug=1 HTTP/1.1\r\n"
                            "Host: localhost\r\n"
                            "Content-Type: application/json\r\n"
                            "Content-Length: 4\r\n"
                            "\r\n"
                            "{\"\"}extra";
    const HttpRequest request = parseOk(raw, &consumed);
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.target, "/v1/infer?debug=1");
    EXPECT_EQ(request.path, "/v1/infer");
    EXPECT_EQ(request.query, "debug=1");
    EXPECT_EQ(request.version_minor, 1);
    EXPECT_EQ(request.body, "{\"\"}");
    EXPECT_EQ(consumed, raw.size() - 5); // "extra" stays buffered
    // Header names arrive lowercased; values keep their case.
    ASSERT_NE(request.header("content-type"), nullptr);
    EXPECT_EQ(*request.header("content-type"), "application/json");
    EXPECT_EQ(request.header("Content-Type"), nullptr);
    EXPECT_FALSE(request.wantsClose());
}

TEST(HttpParser, GetWithoutBodyAndCloseSemantics)
{
    const HttpRequest get =
        parseOk("GET /metrics HTTP/1.1\r\n\r\n");
    EXPECT_EQ(get.method, "GET");
    EXPECT_TRUE(get.body.empty());
    EXPECT_TRUE(get.query.empty());
    EXPECT_FALSE(get.wantsClose());

    const HttpRequest close_req = parseOk(
        "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_TRUE(close_req.wantsClose());

    // HTTP/1.0 defaults to close, keep-alive opts back in.
    const HttpRequest old = parseOk("GET / HTTP/1.0\r\n\r\n");
    EXPECT_EQ(old.version_minor, 0);
    EXPECT_TRUE(old.wantsClose());
    const HttpRequest old_keep = parseOk(
        "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    EXPECT_FALSE(old_keep.wantsClose());
}

TEST(HttpParser, PipelinedRequestsConsumeOneAtATime)
{
    std::string data = "GET /a HTTP/1.1\r\n\r\n"
                       "POST /b HTTP/1.1\r\nContent-Length: 2\r\n"
                       "\r\nhi";
    std::size_t consumed = 0;
    const HttpRequest first = parseOk(data, &consumed);
    EXPECT_EQ(first.path, "/a");
    data.erase(0, consumed);
    const HttpRequest second = parseOk(data, &consumed);
    EXPECT_EQ(second.path, "/b");
    EXPECT_EQ(second.body, "hi");
    EXPECT_EQ(consumed, data.size());
}

TEST(HttpParser, IncompleteInputIsNeedMoreNotBad)
{
    // Every strict prefix of a valid request must be NeedMore.
    const std::string raw = "POST /v1/infer HTTP/1.1\r\n"
                            "Content-Length: 5\r\n\r\nhello";
    for (std::size_t len = 0; len < raw.size(); ++len)
        EXPECT_EQ(verdictOf(raw.substr(0, len)), HttpParse::NeedMore)
            << "prefix length " << len;
    EXPECT_EQ(verdictOf(raw), HttpParse::Ok);
}

TEST(HttpParser, MalformedRequestsAreBadWithAReason)
{
    const char *bad[] = {
        "GET/ HTTP/1.1\r\n\r\n",          // no space after method
        "GET  / HTTP/1.1\r\n\r\n",        // extra space
        "GET / / HTTP/1.1\r\n\r\n",       // three fields
        "GET noslash HTTP/1.1\r\n\r\n",   // target must start '/'
        "GET / HTTP/2.0\r\n\r\n",         // unsupported version
        "GET / HTTQ/1.1\r\n\r\n",         // not HTTP
        "G\x01T / HTTP/1.1\r\n\r\n",      // control byte in method
        "GET / HTTP/1.1\r\nNo Colon\r\n\r\n",
        "GET / HTTP/1.1\r\n: novalue\r\n\r\n",   // empty name
        "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n", // space in name
        "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        "POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
        "POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
        // chunked bodies are out of scope, rejected explicitly
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    };
    for (const char *raw : bad) {
        std::string error;
        EXPECT_EQ(verdictOf(raw, &error), HttpParse::Bad)
            << "'" << raw << "' parsed";
        EXPECT_FALSE(error.empty()) << raw;
    }
}

TEST(HttpParser, EnforcesHeadAndBodyLimits)
{
    HttpLimits limits;
    limits.max_head_bytes = 128;
    limits.max_body_bytes = 16;

    HttpRequest request;
    std::size_t consumed = 0;
    std::string error;

    // A head that can no longer fit the limit is Bad even before the
    // terminator arrives (no unbounded buffering).
    std::string fat_head = "GET / HTTP/1.1\r\nX-Pad: ";
    fat_head.append(200, 'a');
    EXPECT_EQ(parseHttpRequest(fat_head, request, consumed, error,
                               limits),
              HttpParse::Bad);

    // A declared body over the cap is rejected from the header alone.
    EXPECT_EQ(parseHttpRequest("POST / HTTP/1.1\r\n"
                               "Content-Length: 17\r\n\r\n",
                               request, consumed, error, limits),
              HttpParse::Bad);
    EXPECT_EQ(parseHttpRequest("POST / HTTP/1.1\r\n"
                               "Content-Length: 16\r\n\r\n",
                               request, consumed, error, limits),
              HttpParse::NeedMore);

    // More than 64 headers is Bad under default limits.
    std::string many = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 70; ++i)
        many += std::string("H") + std::to_string(i) + ": v\r\n";
    many += "\r\n";
    EXPECT_EQ(verdictOf(many), HttpParse::Bad);
}

TEST(HttpParser, ResponseRoundTripsThroughRenderer)
{
    HttpResponse response;
    response.status = 429;
    response.body = "{\"error\":{\"code\":\"UNAVAILABLE\"}}";
    response.headers.push_back({"Retry-After", "1"});
    const std::string wire = renderHttpResponse(response);

    HttpParsedResponse parsed;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(parseHttpResponse(wire, parsed, consumed, error),
              HttpParse::Ok)
        << error;
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(parsed.status, 429);
    EXPECT_EQ(parsed.reason, httpStatusReason(429));
    EXPECT_EQ(parsed.body, response.body);
    ASSERT_NE(parsed.header("retry-after"), nullptr);
    EXPECT_EQ(*parsed.header("retry-after"), "1");
    EXPECT_FALSE(parsed.close);

    response.close = true;
    HttpParsedResponse closed;
    ASSERT_EQ(parseHttpResponse(renderHttpResponse(response), closed,
                                consumed, error),
              HttpParse::Ok);
    EXPECT_TRUE(closed.close);
}

/** splitmix64: the deterministic byte source of the fuzz tests
 *  (same generator as the wire-frame fuzz in tests/serve). */
std::uint64_t
splitmix(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Valid requests with structure for mutations to corrupt. */
std::vector<std::string>
sampleRequests()
{
    return {
        "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
        "GET /v1/models/fc?version=3 HTTP/1.1\r\n"
        "Authorization: Bearer s3cret\r\n\r\n",
        "POST /v1/infer HTTP/1.1\r\nHost: gw:8080\r\n"
        "Content-Type: application/json\r\nContent-Length: 43\r\n"
        "\r\n"
        "{\"model\":\"fc\",\"frames\":[[1,-2,3],[0,0,7]]}X",
        "POST /v1/session/step HTTP/1.0\r\n"
        "Connection: keep-alive\r\nContent-Length: 0\r\n\r\n",
    };
}

TEST(HttpFuzz, SeededMutationsOfValidRequestsNeverCrash)
{
    // Deterministic garbage fuzz mirroring WireFuzz: mutate each
    // valid request (bit flips, byte stomps, truncations, trailing
    // garbage) and require the parser to answer Ok, NeedMore or Bad
    // — never crash, over-read, or trip a sanitizer. On Ok, consumed
    // must stay within the buffer. Seeded, so failures reproduce.
    std::uint64_t rng = 0xface7e4a11ceull;
    for (const std::string &clean : sampleRequests()) {
        EXPECT_EQ(verdictOf(clean), HttpParse::Ok) << clean;

        for (int round = 0; round < 300; ++round) {
            std::string mutated = clean;
            const unsigned edits =
                1 + static_cast<unsigned>(splitmix(rng) % 4);
            for (unsigned e = 0; e < edits; ++e) {
                switch (splitmix(rng) % 4) {
                  case 0: // flip one bit
                    mutated[splitmix(rng) % mutated.size()] ^=
                        static_cast<char>(1u << (splitmix(rng) % 8));
                    break;
                  case 1: // stomp one byte
                    mutated[splitmix(rng) % mutated.size()] =
                        static_cast<char>(splitmix(rng));
                    break;
                  case 2: // truncate to a strict prefix
                    mutated.resize(1 + splitmix(rng) %
                                           mutated.size());
                    break;
                  default: // append trailing garbage
                    for (std::uint64_t n = 1 + splitmix(rng) % 16;
                         n > 0; --n)
                        mutated.push_back(
                            static_cast<char>(splitmix(rng)));
                    break;
                }
            }
            HttpRequest request;
            std::size_t consumed = 0;
            std::string error;
            const HttpParse verdict = parseHttpRequest(
                mutated, request, consumed, error);
            if (verdict == HttpParse::Ok) {
                EXPECT_LE(consumed, mutated.size());
            }
        }
    }
}

TEST(HttpFuzz, PureGarbageBuffersNeverCrash)
{
    // Buffers that were never HTTP, in both parser directions.
    std::uint64_t rng = 0x900dbeefull;
    for (int round = 0; round < 2000; ++round) {
        std::string garbage;
        const std::uint64_t len = splitmix(rng) % 96;
        for (std::uint64_t i = 0; i < len; ++i)
            garbage.push_back(static_cast<char>(splitmix(rng)));
        HttpRequest request;
        HttpParsedResponse response;
        std::size_t consumed = 0;
        std::string error;
        (void)parseHttpRequest(garbage, request, consumed, error);
        (void)parseHttpResponse(garbage, response, consumed, error);
    }
}

TEST(HttpListener, ServesKeepAliveRoundTrips)
{
    HttpListener::Options options;
    HttpListener listener(options, [](const HttpRequest &request) {
        if (request.path == "/boom")
            throw std::runtime_error("handler exploded");
        HttpResponse response;
        response.body = "{\"path\":\"" + request.path +
            "\",\"body_bytes\":" +
            std::to_string(request.body.size()) + "}";
        return response;
    });
    ASSERT_NE(listener.port(), 0);

    HttpClientConnection connection("127.0.0.1", listener.port());

    // Several exchanges on one keep-alive connection.
    for (int i = 0; i < 3; ++i) {
        const HttpParsedResponse response = connection.roundTrip(
            "POST", "/echo/" + std::to_string(i), {},
            std::string(static_cast<std::size_t>(i) * 7, 'x'));
        EXPECT_EQ(response.status, 200);
        EXPECT_EQ(response.body,
                  "{\"path\":\"/echo/" + std::to_string(i) +
                      "\",\"body_bytes\":" + std::to_string(i * 7) +
                      "}");
        EXPECT_TRUE(connection.alive());
    }
    EXPECT_EQ(listener.connectionsAccepted(), 1u);

    // A handler exception is a 500 on the wire, not a dead listener.
    const HttpParsedResponse boom =
        connection.roundTrip("GET", "/boom", {}, "");
    EXPECT_EQ(boom.status, 500);
    EXPECT_NE(boom.body.find("INTERNAL"), std::string::npos);
    const HttpParsedResponse after =
        connection.roundTrip("GET", "/ok", {}, "");
    EXPECT_EQ(after.status, 200);

    listener.stop();
    // After stop, a round trip on the old connection fails typed.
    EXPECT_THROW(connection.roundTrip("GET", "/x", {}, ""),
                 HttpError);
    EXPECT_THROW(
        HttpClientConnection("127.0.0.1", listener.port()),
        HttpError);
}

TEST(HttpListener, MalformedInputGets400AndConnectionClose)
{
    HttpListener::Options options;
    HttpListener listener(options, [](const HttpRequest &) {
        return HttpResponse{};
    });

    // Speak the socket directly: raw garbage must come back as a 400
    // with the connection closed — and must not take the listener
    // down for well-behaved peers.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(listener.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string garbage = "\x01\x02NOT HTTP AT ALL\r\n\r\n";
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(garbage.size()));
    std::string reply;
    char chunk[512];
    for (;;) {
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0)
            break; // server closed after the 400
        reply.append(chunk, static_cast<std::size_t>(got));
    }
    ::close(fd);
    EXPECT_NE(reply.find("HTTP/1.1 400"), std::string::npos) << reply;

    // The listener still serves a well-formed peer afterwards.
    HttpClientConnection probe("127.0.0.1", listener.port());
    EXPECT_EQ(probe.roundTrip("GET", "/", {}, "").status, 200);
    listener.stop();
}

} // namespace
