/**
 * @file
 * End-to-end gateway acceptance: the same requests driven through a
 * direct `tcp://` client and through `http://` via the gateway (which
 * itself proxies to the same TCP daemon) are bit-exact and carry
 * identical Status codes — for successes and for the whole error
 * taxonomy (unknown model, bad token, over quota, expired deadline).
 * Multi-tenant admission rides on top: 401/403/429 on the wire with
 * typed bodies, per-tenant quotas that cannot starve other tenants,
 * hot reload, sessions, stats and gateway metrics.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>

#include <unistd.h>

#include "client/client.hh"
#include "core/functional.hh"
#include "gateway/gateway.hh"
#include "helpers.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"

namespace {

using namespace eie;
using namespace std::chrono_literals;
namespace fs = std::filesystem;

constexpr std::size_t kX = 8; ///< LSTM per-step input size
constexpr std::size_t kH = 8; ///< LSTM hidden size

fs::path
scratchDir()
{
    static int counter = 0;
    return fs::temp_directory_path() /
        ("eie_gateway_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++));
}

core::EieConfig
makeConfig()
{
    core::EieConfig config;
    config.n_pe = 4;
    return config;
}

/**
 * Registry + TCP daemon + gateway in front of it + a direct tcp://
 * client and an http:// client — the two paths the acceptance
 * criteria compare. The gateway records into a scratch registry so
 * metric assertions are hermetic.
 */
struct GatewayFixture
{
    fs::path dir;
    core::EieConfig config;
    compress::CompressedLayer layer;
    serve::ModelRegistry registry;
    serve::ServingDirectory directory;
    serve::TcpServer server;
    core::FunctionalModel functional;
    core::LayerPlan oracle_plan;
    obs::MetricsRegistry metrics;
    std::unique_ptr<gateway::HttpGateway> gateway;

    std::unique_ptr<client::Client> tcp;  ///< direct to the daemon
    std::unique_ptr<client::Client> http; ///< through the gateway

    explicit GatewayFixture(
        const engine::ServerOptions &server_options = {})
        : dir(scratchDir()), config(makeConfig()),
          layer(test::randomCompressedLayer(96, 64, 0.25, 4, 9001)),
          registry(dir.string(), config),
          directory(registry, clusterOptions(server_options)),
          server(directory), functional(config),
          oracle_plan(core::planLayer(layer, nn::Nonlinearity::ReLU,
                                      config))
    {
        registry.publish("fc", 1, layer.storage());
        // An NT-LSTM-shaped model for the session routes:
        // (4H) x (X + H + 1).
        registry.publish("nt-lstm", 1,
                         test::randomCompressedLayer(
                             4 * kH, kX + kH + 1, 0.4, 4, 777)
                             .storage());
        // 97 rows: no H solves 4H = 97, so this can never pass the
        // packed-gate shape check (the session-refusal case).
        registry.publish("fc97", 1,
                         test::randomCompressedLayer(97, 64, 0.25, 4,
                                                     778)
                             .storage());
        server.start();

        gateway::GatewayOptions options;
        options.client = clientOptions();
        options.registry = &metrics;
        client::Status status;
        gateway = gateway::HttpGateway::create(
            "tcp://127.0.0.1:" + std::to_string(server.port()),
            options, status);
        EXPECT_NE(gateway, nullptr) << status.toString();

        tcp = connectOrFail(
            "tcp://127.0.0.1:" + std::to_string(server.port()));
        http = connectOrFail(httpEndpoint());
    }

    ~GatewayFixture()
    {
        if (tcp)
            tcp->close();
        if (http)
            http->close();
        if (gateway)
            gateway->stop();
        server.stop();
        directory.stopAll();
        fs::remove_all(dir);
    }

    std::string
    httpEndpoint(const std::string &token = "") const
    {
        return "http://127.0.0.1:" +
            std::to_string(gateway->port()) +
            (token.empty() ? "" : ",token=" + token);
    }

    static serve::ClusterOptions
    clusterOptions(const engine::ServerOptions &server_options)
    {
        serve::ClusterOptions options;
        options.shards = 2;
        options.server = server_options;
        return options;
    }

    client::ClientOptions
    clientOptions() const
    {
        client::ClientOptions options;
        options.config = config;
        return options;
    }

    std::unique_ptr<client::Client>
    connectOrFail(const std::string &endpoint) const
    {
        client::Status status;
        auto connected = client::Client::connect(
            endpoint, clientOptions(), status);
        EXPECT_NE(connected, nullptr)
            << endpoint << ": " << status.toString();
        return connected;
    }

    std::vector<std::int64_t>
    randomInput(std::uint64_t seed) const
    {
        return functional.quantizeInput(
            test::randomActivations(64, 0.6, seed));
    }

    std::vector<std::int64_t>
    oracle(const std::vector<std::int64_t> &input) const
    {
        return functional.run(oracle_plan, input).output_raw;
    }

    /** One raw exchange against the gateway's HTTP surface. */
    gateway::HttpParsedResponse
    raw(const std::string &method, const std::string &target,
        const std::string &body, const std::string &token = "")
    {
        gateway::HttpClientConnection connection(
            "127.0.0.1", gateway->port());
        std::vector<std::pair<std::string, std::string>> headers;
        if (!token.empty())
            headers.push_back(
                {"Authorization", "Bearer " + token});
        return connection.roundTrip(method, target, headers, body);
    }

    /** The "error.code" name of a typed error body. */
    static std::string
    errorCode(const std::string &body)
    {
        const obs::JsonValue root = obs::parseJson(body);
        const obs::JsonValue *error = root.find("error");
        return error != nullptr ? error->stringOr("code", "")
                                : std::string();
    }
};

TEST(Gateway, HttpTransportIsBitExactWithTcp)
{
    GatewayFixture fx;
    EXPECT_STREQ(fx.http->transport(), "http");

    // Single raw frames: http (through the gateway) must match both
    // the oracle and the direct tcp client bit-exactly.
    for (int i = 0; i < 6; ++i) {
        const auto input = fx.randomInput(100 + i);
        const auto expected = fx.oracle(input);
        const client::InferenceResult via_tcp =
            fx.tcp->inferRaw("fc", input);
        const client::InferenceResult via_http =
            fx.http->inferRaw("fc", input);
        ASSERT_TRUE(via_tcp.ok()) << via_tcp.status.toString();
        ASSERT_TRUE(via_http.ok()) << via_http.status.toString();
        EXPECT_EQ(via_tcp.outputs.front(), expected);
        EXPECT_EQ(via_http.outputs.front(), expected)
            << "request " << i;
    }

    // A ragged batch pipelines through the gateway per frame.
    client::InferenceRequest batch;
    batch.model = "fc";
    for (int i = 0; i < 5; ++i)
        batch.fixed.push_back(fx.randomInput(200 + i));
    const client::InferenceResult result = fx.http->infer(batch);
    ASSERT_TRUE(result.ok()) << result.status.toString();
    ASSERT_EQ(result.outputs.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(result.frame_status[i].ok());
        EXPECT_EQ(result.outputs[i], fx.oracle(batch.fixed[i]))
            << "frame " << i;
    }

    // Float frames: the client quantizes before the transport, so
    // both paths see identical fixed frames and return identical
    // floats.
    const nn::Vector float_input =
        test::randomActivations(64, 0.5, 424242);
    const client::InferenceResult float_tcp =
        fx.tcp->inferFloat("fc", float_input);
    const client::InferenceResult float_http =
        fx.http->inferFloat("fc", float_input);
    ASSERT_TRUE(float_tcp.ok());
    ASSERT_TRUE(float_http.ok());
    EXPECT_EQ(float_http.outputs.front(),
              float_tcp.outputs.front());
    EXPECT_EQ(float_http.float_outputs.front(),
              float_tcp.float_outputs.front());

    // Model info agrees.
    client::ModelInfo tcp_info, http_info;
    ASSERT_TRUE(fx.tcp->info("fc", 0, tcp_info).ok());
    ASSERT_TRUE(fx.http->info("fc", 0, http_info).ok());
    EXPECT_EQ(http_info.model, tcp_info.model);
    EXPECT_EQ(http_info.version, tcp_info.version);
    EXPECT_EQ(http_info.input_size, tcp_info.input_size);
    EXPECT_EQ(http_info.output_size, tcp_info.output_size);

    // Stats and trace flow through.
    client::EndpointStats stats;
    ASSERT_TRUE(fx.http->stats(stats).ok());
    EXPECT_FALSE(stats.json.empty());
    EXPECT_GE(stats.requests, 6u);
    std::string trace;
    EXPECT_TRUE(fx.http->traceDump(trace).ok());
    EXPECT_FALSE(trace.empty());
}

TEST(Gateway, StatusTaxonomyMatchesTcpForErrors)
{
    engine::ServerOptions slow;
    slow.max_batch = 1000;
    slow.max_delay = std::chrono::milliseconds(200);
    GatewayFixture fx(slow);

    // Unknown model -> NOT_FOUND on both paths, infer and info.
    for (client::Client *c : {fx.tcp.get(), fx.http.get()}) {
        EXPECT_EQ(c->inferRaw("missing", fx.randomInput(1)).status
                      .code,
                  client::StatusCode::NotFound)
            << c->endpoint();
        client::ModelInfo info;
        EXPECT_EQ(c->info("missing", 0, info).code,
                  client::StatusCode::NotFound)
            << c->endpoint();
    }

    // Wrong input length -> INVALID_ARGUMENT, and the endpoint
    // stays usable afterwards.
    for (client::Client *c : {fx.tcp.get(), fx.http.get()}) {
        EXPECT_EQ(
            c->inferRaw("fc", std::vector<std::int64_t>(3, 1))
                .status.code,
            client::StatusCode::InvalidArgument)
            << c->endpoint();
        const auto input = fx.randomInput(2);
        EXPECT_EQ(c->inferRaw("fc", input).outputs.front(),
                  fx.oracle(input))
            << c->endpoint();
    }

    // Expired deadlines -> DEADLINE_EXPIRED on both paths (the slow
    // forming server guarantees the frames expire queued).
    for (client::Client *c : {fx.tcp.get(), fx.http.get()}) {
        client::InferenceRequest request;
        request.model = "fc";
        request.deadline = std::chrono::milliseconds(2);
        for (int i = 0; i < 4; ++i)
            request.fixed.push_back(fx.randomInput(10 + i));
        const client::InferenceResult result = c->infer(request);
        EXPECT_EQ(result.status.code,
                  client::StatusCode::DeadlineExpired)
            << c->endpoint() << ": " << result.status.toString();
    }

    // A closed http client is UNAVAILABLE like every transport.
    fx.http->close();
    EXPECT_EQ(fx.http->inferRaw("fc", fx.randomInput(3)).status.code,
              client::StatusCode::Unavailable);
}

TEST(Gateway, AuthQuotasAndTiersEnforcePerTenant)
{
    GatewayFixture fx;
    fx.gateway->tenants().load(gateway::loadTenantConfigs(R"({
        "tenants":[
            {"name":"acme","token":"tok-acme","priority":5,
             "deadline_cap_us":2000000},
            {"name":"metered","token":"tok-metered",
             "rate_qps":0.001,"burst":1},
            {"name":"lapsed","token":"tok-lapsed","enabled":false}
        ]})"));

    const auto input = fx.randomInput(42);
    const auto expected = fx.oracle(input);

    // No token / wrong token -> 401 with a typed body; the client
    // surfaces INVALID_ARGUMENT.
    EXPECT_EQ(fx.http->inferRaw("fc", input).status.code,
              client::StatusCode::InvalidArgument);
    auto bad_token = fx.connectOrFail(fx.httpEndpoint("wrong"));
    EXPECT_EQ(bad_token->inferRaw("fc", input).status.code,
              client::StatusCode::InvalidArgument);
    bad_token->close();

    // A valid tenant works and is bit-exact.
    auto acme = fx.connectOrFail(fx.httpEndpoint("tok-acme"));
    const client::InferenceResult ok = acme->inferRaw("fc", input);
    ASSERT_TRUE(ok.ok()) << ok.status.toString();
    EXPECT_EQ(ok.outputs.front(), expected);

    // A disabled tenant authenticates but is refused (403).
    auto lapsed = fx.connectOrFail(fx.httpEndpoint("tok-lapsed"));
    EXPECT_EQ(lapsed->inferRaw("fc", input).status.code,
              client::StatusCode::InvalidArgument);
    lapsed->close();

    // The metered tenant has burst 1 and a ~nil refill rate: its
    // first request is admitted, the next is 429/UNAVAILABLE — while
    // acme's requests keep completing (no cross-tenant starvation).
    auto metered = fx.connectOrFail(fx.httpEndpoint("tok-metered"));
    ASSERT_TRUE(metered->inferRaw("fc", input).ok());
    const client::InferenceResult limited =
        metered->inferRaw("fc", input);
    EXPECT_EQ(limited.status.code, client::StatusCode::Unavailable)
        << limited.status.toString();
    for (int i = 0; i < 3; ++i) {
        const client::InferenceResult still_ok =
            acme->inferRaw("fc", input);
        ASSERT_TRUE(still_ok.ok()) << still_ok.status.toString();
        EXPECT_EQ(still_ok.outputs.front(), expected);
    }
    metered->close();

    // Raw wire statuses + body codes: the table the README pins.
    EXPECT_EQ(fx.raw("POST", "/v1/infer", "{}").status, 401);
    EXPECT_EQ(GatewayFixture::errorCode(
                  fx.raw("POST", "/v1/infer", "{}").body),
              "INVALID_ARGUMENT");
    EXPECT_EQ(fx.raw("POST", "/v1/infer", "{}", "tok-lapsed").status,
              403);
    const auto over = fx.raw("POST", "/v1/infer", "{}",
                             "tok-metered");
    EXPECT_EQ(over.status, 429);
    EXPECT_EQ(GatewayFixture::errorCode(over.body), "UNAVAILABLE");
    EXPECT_EQ(fx.raw("GET", "/v1/nope", "", "tok-acme").status, 404);
    EXPECT_EQ(fx.raw("GET", "/v1/infer", "", "tok-acme").status,
              405);
    // Stats stay open (no token) even with auth on.
    EXPECT_EQ(fx.raw("GET", "/v1/stats", "").status, 200);

    // Per-tenant accounting lands in /v1/stats.
    const obs::JsonValue stats =
        obs::parseJson(fx.gateway->statsJson());
    EXPECT_TRUE(
        stats.find("gateway")->find("auth_enabled")->boolean);
    bool saw_metered = false;
    for (const obs::JsonValue &tenant :
         stats.find("tenants")->array) {
        if (tenant.stringOr("name", "") != "metered")
            continue;
        saw_metered = true;
        EXPECT_GE(tenant.numberOr("admitted", 0), 1.0);
        EXPECT_GE(tenant.numberOr("rejected_rate", 0), 1.0);
    }
    EXPECT_TRUE(saw_metered);

    // Hot reload: rotate acme's token; the old one dies, the new one
    // works, counters survive (same runtime state).
    fx.gateway->tenants().load(gateway::loadTenantConfigs(R"({
        "tenants":[{"name":"acme","token":"tok-acme2"}]})"));
    EXPECT_EQ(acme->inferRaw("fc", input).status.code,
              client::StatusCode::InvalidArgument);
    acme->close();
    auto acme2 = fx.connectOrFail(fx.httpEndpoint("tok-acme2"));
    EXPECT_TRUE(acme2->inferRaw("fc", input).ok());
    acme2->close();

    // Gateway metrics landed in the scratch registry.
    const std::string text = fx.metrics.renderText();
    EXPECT_NE(text.find("eie_gateway_requests_total"),
              std::string::npos);
    EXPECT_NE(text.find("eie_gateway_requests_total_acme"),
              std::string::npos);
    EXPECT_NE(text.find("eie_gateway_rejected_total_rate_limited"),
              std::string::npos);
    EXPECT_NE(text.find("eie_gateway_rejected_total_unauthorized"),
              std::string::npos);
}

TEST(Gateway, SessionsStreamBitExactWithTcp)
{
    GatewayFixture fx;

    client::Status status;
    auto tcp_session = fx.tcp->openSession("nt-lstm", 0, status);
    ASSERT_NE(tcp_session, nullptr) << status.toString();
    auto http_session = fx.http->openSession("nt-lstm", 0, status);
    ASSERT_NE(http_session, nullptr) << status.toString();
    EXPECT_EQ(fx.gateway->openSessions(), 1u);

    EXPECT_EQ(http_session->inputSize(), kX);
    EXPECT_EQ(http_session->hiddenSize(), kH);
    EXPECT_EQ(http_session->model(), "nt-lstm");

    // The recurrent trajectory must match step for step. The hidden
    // state travels as JSON doubles, which carry any float exactly.
    for (int t = 0; t < 6; ++t) {
        const nn::Vector x =
            test::randomActivations(kX, 0.8, 7000 + t);
        const auto via_tcp = tcp_session->step(x);
        const auto via_http = http_session->step(x);
        ASSERT_TRUE(via_tcp.ok()) << via_tcp.status.toString();
        ASSERT_TRUE(via_http.ok()) << via_http.status.toString();
        ASSERT_EQ(via_http.h.size(), via_tcp.h.size());
        for (std::size_t i = 0; i < via_tcp.h.size(); ++i)
            EXPECT_EQ(via_http.h[i], via_tcp.h[i])
                << "step " << t << " h[" << i << "]";
    }
    EXPECT_EQ(http_session->steps(), 6u);

    // Wrong step width is INVALID_ARGUMENT with state intact.
    EXPECT_EQ(http_session->step(nn::Vector(kX + 3, 0.f)).status.code,
              client::StatusCode::InvalidArgument);
    EXPECT_EQ(http_session->steps(), 6u);

    // Non-LSTM models refuse to open, with the same code as tcp.
    client::Status tcp_refused, http_refused;
    EXPECT_EQ(fx.tcp->openSession("fc97", 0, tcp_refused), nullptr);
    EXPECT_EQ(fx.http->openSession("fc97", 0, http_refused),
              nullptr);
    EXPECT_EQ(http_refused.code, tcp_refused.code)
        << http_refused.toString() << " vs "
        << tcp_refused.toString();

    http_session->close();
    EXPECT_EQ(fx.gateway->openSessions(), 0u);
    EXPECT_EQ(http_session->step(nn::Vector(kX, 0.f)).status.code,
              client::StatusCode::Unavailable);
    tcp_session->close();

    // Stepping an unknown session id over the raw wire is 404.
    const auto stale = fx.raw(
        "POST", "/v1/session/step",
        R"({"session":"s999","x":[0,0,0,0,0,0,0,0]})");
    EXPECT_EQ(stale.status, 404);
    EXPECT_EQ(GatewayFixture::errorCode(stale.body), "NOT_FOUND");
}

TEST(Gateway, CreateFailsTypedOnBadBackendOrPort)
{
    gateway::GatewayOptions options;
    options.client.config = makeConfig();
    client::Status status;

    // Malformed backend endpoint.
    EXPECT_EQ(gateway::HttpGateway::create("warp://x", options,
                                           status),
              nullptr);
    EXPECT_EQ(status.code, client::StatusCode::InvalidArgument);

    // Unreachable tcp backend.
    EXPECT_EQ(gateway::HttpGateway::create("tcp://127.0.0.1:1",
                                           options, status),
              nullptr);
    EXPECT_EQ(status.code, client::StatusCode::TransportError)
        << status.toString();
}

} // namespace
