/**
 * @file
 * TenantTable tests: config parsing (schema, defaults, rejection of
 * duplicates and negative limits), deterministic token-bucket
 * behaviour under explicit virtual time, concurrency quotas with
 * release(), and hot reload keeping runtime state keyed by name.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>

#include <unistd.h>

#include "gateway/tenants.hh"

namespace {

using namespace eie::gateway;
using namespace std::chrono_literals;

const std::chrono::steady_clock::time_point kT0{};

std::chrono::steady_clock::time_point
at(std::chrono::milliseconds offset)
{
    return kT0 + offset;
}

TEST(TenantConfigs, ParsesSchemaAndDefaults)
{
    const auto configs = loadTenantConfigs(R"({"tenants":[
        {"name":"acme","token":"tok-a","priority":10,
         "rate_qps":100.0,"burst":20,"max_concurrent":8,
         "deadline_cap_us":500000,"enabled":true},
        {"name":"beta","token":"tok-b"},
        {"name":"lapsed","token":"tok-l","enabled":false,
         "rate_qps":5}
    ]})");
    ASSERT_EQ(configs.size(), 3u);

    EXPECT_EQ(configs[0].name, "acme");
    EXPECT_EQ(configs[0].token, "tok-a");
    EXPECT_TRUE(configs[0].enabled);
    EXPECT_EQ(configs[0].priority, 10);
    EXPECT_DOUBLE_EQ(configs[0].rate_qps, 100.0);
    EXPECT_DOUBLE_EQ(configs[0].burst, 20.0);
    EXPECT_EQ(configs[0].max_concurrent, 8u);
    EXPECT_EQ(configs[0].deadline_cap, 500000us);

    // Only name+token are required; everything else defaults open.
    EXPECT_TRUE(configs[1].enabled);
    EXPECT_EQ(configs[1].priority, 0);
    EXPECT_DOUBLE_EQ(configs[1].rate_qps, 0.0);
    EXPECT_EQ(configs[1].max_concurrent, 0u);
    EXPECT_EQ(configs[1].deadline_cap, 0us);

    // A nonzero rate with burst left 0 defaults to max(rate, 1).
    EXPECT_FALSE(configs[2].enabled);
    EXPECT_DOUBLE_EQ(configs[2].burst, 5.0);
}

TEST(TenantConfigs, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "not json",
        "[]",                                   // not an object
        "{}",                                   // no tenants array
        R"({"tenants":{}})",                    // not an array
        R"({"tenants":[{"token":"t"}]})",       // missing name
        R"({"tenants":[{"name":"a"}]})",        // missing token
        R"({"tenants":[{"name":"a","token":"t"},
                       {"name":"a","token":"u"}]})", // dup name
        R"({"tenants":[{"name":"a","token":"t"},
                       {"name":"b","token":"t"}]})", // dup token
        R"({"tenants":[{"name":"a","token":"t",
                        "rate_qps":-1}]})",     // negative rate
        R"({"tenants":[{"name":"a","token":"t",
                        "burst":-2}]})",
        R"({"tenants":[{"name":"a","token":"t",
                        "deadline_cap_us":-5}]})",
    };
    for (const char *doc : bad)
        EXPECT_THROW(loadTenantConfigs(doc), std::runtime_error)
            << doc;
}

TEST(TenantTable, AuthRejectsUnknownAndDisabled)
{
    TenantTable table;
    table.load(loadTenantConfigs(R"({"tenants":[
        {"name":"acme","token":"tok-a"},
        {"name":"lapsed","token":"tok-l","enabled":false}
    ]})"));
    EXPECT_EQ(table.size(), 2u);
    EXPECT_FALSE(table.empty());

    std::shared_ptr<TenantState> tenant;
    EXPECT_EQ(table.admit("wrong", kT0, tenant),
              Admit::UnknownToken);
    EXPECT_EQ(tenant, nullptr);

    // Disabled tenants authenticate (out set, rejects counted) but
    // are refused.
    EXPECT_EQ(table.admit("tok-l", kT0, tenant), Admit::Disabled);
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->name(), "lapsed");
    EXPECT_EQ(tenant->inFlight(), 0u);

    tenant.reset();
    EXPECT_EQ(table.admit("tok-a", kT0, tenant), Admit::Ok);
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->name(), "acme");
    EXPECT_EQ(tenant->inFlight(), 1u);
    EXPECT_EQ(tenant->admitted(), 1u);
    TenantTable::release(tenant);
    EXPECT_EQ(tenant->inFlight(), 0u);
}

TEST(TenantTable, TokenBucketIsDeterministicUnderVirtualTime)
{
    TenantTable table;
    table.load(loadTenantConfigs(R"({"tenants":[
        {"name":"metered","token":"tok","rate_qps":2.0,"burst":2}
    ]})"));

    std::shared_ptr<TenantState> tenant;
    // The bucket primes full on first use: exactly `burst` admits
    // at t0, then rate-limited.
    EXPECT_EQ(table.admit("tok", kT0, tenant), Admit::Ok);
    TenantTable::release(tenant);
    EXPECT_EQ(table.admit("tok", kT0, tenant), Admit::Ok);
    TenantTable::release(tenant);
    EXPECT_EQ(table.admit("tok", kT0, tenant), Admit::RateLimited);
    EXPECT_EQ(tenant->rejectedRate(), 1u);

    // 2 qps -> one token every 500ms. 400ms in: still dry.
    EXPECT_EQ(table.admit("tok", at(400ms), tenant),
              Admit::RateLimited);
    // 500ms in: exactly one token.
    EXPECT_EQ(table.admit("tok", at(500ms), tenant), Admit::Ok);
    TenantTable::release(tenant);
    EXPECT_EQ(table.admit("tok", at(500ms), tenant),
              Admit::RateLimited);

    // A long idle refills to burst, never beyond.
    EXPECT_EQ(table.admit("tok", at(60500ms), tenant), Admit::Ok);
    TenantTable::release(tenant);
    EXPECT_EQ(table.admit("tok", at(60500ms), tenant), Admit::Ok);
    TenantTable::release(tenant);
    EXPECT_EQ(table.admit("tok", at(60500ms), tenant),
              Admit::RateLimited);
    EXPECT_EQ(tenant->rejectedRate(), 4u);
    EXPECT_EQ(tenant->admitted(), 5u);
}

TEST(TenantTable, ConcurrencyQuotaFreesOnRelease)
{
    TenantTable table;
    table.load(loadTenantConfigs(R"({"tenants":[
        {"name":"narrow","token":"tok","max_concurrent":2}
    ]})"));

    std::shared_ptr<TenantState> first, second, third;
    EXPECT_EQ(table.admit("tok", kT0, first), Admit::Ok);
    EXPECT_EQ(table.admit("tok", kT0, second), Admit::Ok);
    EXPECT_EQ(table.admit("tok", kT0, third), Admit::OverQuota);
    EXPECT_EQ(third->inFlight(), 2u);
    EXPECT_EQ(third->rejectedQuota(), 1u);

    TenantTable::release(first);
    EXPECT_EQ(table.admit("tok", kT0, third), Admit::Ok);
    EXPECT_EQ(third->inFlight(), 2u);
    TenantTable::release(second);
    TenantTable::release(third);
    EXPECT_EQ(third->inFlight(), 0u);
}

TEST(TenantTable, HotReloadKeepsRuntimeStateByName)
{
    TenantTable table;
    table.load(loadTenantConfigs(R"({"tenants":[
        {"name":"acme","token":"tok-a","max_concurrent":4},
        {"name":"beta","token":"tok-b"}
    ]})"));
    EXPECT_EQ(table.generation(), 1u);

    std::shared_ptr<TenantState> held;
    ASSERT_EQ(table.admit("tok-a", kT0, held), Admit::Ok);
    ASSERT_EQ(table.admit("tok-a", kT0, held), Admit::Ok);
    TenantTable::release(held);
    EXPECT_EQ(held->inFlight(), 1u);
    EXPECT_EQ(held->admitted(), 2u);

    // Reload: acme's token rotates and its quota shrinks; beta is
    // dropped; a new tenant appears.
    table.load(loadTenantConfigs(R"({"tenants":[
        {"name":"acme","token":"tok-a2","max_concurrent":1},
        {"name":"gamma","token":"tok-g"}
    ]})"));
    EXPECT_EQ(table.generation(), 2u);
    EXPECT_EQ(table.size(), 2u);

    std::shared_ptr<TenantState> tenant;
    // Old tokens stop working immediately.
    EXPECT_EQ(table.admit("tok-a", kT0, tenant),
              Admit::UnknownToken);
    EXPECT_EQ(table.admit("tok-b", kT0, tenant),
              Admit::UnknownToken);

    // acme kept its runtime state: one request still in flight, so
    // the shrunk quota of 1 is already full.
    EXPECT_EQ(table.admit("tok-a2", kT0, tenant), Admit::OverQuota);
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant.get(), held.get()); // same live state object
    EXPECT_EQ(tenant->admitted(), 2u);

    // The in-flight hold from before the reload releases cleanly.
    TenantTable::release(held);
    EXPECT_EQ(table.admit("tok-a2", kT0, tenant), Admit::Ok);
    TenantTable::release(tenant);

    // New tenants start fresh.
    EXPECT_EQ(table.admit("tok-g", kT0, tenant), Admit::Ok);
    EXPECT_EQ(tenant->admitted(), 1u);
    TenantTable::release(tenant);
}

TEST(TenantTable, LoadFileKeepsPreviousTableOnFailure)
{
    const std::string path = "/tmp/eie_tenants_test_" +
        std::to_string(::getpid()) + ".json";
    {
        std::ofstream out(path);
        out << R"({"tenants":[{"name":"a","token":"t"}]})";
    }

    TenantTable table;
    EXPECT_EQ(table.loadFile(path), "");
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.generation(), 1u);

    {
        std::ofstream out(path);
        out << "{corrupt";
    }
    const std::string error = table.loadFile(path);
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(table.size(), 1u); // previous table intact
    EXPECT_EQ(table.generation(), 1u);
    std::shared_ptr<TenantState> tenant;
    EXPECT_EQ(table.admit("t", kT0, tenant), Admit::Ok);
    TenantTable::release(tenant);

    // A missing file is an error, not a wipe.
    ::unlink(path.c_str());
    EXPECT_FALSE(table.loadFile(path).empty());
    EXPECT_EQ(table.size(), 1u);
}

TEST(TenantTable, EmptyTableMeansAuthOff)
{
    TenantTable table;
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(table.generation(), 0u);
    EXPECT_TRUE(table.states().empty());

    std::shared_ptr<TenantState> tenant;
    EXPECT_EQ(table.admit("anything", kT0, tenant),
              Admit::UnknownToken);

    // admitName covers every outcome (metrics reason labels).
    EXPECT_STREQ(admitName(Admit::Ok), "ok");
    EXPECT_STREQ(admitName(Admit::UnknownToken), "unknown_token");
    EXPECT_STREQ(admitName(Admit::Disabled), "disabled");
    EXPECT_STREQ(admitName(Admit::RateLimited), "rate_limited");
    EXPECT_STREQ(admitName(Admit::OverQuota), "over_quota");
}

} // namespace
