/**
 * @file
 * Shared helpers for the test suite: deterministic layer construction
 * and comparison utilities.
 */

#ifndef EIE_TESTS_HELPERS_HH
#define EIE_TESTS_HELPERS_HH

#include <cstdint>

#include "common/random.hh"
#include "compress/compressed_layer.hh"
#include "nn/generate.hh"
#include "nn/sparse.hh"

namespace eie::test {

/** Build a random sparse weight matrix with the given density. */
inline nn::SparseMatrix
randomWeights(std::size_t rows, std::size_t cols, double density,
              std::uint64_t seed)
{
    Rng rng(seed);
    nn::WeightGenOptions opts;
    opts.density = density;
    return nn::makeSparseWeights(rows, cols, opts, rng);
}

/** Compress a random layer end to end for @p n_pe PEs. */
inline compress::CompressedLayer
randomCompressedLayer(std::size_t rows, std::size_t cols, double density,
                      unsigned n_pe, std::uint64_t seed)
{
    compress::CompressionOptions opts;
    opts.interleave.n_pe = n_pe;
    return compress::CompressedLayer::compress(
        "test", randomWeights(rows, cols, density, seed), opts);
}

/** Random activations with the given non-zero fraction. */
inline nn::Vector
randomActivations(std::size_t n, double density, std::uint64_t seed)
{
    Rng rng(seed);
    return nn::makeActivations(n, density, rng);
}

} // namespace eie::test

#endif // EIE_TESTS_HELPERS_HH
