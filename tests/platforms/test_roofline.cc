/**
 * @file
 * Roofline platform model tests: calibration against the paper's
 * Table IV wall-clock measurements and structural properties.
 */

#include <gtest/gtest.h>

#include "platforms/roofline.hh"

namespace {

using namespace eie::platforms;

Workload
alex6()
{
    return {"Alex-6", 4096, 9216, 0.09, 0.351};
}

Workload
vgg6()
{
    return {"VGG-6", 4096, 25088, 0.04, 0.183};
}

TEST(Workload, DerivedQuantities)
{
    const auto w = alex6();
    EXPECT_DOUBLE_EQ(w.denseFlops(), 2.0 * 4096 * 9216);
    EXPECT_NEAR(w.nnz(), 0.09 * 4096 * 9216, 1.0);
    EXPECT_DOUBLE_EQ(w.denseWeightBytes(), 4.0 * 4096 * 9216);
    EXPECT_NEAR(w.csrBytes(), w.nnz() * 8 + 4 * 4097, 1.0);
}

TEST(Roofline, CalibrationWithinBandOfTableIV)
{
    // Spot checks against the paper's measured values; the model
    // uses one bandwidth per platform so individual rows deviate,
    // but each must land within ~2x of the measurement.
    const RooflinePlatform cpu(cpuCoreI7Params());
    EXPECT_NEAR(cpu.timeUs(vgg6(), false, 1), 35022.8, 35022.8 * 0.5);
    EXPECT_NEAR(cpu.timeUs(alex6(), true, 1), 3066.5, 3066.5 * 0.5);

    const RooflinePlatform gpu(gpuTitanXParams());
    EXPECT_NEAR(gpu.timeUs(alex6(), false, 1), 541.5, 541.5 * 0.5);
    EXPECT_NEAR(gpu.timeUs(vgg6(), false, 1), 1467.8, 1467.8 * 0.5);
    EXPECT_NEAR(gpu.timeUs(alex6(), true, 1), 134.8, 134.8 * 0.7);

    const RooflinePlatform mgpu(mobileGpuTegraK1Params());
    EXPECT_NEAR(mgpu.timeUs(alex6(), false, 1), 12437.2,
                12437.2 * 0.5);
}

TEST(Roofline, CompressionHelpsAtBatchOne)
{
    // Batch-1 sparse must beat dense on every platform (fewer bytes),
    // but by far less than the 11x density ratio (irregularity).
    for (const auto &make :
         {cpuCoreI7Params, gpuTitanXParams, mobileGpuTegraK1Params}) {
        const RooflinePlatform p(make());
        const double dense = p.timeUs(alex6(), false, 1);
        const double sparse = p.timeUs(alex6(), true, 1);
        EXPECT_LT(sparse, dense) << p.name();
        EXPECT_GT(sparse, dense / 11.0) << p.name();
    }
}

TEST(Roofline, BatchingHelpsDenseHurtsSparse)
{
    // §VI-A / Table IV: batching speeds up dense dramatically, while
    // batched sparse is *slower* than batched dense.
    const RooflinePlatform cpu(cpuCoreI7Params());
    const double dense1 = cpu.timeUs(alex6(), false, 1);
    const double dense64 = cpu.timeUs(alex6(), false, 64);
    EXPECT_LT(dense64, dense1 / 10.0);
    const double sparse64 = cpu.timeUs(alex6(), true, 64);
    EXPECT_GT(sparse64, dense64);
}

TEST(Roofline, PowerValuesAreTheMeasuredOnes)
{
    EXPECT_DOUBLE_EQ(RooflinePlatform(cpuCoreI7Params()).powerWatts(),
                     73.0);
    EXPECT_DOUBLE_EQ(RooflinePlatform(gpuTitanXParams()).powerWatts(),
                     159.0);
    EXPECT_DOUBLE_EQ(
        RooflinePlatform(mobileGpuTegraK1Params()).powerWatts(), 5.1);
}

TEST(Roofline, EnergyIsTimeTimesPower)
{
    const RooflinePlatform gpu(gpuTitanXParams());
    EXPECT_NEAR(gpu.energyUj(alex6(), false, 1),
                gpu.timeUs(alex6(), false, 1) * 159.0, 1e-6);
}

TEST(Roofline, MakeBaselinePlatformsOrder)
{
    const auto platforms = makeBaselinePlatforms();
    ASSERT_EQ(platforms.size(), 3u);
    EXPECT_NE(platforms[0]->name().find("CPU"), std::string::npos);
    EXPECT_NE(platforms[1]->name().find("GPU"), std::string::npos);
    EXPECT_NE(platforms[2]->name().find("mGPU"), std::string::npos);
}

TEST(RooflineDeath, RejectsBadParamsAndBatch)
{
    RooflineParams params = cpuCoreI7Params();
    params.dense_bw_gbs = 0.0;
    EXPECT_EXIT(RooflinePlatform{params}, ::testing::ExitedWithCode(1),
                "positive");
    const RooflinePlatform cpu(cpuCoreI7Params());
    EXPECT_EXIT(cpu.timeUs(alex6(), false, 0),
                ::testing::ExitedWithCode(1), "batch");
}

} // namespace
