/**
 * @file
 * Host kernel correctness: dense GEMV, CSR SpMV and the EIE-format
 * CSC walk must agree with the golden sparse model.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "platforms/host_kernels.hh"

namespace {

using namespace eie;
using namespace eie::platforms;

TEST(CsrMatrix, ConversionRoundTrip)
{
    const auto sparse = test::randomWeights(40, 30, 0.2, 90);
    const auto csr = CsrMatrix::fromSparse(sparse);
    EXPECT_EQ(csr.rows, 40u);
    EXPECT_EQ(csr.cols, 30u);
    EXPECT_EQ(csr.values.size(), sparse.nnz());
    EXPECT_EQ(csr.row_ptr.size(), 41u);
    EXPECT_EQ(csr.row_ptr.back(), sparse.nnz());
    // Column indices ascend within each row (insertion order by j).
    for (std::size_t i = 0; i < csr.rows; ++i)
        for (std::uint32_t e = csr.row_ptr[i];
             e + 1 < csr.row_ptr[i + 1]; ++e)
            EXPECT_LT(csr.col_idx[e], csr.col_idx[e + 1]);
}

TEST(HostKernels, AllThreeAgreeWithGolden)
{
    const auto sparse = test::randomWeights(64, 48, 0.15, 91);
    const auto input = test::randomActivations(48, 0.5, 92);
    const nn::Vector golden = sparse.spmv(input);

    const auto dense = sparse.toDense();
    std::vector<float> y_dense(64);
    denseGemv(dense, input, y_dense);

    const auto csr = CsrMatrix::fromSparse(sparse);
    std::vector<float> y_csr(64);
    csrSpmv(csr, input, y_csr);

    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_NEAR(y_dense[i], golden[i], 1e-4) << i;
        EXPECT_NEAR(y_csr[i], golden[i], 1e-4) << i;
    }
}

TEST(HostKernels, CscCodebookMatchesQuantizedGolden)
{
    const auto layer = test::randomCompressedLayer(64, 48, 0.15, 8, 93);
    const auto input = test::randomActivations(48, 0.5, 94);

    // The CSC walk computes with codebook-quantised weights: compare
    // against the quantised golden model.
    const nn::Vector golden = layer.quantizedWeights().spmv(input);
    std::vector<float> y(64);
    cscCodebookSpmv(layer.storage(), input, y);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_NEAR(y[i], golden[i], 1e-3) << i;
}

TEST(HostKernels, CscSkipsZeroActivations)
{
    // With an all-zero input the CSC kernel must not touch anything.
    const auto layer = test::randomCompressedLayer(32, 32, 0.3, 4, 95);
    const nn::Vector zeros(32, 0.0f);
    std::vector<float> y(32, 42.0f);
    cscCodebookSpmv(layer.storage(), zeros, y);
    for (float v : y)
        EXPECT_EQ(v, 0.0f);
}

TEST(HostKernelsDeath, SizeChecks)
{
    const auto sparse = test::randomWeights(8, 8, 0.5, 96);
    const auto dense = sparse.toDense();
    std::vector<float> bad_y(4);
    const nn::Vector input(8, 1.0f);
    EXPECT_DEATH(denseGemv(dense, input, bad_y), "mismatch");
}

} // namespace
