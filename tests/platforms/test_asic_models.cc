/**
 * @file
 * ASIC/FPGA comparison model tests against Table V.
 */

#include <gtest/gtest.h>

#include "platforms/asic_models.hh"

namespace {

using namespace eie::platforms;

Workload
fc7()
{
    return {"Alex-7", 4096, 4096, 0.09, 0.353};
}

TEST(DaDianNao, BandwidthBoundFc7Throughput)
{
    // Table V: 147,938 frames/s on FC7 from the 4964 GB/s peak
    // eDRAM bandwidth over 16-bit dense weights.
    const DaDianNaoModel model;
    const double frames = 1e6 / model.timeUs(fc7(), false, 1);
    EXPECT_NEAR(frames, 147938.0, 2000.0);
    // Cannot exploit sparsity: compressed time identical.
    EXPECT_DOUBLE_EQ(model.timeUs(fc7(), true, 1),
                     model.timeUs(fc7(), false, 1));
    EXPECT_DOUBLE_EQ(model.powerWatts(), 15.97);
    EXPECT_EQ(DaDianNaoModel::spec().technology_nm, 28u);
}

TEST(TrueNorth, PublishedOperatingPoint)
{
    const TrueNorthModel model;
    EXPECT_NEAR(1e6 / model.timeUs(fc7(), false, 1), 1989.0, 1.0);
    EXPECT_DOUBLE_EQ(model.powerWatts(), 0.18);
    EXPECT_DOUBLE_EQ(TrueNorthModel::spec().area_mm2, 430.0);
}

TEST(AEye, Ddr3Bound)
{
    // Table V: ~33 frames/s on FC7 (16-bit weights over ~1.1 GB/s).
    const AEyeModel model;
    EXPECT_NEAR(1e6 / model.timeUs(fc7(), false, 1), 33.0, 4.0);
}

TEST(Specs, TableVRows)
{
    EXPECT_EQ(cpuSpec().technology_nm, 22u);
    EXPECT_DOUBLE_EQ(cpuSpec().area_mm2, 356.0);
    EXPECT_EQ(gpuSpec().year, 2015);
    EXPECT_DOUBLE_EQ(gpuSpec().power_watts, 159.0);
    EXPECT_EQ(mobileGpuSpec().type, "mGPU");
}

} // namespace
