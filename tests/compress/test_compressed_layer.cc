/**
 * @file
 * End-to-end compression pipeline tests, including the storage
 * accounting Deep Compression reports.
 */

#include <gtest/gtest.h>

#include "compress/compressed_layer.hh"
#include "helpers.hh"

namespace {

using namespace eie;
using namespace eie::compress;

TEST(CompressedLayer, PipelineKeepsStructure)
{
    const auto w = test::randomWeights(128, 96, 0.1, 80);
    CompressionOptions opts;
    opts.interleave.n_pe = 8;
    const auto layer = CompressedLayer::compress("l", w, opts);

    EXPECT_EQ(layer.inputSize(), 96u);
    EXPECT_EQ(layer.outputSize(), 128u);
    EXPECT_EQ(layer.quantizedWeights().nnz(), w.nnz());
    EXPECT_EQ(layer.codebook().size(), 16u);

    // Quantised values are all codebook entries.
    for (std::size_t j = 0; j < w.cols(); ++j) {
        for (const auto &e : layer.quantizedWeights().column(j)) {
            bool found = false;
            for (float v : layer.codebook().values())
                found |= (v == e.value);
            EXPECT_TRUE(found);
        }
    }
}

TEST(CompressedLayer, ExplicitPruningApplied)
{
    const auto w = test::randomWeights(64, 64, 0.5, 81);
    CompressionOptions opts;
    opts.density = 0.1;
    opts.interleave.n_pe = 4;
    const auto layer = CompressedLayer::compress("l", w, opts);
    EXPECT_NEAR(layer.quantizedWeights().density(), 0.1, 1e-3);
}

TEST(CompressedLayer, StorageReportRatios)
{
    const auto w = test::randomWeights(256, 256, 0.1, 82);
    CompressionOptions opts;
    opts.interleave.n_pe = 16;
    const auto layer = CompressedLayer::compress("l", w, opts);
    const auto report = layer.storageReport();

    EXPECT_EQ(report.dense_bits, 256u * 256u * 32u);
    EXPECT_GT(report.spmat_bits, 0u);
    EXPECT_GT(report.huffman_bits, 0u);

    // At 10% density with 4+4-bit entries the CSC representation is
    // far smaller than dense fp32; Huffman shrinks it further (or at
    // worst matches the 8 bits/entry).
    EXPECT_GT(report.compressionRatio(), 10.0);
    EXPECT_LE(report.huffman_bits, report.spmat_bits);
    EXPECT_GE(report.huffmanRatio(), report.compressionRatio() * 0.9);

    // The paper's headline: compressed AlexNet-class layers fit in
    // on-chip SRAM. Bits per non-zero = 8 (entry) + padding share +
    // pointer share (16 * n_pe * (cols+1) / nnz ~ 10 here).
    const double bits_per_nnz =
        static_cast<double>(report.cscBits()) /
        static_cast<double>(layer.quantizedWeights().nnz());
    EXPECT_LT(bits_per_nnz, 20.0);
}

TEST(CompressedLayer, QuantizedForwardCloseToOriginal)
{
    const auto w = test::randomWeights(96, 64, 0.15, 83);
    CompressionOptions opts;
    opts.interleave.n_pe = 8;
    const auto layer = CompressedLayer::compress("l", w, opts);

    const auto input = test::randomActivations(64, 0.4, 84);
    const auto original = w.spmv(input);
    const auto quantized = layer.quantizedWeights().spmv(input);

    // 15 shared values over the weight range: outputs track within
    // a modest relative error.
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < original.size(); ++i) {
        num += std::abs(original[i] - quantized[i]);
        den += std::abs(original[i]);
    }
    EXPECT_LT(num / (den + 1e-9), 0.35);
}

} // namespace
