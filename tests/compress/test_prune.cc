/**
 * @file
 * Magnitude pruning tests.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/random.hh"
#include "compress/prune.hh"
#include "nn/generate.hh"

namespace {

using namespace eie;
using namespace eie::compress;
using namespace eie::nn;

TEST(Prune, KeepsLargestMagnitudes)
{
    Matrix m(2, 3);
    m.at(0, 0) = 0.1f;
    m.at(0, 1) = -5.0f;
    m.at(0, 2) = 0.2f;
    m.at(1, 0) = 3.0f;
    m.at(1, 1) = -0.05f;
    m.at(1, 2) = 1.0f;

    // Keep 50% = 3 of 6: |−5|, |3|, |1|.
    const auto pruned = pruneDense(m, 0.5);
    EXPECT_EQ(pruned.nnz(), 3u);
    const auto dense = pruned.toDense();
    EXPECT_FLOAT_EQ(dense.at(0, 1), -5.0f);
    EXPECT_FLOAT_EQ(dense.at(1, 0), 3.0f);
    EXPECT_FLOAT_EQ(dense.at(1, 2), 1.0f);
    EXPECT_FLOAT_EQ(dense.at(0, 0), 0.0f);
}

class PruneDensitySweep : public ::testing::TestWithParam<double>
{};

TEST_P(PruneDensitySweep, ExactKeepCount)
{
    const double density = GetParam();
    Rng rng(42);
    const auto dense = makeDenseWeights(40, 50, 1.0, rng);
    const auto pruned = pruneDense(dense, density);
    const auto expected = static_cast<std::size_t>(
        std::ceil(density * 40 * 50));
    EXPECT_EQ(pruned.nnz(), expected);
}

INSTANTIATE_TEST_SUITE_P(TableIIIDensities, PruneDensitySweep,
                         ::testing::Values(0.0, 0.04, 0.09, 0.25, 0.5,
                                           1.0));

TEST(Prune, TiesResolvedWithinBudget)
{
    // All magnitudes equal: the keep count must still be exact.
    Matrix m(4, 4);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            m.at(i, j) = (i + j) % 2 ? 1.0f : -1.0f;
    const auto pruned = pruneDense(m, 0.5);
    EXPECT_EQ(pruned.nnz(), 8u);
}

TEST(Prune, FurtherPruningSparseInput)
{
    Rng rng(43);
    WeightGenOptions opts;
    opts.density = 0.5;
    const auto w = makeSparseWeights(64, 64, opts, rng);
    const auto pruned = pruneSparse(w, 0.1);
    EXPECT_EQ(pruned.nnz(), static_cast<std::size_t>(
                                std::ceil(0.1 * 64 * 64)));
    // Survivors must be the largest-magnitude entries: the smallest
    // surviving magnitude >= the largest pruned magnitude.
    float min_kept = 1e9f;
    for (std::size_t j = 0; j < pruned.cols(); ++j)
        for (const auto &e : pruned.column(j))
            min_kept = std::min(min_kept, std::abs(e.value));
    const float threshold = pruneThreshold(w, 0.1);
    EXPECT_GE(min_kept, threshold);
}

TEST(PruneDeath, RejectsBadDensity)
{
    Rng rng(44);
    const auto dense = makeDenseWeights(4, 4, 1.0, rng);
    EXPECT_EXIT(pruneDense(dense, 1.5), ::testing::ExitedWithCode(1),
                "density");
}

} // namespace
