/**
 * @file
 * EIEM model file round-trip and corruption tests.
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "compress/model_file.hh"
#include "helpers.hh"

namespace {

using namespace eie;
using namespace eie::compress;

void
expectModelsEqual(const InterleavedCsc &a, const InterleavedCsc &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    ASSERT_EQ(a.numPe(), b.numPe());
    ASSERT_EQ(a.codebook().values(), b.codebook().values());
    for (unsigned k = 0; k < a.numPe(); ++k) {
        ASSERT_EQ(a.pe(k).entries(), b.pe(k).entries()) << "PE " << k;
        ASSERT_EQ(a.pe(k).colPtr(), b.pe(k).colPtr()) << "PE " << k;
        ASSERT_EQ(a.pe(k).localRows(), b.pe(k).localRows());
        ASSERT_EQ(a.pe(k).paddingEntries(), b.pe(k).paddingEntries());
    }
}

TEST(ModelFile, SerializeDeserializeRoundTrip)
{
    const auto layer = test::randomCompressedLayer(96, 64, 0.1, 8, 401);
    const auto &model = layer.storage();

    const auto bytes = serializeModel(model);
    EXPECT_GT(bytes.size(), 16u);

    const auto restored = deserializeModel(bytes);
    expectModelsEqual(model, restored);

    // The restored model decodes to the same quantised matrix.
    const auto decoded = restored.decode();
    EXPECT_EQ(decoded.nnz(), layer.quantizedWeights().nnz());
}

TEST(ModelFile, HuffmanBeatsRawNibbles)
{
    // The file stores Huffman-coded streams: for a skewed codebook
    // distribution the file undercuts raw 8-bit entries + pointers.
    const auto layer =
        test::randomCompressedLayer(256, 128, 0.08, 16, 402);
    const auto &model = layer.storage();
    const auto bytes = serializeModel(model);

    const std::size_t raw_entry_bytes = model.totalEntries();
    const std::size_t pointer_bytes =
        model.numPe() * (model.cols() + 1) * 4;
    EXPECT_LT(bytes.size(), raw_entry_bytes + pointer_bytes + 4096);
}

TEST(ModelFile, SaveLoadFile)
{
    const auto layer = test::randomCompressedLayer(48, 32, 0.2, 4, 403);
    const std::string path = ::testing::TempDir() + "model.eiem";
    saveModelFile(path, layer.storage());
    const auto restored = loadModelFile(path);
    expectModelsEqual(layer.storage(), restored);
    std::remove(path.c_str());
}

// Corruption is a recoverable, typed error (ModelFileError), not a
// fatal: a serving daemon must survive a bad file on disk.

TEST(ModelFileError, DetectsCorruption)
{
    const auto layer = test::randomCompressedLayer(32, 32, 0.2, 4, 404);
    auto bytes = serializeModel(layer.storage());

    auto flipped = bytes;
    flipped[bytes.size() / 2] ^= 0x40;
    EXPECT_THROW(deserializeModel(flipped), ModelFileError);
    try {
        deserializeModel(flipped);
        FAIL() << "corrupt model deserialized";
    } catch (const ModelFileError &error) {
        EXPECT_NE(std::string(error.what()).find("checksum"),
                  std::string::npos);
    }

    auto truncated = bytes;
    truncated.resize(bytes.size() / 2);
    EXPECT_THROW(deserializeModel(truncated), ModelFileError);

    // Mid-byte truncation: every prefix must fail cleanly, never
    // crash or return a half-read model.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, std::size_t{17},
          bytes.size() / 3, bytes.size() - 1}) {
        auto prefix = bytes;
        prefix.resize(keep);
        EXPECT_THROW(deserializeModel(prefix), ModelFileError)
            << "prefix of " << keep << " bytes";
    }

    auto bad_magic = bytes;
    bad_magic[0] = 'X';
    EXPECT_THROW(deserializeModel(bad_magic), ModelFileError);
}

TEST(ModelFileError, MissingFile)
{
    EXPECT_THROW(loadModelFile("/nonexistent/path/model.eiem"),
                 ModelFileError);
}

TEST(ModelFileError, TruncatedFileOnDisk)
{
    const auto layer = test::randomCompressedLayer(48, 32, 0.2, 4, 405);
    const std::string path =
        ::testing::TempDir() + "truncated.eiem";
    saveModelFile(path, layer.storage());

    // Rewrite the file with half its bytes: loadModelFile must
    // surface the damage as ModelFileError, not crash or exit.
    const auto bytes = serializeModel(layer.storage());
    FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() / 2, file);
    std::fclose(file);

    EXPECT_THROW(loadModelFile(path), ModelFileError);
    std::remove(path.c_str());
}

TEST(ModelFile, EmptyLayerRoundTrips)
{
    // A layer with an all-zero column region still serialises.
    nn::SparseMatrix w(16, 8);
    w.insert(3, 2, 1.0f);
    CompressionOptions opts;
    opts.interleave.n_pe = 4;
    const auto layer = CompressedLayer::compress("tiny", w, opts);
    const auto bytes = serializeModel(layer.storage());
    const auto restored = deserializeModel(bytes);
    expectModelsEqual(layer.storage(), restored);
}

} // namespace
