/**
 * @file
 * EIEM model file round-trip and corruption tests.
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "compress/model_file.hh"
#include "helpers.hh"

namespace {

using namespace eie;
using namespace eie::compress;

void
expectModelsEqual(const InterleavedCsc &a, const InterleavedCsc &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    ASSERT_EQ(a.numPe(), b.numPe());
    ASSERT_EQ(a.codebook().values(), b.codebook().values());
    for (unsigned k = 0; k < a.numPe(); ++k) {
        ASSERT_EQ(a.pe(k).entries(), b.pe(k).entries()) << "PE " << k;
        ASSERT_EQ(a.pe(k).colPtr(), b.pe(k).colPtr()) << "PE " << k;
        ASSERT_EQ(a.pe(k).localRows(), b.pe(k).localRows());
        ASSERT_EQ(a.pe(k).paddingEntries(), b.pe(k).paddingEntries());
    }
}

TEST(ModelFile, SerializeDeserializeRoundTrip)
{
    const auto layer = test::randomCompressedLayer(96, 64, 0.1, 8, 401);
    const auto &model = layer.storage();

    const auto bytes = serializeModel(model);
    EXPECT_GT(bytes.size(), 16u);

    const auto restored = deserializeModel(bytes);
    expectModelsEqual(model, restored);

    // The restored model decodes to the same quantised matrix.
    const auto decoded = restored.decode();
    EXPECT_EQ(decoded.nnz(), layer.quantizedWeights().nnz());
}

TEST(ModelFile, HuffmanBeatsRawNibbles)
{
    // The file stores Huffman-coded streams: for a skewed codebook
    // distribution the file undercuts raw 8-bit entries + pointers.
    const auto layer =
        test::randomCompressedLayer(256, 128, 0.08, 16, 402);
    const auto &model = layer.storage();
    const auto bytes = serializeModel(model);

    const std::size_t raw_entry_bytes = model.totalEntries();
    const std::size_t pointer_bytes =
        model.numPe() * (model.cols() + 1) * 4;
    EXPECT_LT(bytes.size(), raw_entry_bytes + pointer_bytes + 4096);
}

TEST(ModelFile, SaveLoadFile)
{
    const auto layer = test::randomCompressedLayer(48, 32, 0.2, 4, 403);
    const std::string path = ::testing::TempDir() + "model.eiem";
    saveModelFile(path, layer.storage());
    const auto restored = loadModelFile(path);
    expectModelsEqual(layer.storage(), restored);
    std::remove(path.c_str());
}

TEST(ModelFileDeath, DetectsCorruption)
{
    const auto layer = test::randomCompressedLayer(32, 32, 0.2, 4, 404);
    auto bytes = serializeModel(layer.storage());

    auto flipped = bytes;
    flipped[bytes.size() / 2] ^= 0x40;
    EXPECT_EXIT(deserializeModel(flipped),
                ::testing::ExitedWithCode(1), "checksum");

    auto truncated = bytes;
    truncated.resize(bytes.size() / 2);
    EXPECT_EXIT(deserializeModel(truncated),
                ::testing::ExitedWithCode(1), "");

    auto bad_magic = bytes;
    bad_magic[0] = 'X';
    EXPECT_EXIT(deserializeModel(bad_magic),
                ::testing::ExitedWithCode(1), "checksum|EIEM");
}

TEST(ModelFileDeath, MissingFile)
{
    EXPECT_EXIT(loadModelFile("/nonexistent/path/model.eiem"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ModelFile, EmptyLayerRoundTrips)
{
    // A layer with an all-zero column region still serialises.
    nn::SparseMatrix w(16, 8);
    w.insert(3, 2, 1.0f);
    CompressionOptions opts;
    opts.interleave.n_pe = 4;
    const auto layer = CompressedLayer::compress("tiny", w, opts);
    const auto bytes = serializeModel(layer.storage());
    const auto restored = deserializeModel(bytes);
    expectModelsEqual(layer.storage(), restored);
}

} // namespace
