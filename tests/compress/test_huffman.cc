/**
 * @file
 * Canonical Huffman codec tests.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "compress/huffman.hh"

namespace {

using namespace eie;
using namespace eie::compress;

TEST(Huffman, SkewedFrequenciesGetShortCodes)
{
    std::map<std::uint8_t, std::uint64_t> freq{
        {0, 1000}, {1, 100}, {2, 10}, {3, 1}};
    const auto code = HuffmanCode::fromFrequencies(freq);
    EXPECT_LE(code.codeLength(0), code.codeLength(1));
    EXPECT_LE(code.codeLength(1), code.codeLength(2));
    EXPECT_LE(code.codeLength(2), code.codeLength(3));
    EXPECT_EQ(code.codeLength(0), 1u);
    EXPECT_EQ(code.codeLength(99), 0u); // absent symbol
}

TEST(Huffman, RoundTripRandomStream)
{
    Rng rng(70);
    std::vector<std::uint8_t> symbols;
    for (int i = 0; i < 5000; ++i) {
        // Geometric-ish distribution over 16 symbols, like 4-bit
        // weight indices after k-means.
        int s = 0;
        while (s < 15 && rng.bernoulli(0.35))
            ++s;
        symbols.push_back(static_cast<std::uint8_t>(s));
    }
    const auto freq = countFrequencies(symbols);
    const auto code = HuffmanCode::fromFrequencies(freq);

    BitWriter writer;
    code.encode(symbols, writer);
    EXPECT_EQ(writer.bitCount(), code.encodedBits(freq));

    BitReader reader(writer.bytes(), writer.bitCount());
    const auto decoded = code.decode(reader, symbols.size());
    EXPECT_EQ(decoded, symbols);
    EXPECT_TRUE(reader.exhausted());
}

TEST(Huffman, BeatsFixedWidthOnSkewedData)
{
    // Highly skewed 16-symbol data should beat the 4-bit fixed
    // encoding — the Deep Compression storage win.
    std::map<std::uint8_t, std::uint64_t> freq;
    std::uint64_t total = 0;
    for (int s = 0; s < 16; ++s) {
        freq[static_cast<std::uint8_t>(s)] = 1ull << (15 - s);
        total += freq[static_cast<std::uint8_t>(s)];
    }
    const auto code = HuffmanCode::fromFrequencies(freq);
    EXPECT_LT(code.encodedBits(freq), total * 4);
}

TEST(Huffman, SingleSymbolStream)
{
    std::map<std::uint8_t, std::uint64_t> freq{{7, 42}};
    const auto code = HuffmanCode::fromFrequencies(freq);
    EXPECT_EQ(code.codeLength(7), 1u);

    std::vector<std::uint8_t> symbols(10, 7);
    BitWriter writer;
    code.encode(symbols, writer);
    BitReader reader(writer.bytes(), writer.bitCount());
    EXPECT_EQ(code.decode(reader, 10), symbols);
}

TEST(Huffman, UniformDataCostsFourBits)
{
    std::map<std::uint8_t, std::uint64_t> freq;
    for (int s = 0; s < 16; ++s)
        freq[static_cast<std::uint8_t>(s)] = 100;
    const auto code = HuffmanCode::fromFrequencies(freq);
    // A balanced 16-leaf tree: every code exactly 4 bits.
    for (int s = 0; s < 16; ++s)
        EXPECT_EQ(code.codeLength(static_cast<std::uint8_t>(s)), 4u);
}

TEST(HuffmanDeath, EmptyFrequencies)
{
    EXPECT_EXIT(HuffmanCode::fromFrequencies({}),
                ::testing::ExitedWithCode(1), "no symbols");
}

TEST(HuffmanDeath, EncodingAbsentSymbol)
{
    const auto code = HuffmanCode::fromFrequencies({{1, 5}, {2, 5}});
    BitWriter writer;
    EXPECT_DEATH(code.encode({3}, writer), "no codeword");
}

} // namespace
