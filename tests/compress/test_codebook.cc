/**
 * @file
 * Weight-sharing codebook tests: pinned zero entry, nearest-neighbour
 * encoding, k-means quality, fixed-point mirror.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/random.hh"
#include "compress/codebook.hh"
#include "nn/generate.hh"

namespace {

using namespace eie;
using namespace eie::compress;

TEST(Codebook, EncodeNeverReturnsZeroIndex)
{
    Codebook cb({0.0f, -1.0f, 1.0f});
    // Even a value of exactly 0 maps to a non-zero entry: index 0 is
    // reserved for padding.
    EXPECT_NE(cb.encode(0.0f), 0);
    EXPECT_EQ(cb.encode(0.9f), 2);
    EXPECT_EQ(cb.encode(-2.0f), 1);
}

TEST(Codebook, DecodeRawMatchesQuantizedValues)
{
    Codebook cb({0.0f, 0.5f, -1.25f}, fixed16);
    EXPECT_EQ(cb.decodeRaw(0), 0);
    EXPECT_EQ(cb.decodeRaw(1), quantize(0.5, fixed16));
    EXPECT_EQ(cb.decodeRaw(2), quantize(-1.25, fixed16));
}

TEST(CodebookDeath, EntryZeroMustBeZero)
{
    EXPECT_EXIT(Codebook({1.0f, 2.0f}), ::testing::ExitedWithCode(1),
                "pinned zero");
}

TEST(TrainCodebook, SixteenEntriesWithPinnedZero)
{
    Rng rng(50);
    nn::WeightGenOptions opts;
    opts.density = 0.2;
    const auto w = nn::makeSparseWeights(64, 64, opts, rng);
    const auto cb = trainCodebook(w);
    EXPECT_EQ(cb.size(), 16u);
    EXPECT_FLOAT_EQ(cb.decode(0), 0.0f);
}

TEST(TrainCodebook, QuantizationErrorBounded)
{
    // K-means with 15 clusters over a bounded value set: every value
    // must land within (range / (2 * (k-1))) of its centroid after
    // linear init, and k-means only improves it.
    Rng rng(51);
    std::vector<float> values;
    for (int i = 0; i < 2000; ++i)
        values.push_back(static_cast<float>(rng.uniformReal(-1.0, 1.0)));
    const auto cb = trainCodebook(values);
    const double max_err = 2.0 / (2.0 * 14.0) + 1e-3;
    for (float v : values) {
        const float decoded = cb.decode(cb.encode(v));
        EXPECT_LE(std::abs(v - decoded), max_err) << "value " << v;
    }
}

TEST(TrainCodebook, SeparatedClustersRecovered)
{
    // Two tight clusters near -1 and +1: centroids must sit near them
    // and every value must decode to within the cluster spread.
    Rng rng(52);
    std::vector<float> values;
    for (int i = 0; i < 500; ++i) {
        values.push_back(
            static_cast<float>(-1.0 + rng.normal(0.0, 0.01)));
        values.push_back(
            static_cast<float>(1.0 + rng.normal(0.0, 0.01)));
    }
    const auto cb = trainCodebook(values);
    for (float v : values)
        EXPECT_NEAR(cb.decode(cb.encode(v)), v, 0.1);
}

TEST(TrainCodebook, EmptyLayerProducesZeroTable)
{
    const auto cb = trainCodebook(std::vector<float>{});
    EXPECT_EQ(cb.size(), 16u);
    for (std::size_t i = 0; i < cb.size(); ++i)
        EXPECT_FLOAT_EQ(cb.decode(static_cast<std::uint8_t>(i)), 0.0f);
}

TEST(TrainCodebook, CustomTableSize)
{
    Rng rng(53);
    std::vector<float> values;
    for (int i = 0; i < 100; ++i)
        values.push_back(static_cast<float>(rng.normal(0.0, 1.0)));
    CodebookTrainOptions opts;
    opts.table_size = 4;
    const auto cb = trainCodebook(values, opts);
    EXPECT_EQ(cb.size(), 4u);
}

} // namespace
