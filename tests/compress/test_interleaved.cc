/**
 * @file
 * Interleaved relative-indexed CSC tests: the §III-B zero-run
 * encoding with padding, decode round-trips, and the Figure 12
 * padding-vs-PE-count property.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "compress/interleaved.hh"
#include "nn/generate.hh"

namespace {

using namespace eie;
using namespace eie::compress;

Codebook
unitCodebook()
{
    return Codebook({0.0f, 1.0f});
}

/** Single column with non-zeros at the given rows (value 1.0). */
nn::SparseMatrix
columnWithRows(std::size_t rows, const std::vector<std::size_t> &nz)
{
    nn::SparseMatrix m(rows, 1);
    for (std::size_t r : nz)
        m.insert(r, 0, 1.0f);
    return m;
}

TEST(InterleavedCsc, PaperSection3BExample)
{
    // The §III-B worked example: column
    // [0,0,1,2,0,...,0,3] (23 long, non-zeros at rows 2, 3, 22)
    // encodes as v = [1, 2, 0, 3], z = [2, 0, 15, 2].
    nn::SparseMatrix m(23, 1);
    Codebook cb({0.0f, 1.0f, 2.0f, 3.0f});
    m.insert(2, 0, 1.0f);
    m.insert(3, 0, 2.0f);
    m.insert(22, 0, 3.0f);

    InterleaveOptions opts;
    opts.n_pe = 1;
    InterleavedCsc csc(m, cb, opts);

    const auto &entries = csc.pe(0).entries();
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[0].zero_count, 2);
    EXPECT_EQ(entries[0].weight_index, cb.encode(1.0f));
    EXPECT_EQ(entries[1].zero_count, 0);
    EXPECT_EQ(entries[2].zero_count, 15);
    EXPECT_EQ(entries[2].weight_index, 0); // padding
    EXPECT_EQ(entries[3].zero_count, 2);
    EXPECT_EQ(csc.paddingEntries(), 1u);
    EXPECT_EQ(csc.realEntries(), 3u);
}

TEST(InterleavedCsc, MultiplePaddingForVeryLongRuns)
{
    // Non-zero at row 40 after 40 zeros: needs two padding entries
    // (advancing 16 each) plus the real entry with z = 8.
    const auto m = columnWithRows(41, {40});
    InterleaveOptions opts;
    opts.n_pe = 1;
    InterleavedCsc csc(m, unitCodebook(), opts);
    const auto &entries = csc.pe(0).entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].zero_count, 15);
    EXPECT_EQ(entries[1].zero_count, 15);
    EXPECT_EQ(entries[2].zero_count, 8);
    // Decoded local row must be exactly 40.
    const auto decoded = csc.pe(0).decodeColumn(0);
    EXPECT_EQ(decoded.back().local_row, 40u);
    EXPECT_FALSE(decoded.back().is_padding);
}

TEST(InterleavedCsc, ZeroCountsAreLocalToEachPe)
{
    // Rows 0 and 8 on 4 PEs: both belong to PE 0 at local rows 0, 2.
    const auto m = columnWithRows(12, {0, 8});
    InterleaveOptions opts;
    opts.n_pe = 4;
    InterleavedCsc csc(m, unitCodebook(), opts);
    const auto &pe0 = csc.pe(0).entries();
    ASSERT_EQ(pe0.size(), 2u);
    EXPECT_EQ(pe0[0].zero_count, 0);
    EXPECT_EQ(pe0[1].zero_count, 1); // one local zero (row 4) between
    for (unsigned k = 1; k < 4; ++k)
        EXPECT_TRUE(csc.pe(k).entries().empty());
}

TEST(InterleavedCsc, DecodeRoundTripRandom)
{
    Rng rng(60);
    nn::WeightGenOptions gopts;
    gopts.density = 0.08;
    const auto w = nn::makeSparseWeights(200, 60, gopts, rng);
    const auto cb = trainCodebook(w);

    for (unsigned n_pe : {1u, 2u, 4u, 7u, 16u, 64u}) {
        InterleaveOptions opts;
        opts.n_pe = n_pe;
        InterleavedCsc csc(w, cb, opts);

        // Structure identical; values quantised to codebook entries.
        const auto decoded = csc.decode();
        ASSERT_EQ(decoded.nnz(), w.nnz()) << n_pe << " PEs";
        for (std::size_t j = 0; j < w.cols(); ++j) {
            const auto &orig = w.column(j);
            const auto &got = decoded.column(j);
            ASSERT_EQ(got.size(), orig.size());
            for (std::size_t i = 0; i < orig.size(); ++i) {
                EXPECT_EQ(got[i].row, orig[i].row);
                EXPECT_FLOAT_EQ(got[i].value,
                                cb.decode(cb.encode(orig[i].value)));
            }
        }
        EXPECT_EQ(csc.realEntries(), w.nnz());
    }
}

TEST(InterleavedCsc, SixteenLocalRowsNeverPad)
{
    // With rows <= 16 per PE, any zero run fits in 4 bits: the
    // Figure 12 observation that 256 PEs eliminate padding for
    // 4096-row layers.
    Rng rng(61);
    nn::WeightGenOptions gopts;
    gopts.density = 0.02; // very sparse: padding-prone
    const auto w = nn::makeSparseWeights(256, 40, gopts, rng);
    const auto cb = trainCodebook(w);

    InterleaveOptions opts;
    opts.n_pe = 16; // 16 local rows per PE
    InterleavedCsc csc(w, cb, opts);
    EXPECT_EQ(csc.paddingEntries(), 0u);
    EXPECT_DOUBLE_EQ(csc.realWorkRatio(), 1.0);
}

TEST(InterleavedCsc, PaddingDecreasesWithMorePes)
{
    Rng rng(62);
    nn::WeightGenOptions gopts;
    gopts.density = 0.04; // VGG-like sparsity
    const auto w = nn::makeSparseWeights(512, 128, gopts, rng);
    const auto cb = trainCodebook(w);

    double prev_ratio = 0.0;
    for (unsigned n_pe : {1u, 4u, 16u, 64u}) {
        InterleaveOptions opts;
        opts.n_pe = n_pe;
        InterleavedCsc csc(w, cb, opts);
        const double ratio = csc.realWorkRatio();
        EXPECT_GE(ratio, prev_ratio - 0.02) << n_pe << " PEs";
        prev_ratio = ratio;
    }
    // At 32 local rows (512/16) padding is rare; at 512 it is common.
    InterleaveOptions one;
    one.n_pe = 1;
    InterleaveOptions many;
    many.n_pe = 64;
    EXPECT_GT(InterleavedCsc(w, cb, many).realWorkRatio(),
              InterleavedCsc(w, cb, one).realWorkRatio());
}

TEST(InterleavedCsc, SpmatWordPacking)
{
    const auto m = columnWithRows(20, {0, 2, 5, 7, 9, 11, 13, 15, 17});
    InterleaveOptions opts;
    opts.n_pe = 1;
    InterleavedCsc csc(m, unitCodebook(), opts);
    const auto &pe = csc.pe(0);
    const auto words = pe.spmatWords();
    ASSERT_EQ(words.size(), (pe.entries().size() + 7) / 8);
    // Re-extract every nibble pair and compare.
    for (std::size_t e = 0; e < pe.entries().size(); ++e) {
        const auto byte = static_cast<std::uint8_t>(
            (words[e / 8] >> (8 * (e % 8))) & 0xff);
        EXPECT_EQ(byte >> 4, pe.entries()[e].weight_index);
        EXPECT_EQ(byte & 0xf, pe.entries()[e].zero_count);
    }
}

TEST(InterleavedCsc, StorageAccounting)
{
    Rng rng(63);
    nn::WeightGenOptions gopts;
    gopts.density = 0.1;
    const auto w = nn::makeSparseWeights(64, 32, gopts, rng);
    const auto cb = trainCodebook(w);
    InterleaveOptions opts;
    opts.n_pe = 4;
    InterleavedCsc csc(w, cb, opts);

    EXPECT_EQ(csc.spmatBits(), csc.totalEntries() * 8);
    EXPECT_EQ(csc.pointerBits(), 4u * (32 + 1) * 16);
    EXPECT_EQ(csc.codebookBits(), 16u * 16);
}

TEST(InterleavedCsc, ExportDecodedMatchesPerColumnDecode)
{
    Rng rng(64);
    nn::WeightGenOptions gopts;
    gopts.density = 0.02; // sparse enough to create padding runs
    const auto w = nn::makeSparseWeights(400, 24, gopts, rng);
    const auto cb = trainCodebook(w);
    InterleaveOptions opts;
    opts.n_pe = 2;
    InterleavedCsc csc(w, cb, opts);
    ASSERT_GT(csc.paddingEntries(), 0u);

    for (unsigned k = 0; k < opts.n_pe; ++k) {
        const PeSlice &slice = csc.pe(k);
        const DecodedSliceImage image = slice.exportDecoded();
        ASSERT_EQ(image.col_ptr.size(), slice.colPtr().size());
        EXPECT_EQ(image.local_rows.size(),
                  slice.totalEntries() - slice.paddingEntries());
        EXPECT_EQ(image.local_rows.size(), image.weight_indices.size());

        // Column by column, the flat image must equal decodeColumn()
        // with its padding entries dropped.
        for (std::size_t j = 0; j + 1 < image.col_ptr.size(); ++j) {
            std::vector<DecodedEntry> expected;
            for (const DecodedEntry &d : slice.decodeColumn(j))
                if (!d.is_padding)
                    expected.push_back(d);
            ASSERT_EQ(image.col_ptr[j + 1] - image.col_ptr[j],
                      expected.size())
                << "PE " << k << " column " << j;
            for (std::size_t e = 0; e < expected.size(); ++e) {
                const std::size_t f = image.col_ptr[j] + e;
                EXPECT_EQ(image.local_rows[f], expected[e].local_row);
                EXPECT_EQ(image.weight_indices[f],
                          expected[e].weight_index);
                EXPECT_NE(image.weight_indices[f], 0);
            }
        }
    }
}

} // namespace
