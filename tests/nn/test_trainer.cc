/**
 * @file
 * MLP/SGD trainer tests — the substrate for the Figure 10 precision
 * study. Verifies that training learns, and that fixed-point inference
 * behaves as the paper reports (16-bit close to float, 8-bit badly
 * degraded) on a task where that contrast is visible.
 */

#include <gtest/gtest.h>

#include "nn/trainer.hh"

namespace {

using namespace eie;
using namespace eie::nn;

TEST(ClusterDataset, ShapesAndLabels)
{
    Rng rng(1);
    const auto data = makeClusterDataset(200, 16, 5, 3.0, 1.0, rng);
    EXPECT_EQ(data.size(), 200u);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(data.inputs[i].size(), 16u);
        EXPECT_GE(data.labels[i], 0);
        EXPECT_LT(data.labels[i], 5);
    }
}

TEST(Mlp, TrainingReducesLossAndBeatsChance)
{
    Rng rng(2);
    const ClusterTask task(16, 4, 3.0, 1.2, rng);
    const auto train = task.sample(600, rng);
    const auto test = task.sample(200, rng);

    Mlp mlp({16, 32, 4}, rng);
    const double initial_acc = mlp.accuracy(test);

    double first_loss = 0.0, last_loss = 0.0;
    for (int epoch = 0; epoch < 15; ++epoch) {
        const double loss = mlp.trainEpoch(train, 0.05, 16, rng);
        if (epoch == 0)
            first_loss = loss;
        last_loss = loss;
    }
    EXPECT_LT(last_loss, first_loss);
    const double trained_acc = mlp.accuracy(test);
    EXPECT_GT(trained_acc, 0.6);       // far above 25% chance
    EXPECT_GT(trained_acc, initial_acc);
}

TEST(Mlp, QuantizedInferencePrecisionLadder)
{
    // A deeper network on a harder task, where quantisation error
    // compounds across layers — the regime of the paper's Figure 10.
    Rng rng(3);
    const ClusterTask task(32, 8, 4.5, 1.5, rng);
    const auto train = task.sample(1200, rng);
    const auto test = task.sample(400, rng);
    Mlp mlp({32, 48, 48, 8}, rng);
    for (int epoch = 0; epoch < 20; ++epoch)
        mlp.trainEpoch(train, 0.05, 16, rng);

    const double float_acc = mlp.accuracy(test);
    EXPECT_GT(float_acc, 0.6);

    const double acc16 = mlp.accuracyQuantized(test, FixedFormat{16, 8});
    const double acc3 = mlp.accuracyQuantized(test, FixedFormat{3, 1});

    // 16-bit fixed point tracks float closely (paper: < 0.5% loss).
    EXPECT_NEAR(acc16, float_acc, 0.05);
    // Very low precision is catastrophically worse — the collapse
    // direction the paper shows for insufficient precision.
    EXPECT_LT(acc3, float_acc - 0.15);
}

TEST(Mlp, DeterministicTraining)
{
    Rng ra(4), rb(4);
    const auto data_a = makeClusterDataset(100, 8, 3, 3.0, 1.0, ra);
    const auto data_b = makeClusterDataset(100, 8, 3, 3.0, 1.0, rb);
    Mlp a({8, 16, 3}, ra);
    Mlp b({8, 16, 3}, rb);
    a.trainEpoch(data_a, 0.05, 16, ra);
    b.trainEpoch(data_b, 0.05, 16, rb);
    EXPECT_DOUBLE_EQ(a.accuracy(data_a), b.accuracy(data_b));
}

TEST(MlpDeath, NeedsTwoDims)
{
    Rng rng(5);
    EXPECT_EXIT(Mlp({4}, rng), ::testing::ExitedWithCode(1), "dims");
}

} // namespace
