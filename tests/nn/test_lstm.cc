/**
 * @file
 * LSTM cell tests: packed-M×V decomposition (NT-LSTM layer shape) and
 * gate semantics.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/random.hh"
#include "nn/generate.hh"
#include "nn/lstm.hh"

namespace {

using namespace eie;
using namespace eie::nn;

LstmCell
randomCell(std::size_t x, std::size_t h, std::uint64_t seed)
{
    Rng rng(seed);
    WeightGenOptions opts;
    opts.density = 0.3;
    return LstmCell(makeSparseWeights(4 * h, x + h + 1, opts, rng), x, h);
}

TEST(LstmCell, NtLstmShape)
{
    // X = H = 600 gives the paper's 1201 -> 2400 packed layer.
    Rng rng(1);
    WeightGenOptions opts;
    opts.density = 0.10;
    const auto w = makeSparseWeights(2400, 1201, opts, rng);
    LstmCell cell(w, 600, 600);
    EXPECT_EQ(cell.weights().rows(), 2400u);
    EXPECT_EQ(cell.weights().cols(), 1201u);
    const auto packed = cell.packInput(Vector(600, 0.5f),
                                       cell.initialState());
    EXPECT_EQ(packed.size(), 1201u);
    EXPECT_FLOAT_EQ(packed.back(), 1.0f); // bias column
}

TEST(LstmCell, StepEqualsManualGateMath)
{
    const auto cell = randomCell(4, 3, 2);
    Rng rng(3);
    Vector x(4);
    for (auto &v : x)
        v = static_cast<float>(rng.normal(0.0, 1.0));

    LstmState state = cell.initialState();
    state.c = {0.1f, -0.2f, 0.3f};
    state.h = {0.5f, 0.0f, -0.5f};

    const auto next = cell.step(x, state);

    // Manual recomputation.
    const Vector packed = cell.packInput(x, state);
    const Vector pre = cell.weights().spmv(packed);
    for (std::size_t k = 0; k < 3; ++k) {
        const double i = 1.0 / (1.0 + std::exp(-pre[k]));
        const double f = 1.0 / (1.0 + std::exp(-pre[3 + k]));
        const double o = 1.0 / (1.0 + std::exp(-pre[6 + k]));
        const double g = std::tanh(pre[9 + k]);
        const double c = f * state.c[k] + i * g;
        EXPECT_NEAR(next.c[k], c, 1e-5);
        EXPECT_NEAR(next.h[k], o * std::tanh(c), 1e-5);
    }
}

TEST(LstmCell, ForgetGateSaturationKeepsOrKillsCell)
{
    // Build a cell whose forget-gate rows are strongly positive
    // (bias column large): c should persist.
    const std::size_t h = 2, x = 2;
    SparseMatrix w(4 * h, x + h + 1);
    // Only bias entries: i = -inf-ish except forget = +big.
    // Column layout: [x0 x1 h0 h1 bias].
    const std::size_t bias_col = x + h;
    // insert ascending rows in the bias column:
    w.insert(0, bias_col, -20.0f); // input gate row 0: closed
    w.insert(1, bias_col, -20.0f);
    w.insert(2, bias_col, 20.0f);  // forget gate row 0: open
    w.insert(3, bias_col, 20.0f);
    w.insert(4, bias_col, 20.0f);  // output gate open
    w.insert(5, bias_col, 20.0f);

    LstmCell cell(w, x, h);
    LstmState state{{0.0f, 0.0f}, {0.7f, -0.4f}};
    const auto next = cell.step(Vector(x, 1.0f), state);
    EXPECT_NEAR(next.c[0], 0.7f, 1e-3);
    EXPECT_NEAR(next.c[1], -0.4f, 1e-3);
    // h = o * tanh(c) with o ~ 1.
    EXPECT_NEAR(next.h[0], std::tanh(0.7), 1e-3);
}

TEST(LstmCell, ApplyGatesMatchesStep)
{
    const auto cell = randomCell(5, 4, 7);
    Rng rng(8);
    Vector x(5);
    for (auto &v : x)
        v = static_cast<float>(rng.normal(0.0, 1.0));
    LstmState state = cell.initialState();

    const auto direct = cell.step(x, state);
    const auto pre = cell.weights().spmv(cell.packInput(x, state));
    const auto via_gates = cell.applyGates(pre, state);
    for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_FLOAT_EQ(direct.h[k], via_gates.h[k]);
        EXPECT_FLOAT_EQ(direct.c[k], via_gates.c[k]);
    }
}

TEST(LstmCellDeath, ShapeChecks)
{
    Rng rng(9);
    WeightGenOptions opts;
    opts.density = 0.5;
    const auto w = makeSparseWeights(12, 8, opts, rng);
    EXPECT_EXIT(LstmCell(w, 4, 4), ::testing::ExitedWithCode(1), "rows");
    const auto w2 = makeSparseWeights(16, 8, opts, rng);
    EXPECT_EXIT(LstmCell(w2, 4, 4), ::testing::ExitedWithCode(1),
                "cols");
}

} // namespace
