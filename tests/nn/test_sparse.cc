/**
 * @file
 * Sparse matrix tests: construction, SpMV, slicing, PE interleaving.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "nn/generate.hh"
#include "nn/sparse.hh"

namespace {

using namespace eie;
using namespace eie::nn;

SparseMatrix
smallExample()
{
    // [1 0 2]
    // [0 3 0]
    // [4 0 5]
    SparseMatrix m(3, 3);
    m.insert(0, 0, 1.0f);
    m.insert(2, 0, 4.0f);
    m.insert(1, 1, 3.0f);
    m.insert(0, 2, 2.0f);
    m.insert(2, 2, 5.0f);
    return m;
}

TEST(SparseMatrix, BasicProperties)
{
    const auto m = smallExample();
    EXPECT_EQ(m.nnz(), 5u);
    EXPECT_NEAR(m.density(), 5.0 / 9.0, 1e-12);
    EXPECT_EQ(m.column(1).size(), 1u);
    EXPECT_EQ(m.column(1)[0].row, 1u);
}

TEST(SparseMatrix, SpmvMatchesDense)
{
    const auto m = smallExample();
    const Vector a{1.0f, 2.0f, 3.0f};
    const Vector sparse_result = m.spmv(a);
    const Vector dense_result = matVec(m.toDense(), a);
    ASSERT_EQ(sparse_result.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(sparse_result[i], dense_result[i]);
}

TEST(SparseMatrix, SpmvSkipsZeroActivations)
{
    const auto m = smallExample();
    // Column 0 contributes nothing when a[0] == 0.
    const Vector r = m.spmv({0.0f, 1.0f, 0.0f});
    EXPECT_FLOAT_EQ(r[0], 0.0f);
    EXPECT_FLOAT_EQ(r[1], 3.0f);
    EXPECT_FLOAT_EQ(r[2], 0.0f);
}

TEST(SparseMatrix, DenseRoundTrip)
{
    Rng rng(3);
    WeightGenOptions opts;
    opts.density = 0.3;
    const auto m = makeSparseWeights(20, 15, opts, rng);
    const auto back = SparseMatrix::fromDense(m.toDense());
    ASSERT_EQ(back.nnz(), m.nnz());
    for (std::size_t j = 0; j < m.cols(); ++j)
        EXPECT_EQ(back.column(j), m.column(j));
}

TEST(SparseMatrix, RowSliceRebasesIndices)
{
    const auto m = smallExample();
    const auto slice = m.rowSlice(1, 3);
    EXPECT_EQ(slice.rows(), 2u);
    EXPECT_EQ(slice.cols(), 3u);
    EXPECT_EQ(slice.nnz(), 3u);
    EXPECT_EQ(slice.column(0)[0].row, 1u); // was row 2
    EXPECT_EQ(slice.column(1)[0].row, 0u); // was row 1
}

TEST(SparseMatrix, RowPartitionMatchesRowSlice)
{
    Rng rng(4);
    WeightGenOptions opts;
    opts.density = 0.2;
    const auto m = makeSparseWeights(50, 20, opts, rng);
    const std::vector<std::size_t> bounds{0, 17, 34, 50};
    const auto parts = m.rowPartition(bounds);
    ASSERT_EQ(parts.size(), 3u);
    for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
        const auto ref = m.rowSlice(bounds[b], bounds[b + 1]);
        ASSERT_EQ(parts[b].nnz(), ref.nnz());
        for (std::size_t j = 0; j < m.cols(); ++j)
            EXPECT_EQ(parts[b].column(j), ref.column(j));
    }
}

TEST(SparseMatrix, ColSliceRebasesIndices)
{
    const auto m = smallExample();
    const auto slice = m.colSlice(1, 3);
    EXPECT_EQ(slice.cols(), 2u);
    EXPECT_EQ(slice.nnz(), 3u);
    EXPECT_EQ(slice.column(0)[0].row, 1u); // old column 1
    EXPECT_EQ(slice.column(1).size(), 2u); // old column 2
}

TEST(SparseMatrix, PeColumnSlice)
{
    const auto m = smallExample();
    // 2 PEs: PE0 owns rows 0, 2; PE1 owns row 1.
    const auto pe0_col0 = m.peColumnSlice(0, 0, 2);
    ASSERT_EQ(pe0_col0.size(), 2u);
    EXPECT_EQ(pe0_col0[0].row, 0u);
    EXPECT_EQ(pe0_col0[1].row, 2u);
    const auto pe1_col0 = m.peColumnSlice(0, 1, 2);
    EXPECT_TRUE(pe1_col0.empty());
    const auto pe1_col1 = m.peColumnSlice(1, 1, 2);
    ASSERT_EQ(pe1_col1.size(), 1u);
}

TEST(SparseMatrixDeath, InsertDiscipline)
{
    SparseMatrix m(4, 4);
    m.insert(2, 1, 1.0f);
    // Rows must ascend within a column.
    EXPECT_DEATH(m.insert(1, 1, 2.0f), "ascending");
    EXPECT_DEATH(m.insert(2, 1, 2.0f), "ascending");
    EXPECT_DEATH(m.insert(4, 0, 1.0f), "out of");
}

} // namespace
