/**
 * @file
 * FC layer tests (paper Eq. 1/2).
 */

#include <gtest/gtest.h>

#include "nn/layer.hh"

namespace {

using namespace eie::nn;

SparseMatrix
tinyWeights()
{
    // [1 -1]
    // [2  0]
    SparseMatrix w(2, 2);
    w.insert(0, 0, 1.0f);
    w.insert(1, 0, 2.0f);
    w.insert(0, 1, -1.0f);
    return w;
}

TEST(FcLayer, ForwardWithRelu)
{
    FcLayer layer("t", tinyWeights());
    const Vector out = layer.forward({1.0f, 3.0f});
    // Pre-activation: [1-3, 2] = [-2, 2]; ReLU -> [0, 2].
    ASSERT_EQ(out.size(), 2u);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[1], 2.0f);
}

TEST(FcLayer, ForwardWithBias)
{
    FcLayer layer("t", tinyWeights(), {5.0f, -10.0f},
                  Nonlinearity::None);
    const Vector out = layer.forward({1.0f, 3.0f});
    EXPECT_FLOAT_EQ(out[0], 3.0f);   // -2 + 5
    EXPECT_FLOAT_EQ(out[1], -8.0f);  // 2 - 10
}

TEST(FcLayer, NonlinearityVariants)
{
    const Vector v{-1.0f, 1.0f};
    EXPECT_EQ(applyNonlinearity(Nonlinearity::None, v), v);
    EXPECT_FLOAT_EQ(applyNonlinearity(Nonlinearity::ReLU, v)[0], 0.0f);
    EXPECT_NEAR(applyNonlinearity(Nonlinearity::Sigmoid, v)[1],
                0.73106, 1e-4);
    EXPECT_NEAR(applyNonlinearity(Nonlinearity::Tanh, v)[0],
                -0.76159, 1e-4);
}

TEST(FcLayer, SizesExposed)
{
    FcLayer layer("t", tinyWeights());
    EXPECT_EQ(layer.inputSize(), 2u);
    EXPECT_EQ(layer.outputSize(), 2u);
    EXPECT_EQ(layer.name(), "t");
}

TEST(FcLayerDeath, BiasLengthChecked)
{
    EXPECT_EXIT(FcLayer("t", tinyWeights(), {1.0f},
                        Nonlinearity::None),
                ::testing::ExitedWithCode(1), "bias");
}

} // namespace
