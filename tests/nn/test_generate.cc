/**
 * @file
 * Synthetic generator tests: densities land near target, determinism,
 * and structural realism properties the experiments depend on.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "nn/generate.hh"

namespace {

using namespace eie;
using namespace eie::nn;

class WeightDensity : public ::testing::TestWithParam<double>
{};

TEST_P(WeightDensity, LandsNearTarget)
{
    const double density = GetParam();
    Rng rng(101);
    WeightGenOptions opts;
    opts.density = density;
    const auto w = makeSparseWeights(256, 256, opts, rng);
    EXPECT_NEAR(w.density(), density, 0.02) << "target " << density;
}

INSTANTIATE_TEST_SUITE_P(TableIIIDensities, WeightDensity,
                         ::testing::Values(0.04, 0.09, 0.10, 0.11, 0.23,
                                           0.25));

TEST(MakeSparseWeights, DeterministicPerSeed)
{
    WeightGenOptions opts;
    opts.density = 0.1;
    Rng a(7), b(7), c(8);
    const auto wa = makeSparseWeights(64, 64, opts, a);
    const auto wb = makeSparseWeights(64, 64, opts, b);
    const auto wc = makeSparseWeights(64, 64, opts, c);
    EXPECT_EQ(wa.nnz(), wb.nnz());
    for (std::size_t j = 0; j < 64; ++j)
        EXPECT_EQ(wa.column(j), wb.column(j));
    // Different seed gives a different pattern (overwhelmingly).
    bool differs = wa.nnz() != wc.nnz();
    for (std::size_t j = 0; !differs && j < 64; ++j)
        differs = !(wa.column(j) == wc.column(j));
    EXPECT_TRUE(differs);
}

TEST(MakeSparseWeights, ColumnJitterExists)
{
    // Per-column non-zero counts must vary (binomial jitter is what
    // creates the load imbalance the paper measures).
    WeightGenOptions opts;
    opts.density = 0.1;
    Rng rng(9);
    const auto w = makeSparseWeights(128, 64, opts, rng);
    std::size_t min_nnz = ~std::size_t{0}, max_nnz = 0;
    for (std::size_t j = 0; j < w.cols(); ++j) {
        min_nnz = std::min(min_nnz, w.column(j).size());
        max_nnz = std::max(max_nnz, w.column(j).size());
    }
    EXPECT_LT(min_nnz, max_nnz);
}

TEST(MakeSparseWeights, ValuesAreSignedAndNonZero)
{
    WeightGenOptions opts;
    opts.density = 0.2;
    Rng rng(10);
    const auto w = makeSparseWeights(64, 64, opts, rng);
    bool saw_positive = false, saw_negative = false;
    for (std::size_t j = 0; j < w.cols(); ++j) {
        for (const auto &e : w.column(j)) {
            EXPECT_NE(e.value, 0.0f);
            saw_positive |= e.value > 0.0f;
            saw_negative |= e.value < 0.0f;
        }
    }
    EXPECT_TRUE(saw_positive);
    EXPECT_TRUE(saw_negative);
}

class ActivationDensity : public ::testing::TestWithParam<double>
{};

TEST_P(ActivationDensity, ExactNonZeroCount)
{
    const double density = GetParam();
    Rng rng(11);
    const auto a = makeActivations(1000, density, rng);
    std::size_t nnz = 0;
    for (float x : a)
        if (x != 0.0f)
            ++nnz;
    EXPECT_EQ(nnz, static_cast<std::size_t>(
                       std::lround(1000 * density)));
}

INSTANTIATE_TEST_SUITE_P(TableIIIActDensities, ActivationDensity,
                         ::testing::Values(0.0, 0.183, 0.351, 0.375,
                                           0.411, 1.0));

TEST(MakeActivations, NonNegativeLikePostRelu)
{
    Rng rng(12);
    const auto a = makeActivations(500, 0.5, rng);
    for (float x : a)
        EXPECT_GE(x, 0.0f);
}

TEST(GenerateDeath, RejectsBadDensity)
{
    Rng rng(13);
    WeightGenOptions opts;
    opts.density = 1.5;
    EXPECT_EXIT(makeSparseWeights(4, 4, opts, rng),
                ::testing::ExitedWithCode(1), "density");
    EXPECT_EXIT(makeActivations(4, -0.1, rng),
                ::testing::ExitedWithCode(1), "density");
}

} // namespace
