/**
 * @file
 * Dense tensor primitive tests.
 */

#include <gtest/gtest.h>

#include "nn/tensor.hh"

namespace {

using namespace eie::nn;

TEST(Matrix, IndexingAndBounds)
{
    Matrix m(2, 3);
    m.at(0, 0) = 1.0f;
    m.at(1, 2) = -2.0f;
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(m.at(1, 2), -2.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 0.0f);
    EXPECT_DEATH(m.at(2, 0), "out of");
    EXPECT_DEATH(m.at(0, 3), "out of");
}

TEST(MatVec, KnownProduct)
{
    Matrix m(2, 3);
    // [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]^T
    float v = 1.0f;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            m.at(i, j) = v++;
    const Vector result = matVec(m, {1.0f, 1.0f, 1.0f});
    ASSERT_EQ(result.size(), 2u);
    EXPECT_FLOAT_EQ(result[0], 6.0f);
    EXPECT_FLOAT_EQ(result[1], 15.0f);
    EXPECT_DEATH(matVec(m, {1.0f}), "mismatch");
}

TEST(Nonlinearities, ReluSigmoidTanh)
{
    const Vector v{-1.0f, 0.0f, 2.0f};

    const Vector r = relu(v);
    EXPECT_FLOAT_EQ(r[0], 0.0f);
    EXPECT_FLOAT_EQ(r[2], 2.0f);

    const Vector s = sigmoid(v);
    EXPECT_NEAR(s[0], 0.26894, 1e-4);
    EXPECT_FLOAT_EQ(s[1], 0.5f);

    const Vector t = tanhVec(v);
    EXPECT_NEAR(t[0], -0.76159, 1e-4);
    EXPECT_FLOAT_EQ(t[1], 0.0f);
}

TEST(Softmax, SumsToOneAndOrders)
{
    const Vector p = softmax({1.0f, 2.0f, 3.0f});
    double sum = 0.0;
    for (float x : p)
        sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_LT(p[0], p[1]);
    EXPECT_LT(p[1], p[2]);
    // Stability with large inputs.
    const Vector q = softmax({1000.0f, 1001.0f});
    EXPECT_NEAR(q[0] + q[1], 1.0, 1e-6);
}

TEST(Argmax, FirstOnTies)
{
    EXPECT_EQ(argmax({1.0f, 5.0f, 5.0f, 2.0f}), 1u);
    EXPECT_EQ(argmax({3.0f}), 0u);
    EXPECT_DEATH(argmax({}), "empty");
}

TEST(VectorStats, ZeroFractionAndMaxDiff)
{
    EXPECT_DOUBLE_EQ(zeroFraction({0.0f, 1.0f, 0.0f, 2.0f}), 0.5);
    EXPECT_DOUBLE_EQ(zeroFraction({}), 0.0);
    EXPECT_DOUBLE_EQ(maxAbsDiff({1.0f, 2.0f}, {1.5f, 1.0f}), 1.0);
    EXPECT_DEATH(maxAbsDiff({1.0f}, {1.0f, 2.0f}), "mismatch");
}

} // namespace
