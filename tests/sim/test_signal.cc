/**
 * @file
 * Wire/register primitive tests.
 */

#include <gtest/gtest.h>

#include "sim/signal.hh"

namespace {

using namespace eie::sim;

TEST(Signal, WriteReadAndChangeDetection)
{
    ChangeMonitor monitor;
    Signal<int> wire(&monitor, 5);
    EXPECT_EQ(wire.read(), 5);
    EXPECT_EQ(monitor.changes(), 0u);

    wire.write(5); // same value: no change noted
    EXPECT_EQ(monitor.changes(), 0u);

    wire.write(7);
    EXPECT_EQ(wire.read(), 7);
    EXPECT_EQ(monitor.changes(), 1u);

    monitor.reset();
    EXPECT_EQ(monitor.changes(), 0u);
}

TEST(Signal, WorksWithoutMonitor)
{
    Signal<bool> wire;
    wire.write(true);
    EXPECT_TRUE(wire.read());
}

TEST(Reg, TwoPhaseCommit)
{
    Reg<int> reg(1);
    EXPECT_EQ(reg.read(), 1);

    reg.write(2);
    EXPECT_EQ(reg.read(), 1);     // not yet visible
    EXPECT_EQ(reg.pending(), 2);

    reg.tick();
    EXPECT_EQ(reg.read(), 2);

    // Without a new write, tick holds the value.
    reg.tick();
    EXPECT_EQ(reg.read(), 2);
}

TEST(Reg, ResetOverridesBothSides)
{
    Reg<int> reg(0);
    reg.write(9);
    reg.reset(4);
    EXPECT_EQ(reg.read(), 4);
    reg.tick();
    EXPECT_EQ(reg.read(), 4);
}

} // namespace
