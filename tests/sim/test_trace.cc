/**
 * @file
 * VCD writer tests: header structure and change-only sampling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hh"

namespace {

using eie::sim::VcdWriter;

TEST(VcdWriter, HeaderAndChanges)
{
    std::ostringstream os;
    VcdWriter vcd(os, "1ns");

    std::uint64_t clk = 0;
    std::uint64_t bus = 0;
    vcd.addSignal("top.clk", 1, [&] { return clk; });
    vcd.addSignal("top.bus", 8, [&] { return bus; });
    vcd.start();

    clk = 1;
    bus = 0xA5;
    vcd.sample(0);

    // Unchanged values produce no output.
    vcd.sample(1);

    clk = 0;
    vcd.sample(2);

    const std::string out = os.str();
    EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(out.find("$var wire 1"), std::string::npos);
    EXPECT_NE(out.find("$var wire 8"), std::string::npos);
    // Dots flattened to underscores.
    EXPECT_NE(out.find("top_clk"), std::string::npos);
    EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(out.find("#0"), std::string::npos);
    EXPECT_NE(out.find("b10100101 "), std::string::npos);
    EXPECT_NE(out.find("#2"), std::string::npos);
    // Cycle 1 had no changes: no timestamp emitted.
    EXPECT_EQ(out.find("#1\n"), std::string::npos);
}

TEST(VcdWriterDeath, ApiMisuse)
{
    std::ostringstream os;
    VcdWriter vcd(os);
    EXPECT_DEATH(vcd.sample(0), "before start");
    vcd.addSignal("x", 1, [] { return 0ull; });
    vcd.start();
    EXPECT_DEATH(vcd.addSignal("y", 1, [] { return 0ull; }),
                 "after start");
    EXPECT_DEATH(vcd.start(), "twice");
}

TEST(VcdWriterDeath, BadWidth)
{
    std::ostringstream os;
    VcdWriter vcd(os);
    EXPECT_DEATH(vcd.addSignal("x", 0, [] { return 0ull; }), "width");
    EXPECT_DEATH(vcd.addSignal("x", 65, [] { return 0ull; }), "width");
}

} // namespace
