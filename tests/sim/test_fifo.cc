/**
 * @file
 * Registered-FIFO semantics tests: one-cycle visibility, conservative
 * flow control, overflow/underflow panics.
 */

#include <gtest/gtest.h>

#include "sim/fifo.hh"

namespace {

using eie::sim::Fifo;

TEST(Fifo, PushVisibleAfterTick)
{
    Fifo<int> fifo(4);
    EXPECT_TRUE(fifo.empty());
    fifo.push(10);
    EXPECT_TRUE(fifo.empty()); // registered: not yet visible
    fifo.tick();
    ASSERT_FALSE(fifo.empty());
    EXPECT_EQ(fifo.front(), 10);
    EXPECT_EQ(fifo.size(), 1u);
}

TEST(Fifo, PopTakesEffectAtTick)
{
    Fifo<int> fifo(4);
    fifo.push(1);
    fifo.tick();
    fifo.push(2);
    fifo.tick();
    EXPECT_EQ(fifo.front(), 1);
    fifo.pop();
    EXPECT_EQ(fifo.front(), 1); // still visible this cycle
    fifo.tick();
    EXPECT_EQ(fifo.front(), 2);
}

TEST(Fifo, SimultaneousPushPopAtCapacity)
{
    Fifo<int> fifo(1);
    fifo.push(1);
    fifo.tick();
    ASSERT_TRUE(fifo.full());
    // Pop + push in the same cycle is legal even at capacity.
    fifo.pop();
    fifo.push(2);
    fifo.tick();
    EXPECT_EQ(fifo.front(), 2);
    EXPECT_TRUE(fifo.full());
}

TEST(Fifo, FifoOrderPreserved)
{
    Fifo<int> fifo(8);
    for (int i = 0; i < 5; ++i) {
        fifo.push(i);
        fifo.tick();
    }
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(fifo.front(), i);
        fifo.pop();
        fifo.tick();
    }
    EXPECT_TRUE(fifo.empty());
}

TEST(Fifo, ClearDropsEverything)
{
    Fifo<int> fifo(4);
    fifo.push(1);
    fifo.tick();
    fifo.push(2); // pending
    fifo.clear();
    fifo.tick();
    EXPECT_TRUE(fifo.empty());
}

TEST(FifoDeath, OverflowUnderflowAndDoubleOps)
{
    Fifo<int> fifo(1);
    EXPECT_DEATH(fifo.pop(), "empty");
    EXPECT_DEATH(fifo.front(), "empty");

    fifo.push(1);
    EXPECT_DEATH(fifo.push(2), "multiple pushes");
    fifo.tick();
    // Full without a concurrent pop: push is a flow-control violation.
    EXPECT_DEATH(fifo.push(3), "full");

    fifo.pop();
    EXPECT_DEATH(fifo.pop(), "multiple pops");
}

TEST(FifoDeath, ZeroCapacityRejected)
{
    EXPECT_DEATH(Fifo<int>(0), "capacity");
}

} // namespace
