/**
 * @file
 * Statistics registry tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace {

using namespace eie::sim;

TEST(Stats, CounterArithmetic)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HierarchicalLookup)
{
    StatGroup root("sim");
    StatGroup pe0("pe0", &root);
    StatGroup queue("queue", &pe0);

    auto &pushes = queue.counter("pushes", "entries pushed");
    pushes += 7;

    EXPECT_EQ(root.value("pe0.queue.pushes"), 7u);
    EXPECT_EQ(pe0.value("queue.pushes"), 7u);
    EXPECT_TRUE(root.has("pe0.queue.pushes"));
    EXPECT_FALSE(root.has("pe0.queue.pops"));
    EXPECT_FALSE(root.has("nothing.at.all"));
    EXPECT_EQ(queue.fullPath(), "sim.pe0.queue");
}

TEST(Stats, CounterIsFindOrCreate)
{
    StatGroup root("sim");
    auto &a = root.counter("x", "first");
    auto &b = root.counter("x", "ignored");
    EXPECT_EQ(&a, &b);
}

TEST(Stats, DumpFormat)
{
    StatGroup root("sim");
    StatGroup child("child", &root);
    root.counter("top", "a top counter") += 3;
    child.counter("inner", "an inner counter") += 4;

    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sim.top  3  # a top counter"), std::string::npos);
    EXPECT_NE(out.find("sim.child.inner  4"), std::string::npos);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root("sim");
    StatGroup child("child", &root);
    root.counter("a", "") += 1;
    child.counter("b", "") += 2;
    root.resetAll();
    EXPECT_EQ(root.value("a"), 0u);
    EXPECT_EQ(root.value("child.b"), 0u);
}

TEST(Stats, ChildUnregistersOnDestruction)
{
    StatGroup root("sim");
    {
        StatGroup child("child", &root);
        child.counter("c", "") += 1;
        EXPECT_TRUE(root.has("child.c"));
    }
    EXPECT_FALSE(root.has("child.c"));
    // Re-creating a group with the same name is now legal.
    StatGroup again("child", &root);
    EXPECT_EQ(again.fullPath(), "sim.child");
}

TEST(StatsDeath, RejectsDotsAndDuplicates)
{
    StatGroup root("sim");
    EXPECT_DEATH(root.counter("a.b", ""), "dots");
    EXPECT_DEATH(StatGroup("a.b", &root), "dots");
    StatGroup child("dup", &root);
    EXPECT_DEATH(StatGroup("dup", &root), "duplicate");
    EXPECT_DEATH(root.value("missing"), "no statistic");
}

} // namespace
