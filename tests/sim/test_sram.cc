/**
 * @file
 * Synchronous SRAM model tests.
 */

#include <gtest/gtest.h>

#include "sim/sram.hh"

namespace {

using namespace eie::sim;

TEST(Sram, SynchronousReadLatency)
{
    StatGroup stats("test");
    Sram sram("mem", 16, stats);
    sram.load(3, 0xdeadbeef);

    sram.read(3);
    EXPECT_FALSE(sram.dataValid()); // data not there yet
    sram.tick();
    ASSERT_TRUE(sram.dataValid());
    EXPECT_EQ(sram.dataOut(), 0xdeadbeefu);

    // No access this cycle: dataValid drops after the next edge.
    sram.tick();
    EXPECT_FALSE(sram.dataValid());
}

TEST(Sram, WriteThenReadBack)
{
    StatGroup stats("test");
    Sram sram("mem", 8, stats);
    sram.write(5, 42);
    sram.tick();
    sram.read(5);
    sram.tick();
    EXPECT_EQ(sram.dataOut(), 42u);
    EXPECT_EQ(sram.readCount(), 1u);
    EXPECT_EQ(sram.writeCount(), 1u);
}

TEST(Sram, BackdoorLoadNotCounted)
{
    StatGroup stats("test");
    Sram sram("mem", 8, stats);
    sram.load({1, 2, 3});
    EXPECT_EQ(sram.peek(0), 1u);
    EXPECT_EQ(sram.peek(2), 3u);
    EXPECT_EQ(sram.readCount(), 0u);
    EXPECT_EQ(sram.writeCount(), 0u);
    EXPECT_EQ(stats.value("mem_reads"), 0u);
}

TEST(Sram, StatsCountersTrackAccesses)
{
    StatGroup stats("test");
    Sram sram("mem", 8, stats);
    for (int i = 0; i < 5; ++i) {
        sram.read(0);
        sram.tick();
    }
    EXPECT_EQ(stats.value("mem_reads"), 5u);
    EXPECT_EQ(stats.value("mem_writes"), 0u);
}

TEST(SramDeath, SinglePortedAndBounds)
{
    StatGroup stats("test");
    Sram sram("mem", 4, stats);
    sram.read(0);
    EXPECT_DEATH(sram.read(1), "single-ported");
    EXPECT_DEATH(sram.write(1, 0), "single-ported");
    sram.tick();
    EXPECT_DEATH(sram.read(4), "out of");
    EXPECT_DEATH(sram.load(4, 0), "out of");
    EXPECT_DEATH(Sram("bad", 0, stats), "at least one");
}

} // namespace
