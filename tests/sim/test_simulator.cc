/**
 * @file
 * Two-phase simulator kernel tests: propagate/update ordering, settle
 * mode, combinational-loop detection, runUntil semantics.
 */

#include <gtest/gtest.h>

#include "sim/module.hh"
#include "sim/signal.hh"
#include "sim/simulator.hh"

namespace {

using namespace eie::sim;

/** A counter register that increments every cycle. */
class CounterModule : public Module
{
  public:
    explicit CounterModule(std::string name) : Module(std::move(name)) {}

    void propagate() override {}

    void
    update() override
    {
        value_.write(value_.read() + 1);
        value_.tick();
    }

    int value() const { return value_.read(); }

  private:
    Reg<int> value_{0};
};

/** Drives out = in + 1 combinationally. */
class AdderModule : public Module
{
  public:
    AdderModule(std::string name, Signal<int> &in, Signal<int> &out)
        : Module(std::move(name)), in_(in), out_(out)
    {}

    void propagate() override { out_.write(in_.read() + 1); }
    void update() override {}

  private:
    Signal<int> &in_;
    Signal<int> &out_;
};

TEST(Simulator, StepsAndCycleCount)
{
    Simulator sim("t");
    CounterModule counter("ctr");
    sim.add(&counter);

    sim.step();
    EXPECT_EQ(sim.cycle(), 1u);
    EXPECT_EQ(counter.value(), 1);

    sim.run(9);
    EXPECT_EQ(sim.cycle(), 10u);
    EXPECT_EQ(counter.value(), 10);
}

TEST(Simulator, RunUntilStopsAtPredicate)
{
    Simulator sim("t");
    CounterModule counter("ctr");
    sim.add(&counter);

    const bool hit =
        sim.runUntil([&] { return counter.value() >= 5; }, 100);
    EXPECT_TRUE(hit);
    EXPECT_EQ(sim.cycle(), 5u);

    const bool miss =
        sim.runUntil([&] { return counter.value() >= 1000; }, 10);
    EXPECT_FALSE(miss);
}

TEST(Simulator, SettleModeResolvesChains)
{
    // Chain registered in REVERSE dependency order: without settling,
    // one pass would leave stale values.
    Simulator sim("t");
    sim.enableSettle(8);

    Signal<int> a(&sim.monitor(), 0);
    Signal<int> b(&sim.monitor(), 0);
    Signal<int> c(&sim.monitor(), 0);

    AdderModule last("bc", b, c);
    AdderModule first("ab", a, b);
    sim.add(&last);  // reads b before first drives it
    sim.add(&first);

    a.write(10);
    sim.step();
    EXPECT_EQ(b.read(), 11);
    EXPECT_EQ(c.read(), 12);
}

/** out = !out every propagate: never settles. */
class OscillatorModule : public Module
{
  public:
    OscillatorModule(Signal<int> &sig)
        : Module("osc"), sig_(sig)
    {}

    void propagate() override { sig_.write(1 - sig_.read()); }
    void update() override {}

  private:
    Signal<int> &sig_;
};

TEST(SimulatorDeath, CombinationalLoopPanics)
{
    Simulator sim("t");
    sim.enableSettle(4);
    Signal<int> sig(&sim.monitor(), 0);
    OscillatorModule osc(sig);
    sim.add(&osc);
    EXPECT_DEATH(sim.step(), "combinational loop");
}

TEST(SimulatorDeath, NullModuleRejected)
{
    Simulator sim("t");
    EXPECT_DEATH(sim.add(nullptr), "null");
}

} // namespace
