/**
 * @file
 * Cross-module integration tests: multi-layer feed-forward chains
 * (ping-pong activation reuse) and the LSTM decomposition running on
 * the cycle-accurate accelerator, verified against the float golden
 * model end to end.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "core/accelerator.hh"
#include "core/functional.hh"
#include "core/plan.hh"
#include "helpers.hh"
#include "nn/layer.hh"
#include "nn/lstm.hh"

namespace {

using namespace eie;

TEST(Integration, ThreeLayerChainTracksGolden)
{
    const unsigned n_pe = 8;
    core::EieConfig config;
    config.n_pe = n_pe;
    const core::Accelerator accel(config);
    const core::FunctionalModel functional(config);

    // A 96 -> 128 -> 64 -> 10 compressed MLP.
    const auto l1 = test::randomCompressedLayer(128, 96, 0.2, n_pe, 301);
    const auto l2 = test::randomCompressedLayer(64, 128, 0.2, n_pe, 302);
    const auto l3 = test::randomCompressedLayer(10, 64, 0.3, n_pe, 303);

    const auto input = test::randomActivations(96, 0.5, 304);

    // Golden float chain (quantised weights, float activations).
    nn::Vector golden = input;
    golden = nn::relu(l1.quantizedWeights().spmv(golden));
    golden = nn::relu(l2.quantizedWeights().spmv(golden));
    golden = l3.quantizedWeights().spmv(golden);

    // Accelerator chain: raw activations flow layer to layer without
    // dequantisation (the ping-pong path).
    std::vector<std::int64_t> act = functional.quantizeInput(input);
    std::uint64_t total_cycles = 0;
    for (const auto *layer : {&l1, &l2, &l3}) {
        const bool last = layer == &l3;
        const auto plan = core::planLayer(
            *layer,
            last ? nn::Nonlinearity::None : nn::Nonlinearity::ReLU,
            config);
        const auto result = accel.run(plan, act);
        act = result.output_raw;
        total_cycles += result.stats.cycles;
    }

    const nn::Vector out = functional.dequantize(act);
    ASSERT_EQ(out.size(), golden.size());
    // Quantisation error accumulates across three layers; the logits
    // must still track and the argmax must agree.
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out[i], golden[i], 0.5) << "logit " << i;
    EXPECT_EQ(nn::argmax(out), nn::argmax(golden));
    EXPECT_GT(total_cycles, 0u);
}

TEST(Integration, ChainIsBitExactWithFunctionalModel)
{
    const unsigned n_pe = 4;
    core::EieConfig config;
    config.n_pe = n_pe;
    const core::Accelerator accel(config);
    const core::FunctionalModel functional(config);

    const auto l1 = test::randomCompressedLayer(48, 32, 0.3, n_pe, 311);
    const auto l2 = test::randomCompressedLayer(24, 48, 0.3, n_pe, 312);
    const auto input = test::randomActivations(32, 0.6, 313);

    std::vector<std::int64_t> act_sim = functional.quantizeInput(input);
    std::vector<std::int64_t> act_fun = act_sim;
    for (const auto *layer : {&l1, &l2}) {
        const auto plan =
            core::planLayer(*layer, nn::Nonlinearity::ReLU, config);
        act_sim = accel.run(plan, act_sim).output_raw;
        act_fun = functional.run(plan, act_fun).output_raw;
        ASSERT_EQ(act_sim, act_fun);
    }
}

TEST(Integration, LstmStepOnAccelerator)
{
    // The NT-LSTM decomposition: the packed gate M×V runs on EIE
    // (Nonlinearity::None), gates on the host; the result must track
    // the float LstmCell::step.
    const std::size_t x_size = 24, h_size = 16;
    const unsigned n_pe = 4;

    Rng rng(321);
    nn::WeightGenOptions gen;
    gen.density = 0.25;
    const auto packed_weights = nn::makeSparseWeights(
        4 * h_size, x_size + h_size + 1, gen, rng);

    compress::CompressionOptions copts;
    copts.interleave.n_pe = n_pe;
    const auto layer = compress::CompressedLayer::compress(
        "lstm", packed_weights, copts);

    // The golden cell uses the same quantised weights.
    const nn::LstmCell cell(layer.quantizedWeights(), x_size, h_size);

    core::EieConfig config;
    config.n_pe = n_pe;
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::None, config);
    const core::Accelerator accel(config);
    const core::FunctionalModel functional(config);

    nn::LstmState state_gold = cell.initialState();
    nn::LstmState state_eie = cell.initialState();

    for (int step = 0; step < 4; ++step) {
        nn::Vector x(x_size);
        for (auto &v : x)
            v = static_cast<float>(rng.normal(0.0, 0.5));

        state_gold = cell.step(x, state_gold);

        const nn::Vector packed = cell.packInput(x, state_eie);
        const auto result =
            accel.run(plan, functional.quantizeInput(packed));
        state_eie = cell.applyGates(
            functional.dequantize(result.output_raw), state_eie);

        for (std::size_t k = 0; k < h_size; ++k) {
            EXPECT_NEAR(state_eie.h[k], state_gold.h[k], 0.05)
                << "step " << step << " h[" << k << "]";
            EXPECT_NEAR(state_eie.c[k], state_gold.c[k], 0.08)
                << "step " << step << " c[" << k << "]";
        }
    }
}

TEST(Integration, StatsFeedEnergyModelSanely)
{
    const unsigned n_pe = 8;
    core::EieConfig config;
    config.n_pe = n_pe;
    const auto layer =
        test::randomCompressedLayer(128, 96, 0.15, n_pe, 331);
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);
    const core::FunctionalModel functional(config);
    const auto input = test::randomActivations(96, 0.4, 332);
    const auto result = core::Accelerator(config).run(
        plan, functional.quantizeInput(input));

    // Activity rates must be physical (0..1 for single-issue units).
    const double pe_cycles =
        static_cast<double>(result.stats.cycles) * n_pe;
    EXPECT_LE(static_cast<double>(result.stats.total_entries),
              pe_cycles);
    EXPECT_LE(static_cast<double>(result.stats.spmat_row_fetches),
              pe_cycles);
    EXPECT_GT(result.stats.spmat_row_fetches, 0u);
    EXPECT_GT(result.stats.ptr_sram_reads, 0u);
    EXPECT_GT(result.stats.act_sram_writes, 0u);
}

} // namespace
