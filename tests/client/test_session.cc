/**
 * @file
 * Streaming LSTM session tests — the recurrent half of the client
 * API. An NT-LSTM-shaped packed-gate model (one (4H) x (X+H+1) M×V)
 * is published to a registry and a sequence is streamed through
 * Client::openSession on all three transports, including a live TCP
 * daemon; every step's hidden state must match the scalar-oracle
 * session (FunctionalModel M×V + the same host gate math)
 * bit-exactly. Shape validation, error taxonomy and
 * failed-step-state-intact semantics ride along.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include <unistd.h>

#include "client/client.hh"
#include "core/functional.hh"
#include "engine/lstm_session.hh"
#include "helpers.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"

namespace {

using namespace eie;
namespace fs = std::filesystem;

constexpr std::size_t kX = 8; ///< per-step input size
constexpr std::size_t kH = 8; ///< hidden size
// The packed gate M×V: (4H) x (X + H + 1) = 32 x 17.

core::EieConfig
makeConfig()
{
    core::EieConfig config;
    config.n_pe = 4;
    return config;
}

/** Registry with an LSTM-shaped model + a plain FC one + daemon. */
struct SessionFixture
{
    fs::path dir;
    core::EieConfig config;
    compress::CompressedLayer lstm_layer;
    serve::ModelRegistry registry;
    serve::ServingDirectory directory;
    serve::TcpServer server;
    core::FunctionalModel functional;
    core::LayerPlan oracle_plan; ///< None-drain plan of the M×V

    SessionFixture()
        : dir(scratchDir()), config(makeConfig()),
          lstm_layer(test::randomCompressedLayer(4 * kH, kX + kH + 1,
                                                 0.4, 4, 777)),
          registry(dir.string(), config),
          directory(registry, makeClusterOptions()),
          server(directory), functional(config),
          oracle_plan(core::planLayer(lstm_layer,
                                      nn::Nonlinearity::None, config))
    {
        registry.publish("nt-lstm", 1, lstm_layer.storage());
        // 97 output rows: no H solves 4H = 97, so this FC layer can
        // never pass the packed-gate shape check. (A 4H x big-enough
        // layer is indistinguishable from an LSTM by shape alone.)
        registry.publish(
            "fc", 1,
            test::randomCompressedLayer(97, 64, 0.25, 4, 778)
                .storage());
        server.start();
    }

    ~SessionFixture()
    {
        server.stop();
        directory.stopAll();
        fs::remove_all(dir);
    }

    static fs::path
    scratchDir()
    {
        static int counter = 0;
        return fs::temp_directory_path() /
            ("eie_session_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    }

    static serve::ClusterOptions
    makeClusterOptions()
    {
        serve::ClusterOptions options;
        options.shards = 2;
        return options;
    }

    client::ClientOptions
    clientOptions() const
    {
        client::ClientOptions options;
        options.config = config;
        options.cluster = makeClusterOptions();
        return options;
    }

    std::unique_ptr<client::Client>
    connect(const std::string &endpoint) const
    {
        client::Status status;
        auto connected = client::Client::connect(
            endpoint, clientOptions(), status);
        EXPECT_NE(connected, nullptr)
            << endpoint << ": " << status.toString();
        return connected;
    }

    std::vector<std::string>
    endpoints() const
    {
        return {"local:compiled,dir=" + dir.string(),
                "cluster:" + dir.string() + ",shards=2",
                "tcp://127.0.0.1:" + std::to_string(server.port())};
    }

    /** Deterministic step inputs. */
    nn::Vector
    stepInput(std::uint64_t t) const
    {
        return test::randomActivations(kX, 0.7, 5000 + t);
    }

    /** The scalar-oracle hidden trajectory over T steps: the same
     *  engine::LstmSession host math around the FunctionalModel M×V
     *  on the original pre-file plan. */
    std::vector<nn::Vector>
    oracleTrajectory(std::size_t steps) const
    {
        engine::LstmShape shape;
        std::string error;
        EXPECT_TRUE(engine::LstmShape::derive(
            kX + kH + 1, 4 * kH, shape, error))
            << error;
        engine::LstmSession session(config, shape);
        std::vector<nn::Vector> trajectory;
        for (std::size_t t = 0; t < steps; ++t)
            trajectory.push_back(session.step(
                stepInput(t),
                [&](std::vector<std::int64_t> packed) {
                    return functional.run(oracle_plan, packed)
                        .output_raw;
                }));
        return trajectory;
    }
};

TEST(LstmShape, DerivesAndRejects)
{
    engine::LstmShape shape;
    std::string error;
    // NT-LSTM's published shape: 1201 -> 2400 gives X = H = 600.
    ASSERT_TRUE(engine::LstmShape::derive(1201, 2400, shape, error));
    EXPECT_EQ(shape.input_size, 600u);
    EXPECT_EQ(shape.hidden_size, 600u);

    ASSERT_TRUE(engine::LstmShape::derive(kX + kH + 1, 4 * kH, shape,
                                          error));
    EXPECT_EQ(shape.input_size, kX);
    EXPECT_EQ(shape.hidden_size, kH);

    // Not divisible by four.
    EXPECT_FALSE(engine::LstmShape::derive(64, 97, shape, error));
    EXPECT_NE(error.find("not LSTM-shaped"), std::string::npos);
    // No room for [x; h; 1].
    EXPECT_FALSE(engine::LstmShape::derive(8, 32, shape, error));
    EXPECT_NE(error.find("not LSTM-shaped"), std::string::npos);
    // Zero output.
    EXPECT_FALSE(engine::LstmShape::derive(10, 0, shape, error));
}

TEST(ClientSession, NtLstmSequenceMatchesTheOracleOnEveryTransport)
{
    SessionFixture fx;
    constexpr std::size_t kSteps = 12;
    const std::vector<nn::Vector> oracle =
        fx.oracleTrajectory(kSteps);

    for (const std::string &endpoint : fx.endpoints()) {
        const auto client = fx.connect(endpoint);
        client::Status status;
        const auto session =
            client->openSession("nt-lstm", 0, status);
        ASSERT_NE(session, nullptr)
            << endpoint << ": " << status.toString();
        EXPECT_EQ(session->inputSize(), kX) << endpoint;
        EXPECT_EQ(session->hiddenSize(), kH) << endpoint;
        EXPECT_EQ(session->model(), "nt-lstm") << endpoint;

        // The acceptance bar: the streamed hidden trajectory equals
        // the scalar oracle's bit for bit, step by step — including
        // over the live TCP daemon (state held server-side).
        for (std::size_t t = 0; t < kSteps; ++t) {
            const client::Session::StepResult step =
                session->step(fx.stepInput(t));
            ASSERT_TRUE(step.ok())
                << endpoint << " step " << t << ": "
                << step.status.toString();
            EXPECT_EQ(step.h, oracle[t])
                << endpoint << " diverged at step " << t;
        }
        EXPECT_EQ(session->steps(), kSteps) << endpoint;
    }
}

TEST(ClientSession, AdaptiveFormingWindowMeetsStepDeadlines)
{
    // Sequential session streaming is the traffic that shrinks the
    // adaptive forming window to min_delay. The window never exceeds
    // max_delay, so a per-step deadline that was feasible under the
    // fixed window must hold at every adapted size: all steps commit
    // (no deadline drops) and the trajectory stays bit-exact.
    SessionFixture fx;
    constexpr std::size_t kSteps = 24;
    const std::vector<nn::Vector> oracle =
        fx.oracleTrajectory(kSteps);

    client::ClientOptions options = fx.clientOptions();
    ASSERT_TRUE(options.server.adaptive_delay);
    options.server.max_delay = std::chrono::microseconds(200);
    options.server.min_delay = std::chrono::microseconds(20);

    client::Status status;
    const auto client = client::Client::connect(
        fx.endpoints().front(), options, status);
    ASSERT_NE(client, nullptr) << status.toString();
    const auto session = client->openSession("nt-lstm", 0, status);
    ASSERT_NE(session, nullptr) << status.toString();

    // Far above max_delay + compute, so a drop can only mean the
    // batcher held a request past its deadline — exactly the bug an
    // adaptive window must not introduce.
    const auto deadline = std::chrono::microseconds(
        std::chrono::milliseconds(250));
    for (std::size_t t = 0; t < kSteps; ++t) {
        const client::Session::StepResult step =
            session->step(fx.stepInput(t), 0, deadline);
        ASSERT_TRUE(step.ok())
            << "step " << t << ": " << step.status.toString();
        EXPECT_EQ(step.h, oracle[t]) << "diverged at step " << t;
    }
    EXPECT_EQ(session->steps(), kSteps);
}

TEST(ClientSession, TwoSessionsThreadIndependentState)
{
    SessionFixture fx;
    const auto client = fx.connect(fx.endpoints().back()); // tcp
    client::Status status;
    const auto a = client->openSession("nt-lstm", 0, status);
    ASSERT_NE(a, nullptr) << status.toString();
    const auto b = client->openSession("nt-lstm", 0, status);
    ASSERT_NE(b, nullptr) << status.toString();

    // Interleaved steps: each session's trajectory must equal a
    // solo run — no cross-talk through shared server state.
    const std::vector<nn::Vector> oracle = fx.oracleTrajectory(4);
    for (std::size_t t = 0; t < 4; ++t) {
        const auto step_a = a->step(fx.stepInput(t));
        const auto step_b = b->step(fx.stepInput(t));
        ASSERT_TRUE(step_a.ok() && step_b.ok());
        EXPECT_EQ(step_a.h, oracle[t]) << "session a, step " << t;
        EXPECT_EQ(step_b.h, oracle[t]) << "session b, step " << t;
    }
}

TEST(ClientSession, ErrorTaxonomyAndStateSafety)
{
    SessionFixture fx;
    for (const std::string &endpoint : fx.endpoints()) {
        const auto client = fx.connect(endpoint);
        client::Status status;

        // Unknown model -> NOT_FOUND.
        EXPECT_EQ(client->openSession("missing", 0, status), nullptr);
        EXPECT_EQ(status.code, client::StatusCode::NotFound)
            << endpoint << ": " << status.toString();

        // A 96x64 FC layer is not LSTM-shaped -> INVALID_ARGUMENT.
        EXPECT_EQ(client->openSession("fc", 0, status), nullptr);
        EXPECT_EQ(status.code, client::StatusCode::InvalidArgument)
            << endpoint << ": " << status.toString();

        // A live session survives a wrong-length step: the bad step
        // reports INVALID_ARGUMENT, the state stays put, and the
        // trajectory continues exactly on the oracle.
        const auto session =
            client->openSession("nt-lstm", 0, status);
        ASSERT_NE(session, nullptr) << endpoint;
        const std::vector<nn::Vector> oracle =
            fx.oracleTrajectory(2);
        ASSERT_TRUE(session->step(fx.stepInput(0)).ok());
        const client::Session::StepResult bad =
            session->step(nn::Vector(kX + 3, 0.5f));
        EXPECT_EQ(bad.status.code,
                  client::StatusCode::InvalidArgument)
            << endpoint << ": " << bad.status.toString();
        const client::Session::StepResult resumed =
            session->step(fx.stepInput(1));
        ASSERT_TRUE(resumed.ok()) << endpoint;
        EXPECT_EQ(resumed.h, oracle[1])
            << endpoint << ": state was corrupted by a failed step";
        EXPECT_EQ(session->steps(), 2u) << endpoint;

        // Closed session -> UNAVAILABLE.
        session->close();
        EXPECT_EQ(session->step(fx.stepInput(2)).status.code,
                  client::StatusCode::Unavailable)
            << endpoint;
    }
}

TEST(ClientSession, TcpSessionCloseFreesServerStateForReuse)
{
    SessionFixture fx;
    const auto client = fx.connect(fx.endpoints().back()); // tcp
    client::Status status;

    // Open, close, reopen, and stream: reopened sessions start from
    // zero state (the close released the server-side slot).
    auto session = client->openSession("nt-lstm", 0, status);
    ASSERT_NE(session, nullptr) << status.toString();
    ASSERT_TRUE(session->step(fx.stepInput(99)).ok());
    session->close();

    session = client->openSession("nt-lstm", 0, status);
    ASSERT_NE(session, nullptr) << status.toString();
    const std::vector<nn::Vector> oracle = fx.oracleTrajectory(2);
    for (std::size_t t = 0; t < 2; ++t) {
        const auto step = session->step(fx.stepInput(t));
        ASSERT_TRUE(step.ok());
        EXPECT_EQ(step.h, oracle[t]) << "step " << t;
    }
}

TEST(ClientSession, PerConnectionSessionCapBoundsServerMemory)
{
    SessionFixture fx;
    const auto client = fx.connect(fx.endpoints().back()); // tcp
    client::Status status;

    // Fill the per-connection budget (the fixture server runs the
    // default cap), then one more: the overflow open is rejected
    // with UNAVAILABLE instead of growing the daemon without bound.
    const std::size_t cap =
        serve::TcpServerOptions{}.max_sessions_per_connection;
    std::vector<std::unique_ptr<client::Session>> sessions;
    for (std::size_t i = 0; i < cap; ++i) {
        sessions.push_back(client->openSession("nt-lstm", 0, status));
        ASSERT_NE(sessions.back(), nullptr)
            << "open " << i << ": " << status.toString();
    }
    EXPECT_EQ(client->openSession("nt-lstm", 0, status), nullptr);
    EXPECT_EQ(status.code, client::StatusCode::Unavailable)
        << status.toString();
    EXPECT_NE(status.message.find("session limit"),
              std::string::npos)
        << status.message;

    // Closing one frees a slot.
    sessions.front()->close();
    const auto reopened = client->openSession("nt-lstm", 0, status);
    EXPECT_NE(reopened, nullptr) << status.toString();
}

TEST(ClientSession, StoppedDaemonYieldsUnavailableSteps)
{
    SessionFixture fx;
    const auto client = fx.connect(fx.endpoints().back()); // tcp
    client::Status status;
    const auto session = client->openSession("nt-lstm", 0, status);
    ASSERT_NE(session, nullptr) << status.toString();
    ASSERT_TRUE(session->step(fx.stepInput(0)).ok());

    fx.server.stop();
    const client::Session::StepResult step =
        session->step(fx.stepInput(1));
    EXPECT_FALSE(step.ok());
    EXPECT_EQ(step.status.code, client::StatusCode::Unavailable)
        << step.status.toString();
}

} // namespace
