/**
 * @file
 * Endpoint-string grammar tests: every transport form parses into
 * the right ParsedEndpoint, and malformed strings come back as
 * InvalidArgument Statuses (never fatal) naming the problem.
 */

#include <gtest/gtest.h>

#include "client/endpoint.hh"

namespace {

using namespace eie::client;

TEST(Endpoint, LocalForms)
{
    ParsedEndpoint parsed;
    ASSERT_TRUE(parseEndpoint("local:compiled", parsed).ok());
    EXPECT_EQ(parsed.kind, TransportKind::Local);
    EXPECT_EQ(parsed.backend, "compiled");
    EXPECT_TRUE(parsed.kernel.empty());
    EXPECT_EQ(parsed.threads, 0u);
    EXPECT_TRUE(parsed.dir.empty());

    ASSERT_TRUE(parseEndpoint("local:scalar", parsed).ok());
    EXPECT_EQ(parsed.backend, "scalar");

    ASSERT_TRUE(parseEndpoint(
                    "local:compiled,kernel=vector,threads=4,"
                    "dir=/tmp/models",
                    parsed)
                    .ok());
    EXPECT_EQ(parsed.backend, "compiled");
    EXPECT_EQ(parsed.kernel, "vector");
    EXPECT_EQ(parsed.threads, 4u);
    EXPECT_EQ(parsed.dir, "/tmp/models");
}

TEST(Endpoint, ClusterForms)
{
    ParsedEndpoint parsed;
    ASSERT_TRUE(parseEndpoint("cluster:/srv/models", parsed).ok());
    EXPECT_EQ(parsed.kind, TransportKind::Cluster);
    EXPECT_EQ(parsed.dir, "/srv/models");
    EXPECT_EQ(parsed.shards, 0u);
    EXPECT_TRUE(parsed.placement.empty());

    ASSERT_TRUE(parseEndpoint(
                    "cluster:/srv/models,shards=4,"
                    "policy=partitioned,backend=scalar,"
                    "kernel=reference,threads=2",
                    parsed)
                    .ok());
    EXPECT_EQ(parsed.dir, "/srv/models");
    EXPECT_EQ(parsed.shards, 4u);
    EXPECT_EQ(parsed.placement, "partitioned");
    EXPECT_EQ(parsed.cluster_backend, "scalar");
    EXPECT_EQ(parsed.kernel, "reference");
    EXPECT_EQ(parsed.threads, 2u);
}

TEST(Endpoint, TcpForms)
{
    ParsedEndpoint parsed;
    ASSERT_TRUE(parseEndpoint("tcp://127.0.0.1:7070", parsed).ok());
    EXPECT_EQ(parsed.kind, TransportKind::Tcp);
    EXPECT_EQ(parsed.host, "127.0.0.1");
    EXPECT_EQ(parsed.port, 7070u);

    ASSERT_TRUE(parseEndpoint("tcp://serving-box:1", parsed).ok());
    EXPECT_EQ(parsed.host, "serving-box");
    EXPECT_EQ(parsed.port, 1u);
}

TEST(Endpoint, HttpForms)
{
    ParsedEndpoint parsed;
    ASSERT_TRUE(
        parseEndpoint("http://127.0.0.1:8080", parsed).ok());
    EXPECT_EQ(parsed.kind, TransportKind::Http);
    EXPECT_EQ(parsed.host, "127.0.0.1");
    EXPECT_EQ(parsed.port, 8080u);
    EXPECT_TRUE(parsed.token.empty());

    ASSERT_TRUE(
        parseEndpoint("http://gw:9090,token=s3cret", parsed).ok());
    EXPECT_EQ(parsed.host, "gw");
    EXPECT_EQ(parsed.port, 9090u);
    EXPECT_EQ(parsed.token, "s3cret");
}

TEST(Endpoint, MalformedStringsAreInvalidArgumentNotFatal)
{
    ParsedEndpoint parsed;
    const char *bad[] = {
        "",
        "bogus:whatever",
        "local:",
        "local:no-such-backend",
        "local:compiled,kernel=warp",       // unknown kernel
        "local:compiled,threads=0",         // zero threads
        "local:compiled,threads=lots",      // non-numeric
        // beyond ULONG_MAX: must be InvalidArgument, not a thrown
        // std::out_of_range escaping the never-throws contract
        "local:compiled,threads=99999999999999999999",
        "tcp://host:99999999999999999999",
        "local:compiled,dir=",              // empty path
        "local:compiled,shards=2",          // cluster-only option
        "cluster:",
        "cluster:/d,policy=diagonal",       // unknown placement
        "cluster:/d,backend=no-such",       // unknown backend
        "cluster:/d,frobnicate=1",          // unknown option
        "tcp://",
        "tcp://hostonly",
        "tcp://host:",
        "tcp://host:notaport",
        "tcp://host:0",
        "tcp://host:65536",
        "http://",
        "http://hostonly",
        "http://host:",
        "http://host:0",
        "http://host:notaport",
        "http://host:8080,token=",      // empty token
        "http://host:8080,bearer=x",    // unknown option
        "http://host:8080,token",       // not key=value
    };
    for (const char *endpoint : bad) {
        const Status status = parseEndpoint(endpoint, parsed);
        EXPECT_FALSE(status.ok()) << "'" << endpoint << "' parsed";
        EXPECT_EQ(status.code, StatusCode::InvalidArgument)
            << "'" << endpoint << "': " << status.toString();
        // Every rejection teaches the grammar.
        EXPECT_NE(status.message.find("local:<backend>"),
                  std::string::npos)
            << status.message;
    }
}

TEST(Endpoint, StatusRendersCodeAndMessage)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "OK");
    EXPECT_STREQ(statusCodeName(StatusCode::DeadlineExpired),
                 "DEADLINE_EXPIRED");
    const Status status =
        Status::error(StatusCode::NotFound, "model 'x' missing");
    EXPECT_EQ(status.toString(), "NOT_FOUND: model 'x' missing");
    EXPECT_EQ(Status::success().toString(), "OK");
}

} // namespace
