/**
 * @file
 * Client-side resilience: the RetryPolicy schedule (deterministic
 * backoff with jitter), retry of shed requests, the idempotent-only
 * guard, the per-request wall-clock timeout, and TcpTransport's
 * transparent reconnect (wire-v2 re-handshake) across a daemon
 * bounce and an injected connection drop. Runs under ThreadSanitizer
 * and ASan/UBSan in tools/check.sh.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <vector>

#include "client/client.hh"
#include "client/retry.hh"
#include "common/faultpoint.hh"
#include "core/functional.hh"
#include "core/network_runner.hh"
#include "helpers.hh"
#include "serve/cluster.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"

namespace {

using namespace eie;
namespace fs = std::filesystem;

struct FaultGuard
{
    FaultGuard() { fault::disarmAll(); }
    ~FaultGuard() { fault::disarmAll(); }
};

core::EieConfig
makeConfig()
{
    core::EieConfig config;
    config.n_pe = 4;
    return config;
}

fs::path
scratchDir(const char *tag)
{
    static int counter = 0;
    return fs::temp_directory_path() /
        ("eie_retry_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter++));
}

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndGrows)
{
    client::RetryPolicy policy;
    policy.initial_backoff = std::chrono::microseconds(1000);
    policy.multiplier = 2.0;
    policy.max_backoff = std::chrono::microseconds(8000);

    // Pure function of (policy, attempt): identical calls replay the
    // identical schedule.
    for (unsigned attempt = 0; attempt < 10; ++attempt)
        EXPECT_EQ(client::retryBackoff(policy, attempt),
                  client::retryBackoff(policy, attempt));

    // Jitter keeps each wait in [1/2, 1] of its nominal backoff, and
    // the nominal doubles until the cap.
    for (unsigned attempt = 0; attempt < 10; ++attempt) {
        const double nominal = std::min(
            1000.0 * std::pow(2.0, static_cast<double>(attempt)),
            8000.0);
        const auto wait = client::retryBackoff(policy, attempt);
        EXPECT_GE(wait.count(), nominal / 2 - 1) << attempt;
        EXPECT_LE(wait.count(), nominal) << attempt;
    }

    // A different seed yields a different (decorrelated) schedule
    // somewhere in the first attempts.
    client::RetryPolicy other = policy;
    other.jitter_seed = 1234567;
    bool differs = false;
    for (unsigned attempt = 0; attempt < 10 && !differs; ++attempt)
        differs = client::retryBackoff(policy, attempt) !=
            client::retryBackoff(other, attempt);
    EXPECT_TRUE(differs);
}

TEST(RetryPolicy, OnlyTransientStatusesAreRetryable)
{
    using client::StatusCode;
    EXPECT_TRUE(client::retryableStatus(StatusCode::Unavailable));
    EXPECT_TRUE(client::retryableStatus(StatusCode::TransportError));
    EXPECT_FALSE(client::retryableStatus(StatusCode::Ok));
    EXPECT_FALSE(client::retryableStatus(StatusCode::InvalidArgument));
    EXPECT_FALSE(client::retryableStatus(StatusCode::NotFound));
    EXPECT_FALSE(client::retryableStatus(StatusCode::DeadlineExpired));
    EXPECT_FALSE(client::retryableStatus(StatusCode::ProtocolError));
    EXPECT_FALSE(client::retryableStatus(StatusCode::Internal));
}

/** A `local:` endpoint over one in-memory layer, with a shedding
 *  micro-batcher (one queue slot) and the batcher stalled by fault
 *  injection so bursts deterministically overflow it. */
struct SheddingFixture
{
    core::EieConfig config;
    core::NetworkRunner net;
    core::FunctionalModel functional;

    SheddingFixture()
        : config(makeConfig()), net(config), functional(config)
    {
        net.addLayer(
            test::randomCompressedLayer(48, 32, 0.25, 4, 811),
            nn::Nonlinearity::ReLU);
    }

    std::unique_ptr<client::Client>
    connect(const client::RetryPolicy &retry)
    {
        client::ClientOptions options;
        options.config = config;
        options.server.max_batch = 1;
        options.server.max_delay = std::chrono::microseconds(50);
        options.server.max_queue = 1;
        options.retry = retry;
        options.models.push_back(
            client::LocalModel{"fc", {&net.plan(0)}});
        client::Status status;
        auto client = client::Client::connect("local:compiled",
                                              options, status);
        EXPECT_NE(client, nullptr) << status.toString();
        return client;
    }

    std::vector<std::int64_t>
    input(std::uint64_t seed) const
    {
        return functional.quantizeInput(
            test::randomActivations(32, 0.6, seed));
    }
};

TEST(ClientRetry, RetryAbsorbsShedRequests)
{
    FaultGuard guard;
    SheddingFixture fx;

    client::RetryPolicy retry;
    retry.max_attempts = 16;
    retry.initial_backoff = std::chrono::milliseconds(10);
    retry.multiplier = 1.5;
    retry.max_backoff = std::chrono::milliseconds(80);
    auto client = fx.connect(retry);

    // Burst 6 single-frame requests into a one-slot queue with every
    // batch stalled 25 ms: some initial attempts must shed, and the
    // retry loop must absorb every shed into an eventual success.
    fault::arm("batcher.stall");
    std::vector<std::future<client::InferenceResult>> futures;
    for (int i = 0; i < 6; ++i) {
        client::InferenceRequest request;
        request.model = "fc";
        request.fixed.push_back(fx.input(20 + i));
        futures.push_back(client->submit(std::move(request)));
    }
    for (auto &future : futures) {
        const client::InferenceResult result = future.get();
        EXPECT_TRUE(result.ok()) << result.status.toString();
    }
    fault::disarmAll();

    client::EndpointStats stats;
    ASSERT_TRUE(client->stats(stats).ok());
    // The server must have shed at least one attempt for the retry
    // path to have been exercised (the burst is 6 deep on 1 slot).
    EXPECT_GE(stats.requests_shed, 1u);
    client->close();
}

TEST(ClientRetry, NonIdempotentRequestsAreNeverRetried)
{
    FaultGuard guard;
    SheddingFixture fx;

    client::RetryPolicy retry;
    retry.max_attempts = 16;
    retry.initial_backoff = std::chrono::milliseconds(10);
    auto client = fx.connect(retry);

    fault::arm("batcher.stall");
    // Same burst, but idempotent=false: a shed must surface as
    // Unavailable instead of being resubmitted behind our back.
    std::vector<std::future<client::InferenceResult>> futures;
    for (int i = 0; i < 6; ++i) {
        client::InferenceRequest request;
        request.model = "fc";
        request.idempotent = false;
        request.fixed.push_back(fx.input(40 + i));
        futures.push_back(client->submit(std::move(request)));
    }
    std::uint64_t ok = 0, unavailable = 0;
    for (auto &future : futures) {
        const client::InferenceResult result = future.get();
        if (result.ok())
            ++ok;
        else {
            EXPECT_EQ(result.status.code,
                      client::StatusCode::Unavailable)
                << result.status.toString();
            ++unavailable;
        }
    }
    EXPECT_EQ(ok + unavailable, 6u);
    EXPECT_GE(unavailable, 1u);
    fault::disarmAll();
    client->close();
}

TEST(ClientRetry, PerRequestTimeoutBoundsTheWait)
{
    FaultGuard guard;
    SheddingFixture fx;

    // A 2 ms client-side budget against a batcher that stalls 25 ms
    // per batch: the request cannot finish in time, and the client
    // must return DeadlineExpired on its own clock — not hang until
    // the server eventually answers.
    client::RetryPolicy retry;
    retry.max_attempts = 4;
    retry.timeout = std::chrono::milliseconds(2);
    auto client = fx.connect(retry);

    fault::arm("batcher.stall");
    client::InferenceRequest request;
    request.model = "fc";
    request.fixed.push_back(fx.input(60));
    const auto start = std::chrono::steady_clock::now();
    const client::InferenceResult result =
        client->infer(request);
    const auto elapsed =
        std::chrono::steady_clock::now() - start;
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status.code,
              client::StatusCode::DeadlineExpired)
        << result.status.toString();
    EXPECT_LT(elapsed, std::chrono::seconds(5));
    fault::disarmAll();
    client->close();
}

/** Registry + daemon the reconnect tests can bounce. */
struct DaemonFixture
{
    fs::path dir;
    core::EieConfig config;
    compress::CompressedLayer layer;
    serve::ModelRegistry registry;
    serve::ClusterOptions cluster_options;
    serve::ServingDirectory directory;
    core::FunctionalModel functional;
    core::LayerPlan oracle_plan;

    DaemonFixture()
        : dir(scratchDir("daemon")), config(makeConfig()),
          layer(test::randomCompressedLayer(48, 32, 0.25, 4, 812)),
          registry(dir.string(), config),
          directory(registry, cluster_options),
          functional(config),
          oracle_plan(core::planLayer(layer, nn::Nonlinearity::ReLU,
                                      config))
    {
        registry.publish("fc", 1, layer.storage());
    }

    ~DaemonFixture() { fs::remove_all(dir); }

    std::vector<std::int64_t>
    input(std::uint64_t seed) const
    {
        return functional.quantizeInput(
            test::randomActivations(32, 0.6, seed));
    }

    std::vector<std::int64_t>
    oracle(const std::vector<std::int64_t> &in) const
    {
        return functional.run(oracle_plan, in).output_raw;
    }
};

TEST(ClientRetry, TcpTransportReconnectsAcrossDaemonBounce)
{
    FaultGuard guard;
    DaemonFixture fx;

    auto first_server =
        std::make_unique<serve::TcpServer>(fx.directory);
    first_server->start();
    const std::uint16_t port = first_server->port();

    client::ClientOptions options;
    options.config = fx.config;
    client::Status status;
    auto client = client::Client::connect(
        "tcp://127.0.0.1:" + std::to_string(port), options, status);
    ASSERT_NE(client, nullptr) << status.toString();

    const auto input = fx.input(70);
    client::InferenceResult before = client->inferRaw("fc", input);
    ASSERT_TRUE(before.ok()) << before.status.toString();
    EXPECT_EQ(before.outputs.front(), fx.oracle(input));

    // Bounce the daemon: stop it, then bring a new one up on the
    // same port (a deploy restart as the client sees it).
    first_server->stop();
    first_server.reset();
    Logger::setQuiet(true);
    client::InferenceResult during = client->inferRaw("fc", input);
    EXPECT_FALSE(during.ok());
    EXPECT_TRUE(during.status.code ==
                    client::StatusCode::Unavailable ||
                during.status.code ==
                    client::StatusCode::TransportError)
        << during.status.toString();
    Logger::setQuiet(false);

    serve::TcpServerOptions reborn_options;
    reborn_options.port = port;
    serve::TcpServer second_server(fx.directory, reborn_options);
    second_server.start();

    // The transport re-dials (fresh wire-v2 handshake) on the next
    // request — same client object, same bits.
    client::InferenceResult after = client->inferRaw("fc", input);
    ASSERT_TRUE(after.ok()) << after.status.toString();
    EXPECT_EQ(after.outputs.front(), fx.oracle(input));

    client->close();
    second_server.stop();
    fx.directory.stopAll();
}

TEST(ClientRetry, InjectedConnectionDropIsTransparent)
{
    FaultGuard guard;
    DaemonFixture fx;

    serve::TcpServer server(fx.directory);
    server.start();

    client::ClientOptions options;
    options.config = fx.config;
    options.retry.max_attempts = 4;
    options.retry.initial_backoff = std::chrono::milliseconds(5);
    client::Status status;
    auto client = client::Client::connect(
        "tcp://127.0.0.1:" + std::to_string(server.port()), options,
        status);
    ASSERT_NE(client, nullptr) << status.toString();

    const auto input = fx.input(80);
    const auto expected = fx.oracle(input);

    // Drop the connection after the next successful response write;
    // subsequent requests must transparently reconnect (and retry if
    // the race lands the attempt on the dying socket).
    fault::FaultSpec once;
    once.count = 1;
    fault::arm("tcp.drop_after_write", once);

    Logger::setQuiet(true);
    for (int i = 0; i < 5; ++i) {
        const client::InferenceResult result =
            client->inferRaw("fc", input);
        ASSERT_TRUE(result.ok())
            << "request " << i << ": " << result.status.toString();
        EXPECT_EQ(result.outputs.front(), expected);
    }
    Logger::setQuiet(false);
    EXPECT_EQ(fault::hits("tcp.drop_after_write"), 1u);

    client->close();
    server.stop();
    fx.directory.stopAll();
}

} // namespace
