/**
 * @file
 * The client-API equivalence suite — the tentpole contract of
 * eie::client::Client: the same requests driven through a `local:`,
 * a `cluster:` and a `tcp://` endpoint produce bit-exact outputs and
 * identical Status codes. One registry directory backs all three
 * (the TCP daemon runs in-process on a loopback socket), and the
 * FunctionalModel oracle on the original pre-file plan anchors
 * bit-exactness.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "client/client.hh"
#include "core/functional.hh"
#include "helpers.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"
#include "serve/wire.hh"

namespace {

using namespace eie;
namespace fs = std::filesystem;

fs::path
scratchDir(const char *tag)
{
    static int counter = 0;
    return fs::temp_directory_path() /
        ("eie_client_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter++));
}

core::EieConfig
makeConfig()
{
    core::EieConfig config;
    config.n_pe = 4;
    return config;
}

/** Registry + daemon + one Client per transport, same model files. */
struct TransportTrio
{
    fs::path dir;
    core::EieConfig config;
    compress::CompressedLayer layer;
    serve::ModelRegistry registry;
    serve::ServingDirectory directory;
    serve::TcpServer server;
    core::FunctionalModel functional;
    core::LayerPlan oracle_plan;

    std::vector<std::unique_ptr<client::Client>> clients;

    explicit TransportTrio(
        const engine::ServerOptions &server_options = {})
        : dir(scratchDir("trio")), config(makeConfig()),
          layer(test::randomCompressedLayer(96, 64, 0.25, 4, 9001)),
          registry(dir.string(), config),
          directory(registry, clusterOptions(server_options)),
          server(directory), functional(config),
          oracle_plan(core::planLayer(layer, nn::Nonlinearity::ReLU,
                                      config))
    {
        registry.publish("fc", 1, layer.storage());
        server.start();

        client::ClientOptions options;
        options.config = config;
        options.server = server_options;
        options.cluster = clusterOptions(server_options);

        clients.push_back(connectOrFail(
            "local:compiled,dir=" + dir.string(), options));
        clients.push_back(connectOrFail(
            "cluster:" + dir.string() + ",shards=2", options));
        clients.push_back(connectOrFail(
            "tcp://127.0.0.1:" + std::to_string(server.port()),
            options));
    }

    ~TransportTrio()
    {
        for (auto &client : clients)
            client->close();
        server.stop();
        directory.stopAll();
        fs::remove_all(dir);
    }

    static serve::ClusterOptions
    clusterOptions(const engine::ServerOptions &server_options)
    {
        serve::ClusterOptions options;
        options.shards = 2;
        options.server = server_options;
        return options;
    }

    static std::unique_ptr<client::Client>
    connectOrFail(const std::string &endpoint,
                  const client::ClientOptions &options)
    {
        client::Status status;
        auto connected =
            client::Client::connect(endpoint, options, status);
        EXPECT_NE(connected, nullptr)
            << endpoint << ": " << status.toString();
        return connected;
    }

    std::vector<std::int64_t>
    randomInput(std::uint64_t seed) const
    {
        return functional.quantizeInput(
            test::randomActivations(64, 0.6, seed));
    }

    /** The FunctionalModel oracle on the original (pre-file) plan. */
    std::vector<std::int64_t>
    oracle(const std::vector<std::int64_t> &input) const
    {
        return functional.run(oracle_plan, input).output_raw;
    }
};

TEST(ClientEquivalence, SameRequestsSameBitsOnEveryTransport)
{
    TransportTrio trio;

    // Single raw frames: every transport must match the oracle (and
    // therefore each other) bit-exactly.
    for (int i = 0; i < 8; ++i) {
        const auto input = trio.randomInput(100 + i);
        const auto expected = trio.oracle(input);
        for (auto &client : trio.clients) {
            const client::InferenceResult result =
                client->inferRaw("fc", input);
            ASSERT_TRUE(result.ok())
                << client->endpoint() << ": "
                << result.status.toString();
            EXPECT_EQ(result.outputs.front(), expected)
                << client->endpoint() << " request " << i;
        }
    }

    // A ragged batch (5 frames in one request): per-frame outputs in
    // request order, all Ok, all bit-exact, on all transports.
    client::InferenceRequest batch;
    batch.model = "fc";
    for (int i = 0; i < 5; ++i)
        batch.fixed.push_back(trio.randomInput(200 + i));
    for (auto &client : trio.clients) {
        const client::InferenceResult result = client->infer(batch);
        ASSERT_TRUE(result.ok()) << client->endpoint();
        ASSERT_EQ(result.outputs.size(), 5u);
        ASSERT_EQ(result.frame_status.size(), 5u);
        for (int i = 0; i < 5; ++i) {
            EXPECT_TRUE(result.frame_status[i].ok());
            EXPECT_EQ(result.outputs[i],
                      trio.oracle(batch.fixed[i]))
                << client->endpoint() << " frame " << i;
        }
    }

    // Float frames: the client quantizes on the way in and fills
    // float_outputs on the way out — identically everywhere.
    const nn::Vector float_input =
        test::randomActivations(64, 0.5, 424242);
    std::vector<client::InferenceResult> float_results;
    for (auto &client : trio.clients) {
        float_results.push_back(
            client->inferFloat("fc", float_input));
        ASSERT_TRUE(float_results.back().ok())
            << client->endpoint();
        ASSERT_EQ(float_results.back().float_outputs.size(), 1u);
    }
    for (std::size_t c = 1; c < float_results.size(); ++c) {
        EXPECT_EQ(float_results[c].outputs.front(),
                  float_results[0].outputs.front());
        EXPECT_EQ(float_results[c].float_outputs.front(),
                  float_results[0].float_outputs.front());
    }

    // An empty request is trivially Ok (a ragged batch may be empty).
    client::InferenceRequest empty;
    empty.model = "fc";
    for (auto &client : trio.clients) {
        const client::InferenceResult result = client->infer(empty);
        EXPECT_TRUE(result.ok());
        EXPECT_TRUE(result.outputs.empty());
    }
}

TEST(ClientEquivalence, ModelInfoAgreesAcrossTransports)
{
    TransportTrio trio;
    for (auto &client : trio.clients) {
        client::ModelInfo info;
        const client::Status status = client->info("fc", 0, info);
        ASSERT_TRUE(status.ok())
            << client->endpoint() << ": " << status.toString();
        EXPECT_EQ(info.model, "fc");
        EXPECT_EQ(info.version, 1u);
        EXPECT_EQ(info.input_size, 64u);
        EXPECT_EQ(info.output_size, 96u);
    }
}

TEST(ClientEquivalence, StatusTaxonomyIsIdenticalAcrossTransports)
{
    TransportTrio trio;

    // Unknown model -> NOT_FOUND, from infer and info alike.
    for (auto &client : trio.clients) {
        const client::InferenceResult result =
            client->inferRaw("missing", trio.randomInput(300));
        EXPECT_EQ(result.status.code, client::StatusCode::NotFound)
            << client->endpoint() << ": "
            << result.status.toString();
        client::ModelInfo info;
        EXPECT_EQ(client->info("missing", 0, info).code,
                  client::StatusCode::NotFound)
            << client->endpoint();
    }

    // Wrong input length -> INVALID_ARGUMENT (an error response, not
    // a dead endpoint — a good frame right after must succeed).
    for (auto &client : trio.clients) {
        const client::InferenceResult result =
            client->inferRaw("fc", std::vector<std::int64_t>(3, 1));
        EXPECT_EQ(result.status.code,
                  client::StatusCode::InvalidArgument)
            << client->endpoint() << ": "
            << result.status.toString();
        const auto input = trio.randomInput(301);
        EXPECT_EQ(client->inferRaw("fc", input).outputs.front(),
                  trio.oracle(input))
            << client->endpoint();
    }

    // Mixed fixed+float frames -> INVALID_ARGUMENT before any
    // transport is touched.
    client::InferenceRequest mixed;
    mixed.model = "fc";
    mixed.fixed.push_back(trio.randomInput(302));
    mixed.floats.push_back(test::randomActivations(64, 0.5, 303));
    for (auto &client : trio.clients)
        EXPECT_EQ(client->infer(mixed).status.code,
                  client::StatusCode::InvalidArgument);

    // Closed endpoint -> UNAVAILABLE everywhere.
    for (auto &client : trio.clients) {
        client->close();
        const client::InferenceResult result =
            client->inferRaw("fc", trio.randomInput(304));
        EXPECT_EQ(result.status.code,
                  client::StatusCode::Unavailable)
            << client->endpoint() << ": "
            << result.status.toString();
    }
}

TEST(ClientEquivalence, DeadlineDropsAreDeadlineExpiredEverywhere)
{
    // Forming deadline far beyond the request deadlines and a batch
    // cap a small burst cannot reach: every request expires queued,
    // on every transport.
    engine::ServerOptions slow;
    slow.max_batch = 1000;
    slow.max_delay = std::chrono::milliseconds(200);
    TransportTrio trio(slow);

    for (auto &client : trio.clients) {
        client::InferenceRequest request;
        request.model = "fc";
        request.deadline = std::chrono::milliseconds(2);
        for (int i = 0; i < 4; ++i)
            request.fixed.push_back(trio.randomInput(400 + i));
        const client::InferenceResult result =
            client->infer(request);
        EXPECT_EQ(result.status.code,
                  client::StatusCode::DeadlineExpired)
            << client->endpoint() << ": "
            << result.status.toString();
        for (const client::Status &frame : result.frame_status)
            EXPECT_EQ(frame.code,
                      client::StatusCode::DeadlineExpired)
                << client->endpoint();
    }
}

TEST(ClientEquivalence, EndpointStatsCountRequests)
{
    TransportTrio trio;
    for (auto &client : trio.clients)
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(
                client->inferRaw("fc", trio.randomInput(500 + i))
                    .ok());
    for (auto &client : trio.clients) {
        client::EndpointStats stats;
        ASSERT_TRUE(client->stats(stats).ok())
            << client->endpoint();
        EXPECT_FALSE(stats.json.empty()) << client->endpoint();
        if (std::string(client->transport()) != "tcp")
            EXPECT_GE(stats.requests, 4u) << client->endpoint();
    }
}

TEST(ClientEquivalence, TransportNamesResolve)
{
    TransportTrio trio;
    EXPECT_STREQ(trio.clients[0]->transport(), "local");
    EXPECT_STREQ(trio.clients[1]->transport(), "cluster");
    EXPECT_STREQ(trio.clients[2]->transport(), "tcp");
}

TEST(Client, ConnectRejectsBadEndpointsAndDeadDaemons)
{
    client::ClientOptions options;
    options.config = makeConfig();
    client::Status status;

    EXPECT_EQ(client::Client::connect("warp://nowhere", options,
                                      status),
              nullptr);
    EXPECT_EQ(status.code, client::StatusCode::InvalidArgument);

    // A refused TCP connection is a transport failure, not a crash.
    EXPECT_EQ(client::Client::connect("tcp://127.0.0.1:1", options,
                                      status),
              nullptr);
    EXPECT_EQ(status.code, client::StatusCode::TransportError)
        << status.toString();

    // A local endpoint with neither in-memory models nor a registry
    // connects (endpoints are cheap) but serves nothing.
    auto empty = client::Client::connect("local:compiled", options,
                                         status);
    ASSERT_NE(empty, nullptr);
    EXPECT_EQ(empty->inferRaw("fc", {1, 2, 3}).status.code,
              client::StatusCode::NotFound);
}

TEST(Client, MalformedServerFramesAreProtocolErrors)
{
    // A fake daemon that handshakes correctly, then answers the
    // first request with an absurd frame: the pending future must
    // resolve with PROTOCOL_ERROR (distinct from a clean close's
    // UNAVAILABLE).
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listener, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listener, 1), 0);
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ASSERT_EQ(::getsockname(listener,
                            reinterpret_cast<sockaddr *>(&bound),
                            &bound_len),
              0);
    const std::uint16_t port = ntohs(bound.sin_port);

    std::thread fake_server([listener] {
        const int fd = ::accept(listener, nullptr, nullptr);
        ASSERT_GE(fd, 0);
        // Read the Hello (9 bytes), answer a well-formed ack.
        std::uint8_t hello[9];
        std::size_t at = 0;
        while (at < sizeof(hello)) {
            const ssize_t got =
                ::recv(fd, hello + at, sizeof(hello) - at, 0);
            ASSERT_GT(got, 0);
            at += static_cast<std::size_t>(got);
        }
        const auto ack =
            serve::wire::encodeFrame(serve::wire::HelloAck{});
        ::send(fd, ack.data(), ack.size(), MSG_NOSIGNAL);
        // Read the request's length prefix, then answer garbage.
        std::uint32_t len = 0;
        ASSERT_EQ(::recv(fd, &len, 4, MSG_WAITALL), 4);
        std::vector<std::uint8_t> request(len);
        ASSERT_EQ(::recv(fd, request.data(), len, MSG_WAITALL),
                  static_cast<ssize_t>(len));
        const std::uint32_t absurd = 0xffffffffu;
        ::send(fd, &absurd, 4, MSG_NOSIGNAL);
        char byte = 0;
        ::recv(fd, &byte, 1, 0); // wait for the client to bail
        ::close(fd);
    });

    client::ClientOptions options;
    options.config = makeConfig();
    client::Status status;
    auto client = client::Client::connect(
        "tcp://127.0.0.1:" + std::to_string(port), options, status);
    ASSERT_NE(client, nullptr) << status.toString();

    const client::InferenceResult result =
        client->inferRaw("fc", std::vector<std::int64_t>(4, 1));
    EXPECT_EQ(result.status.code, client::StatusCode::ProtocolError)
        << result.status.toString();

    client->close();
    fake_server.join();
    ::close(listener);
}

} // namespace
