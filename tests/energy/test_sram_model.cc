/**
 * @file
 * SRAM energy/area model tests against the Table I/II calibration
 * points and the monotonicity properties Figure 9 relies on.
 */

#include <gtest/gtest.h>

#include "energy/sram_model.hh"

namespace {

using eie::energy::SramModel;

constexpr std::size_t kB = 1024;

TEST(SramModel, TableIAnchor)
{
    // 32-bit read of a 32KB array = 5 pJ.
    EXPECT_NEAR(SramModel::readEnergyPj(32 * kB, 32), 5.0, 1e-9);
}

TEST(SramModel, EnergyGrowsWithCapacityAndWidth)
{
    double prev = 0.0;
    for (std::size_t cap : {2 * kB, 32 * kB, 128 * kB}) {
        const double e = SramModel::readEnergyPj(cap, 64);
        EXPECT_GT(e, prev);
        prev = e;
    }
    prev = 0.0;
    for (unsigned width : {32u, 64u, 128u, 256u, 512u}) {
        const double e = SramModel::readEnergyPj(128 * kB, width);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(SramModel, WidthScalingSubLinearPerAccess)
{
    // Doubling the width must less-than-double per-access energy
    // (fixed wordline/decode cost) — the property that puts the
    // Figure 9 minimum at a finite width.
    for (unsigned width : {32u, 64u, 128u, 256u}) {
        const double narrow = SramModel::readEnergyPj(128 * kB, width);
        const double wide =
            SramModel::readEnergyPj(128 * kB, 2 * width);
        EXPECT_LT(wide / narrow, 2.0) << width;
        EXPECT_GT(wide / narrow, 1.0) << width;
    }
}

TEST(SramModel, WritesSlightlyDearer)
{
    EXPECT_GT(SramModel::writeEnergyPj(32 * kB, 32),
              SramModel::readEnergyPj(32 * kB, 32));
}

TEST(SramModel, TableIIAreaCalibration)
{
    // Linear fit through the paper's module areas.
    EXPECT_NEAR(SramModel::areaUm2(128 * kB), 469412, 500);
    EXPECT_NEAR(SramModel::areaUm2(32 * kB), 121849, 500);
}

TEST(SramModel, LeakageScalesWithCapacity)
{
    EXPECT_NEAR(SramModel::leakageMw(128 * kB) /
                SramModel::leakageMw(2 * kB), 64.0, 1e-9);
}

TEST(SramModelDeath, RejectsZeroSizes)
{
    EXPECT_EXIT(SramModel::readEnergyPj(0, 32),
                ::testing::ExitedWithCode(1), "capacity");
    EXPECT_EXIT(SramModel::readEnergyPj(1024, 0),
                ::testing::ExitedWithCode(1), "width");
    EXPECT_EXIT(SramModel::areaUm2(0),
                ::testing::ExitedWithCode(1), "capacity");
}

} // namespace
