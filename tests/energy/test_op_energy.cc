/**
 * @file
 * Op-energy model tests against the paper's published anchors.
 */

#include <gtest/gtest.h>

#include "energy/op_energy.hh"

namespace {

using eie::energy::OpEnergy;

TEST(OpEnergy, TableIAnchors)
{
    EXPECT_DOUBLE_EQ(OpEnergy::int_add_32, 0.1);
    EXPECT_DOUBLE_EQ(OpEnergy::float_add_32, 0.9);
    EXPECT_DOUBLE_EQ(OpEnergy::int_mult_32, 3.1);
    EXPECT_DOUBLE_EQ(OpEnergy::float_mult_32, 3.7);
    EXPECT_DOUBLE_EQ(OpEnergy::sram_read_32b_32k, 5.0);
    EXPECT_DOUBLE_EQ(OpEnergy::dram_read_32b, 640.0);

    // "DRAM access uses ... 128x more than SRAM" (Table I caption).
    EXPECT_DOUBLE_EQ(OpEnergy::dram_read_32b /
                     OpEnergy::sram_read_32b_32k, 128.0);
    EXPECT_DOUBLE_EQ(OpEnergy::relativeCost(OpEnergy::dram_read_32b),
                     6400.0);
}

TEST(OpEnergy, SixteenBitMultiplySavings)
{
    // §VI-C: 16-bit fixed multiply uses 5x less energy than 32-bit
    // fixed and 6.2x less than 32-bit float.
    EXPECT_NEAR(OpEnergy::int_mult_32 / OpEnergy::intMult(16), 5.0,
                0.01);
    EXPECT_NEAR(OpEnergy::float_mult_32 / OpEnergy::intMult(16), 6.2,
                0.25);
}

TEST(OpEnergy, MonotoneInWidth)
{
    double prev_mult = 0.0, prev_add = 0.0;
    for (unsigned bits : {4u, 8u, 16u, 32u, 64u}) {
        EXPECT_GT(OpEnergy::intMult(bits), prev_mult);
        EXPECT_GT(OpEnergy::intAdd(bits), prev_add);
        prev_mult = OpEnergy::intMult(bits);
        prev_add = OpEnergy::intAdd(bits);
    }
    // Multiplier scales super-linearly, adder linearly.
    EXPECT_GT(OpEnergy::intMult(32) / OpEnergy::intMult(16), 2.0);
    EXPECT_NEAR(OpEnergy::intAdd(32) / OpEnergy::intAdd(16), 2.0,
                1e-9);
}

TEST(OpEnergy, MacIsMultPlusAdd)
{
    EXPECT_DOUBLE_EQ(OpEnergy::fixedMac(16),
                     OpEnergy::intMult(16) + OpEnergy::intAdd(16));
}

TEST(OpEnergyDeath, RejectsBadWidths)
{
    EXPECT_EXIT(OpEnergy::intMult(0), ::testing::ExitedWithCode(1),
                "width");
    EXPECT_EXIT(OpEnergy::intAdd(65), ::testing::ExitedWithCode(1),
                "width");
}

} // namespace
