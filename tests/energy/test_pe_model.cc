/**
 * @file
 * PE area/power model tests: the Table II reproduction at the default
 * design point, plus sensible extrapolation behaviour.
 */

#include <gtest/gtest.h>

#include "energy/pe_model.hh"

namespace {

using namespace eie;
using namespace eie::energy;

TEST(PeModel, TableIIPowerAtNominal)
{
    const core::EieConfig config;
    const PeModel model(config);
    const auto power = model.powerMw(PeActivity::nominal());

    EXPECT_NEAR(power.act_queue, 0.112, 0.02);
    EXPECT_NEAR(power.ptr_read, 1.807, 0.05);
    EXPECT_NEAR(power.spmat_read, 4.955, 0.05);
    EXPECT_NEAR(power.arith, 1.162, 0.05);
    EXPECT_NEAR(power.act_rw, 1.122, 0.05);
    EXPECT_NEAR(power.total(), 9.157, 0.1);
}

TEST(PeModel, TableIIArea)
{
    const core::EieConfig config;
    const PeModel model(config);
    const auto area = model.areaUm2();

    EXPECT_NEAR(area.act_queue, 758, 20);
    EXPECT_NEAR(area.ptr_read, 121849, 500);
    EXPECT_NEAR(area.spmat_read, 469412, 500);
    EXPECT_NEAR(area.arith, 3110, 10);
    EXPECT_NEAR(area.act_rw, 18934, 100);
    EXPECT_NEAR(area.total(), 638024, 1500);
}

TEST(PeModel, AcceleratorLevelNumbers)
{
    const core::EieConfig config;
    // 64 PEs: 40.8 mm2 and ~590 mW (§I, §VI).
    EXPECT_NEAR(acceleratorAreaMm2(config), 40.8, 0.2);
    const double watts =
        acceleratorPowerWatts(config, PeActivity::nominal());
    EXPECT_NEAR(watts, 0.59, 0.03);
}

TEST(PeModel, IdleActivityCostsLess)
{
    const core::EieConfig config;
    const PeModel model(config);
    PeActivity idle; // all rates zero
    const double idle_mw = model.powerMw(idle).total();
    const double busy_mw =
        model.powerMw(PeActivity::nominal()).total();
    EXPECT_LT(idle_mw, busy_mw);
    EXPECT_GT(idle_mw, 0.0); // leakage + clock remain
}

TEST(PeModel, ActivityFromRunStats)
{
    core::RunStats stats;
    stats.n_pe = 4;
    stats.clock_ghz = 0.8;
    stats.cycles = 1000;
    stats.total_entries = 3200;     // 0.8 per PE-cycle
    stats.spmat_row_fetches = 400;  // 0.1 per PE-cycle
    stats.ptr_sram_reads = 800;     // 0.2 per PE-cycle
    stats.act_sram_reads = 200;
    stats.act_sram_writes = 200;    // 0.1 combined per PE-cycle
    stats.broadcasts = 500;         // 0.5 per cycle (every PE hears)

    const auto activity = PeActivity::fromRun(stats);
    EXPECT_NEAR(activity.alu_issue_rate, 0.8, 1e-12);
    EXPECT_NEAR(activity.spmat_fetch_rate, 0.1, 1e-12);
    EXPECT_NEAR(activity.ptr_read_rate, 0.2, 1e-12);
    EXPECT_NEAR(activity.act_access_rate, 0.1, 1e-12);
    EXPECT_NEAR(activity.queue_push_rate, 0.5, 1e-12);
}

TEST(PeModel, RunEnergyConsistent)
{
    core::RunStats stats;
    stats.n_pe = 64;
    stats.clock_ghz = 0.8;
    stats.cycles = 8000; // 10 us
    stats.pe_busy.assign(64, 8000);
    stats.total_entries = 64 * 8000;

    const core::EieConfig config;
    const double uj = runEnergyUj(config, stats);
    const double watts = acceleratorPowerWatts(
        config, PeActivity::fromRun(stats));
    EXPECT_NEAR(uj, watts * stats.timeUs(), 1e-9);
}

TEST(PeModel, WiderSpmatCostsMorePower)
{
    core::EieConfig narrow;
    core::EieConfig wide;
    wide.spmat_width_bits = 512;
    const auto activity = PeActivity::nominal();
    EXPECT_GT(PeModel(wide).powerMw(activity).spmat_read,
              PeModel(narrow).powerMw(activity).spmat_read);
}

} // namespace
