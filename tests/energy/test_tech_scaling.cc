/**
 * @file
 * Technology-scaling rule tests and the paper's 28 nm projection.
 */

#include <gtest/gtest.h>

#include "energy/tech_scaling.hh"

namespace {

using namespace eie::energy;

TEST(TechScaling, ClassicRules)
{
    // 45 -> 28 nm.
    EXPECT_NEAR(TechScaling::areaScale(45, 28), 0.387, 0.001);
    EXPECT_NEAR(TechScaling::delayScale(45, 28), 0.622, 0.001);
    // Energy: s * v^2 at 1.0 -> 0.9 V.
    EXPECT_NEAR(TechScaling::energyScale(45, 28), 0.504, 0.001);
    // Identity scaling.
    EXPECT_DOUBLE_EQ(TechScaling::areaScale(45, 45), 1.0);
    EXPECT_DOUBLE_EQ(TechScaling::delayScale(45, 45), 1.0);
}

TEST(TechScaling, PaperProjectionReproducesTableV)
{
    using P = Eie28nmProjection;
    // 800 MHz -> 1200 MHz.
    EXPECT_NEAR(800.0 * P::freq_scale, 1200.0, 1e-9);
    // 40.8 mm2 x 4 (PE count) x area scale = 63.2 ~ 63.8 mm2.
    EXPECT_NEAR(40.8 * 4.0 * P::area_scale, 63.8, 0.8);
    // 0.59 W x 4 x power scale = 2.36 W.
    EXPECT_NEAR(0.59 * 4.0 * P::power_scale, 2.36, 1e-9);
}

} // namespace
