/**
 * @file
 * The telemetry substrate: nearest-rank quantile selection shared by
 * the exact (engine::percentileOf) and bucketed
 * (HistogramSnapshot::quantile) estimators, the lock-free log-scale
 * histogram, snapshot merging, the registry's handle stability and
 * both exposition formats — plus the LatencyReservoir/percentileOf
 * edge cases (empty, single sample, q = 0/1) the old floor-rank
 * implementation got wrong.
 */

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/server.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace eie::obs {
namespace {

TEST(NearestRankIndex, SelectsNearestRank)
{
    // rank = ceil(q * n), clamped to [1, n]; returned 0-based.
    EXPECT_EQ(nearestRankIndex(1, 0.5), 0u);
    EXPECT_EQ(nearestRankIndex(2, 0.5), 0u);  // ceil(1.0) = 1
    EXPECT_EQ(nearestRankIndex(2, 0.99), 1u); // ceil(1.98) = 2
    EXPECT_EQ(nearestRankIndex(100, 0.5), 49u);
    EXPECT_EQ(nearestRankIndex(100, 0.99), 98u);
    EXPECT_EQ(nearestRankIndex(100, 0.999), 99u);
}

TEST(NearestRankIndex, QuantileBoundsClampToMinAndMax)
{
    EXPECT_EQ(nearestRankIndex(10, 0.0), 0u);
    EXPECT_EQ(nearestRankIndex(10, -3.0), 0u);
    EXPECT_EQ(nearestRankIndex(10, 1.0), 9u);
    EXPECT_EQ(nearestRankIndex(10, 7.0), 9u);
}

TEST(PercentileOf, EmptySampleIsZero)
{
    EXPECT_EQ(engine::percentileOf({}, 0.5), 0.0);
    EXPECT_EQ(engine::percentileOf({}, 0.0), 0.0);
    EXPECT_EQ(engine::percentileOf({}, 1.0), 0.0);
}

TEST(PercentileOf, SingleSampleIsEveryQuantile)
{
    const std::vector<double> one{42.0};
    EXPECT_EQ(engine::percentileOf(one, 0.0), 42.0);
    EXPECT_EQ(engine::percentileOf(one, 0.5), 42.0);
    EXPECT_EQ(engine::percentileOf(one, 0.99), 42.0);
    EXPECT_EQ(engine::percentileOf(one, 1.0), 42.0);
}

TEST(PercentileOf, ExtremeQuantilesSelectMinAndMax)
{
    const std::vector<double> sample{5.0, 1.0, 9.0, 3.0};
    EXPECT_EQ(engine::percentileOf(sample, 0.0), 1.0);
    EXPECT_EQ(engine::percentileOf(sample, -1.0), 1.0);
    EXPECT_EQ(engine::percentileOf(sample, 1.0), 9.0);
    EXPECT_EQ(engine::percentileOf(sample, 2.0), 9.0);
}

TEST(PercentileOf, HighQuantileOfTinySampleIsTheMaximum)
{
    // The old floor(p * (n-1)) rank made p99 of two samples return
    // the MINIMUM; nearest-rank returns the maximum.
    EXPECT_EQ(engine::percentileOf({10.0, 1000.0}, 0.99), 1000.0);
    EXPECT_EQ(engine::percentileOf({10.0, 1000.0}, 0.5), 10.0);
}

TEST(PercentileOf, MatchesNearestRankOnLargerSamples)
{
    std::vector<double> sample;
    for (int i = 1; i <= 100; ++i)
        sample.push_back(static_cast<double>(i));
    EXPECT_EQ(engine::percentileOf(sample, 0.50), 50.0);
    EXPECT_EQ(engine::percentileOf(sample, 0.95), 95.0);
    EXPECT_EQ(engine::percentileOf(sample, 0.99), 99.0);
    EXPECT_EQ(engine::percentileOf(sample, 0.999), 100.0);
}

TEST(LatencyReservoir, EmptyAndSingleSample)
{
    engine::LatencyReservoir reservoir;
    EXPECT_TRUE(reservoir.sample().empty());
    EXPECT_EQ(engine::percentileOf(reservoir.sample(), 0.99), 0.0);

    reservoir.record(17.0);
    ASSERT_EQ(reservoir.sample().size(), 1u);
    EXPECT_EQ(engine::percentileOf(reservoir.sample(), 0.0), 17.0);
    EXPECT_EQ(engine::percentileOf(reservoir.sample(), 1.0), 17.0);
}

TEST(LatencyReservoir, BoundedUnderLongStreams)
{
    engine::LatencyReservoir reservoir;
    for (int i = 0; i < 100000; ++i)
        reservoir.record(static_cast<double>(i));
    EXPECT_LE(reservoir.sample().size(), 100000u);
    EXPECT_GT(reservoir.sample().size(), 0u);
}

TEST(HistogramBuckets, MonotoneAndExhaustive)
{
    EXPECT_EQ(bucketIndex(0.0), 0u);
    EXPECT_EQ(bucketIndex(0.5), 0u);
    EXPECT_EQ(bucketIndex(-3.0), 0u); // clamped, not UB
    double previous = -1.0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        const double lo = bucketLowerBound(i);
        EXPECT_GT(lo, previous);
        previous = lo;
        // A value just above each bucket's lower bound maps back to
        // that bucket.
        EXPECT_EQ(bucketIndex(lo * 1.0001 + 1e-9), i);
    }
    // Far beyond the last bucket still lands in the overflow bucket.
    EXPECT_EQ(bucketIndex(1e18), kHistogramBuckets - 1);
}

TEST(Histogram, EmptySnapshotIsAllZero)
{
    Histogram histogram;
    const HistogramSnapshot snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.count, 0u);
    EXPECT_EQ(snapshot.quantile(0.5), 0.0);
    EXPECT_EQ(snapshot.mean(), 0.0);
    const LatencySummary summary = snapshot.summary();
    EXPECT_EQ(summary.count, 0u);
    EXPECT_EQ(summary.p999, 0.0);
}

TEST(Histogram, SingleSampleClampsEveryQuantileToIt)
{
    Histogram histogram;
    histogram.record(300.0);
    const HistogramSnapshot snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.count, 1u);
    EXPECT_EQ(snapshot.max, 300.0);
    // In-bucket interpolation is clamped to the recorded maximum, so
    // one sample answers every quantile exactly.
    EXPECT_EQ(snapshot.quantile(0.0), 300.0);
    EXPECT_EQ(snapshot.quantile(0.5), 300.0);
    EXPECT_EQ(snapshot.quantile(1.0), 300.0);
}

TEST(Histogram, QuantilesTrackTheSampleWithinBucketResolution)
{
    Histogram histogram;
    for (int i = 1; i <= 1000; ++i)
        histogram.record(static_cast<double>(i));
    const HistogramSnapshot snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.count, 1000u);
    EXPECT_NEAR(snapshot.mean(), 500.5, 1e-6);
    // Quarter-octave buckets are ~19% wide; allow that resolution.
    EXPECT_NEAR(snapshot.quantile(0.5), 500.0, 500.0 * 0.2);
    EXPECT_NEAR(snapshot.quantile(0.99), 990.0, 990.0 * 0.2);
    EXPECT_EQ(snapshot.quantile(1.0), 1000.0);
}

TEST(HistogramSnapshot, MergeEqualsRecordingEverythingInOne)
{
    Histogram left, right, all;
    for (int i = 1; i <= 500; ++i) {
        left.record(static_cast<double>(i));
        all.record(static_cast<double>(i));
    }
    for (int i = 501; i <= 1000; ++i) {
        right.record(static_cast<double>(i * 3));
        all.record(static_cast<double>(i * 3));
    }
    HistogramSnapshot merged = left.snapshot();
    merged.merge(right.snapshot());
    const HistogramSnapshot reference = all.snapshot();
    EXPECT_EQ(merged.count, reference.count);
    EXPECT_EQ(merged.counts, reference.counts);
    EXPECT_DOUBLE_EQ(merged.sum, reference.sum);
    EXPECT_EQ(merged.max, reference.max);
    EXPECT_EQ(merged.quantile(0.99), reference.quantile(0.99));
}

TEST(MetricsRegistry, HandlesAreStable)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("eie_test_total");
    Counter &b = registry.counter("eie_test_total");
    EXPECT_EQ(&a, &b);
    a.add(3);
    b.add();
    EXPECT_EQ(a.value(), 4u);

    Gauge &g = registry.gauge("eie_test_depth");
    g.set(7.5);
    EXPECT_EQ(&g, &registry.gauge("eie_test_depth"));
    EXPECT_EQ(registry.gauge("eie_test_depth").value(), 7.5);

    Histogram &h = registry.histogram("eie_test_us");
    EXPECT_EQ(&h, &registry.histogram("eie_test_us"));
}

TEST(MetricsRegistry, TextExposition)
{
    MetricsRegistry registry;
    registry.counter("eie_requests_total").add(5);
    registry.gauge("eie_queue_depth").set(2);
    registry.histogram("eie_latency_us").record(100.0);

    const std::string text = registry.renderText();
    EXPECT_NE(text.find("# TYPE eie_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("eie_requests_total 5"), std::string::npos);
    EXPECT_NE(text.find("eie_queue_depth 2"), std::string::npos);
    EXPECT_NE(text.find("eie_latency_us{quantile=\"0.999\"}"),
              std::string::npos);
    EXPECT_NE(text.find("eie_latency_us_count 1"),
              std::string::npos);
}

TEST(MetricsRegistry, JsonExpositionParses)
{
    MetricsRegistry registry;
    registry.counter("eie_requests_total").add(9);
    registry.histogram("eie_latency_us").record(50.0);

    const JsonValue root = parseJson(registry.renderJson());
    ASSERT_TRUE(root.isObject());
    const JsonValue *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->numberOr("eie_requests_total", -1.0), 9.0);
    const JsonValue *histograms = root.find("histograms");
    ASSERT_NE(histograms, nullptr);
    const JsonValue *latency = histograms->find("eie_latency_us");
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->numberOr("count", -1.0), 1.0);
    EXPECT_EQ(latency->numberOr("p50", -1.0), 50.0);
    EXPECT_EQ(latency->numberOr("max", -1.0), 50.0);
}

TEST(MetricsRegistry, ConcurrentRecordingIsExact)
{
    // Counters and histogram counts are atomics: under concurrent
    // recorders nothing may be lost (and TSan must stay quiet).
    MetricsRegistry registry;
    Counter &counter = registry.counter("eie_concurrent_total");
    Histogram &histogram = registry.histogram("eie_concurrent_us");

    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.add();
                histogram.record(static_cast<double>(t * 100 + 1));
            }
        });
    }
    // Concurrent readers race the writers by design.
    const std::string text = registry.renderText();
    EXPECT_FALSE(text.empty());
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(histogram.snapshot().count,
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ProcessRegistry, IsASingleton)
{
    EXPECT_EQ(&processRegistry(), &processRegistry());
}

} // namespace
} // namespace eie::obs
