/**
 * @file
 * Golden-schema pin over the telemetry JSON surfaces. Dashboards
 * (eie_top), --stats-json scripting and the Prometheus-ish JSON
 * exposition all key into these documents, so renaming or dropping a
 * field is a breaking change this suite makes loud: it compares the
 * exact key set of every object level against a checked-in golden
 * list.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "client/client.hh"
#include "helpers.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "serve/cluster.hh"
#include "serve/registry.hh"

namespace {

using namespace eie;
namespace fs = std::filesystem;

fs::path
scratchDir(const char *tag)
{
    static int counter = 0;
    return fs::temp_directory_path() /
        ("eie_schema_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter++));
}

void
expectKeys(const obs::JsonValue &object,
           std::vector<std::string> golden, const char *what)
{
    ASSERT_TRUE(object.isObject()) << what;
    std::sort(golden.begin(), golden.end());
    EXPECT_EQ(object.keys(), golden) << what;
}

TEST(StatsSchema, ClusterStatsJsonKeySetIsPinned)
{
    const fs::path dir = scratchDir("cluster");
    core::EieConfig config;
    config.n_pe = 4;
    serve::ModelRegistry registry(dir.string(), config);
    registry.publish(
        "fc", 1,
        test::randomCompressedLayer(96, 64, 0.25, 4, 31).storage());

    serve::ClusterOptions options;
    options.shards = 2;
    serve::ServingDirectory directory(registry, options);
    std::string error;
    serve::ClusterEngine *cluster =
        directory.cluster("fc", 0, error);
    ASSERT_NE(cluster, nullptr) << error;
    // One request so layer dispatch stats exist, not just zeros.
    cluster->infer(std::vector<std::int64_t>(64, 1));

    const obs::JsonValue root =
        obs::parseJson(directory.statsJson());
    expectKeys(root, {"clusters"}, "statsJson root");
    const obs::JsonValue &clusters = *root.find("clusters");
    ASSERT_TRUE(clusters.isArray());
    ASSERT_EQ(clusters.array.size(), 1u);

    const obs::JsonValue &entry = clusters.array[0];
    expectKeys(entry,
               {"model", "version", "placement", "backend", "kernel",
                "residency", "shards", "requests",
                "dropped_deadline", "failed", "requests_shed",
                "failovers", "shards_ejected", "mean_batch",
                "p50_latency_us", "p95_latency_us", "p99_latency_us",
                "p999_latency_us", "layers", "shard_stats"},
               "cluster entry");

    const obs::JsonValue &layers = *entry.find("layers");
    ASSERT_TRUE(layers.isArray());
    ASSERT_FALSE(layers.array.empty());
    expectKeys(layers.array[0],
               {"layer", "kernel", "act_density",
                "mean_act_density", "sweeps", "residency",
                "decoded_bytes", "compressed_bytes", "decode_us"},
               "layer entry");

    const obs::JsonValue &shards = *entry.find("shard_stats");
    ASSERT_TRUE(shards.isArray());
    ASSERT_EQ(shards.array.size(), 2u);
    expectKeys(shards.array[0],
               {"requests", "queue_depth", "utilization", "shed",
                "forming_delay_us", "health", "failures",
                "col_begin", "col_end"},
               "shard entry");

    directory.stopAll();
    fs::remove_all(dir);
}

TEST(StatsSchema, MetricsRegistryJsonKeySetIsPinned)
{
    obs::MetricsRegistry registry;
    registry.counter("eie_schema_total").add(2);
    registry.gauge("eie_schema_depth").set(1.0);
    registry.histogram("eie_schema_us").record(10.0);

    const obs::JsonValue root =
        obs::parseJson(registry.renderJson());
    expectKeys(root, {"counters", "gauges", "histograms"},
               "metrics root");
    expectKeys(*root.find("counters"), {"eie_schema_total"},
               "counters");
    expectKeys(*root.find("gauges"), {"eie_schema_depth"}, "gauges");
    const obs::JsonValue &histograms = *root.find("histograms");
    expectKeys(histograms, {"eie_schema_us"}, "histograms");
    // The exposition must carry the full percentile curve:
    // p50/p95/p99/p99.9 plus count/mean/max.
    expectKeys(*histograms.find("eie_schema_us"),
               {"count", "mean", "p50", "p95", "p99", "p999", "max"},
               "histogram summary");
}

TEST(StatsSchema, LocalEndpointStatsJsonKeySetIsPinned)
{
    const fs::path dir = scratchDir("local");
    core::EieConfig config;
    config.n_pe = 4;
    serve::ModelRegistry registry(dir.string(), config);
    registry.publish(
        "fc", 1,
        test::randomCompressedLayer(96, 64, 0.25, 4, 32).storage());

    client::ClientOptions options;
    options.config = config;
    auto client = client::Client::connectOrDie(
        "local:compiled,dir=" + dir.string(), options);
    ASSERT_TRUE(client
                    ->inferRaw("fc",
                               std::vector<std::int64_t>(64, 1))
                    .ok());

    client::EndpointStats stats;
    ASSERT_TRUE(client->stats(stats).ok());
    // The structured fields expose the same percentile curve as the
    // JSON document.
    EXPECT_GE(stats.p999_latency_us, stats.p50_latency_us);

    const obs::JsonValue root = obs::parseJson(stats.json);
    expectKeys(root, {"models"}, "local stats root");
    const obs::JsonValue &models = *root.find("models");
    ASSERT_TRUE(models.isArray());
    ASSERT_EQ(models.array.size(), 1u);
    expectKeys(models.array[0],
               {"model", "requests", "requests_shed", "mean_batch",
                "p50_latency_us", "p95_latency_us", "p99_latency_us",
                "p999_latency_us", "forming_delay_us", "layers"},
               "local model entry");
    const obs::JsonValue &layers = *models.array[0].find("layers");
    ASSERT_TRUE(layers.isArray());
    ASSERT_FALSE(layers.array.empty());
    expectKeys(layers.array[0],
               {"layer", "kernel", "act_density",
                "mean_act_density", "residency", "decoded_bytes",
                "compressed_bytes", "decode_us"},
               "local layer entry");

    client->close();
    fs::remove_all(dir);
}

} // namespace
