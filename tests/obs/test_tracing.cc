/**
 * @file
 * Per-request tracing: SpanRing semantics (untraced drops, bounded
 * wrap, snapshot order), the chrome://tracing renderer, and the
 * acceptance contract of the telemetry PR — one request driven
 * through Client → tcp wire → cluster → kernel whose trace dump
 * contains the enqueue / batch_form / kernel_run / reply spans (plus
 * the cluster-side shard_submit / gather) under one consistent
 * trace id.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "client/client.hh"
#include "helpers.hh"
#include "obs/json.hh"
#include "obs/trace.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"

namespace {

using namespace eie;
namespace fs = std::filesystem;

fs::path
scratchDir(const char *tag)
{
    static int counter = 0;
    return fs::temp_directory_path() /
        ("eie_tracing_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter++));
}

TEST(TraceIds, NonzeroAndDistinct)
{
    const std::uint64_t a = obs::nextTraceId();
    const std::uint64_t b = obs::nextTraceId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

TEST(SpanRing, UntracedSpansRecordNothing)
{
    obs::SpanRing ring(8);
    ring.record(0, "enqueue", "server", 1.0, 2.0);
    obs::Span span; // default trace_id == 0
    span.name = "kernel_run";
    ring.record(span);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(SpanRing, BoundedAndOldestFirstAfterWrap)
{
    obs::SpanRing ring(4);
    for (std::uint64_t i = 1; i <= 6; ++i)
        ring.record(i, "span" + std::to_string(i), "test",
                    static_cast<double>(i), static_cast<double>(i));
    EXPECT_EQ(ring.size(), 4u);
    const std::vector<obs::Span> spans = ring.snapshot();
    ASSERT_EQ(spans.size(), 4u);
    // 1 and 2 were overwritten; the survivors come oldest first.
    EXPECT_EQ(spans.front().trace_id, 3u);
    EXPECT_EQ(spans.back().trace_id, 6u);

    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(SpanRing, ConvenienceRecordClampsNegativeDurations)
{
    obs::SpanRing ring(4);
    ring.record(7, "reply", "server", 10.0, 4.0, "batch=2");
    const std::vector<obs::Span> spans = ring.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].dur_us, 0.0);
    EXPECT_EQ(spans[0].arg, "batch=2");
    EXPECT_NE(spans[0].tid, 0u); // filled from the recording thread
}

TEST(ChromeTrace, RendersCompleteEventsWithTraceIdArgs)
{
    obs::SpanRing ring(4);
    ring.record(42, "kernel_run", "server", 5.0, 9.0, "batch=3");
    const std::string json = obs::renderChromeTrace(ring.snapshot());

    const obs::JsonValue root = obs::parseJson(json);
    const obs::JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->array.size(), 1u);
    const obs::JsonValue &event = events->array[0];
    EXPECT_EQ(event.stringOr("name", ""), "kernel_run");
    EXPECT_EQ(event.stringOr("cat", ""), "server");
    EXPECT_EQ(event.stringOr("ph", ""), "X");
    EXPECT_EQ(event.numberOr("ts", -1.0), 5.0);
    EXPECT_EQ(event.numberOr("dur", -1.0), 4.0);
    const obs::JsonValue *args = event.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->numberOr("trace_id", -1.0), 42.0);
    EXPECT_EQ(args->stringOr("detail", ""), "batch=3");
}

TEST(ChromeTrace, EmptyRingRendersAnEmptyEventArray)
{
    const obs::JsonValue root =
        obs::parseJson(obs::renderChromeTrace({}));
    const obs::JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_TRUE(events->isArray());
    EXPECT_TRUE(events->array.empty());
}

/** Span names recorded for @p trace_id in @p dump (a chrome trace
 *  document), with every span's trace_id arg checked for presence. */
std::set<std::string>
spanNamesFor(const std::string &dump, std::uint64_t trace_id)
{
    const obs::JsonValue root = obs::parseJson(dump);
    const obs::JsonValue *events = root.find("traceEvents");
    std::set<std::string> names;
    if (events == nullptr || !events->isArray())
        return names;
    for (const obs::JsonValue &event : events->array) {
        const obs::JsonValue *args = event.find("args");
        if (args == nullptr)
            continue;
        if (args->numberOr("trace_id", 0.0) !=
            static_cast<double>(trace_id))
            continue;
        names.insert(event.stringOr("name", ""));
    }
    return names;
}

/**
 * The PR's acceptance test: one request through
 * Client → tcp → cluster → kernel, then traceDump() must show the
 * whole pipeline under the request's single trace id.
 */
TEST(EndToEnd, TcpRequestLeavesOneConsistentTraceTimeline)
{
    const fs::path dir = scratchDir("e2e");
    core::EieConfig config;
    config.n_pe = 4;

    serve::ModelRegistry registry(dir.string(), config);
    const compress::CompressedLayer layer =
        test::randomCompressedLayer(96, 64, 0.25, 4, 1234);
    registry.publish("fc", 1, layer.storage());

    serve::ClusterOptions cluster;
    cluster.shards = 2;
    // Column-partitioned placement exercises the scatter/gather spans
    // on top of the per-shard server pipeline.
    cluster.placement = serve::Placement::ColumnPartitioned;
    serve::ServingDirectory directory(registry, cluster);
    serve::TcpServer server(directory);
    server.start();

    obs::processTraceRing().clear();

    client::ClientOptions client_options;
    client_options.config = config;
    auto client = client::Client::connectOrDie(
        "tcp://127.0.0.1:" + std::to_string(server.port()),
        client_options);
    const client::InferenceResult result = client->inferRaw(
        "fc", std::vector<std::int64_t>(64, 1));
    ASSERT_TRUE(result.ok()) << result.status.toString();
    ASSERT_EQ(result.trace_ids.size(), 1u);
    const std::uint64_t trace_id = result.trace_ids[0];
    EXPECT_NE(trace_id, 0u);

    std::string dump;
    const client::Status status = client->traceDump(dump);
    ASSERT_TRUE(status.ok()) << status.toString();

    const std::set<std::string> names = spanNamesFor(dump, trace_id);
    for (const char *required :
         {"enqueue", "batch_form", "kernel_run", "reply",
          "shard_submit", "gather"})
        EXPECT_TRUE(names.count(required))
            << "missing span '" << required << "' for trace id "
            << trace_id << " in: " << dump;

    client->close();
    server.stop();
    directory.stopAll();
    fs::remove_all(dir);
}

/** Streaming sessions get one trace id per step, and each step's
 *  pipeline spans land in the ring under that id. */
TEST(EndToEnd, SessionStepsCarryPerStepTraceIds)
{
    const fs::path dir = scratchDir("session");
    core::EieConfig config;
    config.n_pe = 4;

    serve::ModelRegistry registry(dir.string(), config);
    // Packed-gate LSTM shape: (4H) x (X + H + 1) with H=8, X=8.
    const compress::CompressedLayer lstm =
        test::randomCompressedLayer(32, 17, 0.3, 4, 77);
    registry.publish("lstm", 1, lstm.storage());

    serve::ClusterOptions cluster;
    cluster.shards = 1;
    serve::ServingDirectory directory(registry, cluster);
    serve::TcpServer server(directory);
    server.start();

    obs::processTraceRing().clear();

    client::ClientOptions client_options;
    client_options.config = config;
    auto client = client::Client::connectOrDie(
        "tcp://127.0.0.1:" + std::to_string(server.port()),
        client_options);
    client::Status status;
    auto session = client->openSession("lstm", 0, status);
    ASSERT_NE(session, nullptr) << status.toString();

    const nn::Vector x(8, 0.25f);
    const client::Session::StepResult first = session->step(x);
    ASSERT_TRUE(first.ok()) << first.status.toString();
    const client::Session::StepResult second = session->step(x);
    ASSERT_TRUE(second.ok()) << second.status.toString();

    EXPECT_NE(first.trace_id, 0u);
    EXPECT_NE(second.trace_id, 0u);
    EXPECT_NE(first.trace_id, second.trace_id);

    std::string dump;
    ASSERT_TRUE(client->traceDump(dump).ok());
    for (const std::uint64_t id :
         {first.trace_id, second.trace_id}) {
        const std::set<std::string> names = spanNamesFor(dump, id);
        EXPECT_TRUE(names.count("kernel_run"))
            << "step trace " << id << " missing kernel_run in: "
            << dump;
        EXPECT_TRUE(names.count("reply"));
    }

    session->close();
    client->close();
    server.stop();
    directory.stopAll();
    fs::remove_all(dir);
}

} // namespace
