/**
 * @file
 * The paper's object-detection motivation (§II): "In object detection
 * algorithms, an FC layer is required to run multiple times on all
 * proposal regions, taking up to 38% computation time" — and because
 * each region's feature vector arrives on its own, batching them adds
 * latency a real-time detector cannot afford.
 *
 * This example runs the VGG-16 FC6+FC7 stack (the Fast R-CNN head)
 * over a stream of proposal-region features on a 64-PE EIE, one
 * region at a time, and reports per-region latency, aggregate
 * throughput and how the dynamic activation sparsity of each region
 * changes the work (regions with sparser features finish faster —
 * something a dense engine cannot exploit).
 */

#include <iostream>

#include "common/random.hh"
#include "common/table.hh"
#include "core/network_runner.hh"
#include "energy/pe_model.hh"
#include "nn/generate.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner suite;
    core::EieConfig config; // 64 PE @ 800 MHz

    // The Fast R-CNN head: VGG FC6 (25088 -> 4096) + FC7 (4096 ->
    // 4096), compressed per Table III.
    core::NetworkRunner head(config);
    head.addLayer(suite.layer(workloads::findBenchmark("VGG-6")),
                  nn::Nonlinearity::ReLU);
    head.addLayer(suite.layer(workloads::findBenchmark("VGG-7")),
                  nn::Nonlinearity::ReLU);

    // Proposal regions with varying feature sparsity: background-ish
    // regions activate fewer RoI-pooled features than object-ish ones.
    const int regions = 8;
    Rng rng(1234);

    TextTable table({"region", "act density", "cycles", "us/region",
                     "entries walked"});

    double total_us = 0.0;
    std::uint64_t total_cycles = 0;
    for (int r = 0; r < regions; ++r) {
        const double density = 0.08 + 0.03 * r; // 8% .. 29%
        const auto features =
            nn::makeActivations(25088, density, rng);

        core::NetworkResult result;
        head.runFloat(features, &result);

        std::uint64_t entries = 0;
        for (const auto &layer_stats : result.per_layer)
            entries += layer_stats.total_entries;

        table.row()
            .add(static_cast<std::uint64_t>(r))
            .addPercent(density)
            .add(result.totalCycles())
            .add(result.totalTimeUs(), 2)
            .add(entries);
        total_us += result.totalTimeUs();
        total_cycles += result.totalCycles();
    }

    std::cout << "=== Fast R-CNN head (VGG FC6+FC7) over proposal "
                 "regions, 64-PE EIE ===\n";
    table.print(std::cout);

    std::cout << "\n" << regions << " regions in " << total_us
              << " us (" << 1e6 / (total_us / regions)
              << " regions/s) with batch size 1 — no batching "
                 "latency, and sparser regions finish faster "
                 "(dynamic activation sparsity).\n";
    std::cout << "For comparison, the paper's Table IV batch-1 VGG-6 "
                 "alone costs 35,022 us on the CPU and 1,467 us on "
                 "the Titan X.\n";
    return 0;
}
