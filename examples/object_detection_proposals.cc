/**
 * @file
 * The paper's object-detection motivation (§II): "In object detection
 * algorithms, an FC layer is required to run multiple times on all
 * proposal regions, taking up to 38% computation time" — and because
 * each region's feature vector arrives on its own, batching them adds
 * latency a real-time detector cannot afford.
 *
 * This example runs the VGG-16 FC6+FC7 stack (the Fast R-CNN head)
 * over a stream of proposal-region features on a 64-PE EIE through
 * the unified backend API: the cycle-accurate "sim" backend reports
 * per-region latency and how each region's dynamic activation
 * sparsity changes the work (sparser regions finish faster —
 * something a dense engine cannot exploit). The same stack is then
 * put behind the typed eie::client API (a `local:compiled` endpoint
 * over an in-memory model) to show the serving path a detector would
 * actually deploy: concurrent region submissions, micro-batched onto
 * the compiled kernels, bit-exact with the simulator — and one
 * endpoint-string edit away from a sharded cluster or a remote
 * daemon.
 */

#include <future>
#include <iostream>
#include <vector>

#include "client/client.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/network_runner.hh"
#include "energy/pe_model.hh"
#include "engine/backend.hh"
#include "nn/generate.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner suite;
    core::EieConfig config; // 64 PE @ 800 MHz

    // The Fast R-CNN head: VGG FC6 (25088 -> 4096) + FC7 (4096 ->
    // 4096), compressed per Table III.
    core::NetworkRunner head(config);
    head.addLayer(suite.layer(workloads::findBenchmark("VGG-6")),
                  nn::Nonlinearity::ReLU);
    head.addLayer(suite.layer(workloads::findBenchmark("VGG-7")),
                  nn::Nonlinearity::ReLU);

    // Proposal regions with varying feature sparsity: background-ish
    // regions activate fewer RoI-pooled features than object-ish ones.
    const int regions = 8;
    Rng rng(1234);
    const core::FunctionalModel model(config);
    std::vector<std::vector<std::int64_t>> region_inputs;
    for (int r = 0; r < regions; ++r) {
        const double density = 0.08 + 0.03 * r; // 8% .. 29%
        region_inputs.push_back(model.quantizeInput(
            nn::makeActivations(25088, density, rng)));
    }

    // Phase 1: the cycle-accurate backend, one region at a time —
    // the paper's latency story.
    const engine::ExecutionBackend &sim = head.backend("sim");
    const engine::RunReport timed = sim.runBatch(region_inputs);

    TextTable table({"region", "act density", "cycles", "us/region",
                     "entries walked"});
    double total_us = 0.0;
    for (int r = 0; r < regions; ++r) {
        std::uint64_t cycles = 0;
        std::uint64_t entries = 0;
        double us = 0.0;
        for (const auto &layer_stats : timed.stats[r]) {
            cycles += layer_stats.cycles;
            entries += layer_stats.total_entries;
            us += layer_stats.timeUs();
        }
        table.row()
            .add(static_cast<std::uint64_t>(r))
            .addPercent(0.08 + 0.03 * r)
            .add(cycles)
            .add(us, 2)
            .add(entries);
        total_us += us;
    }

    std::cout << "=== Fast R-CNN head (VGG FC6+FC7) over proposal "
                 "regions, 64-PE EIE ===\n";
    table.print(std::cout);

    std::cout << "\n" << regions << " regions in " << total_us
              << " us (" << 1e6 / (total_us / regions)
              << " regions/s) with batch size 1 — no batching "
                 "latency, and sparser regions finish faster "
                 "(dynamic activation sparsity).\n";
    std::cout << "For comparison, the paper's Table IV batch-1 VGG-6 "
                 "alone costs 35,022 us on the CPU and 1,467 us on "
                 "the Titan X.\n";

    // Phase 2: the serving path — the FC6+FC7 stack registered as an
    // in-memory model behind the typed client, every region
    // submitted concurrently through one `local:compiled` endpoint,
    // micro-batched, and verified bit-exact against the simulator's
    // outputs. Swapping this endpoint string for "cluster:<dir>" or
    // "tcp://host:port" deploys the identical caller code.
    client::ClientOptions options;
    options.config = config;
    options.server.max_batch = 4;
    options.server.max_delay = std::chrono::microseconds(500);
    options.models.push_back(client::LocalModel{
        "rcnn-head", {&head.plan(0), &head.plan(1)}});
    const auto client =
        client::Client::connectOrDie("local:compiled", options);

    std::vector<std::future<client::InferenceResult>> futures;
    for (const auto &input : region_inputs) {
        client::InferenceRequest request;
        request.model = "rcnn-head";
        request.fixed.push_back(input);
        futures.push_back(client->submit(std::move(request)));
    }
    bool exact = true;
    for (int r = 0; r < regions; ++r) {
        client::InferenceResult result = futures[r].get();
        if (!result.ok()) {
            std::cout << "region " << r << " failed: "
                      << result.status.toString() << "\n";
            return 1;
        }
        exact &= result.outputs.front() == timed.outputs[r];
    }

    client::EndpointStats stats;
    if (!client->stats(stats).ok())
        return 1;
    std::cout << "\nserved the same " << stats.requests
              << " regions through endpoint '" << client->endpoint()
              << "': mean batch " << stats.mean_batch
              << ", p99 latency " << stats.p99_latency_us
              << " us host wall clock, "
              << (exact ? "bit-exact with the simulator"
                        : "MISMATCH")
              << "\n";
    return exact ? 0 : 1;
}
