/**
 * @file
 * Quickstart: the paper's own worked example (Figures 2 and 3) end to
 * end through the public API.
 *
 *  1. Build the 16x8 sparse matrix of Figure 2.
 *  2. Compress it (codebook + interleaved CSC for 4 PEs) and print
 *     PE0's storage image — it matches Figure 3 exactly.
 *  3. Run the sparse activation vector a = (0,0,a2,0,a4,a5,0,a7)
 *     through every execution path via the typed eie::client API:
 *     one in-memory model, three `local:<backend>` endpoint strings
 *     (the scalar interpreter, the compiled kernel and the
 *     cycle-accurate simulator), bit-identical outputs verified
 *     against the float golden model. The same Client code would
 *     reach a sharded in-process cluster (`cluster:<dir>`) or a
 *     remote daemon (`tcp://host:port`) by swapping the endpoint
 *     string — that is the point of the front door.
 *  4. Drop to the engine layer for cycle-accurate timing detail
 *     (RunStats), which the serving API deliberately does not carry.
 */

#include <cstdio>
#include <iostream>

#include "client/client.hh"
#include "common/table.hh"
#include "compress/compressed_layer.hh"
#include "core/functional.hh"
#include "core/plan.hh"
#include "engine/backend.hh"
#include "nn/sparse.hh"
#include "nn/tensor.hh"

int
main()
{
    using namespace eie;

    // --- 1. The Figure 2 matrix -------------------------------------
    // (row, col) positions of the non-zeros; values cycle through a
    // small set so the 16-entry codebook is exact.
    const std::vector<std::pair<int, int>> pattern = {
        {0, 0}, {0, 2}, {0, 4}, {0, 5}, {0, 6}, {1, 1}, {1, 3},
        {1, 6}, {2, 2}, {2, 4}, {2, 7}, {3, 1}, {3, 5}, {4, 1},
        {4, 4}, {5, 3}, {5, 7}, {6, 4}, {6, 6}, {7, 0}, {7, 4},
        {7, 7}, {8, 0}, {8, 7}, {9, 0}, {9, 6}, {9, 7}, {10, 4},
        {11, 2}, {11, 7}, {12, 0}, {12, 2}, {12, 5}, {12, 7},
        {13, 0}, {13, 2}, {13, 6}, {14, 2}, {14, 3}, {14, 4},
        {14, 5}, {15, 2}, {15, 3}, {15, 5},
    };
    nn::SparseMatrix w(16, 8);
    for (std::size_t j = 0; j < 8; ++j)
        for (const auto &[r, c] : pattern)
            if (static_cast<std::size_t>(c) == j)
                w.insert(static_cast<std::size_t>(r), j,
                         0.25f * static_cast<float>(1 + (r + c) % 15) -
                             2.0f);

    std::cout << "Figure 2 matrix: " << w.rows() << "x" << w.cols()
              << ", " << w.nnz() << " non-zeros (density "
              << w.density() << ")\n\n";

    // --- 2. Compress for 4 PEs --------------------------------------
    compress::CompressionOptions copts;
    copts.interleave.n_pe = 4;
    const auto layer =
        compress::CompressedLayer::compress("fig2", w, copts);

    const auto &pe0 = layer.storage().pe(0);
    std::cout << "PE0 storage (compare with Figure 3):\n  virtual "
                 "weights (codebook values): ";
    for (const auto &e : pe0.entries())
        std::printf("%.2f ", static_cast<double>(
                                 layer.codebook().decode(
                                     e.weight_index)));
    std::cout << "\n  relative row index: ";
    for (const auto &e : pe0.entries())
        std::printf("%u ", e.zero_count);
    std::cout << "\n  column pointer:     ";
    for (auto p : pe0.colPtr())
        std::printf("%u ", p);
    std::cout << "\n\n";

    // --- 3. Run a = (0, 0, a2, 0, a4, a5, 0, a7) --------------------
    const nn::Vector a{0.0f, 0.0f, 1.5f, 0.0f, -0.75f,
                       2.0f, 0.0f, 0.5f};

    core::EieConfig config;
    config.n_pe = 4;
    const auto plan =
        core::planLayer(layer, nn::Nonlinearity::ReLU, config);

    // One network, three interchangeable execution paths — each an
    // endpoint string through the one typed client API. The plan is
    // registered as an in-memory model; a production caller would
    // point the same code at "cluster:<dir>" or "tcp://host:port".
    client::ClientOptions options;
    options.config = config;
    options.models.push_back(client::LocalModel{"fig2", {&plan}});

    std::vector<std::int64_t> reference;
    bool bit_exact = true;
    for (const std::string &backend : engine::backendNames()) {
        const auto client =
            client::Client::connectOrDie("local:" + backend, options);
        const client::InferenceResult result =
            client->inferFloat("fig2", a);
        if (!result.ok()) {
            std::cout << "endpoint '" << client->endpoint()
                      << "' failed: " << result.status.toString()
                      << "\n";
            return 1;
        }
        if (reference.empty())
            reference = result.outputs.front();
        const bool matches = result.outputs.front() == reference;
        bit_exact &= matches;
        std::cout << "endpoint '" << client->endpoint() << "': "
                  << (matches ? "bit-exact" : "MISMATCH") << "\n";
    }

    const core::FunctionalModel functional(config);
    const nn::Vector b_eie = functional.dequantize(reference);
    const nn::Vector b_float = nn::relu(layer.quantizedWeights().spmv(a));

    TextTable table({"row", "EIE b (all endpoints)", "float golden"});
    for (std::size_t i = 0; i < b_eie.size(); ++i)
        table.row().add(static_cast<std::uint64_t>(i))
            .add(b_eie[i], 4).add(b_float[i], 4);
    table.print(std::cout);

    // --- 4. Timing detail below the client API ----------------------
    // The serving surface carries outputs and Status only; for
    // cycle-level analyses, drive the "sim" backend directly.
    const auto sim = engine::makeBackend("sim", config, {&plan});
    const engine::RunReport report =
        sim->run(functional.quantizeInput(a));
    const core::RunStats &stats = report.stats[0][0];
    std::cout << "\nbroadcasts (non-zero activations): "
              << stats.broadcasts << " of " << a.size()
              << " inputs; cycles: " << stats.cycles
              << "; load balance: " << stats.loadBalance() << "\n";
    return bit_exact ? 0 : 1;
}
