/**
 * @file
 * The paper's headline scenario: the fully-connected classifier of
 * AlexNet (FC6 -> FC7 -> FC8) running end to end on one 64-PE EIE.
 *
 * Layers are the synthetic Table III instantiations (published shapes
 * and densities). Between layers the destination/source register
 * files swap roles (ping-pong, §IV "Activation Read/Write"), so the
 * chain needs no host round-trips: the quantised output of one layer
 * is fed directly as the next layer's input. The example reports
 * per-layer cycles and the end-to-end frames/s against the paper's
 * 1.88e4 frames/s at ~600 mW.
 */

#include <iostream>

#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/functional.hh"
#include "energy/pe_model.hh"
#include "nn/tensor.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    core::EieConfig config; // 64 PE @ 800 MHz

    const core::Accelerator accel(config);
    const core::FunctionalModel functional(config);

    // The pipeline input: FC6's activation vector from the suite.
    const auto &fc6 = workloads::findBenchmark("Alex-6");
    std::vector<std::int64_t> act =
        functional.quantizeInput(runner.input(fc6));

    TextTable table({"Layer", "Shape", "Cycles", "Time (us)",
                     "Entries", "Load balance", "Out density"});

    double total_us = 0.0;
    double total_power_w = 0.0;
    int layers_run = 0;
    for (const char *name : {"Alex-6", "Alex-7", "Alex-8"}) {
        const auto &bench = workloads::findBenchmark(name);
        const auto plan = runner.plan(bench, config);

        // The final layer feeds a softmax on the host; no ReLU.
        const auto result = accel.run(plan, act);

        std::size_t nnz_out = 0;
        for (auto v : result.output_raw)
            if (v != 0)
                ++nnz_out;

        char shape[64];
        std::snprintf(shape, sizeof(shape), "%zux%zu", bench.output,
                      bench.input);
        table.row()
            .add(name)
            .add(shape)
            .add(result.stats.cycles)
            .add(result.stats.timeUs(), 2)
            .add(result.stats.total_entries)
            .addPercent(result.stats.loadBalance())
            .addPercent(static_cast<double>(nnz_out) /
                        static_cast<double>(result.output_raw.size()));

        total_us += result.stats.timeUs();
        total_power_w += energy::acceleratorPowerWatts(
            config, energy::PeActivity::fromRun(result.stats));
        ++layers_run;

        // Ping-pong: this layer's outputs are the next layer's
        // source activations, no data movement needed.
        act = result.output_raw;
    }

    std::cout << "=== AlexNet FC6->FC7->FC8 on a 64-PE EIE ===\n";
    table.print(std::cout);

    const double frames_per_s = 1e6 / total_us;
    std::cout << "\nEnd-to-end: " << total_us << " us/frame = "
              << frames_per_s << " frames/s (paper: 1.88e4 frames/s "
              << "for the FC layers)\n";
    std::cout << "Mean accelerator power across layers: "
              << 1000.0 * total_power_w / layers_run
              << " mW (paper: ~590-600 mW)\n";

    // Top-5 "classes" of the synthetic classifier, for flavour.
    const nn::Vector logits = functional.dequantize(act);
    std::cout << "top-1 class of the synthetic classifier: "
              << nn::argmax(logits) << " of " << logits.size() << "\n";
    return 0;
}
