/**
 * @file
 * §VII-C flexibility demo: 3x3 Winograd convolution (F(2x2,3x3)) and
 * 1x1 convolution lowered onto EIE M×V.
 *
 * A small conv layer (8 -> 16 channels, 10x10 input) runs three ways:
 * direct 3x3 convolution (reference), the Winograd decomposition in
 * float, and the Winograd decomposition with all 16 per-position
 * channel-reduction M×Vs executed on the cycle-accurate accelerator.
 * A 1x1 convolution then runs per-pixel on the accelerator.
 */

#include <cmath>
#include <iostream>

#include "common/random.hh"
#include "compress/compressed_layer.hh"
#include "core/config.hh"
#include "core/ext/conv1x1.hh"
#include "core/ext/winograd.hh"
#include "nn/generate.hh"

namespace {

using namespace eie;
using namespace eie::core::ext;

double
maxAbsDiff(const FeatureMap &a, const FeatureMap &b)
{
    double max_diff = 0.0;
    for (std::size_t c = 0; c < a.channels(); ++c)
        for (std::size_t y = 0; y < a.height(); ++y)
            for (std::size_t x = 0; x < a.width(); ++x)
                max_diff = std::max(
                    max_diff, std::abs(static_cast<double>(
                                  a.at(c, y, x) - b.at(c, y, x))));
    return max_diff;
}

} // namespace

int
main()
{
    Rng rng(99);

    // --- Winograd 3x3 -----------------------------------------------
    const std::size_t cin = 8, cout = 16;
    Conv3x3Kernels kernels(cout, cin);
    for (std::size_t co = 0; co < cout; ++co)
        for (std::size_t ci = 0; ci < cin; ++ci)
            for (std::size_t ky = 0; ky < 3; ++ky)
                for (std::size_t kx = 0; kx < 3; ++kx)
                    if (rng.bernoulli(0.6)) // pruned kernels
                        kernels.at(co, ci, ky, kx) =
                            static_cast<float>(rng.normal(0.0, 0.3));

    FeatureMap input(cin, 10, 10);
    for (std::size_t c = 0; c < cin; ++c)
        for (std::size_t y = 0; y < 10; ++y)
            for (std::size_t x = 0; x < 10; ++x)
                if (rng.bernoulli(0.5)) // post-ReLU sparsity
                    input.at(c, y, x) = static_cast<float>(
                        std::abs(rng.normal(0.0, 1.0)));

    const FeatureMap direct = directConv3x3(kernels, input);

    compress::CompressionOptions copts;
    copts.interleave.n_pe = 8;
    const WinogradConv3x3 winograd(kernels, copts);
    const FeatureMap wino_float = winograd.forward(input);

    core::EieConfig config;
    config.n_pe = 8;
    std::uint64_t wino_cycles = 0;
    const FeatureMap wino_eie =
        winograd.forwardOnEie(input, config, &wino_cycles);

    std::cout << "=== 3x3 Winograd convolution on EIE (F(2x2,3x3)) "
                 "===\n";
    std::cout << "output " << direct.channels() << "x"
              << direct.height() << "x" << direct.width() << "\n";
    std::cout << "max |direct - winograd(float)|  = "
              << maxAbsDiff(direct, wino_float)
              << "  (codebook quantisation only)\n";
    std::cout << "max |winograd(float) - EIE|     = "
              << maxAbsDiff(wino_float, wino_eie)
              << "  (16-bit fixed point)\n";
    std::cout << "multiplication savings vs direct: "
              << WinogradConv3x3::multiplySavings()
              << "x (paper: 2.25x)\n";
    std::cout << "accelerator cycles for all 16 M×V x "
              << (direct.height() / 2) * (direct.width() / 2)
              << " tiles: " << wino_cycles << "\n\n";

    // --- 1x1 convolution --------------------------------------------
    nn::WeightGenOptions gen;
    gen.density = 0.3;
    const auto w1x1 =
        nn::makeSparseWeights(cout, cin, gen, rng);
    const auto layer1x1 =
        compress::CompressedLayer::compress("conv1x1", w1x1, copts);
    const Conv1x1 conv1x1(layer1x1);

    const FeatureMap ref = conv1x1.forward(input);
    core::RunStats stats;
    const FeatureMap eie_out =
        conv1x1.forwardOnEie(input, config, &stats);

    std::cout << "=== 1x1 convolution on EIE ===\n";
    std::cout << "output " << ref.channels() << "x" << ref.height()
              << "x" << ref.width() << "; max |golden - EIE| = "
              << maxAbsDiff(ref, eie_out) << "\n";
    std::cout << "total cycles over " << input.height() * input.width()
              << " per-pixel M×V: " << stats.cycles << " ("
              << stats.timeUs() << " us)\n";
    return 0;
}
