/**
 * @file
 * NeuralTalk-style image captioning on EIE — the paper's RNN/LSTM
 * motivation (§I, §II) made concrete, deployed through the typed
 * client API.
 *
 * The decoder runs the three compressed NT layers of Table III:
 *   We      4096 -> 600   image-feature embedding (runs once),
 *   NT-LSTM 1201 -> 2400  packed gate M×V (runs every step;
 *                          input = [x; h; 1]),
 *   Wd      600 -> 8791   vocabulary logits (runs every step).
 * All three sit behind one eie::client::Client as in-memory models
 * on a `local:compiled` endpoint. The embedding and the logits are
 * plain infer calls; the recurrent layer goes through
 * Client::openSession — a streaming LSTM Session that threads the
 * hidden/cell state across step() calls, packing [x; h; 1],
 * running the M×V on the engine and applying the gate
 * non-linearities on the host, exactly the hardware/host split a
 * real deployment uses (and exactly what the eie_serve daemon does
 * server-side for `tcp://` endpoints). Weights are synthetic, so
 * the "caption" is a sequence of synthetic token ids — the
 * architecture and the serving path are the point.
 */

#include <chrono>
#include <iostream>

#include "client/client.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/plan.hh"
#include "nn/generate.hh"
#include "nn/tensor.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    core::EieConfig config; // 64 PE @ 800 MHz

    const auto &we_bench = workloads::findBenchmark("NT-We");
    const auto &wd_bench = workloads::findBenchmark("NT-Wd");
    const auto &lstm_bench = workloads::findBenchmark("NT-LSTM");

    // Plans: We drains through ReLU; the LSTM gate pre-activations
    // and the vocabulary logits must not be rectified.
    const auto we_plan = runner.plan(we_bench, config);
    const auto lstm_plan = core::planLayer(
        runner.layer(lstm_bench), nn::Nonlinearity::None, config);
    const auto wd_plan = core::planLayer(
        runner.layer(wd_bench), nn::Nonlinearity::None, config);

    // One client, three models, one endpoint string.
    client::ClientOptions options;
    options.config = config;
    options.models.push_back(client::LocalModel{"nt-we", {&we_plan}});
    options.models.push_back(
        client::LocalModel{"nt-lstm", {&lstm_plan}});
    options.models.push_back(client::LocalModel{"nt-wd", {&wd_plan}});
    const auto client =
        client::Client::connectOrDie("local:compiled", options);

    // A synthetic 4096-dim CNN image feature.
    Rng rng(4242);
    const nn::Vector image_feature =
        nn::makeActivations(4096, we_bench.act_density, rng);

    // 1. Image embedding: x0 = We(feature).
    client::InferenceResult we_result =
        client->inferFloat("nt-we", image_feature);
    if (!we_result.ok()) {
        std::cout << "embedding failed: "
                  << we_result.status.toString() << "\n";
        return 1;
    }
    nn::Vector x = std::move(we_result.float_outputs.front());

    // 2. Greedy decode through a streaming LSTM session: the
    // recurrent state lives in the session, not in this loop.
    client::Status status;
    const auto session = client->openSession("nt-lstm", 0, status);
    if (!session) {
        std::cout << "openSession failed: " << status.toString()
                  << "\n";
        return 1;
    }

    const int max_tokens = 8;
    std::vector<std::size_t> caption;
    double total_us = 0.0;

    TextTable table({"step", "LSTM us", "Wd us", "token id"});
    for (int step = 0; step < max_tokens; ++step) {
        // LSTM gate M×V + state update, one session step.
        const auto lstm_start = std::chrono::steady_clock::now();
        const client::Session::StepResult lstm_step =
            session->step(x);
        if (!lstm_step.ok()) {
            std::cout << "step " << step << " failed: "
                      << lstm_step.status.toString() << "\n";
            return 1;
        }
        const double lstm_us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - lstm_start)
                .count();

        // Vocabulary logits on the engine, argmax on the host.
        const auto wd_start = std::chrono::steady_clock::now();
        client::InferenceResult wd_result =
            client->inferFloat("nt-wd", lstm_step.h);
        if (!wd_result.ok()) {
            std::cout << "logits failed: "
                      << wd_result.status.toString() << "\n";
            return 1;
        }
        const double wd_us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - wd_start)
                .count();
        const std::size_t token =
            nn::argmax(wd_result.float_outputs.front());
        caption.push_back(token);
        total_us += lstm_us + wd_us;

        table.row()
            .add(static_cast<std::uint64_t>(step))
            .add(lstm_us, 1)
            .add(wd_us, 1)
            .add(static_cast<std::uint64_t>(token));

        // Next input embedding: a deterministic pseudo-embedding of
        // the sampled token (synthetic vocabulary).
        Rng token_rng(1000 + static_cast<std::uint64_t>(token));
        x = nn::makeActivations(600, 1.0, token_rng, 0.5);
    }

    std::cout << "=== NeuralTalk-style captioning behind endpoint '"
              << client->endpoint() << "' ===\n";
    table.print(std::cout);

    std::cout << "\nsynthetic caption token ids: ";
    for (std::size_t t : caption)
        std::cout << t << " ";
    std::cout << "\ntotal: " << total_us << " us host wall clock for "
              << max_tokens << " decode steps after 1 embedding ("
              << total_us / max_tokens << " us/token; "
              << session->steps()
              << " committed session steps; paper Table IV: NT-We "
                 "8.0us, NT-Wd 13.9us, NT-LSTM 7.5us per M×V on "
                 "the 64-PE ASIC)\n"
              << "The same decode drives a daemon by swapping the "
                 "endpoint for tcp://host:port — the session state "
                 "then lives server-side.\n";
    return 0;
}
