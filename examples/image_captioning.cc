/**
 * @file
 * NeuralTalk-style image captioning on EIE — the paper's RNN/LSTM
 * motivation (§I, §II) made concrete.
 *
 * The decoder runs the three compressed NT layers of Table III:
 *   We      4096 -> 600   image-feature embedding (runs once),
 *   NT-LSTM 1201 -> 2400  packed gate M×V (runs every step;
 *                          input = [x; h; 1]),
 *   Wd      600 -> 8791   vocabulary logits (runs every step).
 * The M×Vs execute on the cycle-accurate 64-PE accelerator; the gate
 * non-linearities and the argmax sampler run on the host, exactly the
 * split a real deployment would use. Weights are synthetic, so the
 * "caption" is a sequence of synthetic token ids — the architecture
 * and the timing are the point.
 */

#include <iostream>

#include "common/random.hh"
#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/functional.hh"
#include "core/plan.hh"
#include "nn/generate.hh"
#include "nn/lstm.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eie;

    workloads::SuiteRunner runner;
    core::EieConfig config; // 64 PE @ 800 MHz
    const core::Accelerator accel(config);
    const core::FunctionalModel functional(config);

    const auto &we_bench = workloads::findBenchmark("NT-We");
    const auto &wd_bench = workloads::findBenchmark("NT-Wd");
    const auto &lstm_bench = workloads::findBenchmark("NT-LSTM");

    // The packed LSTM cell shares the NT-LSTM layer's weights.
    const nn::LstmCell cell(
        runner.layer(lstm_bench).quantizedWeights(), 600, 600);

    // Plans: We runs once; LSTM and Wd run per generated token.
    const auto we_plan = runner.plan(we_bench, config);
    // LSTM pre-activations feed sigmoids/tanh: no ReLU in hardware.
    const auto lstm_plan = core::planLayer(
        runner.layer(lstm_bench), nn::Nonlinearity::None, config);
    const auto wd_plan = core::planLayer(
        runner.layer(wd_bench), nn::Nonlinearity::None, config);

    // A synthetic 4096-dim CNN image feature.
    Rng rng(4242);
    const nn::Vector image_feature =
        nn::makeActivations(4096, we_bench.act_density, rng);

    std::uint64_t total_cycles = 0;

    // 1. Image embedding: x0 = We(feature).
    const auto we_result =
        accel.run(we_plan, functional.quantizeInput(image_feature));
    total_cycles += we_result.stats.cycles;
    nn::Vector x = functional.dequantize(we_result.output_raw);

    // 2. Greedy decode.
    const int max_tokens = 8;
    nn::LstmState state = cell.initialState();
    std::vector<std::size_t> caption;

    TextTable table({"step", "LSTM cycles", "Wd cycles", "token id"});
    for (int step = 0; step < max_tokens; ++step) {
        // LSTM gate M×V on EIE over the packed [x; h; 1] vector.
        const nn::Vector packed = cell.packInput(x, state);
        const auto lstm_result =
            accel.run(lstm_plan, functional.quantizeInput(packed));
        total_cycles += lstm_result.stats.cycles;
        state = cell.applyGates(
            functional.dequantize(lstm_result.output_raw), state);

        // Vocabulary logits on EIE, argmax on the host.
        const auto wd_result =
            accel.run(wd_plan, functional.quantizeInput(state.h));
        total_cycles += wd_result.stats.cycles;
        const nn::Vector logits =
            functional.dequantize(wd_result.output_raw);
        const std::size_t token = nn::argmax(logits);
        caption.push_back(token);

        table.row()
            .add(static_cast<std::uint64_t>(step))
            .add(lstm_result.stats.cycles)
            .add(wd_result.stats.cycles)
            .add(static_cast<std::uint64_t>(token));

        // Next input embedding: a deterministic pseudo-embedding of
        // the sampled token (synthetic vocabulary).
        Rng token_rng(1000 + static_cast<std::uint64_t>(token));
        x = nn::makeActivations(600, 1.0, token_rng, 0.5);
    }

    std::cout << "=== NeuralTalk-style captioning on a 64-PE EIE "
                 "===\n";
    table.print(std::cout);

    std::cout << "\nsynthetic caption token ids: ";
    for (std::size_t t : caption)
        std::cout << t << " ";
    const double total_us =
        static_cast<double>(total_cycles) / (config.clock_ghz * 1e3);
    std::cout << "\ntotal: " << total_cycles << " cycles = "
              << total_us << " us for 1 embedding + " << max_tokens
              << " decode steps ("
              << total_us / max_tokens << " us/token; paper Table IV: "
              << "NT-We 8.0us, NT-Wd 13.9us, NT-LSTM 7.5us per "
                 "M×V)\n";
    return 0;
}
