/**
 * @file
 * eie_gateway — the multi-tenant HTTP front door as a daemon.
 *
 *   eie_gateway --backend ENDPOINT [--port P] [--bind ADDR]
 *               [--tenants FILE] [--pes N] [--duration-s S]
 *
 * --backend takes any client endpoint (client/endpoint.hh grammar):
 * `tcp://HOST:PORT` proxies to a running eie_serve daemon — the
 * production shape — while `cluster:DIR` / `local:...` serve the
 * models in-process behind the same HTTP surface (single-binary
 * deployments, tests).
 *
 * --tenants points at the JSON tenant table (see
 * gateway/tenants.hh for the schema); without it the gateway runs
 * open (no auth, no quotas). SIGHUP re-reads the file without
 * dropping connections or resetting in-flight quotas; a file that
 * fails to parse leaves the previous table in effect and logs the
 * error. SIGINT/SIGTERM exit cleanly with status 0.
 *
 * The gateway serves its own telemetry: GET /metrics (Prometheus
 * plaintext, includes eie_gateway_requests_total and friends) and
 * GET /v1/stats (per-tenant quotas/latency JSON — what `eie_top
 * --gateway` renders).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "client/client.hh"
#include "common/logging.hh"
#include "gateway/gateway.hh"

namespace {

using namespace eie;

std::atomic<bool> g_interrupted{false};
std::atomic<bool> g_reload{false};

void
onSignal(int)
{
    g_interrupted.store(true);
}

void
onReload(int)
{
    g_reload.store(true);
}

void
usage()
{
    std::cout <<
        "eie_gateway — multi-tenant HTTP front door\n"
        "  --backend ENDPOINT    backend to proxy to (required):\n"
        "                        tcp://HOST:PORT | cluster:DIR | "
        "local:...\n"
        "  --port P              HTTP listen port (default 0 = "
        "ephemeral)\n"
        "  --bind ADDR           bind address (default 127.0.0.1)\n"
        "  --tenants FILE        tenant table JSON (bearer tokens, "
        "quotas,\n"
        "                        tiers); SIGHUP reloads it\n"
        "  --pes N               machine PE count (default 64; must "
        "match\n"
        "                        the backend daemon's)\n"
        "  --duration-s S        exit after S seconds (default: "
        "until SIGINT)\n";
}

struct Args
{
    std::string backend;
    std::string bind = "127.0.0.1";
    std::uint16_t port = 0;
    std::string tenants_file;
    double duration_s = 0.0;
    core::EieConfig config;
};

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value after %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--backend") {
            args.backend = next();
        } else if (arg == "--port") {
            args.port =
                static_cast<std::uint16_t>(std::stoul(next()));
        } else if (arg == "--bind") {
            args.bind = next();
        } else if (arg == "--tenants") {
            args.tenants_file = next();
        } else if (arg == "--pes") {
            args.config.n_pe =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--duration-s") {
            args.duration_s = std::stod(next());
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }
    fatal_if(args.backend.empty(), "--backend is required");
    args.config.validate();

    gateway::GatewayOptions options;
    options.http.bind_address = args.bind;
    options.http.port = args.port;
    options.client.config = args.config;

    client::Status status;
    std::unique_ptr<gateway::HttpGateway> gateway =
        gateway::HttpGateway::create(args.backend, options, status);
    fatal_if(!gateway, "cannot start gateway: %s",
             status.toString().c_str());

    if (!args.tenants_file.empty()) {
        const std::string error =
            gateway->tenants().loadFile(args.tenants_file);
        fatal_if(!error.empty(), "--tenants: %s", error.c_str());
    }

    std::cout << "eie_gateway listening on http://" << args.bind
              << ":" << gateway->port() << " -> " << args.backend
              << " (" << gateway->tenants().size() << " tenants"
              << (gateway->tenants().empty() ? ", auth off" : "")
              << ")\n"
              << std::flush;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGHUP, onReload);
    const auto start = std::chrono::steady_clock::now();
    while (!g_interrupted.load()) {
        if (g_reload.exchange(false)) {
            if (args.tenants_file.empty()) {
                std::cout << "eie_gateway: SIGHUP ignored "
                             "(no --tenants file)\n"
                          << std::flush;
            } else {
                const std::string error =
                    gateway->tenants().loadFile(args.tenants_file);
                if (error.empty())
                    std::cout << "eie_gateway: reloaded "
                              << args.tenants_file << " ("
                              << gateway->tenants().size()
                              << " tenants, generation "
                              << gateway->tenants().generation()
                              << ")\n"
                              << std::flush;
                else
                    std::cout << "eie_gateway: reload failed, "
                                 "keeping previous table: "
                              << error << "\n"
                              << std::flush;
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (args.duration_s > 0.0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                    .count() >= args.duration_s)
            break;
    }

    std::cout << "eie_gateway: shutting down\n" << std::flush;
    gateway->stop();
    return 0;
}
