/**
 * @file
 * eie_top — a live terminal dashboard over a running eie_serve
 * daemon, in the spirit of top(1):
 *
 *   eie_top --connect HOST:PORT [--gateway HOST:PORT]
 *           [--interval-s S] [--iterations N] [--once]
 *
 * Each refresh polls the daemon's StatsRequest (per-cluster serving
 * stats) and MetricsRequest (the process registry) over the wire
 * protocol and redraws:
 *
 *   - per cluster: placement, shards, cumulative requests, the QPS
 *     over the last interval (delta of the requests counter), queue
 *     depth summed over shards, shed / failover / ejection counters,
 *     mean batch and the p50/p95/p99/p99.9 latency curve;
 *   - per layer: the kernel variant the last sweep executed, the
 *     measured activation density driving density-aware dispatch,
 *     the resident stream form (decoded vs. compressed) with its
 *     footprint, and the per-sweep decode cost of compressed
 *     residency;
 *   - process totals from the metrics registry (server requests /
 *     batches / sheds and the process-wide latency histogram).
 *
 * With --gateway, each refresh additionally polls an eie_gateway's
 * /v1/stats endpoint over HTTP and renders the per-tenant panel:
 * admitted QPS over the last interval, in-flight against the
 * concurrency quota (utilization), rate/quota rejections and the
 * per-tenant p99. --gateway also works standalone (without
 * --connect) for gateway-only deployments.
 *
 * --once prints a single snapshot without clearing the screen (for
 * scripts and tests); --iterations N exits after N refreshes.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "gateway/http.hh"
#include "obs/json.hh"
#include "serve/tcp.hh"

namespace {

using namespace eie;

std::atomic<bool> g_interrupted{false};

void
onSignal(int)
{
    g_interrupted.store(true);
}

void
usage()
{
    std::cout <<
        "eie_top — live dashboard over a running eie_serve daemon\n"
        "  --connect HOST:PORT  daemon to watch\n"
        "  --gateway HOST:PORT  eie_gateway to watch (per-tenant "
        "panel;\n"
        "                       combines with --connect or stands "
        "alone)\n"
        "  --interval-s S       refresh interval (default 1.0)\n"
        "  --iterations N       exit after N refreshes (0 = until "
        "SIGINT)\n"
        "  --once               one snapshot, no screen clearing\n";
}

struct Args
{
    std::string host;
    std::uint16_t port = 0;
    std::string gateway_host;
    std::uint16_t gateway_port = 0;
    double interval_s = 1.0;
    std::uint64_t iterations = 0;
    bool once = false;
};

/** One cluster's previous requests counter, for QPS deltas. */
struct Baseline
{
    std::string key;
    double requests = 0.0;
};

double
qpsOf(std::vector<Baseline> &baselines, const std::string &key,
      double requests, double elapsed_s)
{
    for (Baseline &b : baselines) {
        if (b.key != key)
            continue;
        const double delta = requests - b.requests;
        b.requests = requests;
        return elapsed_s > 0.0 ? std::max(0.0, delta) / elapsed_s
                               : 0.0;
    }
    baselines.push_back({key, requests});
    return 0.0; // first sample: no interval to rate over
}

void
render(const obs::JsonValue &stats, const obs::JsonValue &metrics,
       std::vector<Baseline> &baselines, double elapsed_s,
       std::ostream &out)
{
    const obs::JsonValue *clusters = stats.find("clusters");

    TextTable table({"Model", "Place", "Shards", "Requests", "QPS",
                     "Queue", "Shed", "Failover", "Ejected", "Batch",
                     "p50us", "p95us", "p99us", "p99.9us"});
    if (clusters != nullptr && clusters->isArray()) {
        for (const obs::JsonValue &cluster : clusters->array) {
            double queue_depth = 0.0;
            if (const obs::JsonValue *shards =
                    cluster.find("shard_stats");
                shards != nullptr && shards->isArray())
                for (const obs::JsonValue &shard : shards->array)
                    queue_depth += shard.numberOr("queue_depth", 0.0);
            const std::string key = cluster.stringOr("model", "?") +
                "@" +
                std::to_string(static_cast<std::uint64_t>(
                    cluster.numberOr("version", 0.0)));
            const double requests =
                cluster.numberOr("requests", 0.0);
            table.row()
                .add(cluster.stringOr("model", "?"))
                .add(cluster.stringOr("placement", "?"))
                .add(static_cast<std::uint64_t>(
                    cluster.numberOr("shards", 0.0)))
                .add(static_cast<std::uint64_t>(requests))
                .add(qpsOf(baselines, key, requests, elapsed_s), 1)
                .add(static_cast<std::uint64_t>(queue_depth))
                .add(static_cast<std::uint64_t>(
                    cluster.numberOr("requests_shed", 0.0)))
                .add(static_cast<std::uint64_t>(
                    cluster.numberOr("failovers", 0.0)))
                .add(static_cast<std::uint64_t>(
                    cluster.numberOr("shards_ejected", 0.0)))
                .add(cluster.numberOr("mean_batch", 0.0), 2)
                .add(cluster.numberOr("p50_latency_us", 0.0), 1)
                .add(cluster.numberOr("p95_latency_us", 0.0), 1)
                .add(cluster.numberOr("p99_latency_us", 0.0), 1)
                .add(cluster.numberOr("p999_latency_us", 0.0), 1);
        }
    }
    table.print(out);

    // Per-layer kernel variant, density mix and stream residency —
    // the dispatch decisions density-aware auto routing is making
    // right now, and what each layer's weights cost to keep resident
    // (decoded vs. compressed bytes, plus the decode time a
    // compressed-resident layer pays per sweep).
    TextTable layers({"Model", "Layer", "Kernel", "Residency",
                      "ResKB", "ActDensity", "MeanDensity", "DecodeUs",
                      "Sweeps"});
    bool any_layers = false;
    if (clusters != nullptr && clusters->isArray()) {
        for (const obs::JsonValue &cluster : clusters->array) {
            const obs::JsonValue *layer_array = cluster.find("layers");
            if (layer_array == nullptr || !layer_array->isArray())
                continue;
            for (const obs::JsonValue &layer : layer_array->array) {
                any_layers = true;
                const std::string residency =
                    layer.stringOr("residency", "-");
                const double resident_bytes = residency == "compressed"
                    ? layer.numberOr("compressed_bytes", 0.0)
                    : layer.numberOr("decoded_bytes", 0.0);
                layers.row()
                    .add(cluster.stringOr("model", "?"))
                    .add(layer.stringOr("layer", "?"))
                    .add(layer.stringOr("kernel", "-"))
                    .add(residency)
                    .add(resident_bytes / 1024.0, 1)
                    .add(layer.numberOr("act_density", -1.0), 3)
                    .add(layer.numberOr("mean_act_density", 0.0), 3)
                    .add(layer.numberOr("decode_us", 0.0), 1)
                    .add(static_cast<std::uint64_t>(
                        layer.numberOr("sweeps", 0.0)));
            }
        }
    }
    if (any_layers)
        layers.print(out);

    // Process totals from the metrics registry.
    const obs::JsonValue *counters = metrics.find("counters");
    const obs::JsonValue *gauges = metrics.find("gauges");
    const obs::JsonValue *histograms = metrics.find("histograms");
    if (counters != nullptr && counters->isObject()) {
        out << "process: requests="
            << static_cast<std::uint64_t>(counters->numberOr(
                   "eie_server_requests_total", 0.0))
            << " batches="
            << static_cast<std::uint64_t>(counters->numberOr(
                   "eie_server_batches_total", 0.0))
            << " shed="
            << static_cast<std::uint64_t>(counters->numberOr(
                   "eie_server_shed_total", 0.0))
            << " failovers="
            << static_cast<std::uint64_t>(counters->numberOr(
                   "eie_cluster_failovers_total", 0.0));
        if (gauges != nullptr && gauges->isObject())
            out << " resident_kb="
                << static_cast<std::uint64_t>(
                       gauges->numberOr("eie_model_resident_bytes",
                                        0.0) /
                       1024.0);
        if (histograms != nullptr) {
            if (const obs::JsonValue *latency =
                    histograms->find("eie_server_latency_us");
                latency != nullptr)
                out << "  latency p50/p99="
                    << latency->numberOr("p50", 0.0) << "/"
                    << latency->numberOr("p99", 0.0) << "us";
        }
        out << "\n";
    }
}

/** The per-tenant panel from an eie_gateway's /v1/stats document:
 *  admitted QPS (counter delta), in-flight vs. quota, rejections by
 *  cause, bucket level and the per-tenant latency tail. */
void
renderGateway(const obs::JsonValue &stats,
              std::vector<Baseline> &baselines, double elapsed_s,
              std::ostream &out)
{
    if (const obs::JsonValue *gw = stats.find("gateway")) {
        out << "gateway: backend=" << gw->stringOr("backend", "?")
            << " requests="
            << static_cast<std::uint64_t>(
                   gw->numberOr("requests", 0.0))
            << " rejected="
            << static_cast<std::uint64_t>(
                   gw->numberOr("rejected", 0.0))
            << " sessions="
            << static_cast<std::uint64_t>(
                   gw->numberOr("open_sessions", 0.0))
            << " auth="
            << (gw->find("auth_enabled") != nullptr &&
                        gw->find("auth_enabled")->boolean
                    ? "on"
                    : "off")
            << "\n";
    }
    const obs::JsonValue *tenants = stats.find("tenants");
    if (tenants == nullptr || !tenants->isArray() ||
        tenants->array.empty())
        return;
    TextTable table({"Tenant", "Prio", "QPS", "Admitted", "InFlight",
                     "Quota", "Util%", "RejRate", "RejQuota",
                     "Bucket", "p50us", "p99us"});
    for (const obs::JsonValue &tenant : tenants->array) {
        const std::string name = tenant.stringOr("name", "?");
        const double admitted = tenant.numberOr("admitted", 0.0);
        const obs::JsonValue *latency = tenant.find("latency_us");
        table.row()
            .add(name)
            .add(static_cast<std::int64_t>(
                tenant.numberOr("priority", 0.0)))
            .add(qpsOf(baselines, "tenant:" + name, admitted,
                       elapsed_s),
                 1)
            .add(static_cast<std::uint64_t>(admitted))
            .add(static_cast<std::uint64_t>(
                tenant.numberOr("in_flight", 0.0)))
            .add(static_cast<std::uint64_t>(
                tenant.numberOr("max_concurrent", 0.0)))
            .add(tenant.numberOr("quota_utilization", 0.0) * 100.0,
                 1)
            .add(static_cast<std::uint64_t>(
                tenant.numberOr("rejected_rate", 0.0)))
            .add(static_cast<std::uint64_t>(
                tenant.numberOr("rejected_quota", 0.0)))
            .add(tenant.numberOr("bucket_level", 0.0), 1)
            .add(latency != nullptr ? latency->numberOr("p50", 0.0)
                                    : 0.0,
                 1)
            .add(latency != nullptr ? latency->numberOr("p99", 0.0)
                                    : 0.0,
                 1);
    }
    table.print(out);
}

int
run(const Args &args)
{
    std::unique_ptr<serve::TcpClient> client;
    if (!args.host.empty())
        client =
            std::make_unique<serve::TcpClient>(args.host, args.port);
    std::signal(SIGINT, onSignal);

    std::vector<Baseline> baselines;
    auto last = std::chrono::steady_clock::now();
    for (std::uint64_t iteration = 0;; ++iteration) {
        obs::JsonValue stats, metrics;
        if (client) {
            stats = obs::parseJson(client->stats());
            metrics = obs::parseJson(client->metrics().json);
        }
        obs::JsonValue gateway_stats;
        if (!args.gateway_host.empty()) {
            // One fresh connection per poll: the dashboard's rate is
            // human, and a gateway restart between refreshes must
            // not kill the watch.
            gateway::HttpClientConnection http(args.gateway_host,
                                               args.gateway_port);
            const gateway::HttpParsedResponse response =
                http.roundTrip("GET", "/v1/stats", {}, "");
            fatal_if(response.status != 200,
                     "gateway /v1/stats returned HTTP %d",
                     response.status);
            gateway_stats = obs::parseJson(response.body);
        }

        const auto now = std::chrono::steady_clock::now();
        const double elapsed_s =
            std::chrono::duration<double>(now - last).count();
        last = now;

        // Render into a buffer first so a slow poll never leaves a
        // half-drawn screen.
        std::ostringstream frame;
        if (client)
            render(stats, metrics, baselines,
                   iteration == 0 ? 0.0 : elapsed_s, frame);
        if (!args.gateway_host.empty())
            renderGateway(gateway_stats, baselines,
                          iteration == 0 ? 0.0 : elapsed_s, frame);
        if (!args.once)
            std::cout << "\x1b[H\x1b[2J"; // home + clear
        std::cout << "eie_top — ";
        if (client)
            std::cout << args.host << ":" << args.port;
        if (!args.gateway_host.empty())
            std::cout << (client ? " + " : "") << "gateway "
                      << args.gateway_host << ":"
                      << args.gateway_port;
        std::cout << " (interval " << args.interval_s << "s)\n"
                  << frame.str() << std::flush;

        if (args.once ||
            (args.iterations != 0 &&
             iteration + 1 >= args.iterations))
            return 0;

        const auto wake = now +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(args.interval_s));
        while (std::chrono::steady_clock::now() < wake) {
            if (g_interrupted.load())
                return 0;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        if (g_interrupted.load())
            return 0;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value after %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--connect") {
            const std::string target = next();
            const std::size_t colon = target.rfind(':');
            fatal_if(colon == std::string::npos,
                     "--connect needs HOST:PORT");
            args.host = target.substr(0, colon);
            args.port = static_cast<std::uint16_t>(
                std::stoul(target.substr(colon + 1)));
        } else if (arg == "--gateway") {
            std::string target = next();
            // Accept the URL the gateway banner prints verbatim.
            if (target.rfind("http://", 0) == 0)
                target = target.substr(7);
            while (!target.empty() && target.back() == '/')
                target.pop_back();
            const std::size_t colon = target.rfind(':');
            fatal_if(colon == std::string::npos,
                     "--gateway needs HOST:PORT");
            args.gateway_host = target.substr(0, colon);
            args.gateway_port = static_cast<std::uint16_t>(
                std::stoul(target.substr(colon + 1)));
        } else if (arg == "--interval-s") {
            args.interval_s = std::stod(next());
            fatal_if(args.interval_s <= 0.0,
                     "--interval-s must be > 0");
        } else if (arg == "--iterations") {
            args.iterations = std::stoull(next());
        } else if (arg == "--once") {
            args.once = true;
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }
    fatal_if(args.host.empty() && args.gateway_host.empty(),
             "eie_top needs --connect and/or --gateway HOST:PORT");

    try {
        return run(args);
    } catch (const std::exception &error) {
        fatal("%s", error.what());
    }
}
