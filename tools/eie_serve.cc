/**
 * @file
 * eie_serve — the EIE serving-cluster daemon and its client.
 *
 * Registry management:
 *   eie_serve --registry DIR --publish NAME
 *             [--benchmark B | --rows R --cols C --density D]
 *             [--version V] [--pes N] [--seed S]
 *   eie_serve --registry DIR --list-models
 *
 * Daemon (loopback TCP front end over a sharded cluster per model):
 *   eie_serve --registry DIR --listen PORT [--shards N]
 *             [--policy replicated|partitioned] [--backend NAME]
 *             [--kernel V] [--residency R] [--threads-per-shard T]
 *             [--max-batch B] [--max-delay-us U] [--pes N]
 *             [--duration-s S]
 *
 * Client (open-loop or back-to-back pipelined traffic):
 *   eie_serve --connect HOST:PORT --model NAME [--version V]
 *             [--requests N] [--rate RPS] [--window W]
 *             [--distinct D] [--act-density A] [--priority P]
 *             [--deadline-us U] [--check] [--registry DIR]
 *             [--pes N] [--seed S] [--stats-json]
 *
 * Observability queries against a running daemon:
 *   eie_serve --connect HOST:PORT stats [--watch SEC]
 *   eie_serve --connect HOST:PORT trace-dump
 *   eie_serve --connect HOST:PORT --stats-json
 * and the daemon itself exports Prometheus plaintext at
 * http://127.0.0.1:PORT/metrics with --metrics-port PORT.
 *
 * The client mode rides the typed eie::client::Client front door on
 * a `tcp://host:port` endpoint: it derives its input size from
 * info(), cycles deterministic activation vectors through a
 * window-bounded pipeline of submit() futures, and with --check
 * verifies every response bit-exactly against the "scalar" oracle
 * backend run on the same model loaded from --registry (daemon and
 * client share the registry directory on one host — the loopback
 * deployment this tool targets).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <deque>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "client/client.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/functional.hh"
#include "engine/backend.hh"
#include "nn/generate.hh"
#include "obs/exposition.hh"
#include "obs/metrics.hh"
#include "serve/cluster.hh"
#include "serve/registry.hh"
#include "serve/tcp.hh"
#include "workloads/suite.hh"

namespace {

using namespace eie;

std::atomic<bool> g_interrupted{false};

void
onSignal(int)
{
    g_interrupted.store(true);
}

void
usage()
{
    std::cout <<
        "eie_serve — EIE serving-cluster daemon and client\n"
        "registry:\n"
        "  --registry DIR        model registry directory\n"
        "  --publish NAME        publish a model (see below), then "
        "exit\n"
        "  --benchmark B         publish the Table III benchmark "
        "layer B\n"
        "  --rows R --cols C --density D\n"
        "                        publish a synthetic R x C layer "
        "instead\n"
        "  --version V           version to publish (default: "
        "latest+1)\n"
        "  --list-models         list the registry's models, then "
        "exit\n"
        "daemon:\n"
        "  --listen PORT         serve the registry over TCP "
        "(0 = ephemeral)\n"
        "  --shards N            shard workers per cluster "
        "(default 1)\n"
        "  --policy P            replicated | partitioned\n"
        "  --backend NAME        shard backend (default compiled)\n"
        "  --kernel V            shard kernel variant: auto | "
        "reference | vector | fused | actsparse | compressed\n"
        "  --residency R         resident stream form: decoded | "
        "compressed | auto\n"
        "  --threads-per-shard T worker threads per shard "
        "(default 1)\n"
        "  --max-batch B         shard micro-batcher cap "
        "(default 16)\n"
        "  --max-delay-us U      batch forming deadline "
        "(default 200); the adaptive window's upper bound\n"
        "  --min-delay-us U      adaptive forming window floor "
        "(default 20)\n"
        "  --fixed-delay         disable the adaptive forming window "
        "(always wait max-delay-us)\n"
        "  --max-queue N         per-shard admission cap; above it "
        "requests shed (0 = unbounded)\n"
        "  --shed-policy P       reject (shed the newcomer) | evict "
        "(shed the lowest priority)\n"
        "  --eject-after N       consecutive failures before a shard "
        "is ejected (0 = breaker off)\n"
        "  --duration-s S        exit after S seconds (default: "
        "until SIGINT)\n"
        "  --metrics-port P      export Prometheus plaintext metrics "
        "over HTTP (0 = ephemeral)\n"
        "client:\n"
        "  --connect HOST:PORT   run the traffic client\n"
        "  --model NAME          model to request\n"
        "  --requests N          requests to send (default 1000)\n"
        "  --rate RPS            offered rate (0 = back-to-back)\n"
        "  --window W            max pipelined in-flight requests "
        "(default 256)\n"
        "  --distinct D          distinct input vectors "
        "(default 64)\n"
        "  --act-density A       input activation density "
        "(default 0.35)\n"
        "  --priority P          request priority (default 0)\n"
        "  --deadline-us U       per-request deadline (0 = none)\n"
        "  --retries N           attempts per request incl. the "
        "first (default 1 = no retry)\n"
        "  --timeout-us U        client-side wall-clock budget per "
        "request across retries (0 = none)\n"
        "  --check               verify responses against the scalar "
        "oracle (needs --registry)\n"
        "  --stats-json          print the server's stats JSON "
        "(after a run, or standalone without --model)\n"
        "observability commands (with --connect):\n"
        "  stats [--watch SEC]   print the server's stats JSON, once "
        "or every SEC seconds until SIGINT\n"
        "  trace-dump            print the server's span ring as "
        "chrome://tracing JSON\n"
        "common:\n"
        "  --pes N               machine PE count (default 64)\n"
        "  --seed S              generator seed (default 2016)\n";
}

/** D deterministic quantised activation vectors of @p size. */
std::vector<std::vector<std::int64_t>>
makeDistinctInputs(std::size_t count, std::size_t size, double density,
                   const core::FunctionalModel &model,
                   std::uint64_t seed)
{
    std::vector<std::vector<std::int64_t>> inputs;
    inputs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Rng rng(seed + 77 * i + 1);
        inputs.push_back(model.quantizeInput(
            nn::makeActivations(size, density, rng)));
    }
    return inputs;
}

struct Args
{
    std::string registry_dir;
    std::string publish_name;
    std::string benchmark;
    std::size_t rows = 0, cols = 0;
    double density = 0.09;
    std::uint32_t version = 0;
    bool list_models = false;

    bool listen = false;
    std::uint16_t port = 0;
    serve::ClusterOptions cluster;
    double duration_s = 0.0;

    std::string connect_host;
    std::uint16_t connect_port = 0;
    std::string model;
    std::size_t requests = 1000;
    double rate = 0.0;
    std::size_t window = 256;
    std::size_t distinct = 64;
    double act_density = 0.35;
    std::int32_t priority = 0;
    std::uint32_t deadline_us = 0;
    unsigned retries = 1;
    std::uint64_t timeout_us = 0;
    bool check = false;
    bool stats_json = false;
    std::string command; ///< "", "stats" or "trace-dump"
    double watch_s = 0.0;
    std::uint16_t metrics_port = 0;
    bool metrics_enabled = false;

    core::EieConfig config;
    std::uint64_t seed = 2016;
};

int
runPublish(const Args &args)
{
    serve::ModelRegistry registry(args.registry_dir, args.config);
    const std::uint32_t version = args.version
        ? args.version
        : registry.latestVersion(args.publish_name) + 1;

    std::string path;
    if (!args.benchmark.empty()) {
        workloads::SuiteRunner runner(args.seed);
        const auto &bench = workloads::findBenchmark(args.benchmark);
        path = registry.publish(args.publish_name, version,
                                runner.layer(bench).storage());
    } else {
        fatal_if(args.rows == 0 || args.cols == 0,
                 "--publish needs --benchmark or --rows/--cols");
        Rng rng(args.seed);
        nn::WeightGenOptions wopts;
        wopts.density = args.density;
        compress::CompressionOptions copts;
        copts.interleave.n_pe = args.config.n_pe;
        const auto layer = compress::CompressedLayer::compress(
            args.publish_name,
            nn::makeSparseWeights(args.rows, args.cols, wopts, rng),
            copts);
        path = registry.publish(args.publish_name, version,
                                layer.storage());
    }
    std::cout << "published " << args.publish_name << " v" << version
              << " -> " << path << "\n";
    return 0;
}

int
runListModels(const Args &args)
{
    serve::ModelRegistry registry(args.registry_dir, args.config);
    for (const serve::ModelId &id : registry.list()) {
        const auto model = registry.load(id.name, id.version);
        std::cout << id.name << " v" << id.version;
        if (model)
            std::cout << "  (" << model->inputSize() << " -> "
                      << model->outputSize() << ")";
        std::cout << "\n";
    }
    return 0;
}

int
runDaemon(const Args &args)
{
    serve::ModelRegistry registry(args.registry_dir, args.config);
    serve::ServingDirectory directory(registry, args.cluster);
    serve::TcpServerOptions server_options;
    server_options.port = args.port;
    serve::TcpServer server(directory, server_options);
    server.start();

    std::unique_ptr<obs::MetricsHttpServer> metrics;
    if (args.metrics_enabled) {
        metrics = std::make_unique<obs::MetricsHttpServer>(
            obs::processRegistry(), args.metrics_port);
        std::cout << "eie_serve: metrics on http://127.0.0.1:"
                  << metrics->port() << "/metrics\n";
    }

    std::cout << "eie_serve: listening on 127.0.0.1:" << server.port()
              << " (" << args.cluster.shards << " shard(s), "
              << serve::placementName(args.cluster.placement) << ", "
              << args.cluster.backend << " backend, "
              << core::kernel::kernelVariantName(args.cluster.kernel)
              << " kernel, "
              << core::kernel::residencyName(args.cluster.residency)
              << " residency, forming window ";
    if (args.cluster.server.adaptive_delay)
        std::cout << "adaptive "
                  << std::min(args.cluster.server.min_delay,
                              args.cluster.server.max_delay)
                         .count()
                  << "-" << args.cluster.server.max_delay.count();
    else
        std::cout << "fixed "
                  << args.cluster.server.max_delay.count();
    std::cout << "us)\n" << std::flush;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    const auto start = std::chrono::steady_clock::now();
    while (!g_interrupted.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (args.duration_s > 0.0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                    .count() >= args.duration_s)
            break;
    }

    server.stop();
    std::cout << "final stats: " << directory.statsJson() << "\n";
    directory.stopAll();
    return 0;
}

/** The `stats` command (and the standalone --stats-json): print the
 *  server's stats JSON, once or — with --watch — every interval
 *  until SIGINT. */
int
runStats(const Args &args)
{
    const std::string endpoint = "tcp://" + args.connect_host + ":" +
        std::to_string(args.connect_port);
    client::ClientOptions options;
    options.config = args.config;
    const auto client = client::Client::connectOrDie(endpoint, options);

    std::signal(SIGINT, onSignal);
    for (;;) {
        client::EndpointStats stats;
        const client::Status status = client->stats(stats);
        fatal_if(!status.ok(), "server: %s",
                 status.toString().c_str());
        std::cout << stats.json << "\n" << std::flush;
        if (args.watch_s <= 0.0)
            return 0;
        // Sleep in slices so Ctrl-C ends the watch promptly.
        const auto wake = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(args.watch_s));
        while (std::chrono::steady_clock::now() < wake) {
            if (g_interrupted.load())
                return 0;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        if (g_interrupted.load())
            return 0;
    }
}

/** The `trace-dump` command: print the daemon's span ring as one
 *  chrome://tracing JSON document (load it in chrome://tracing or
 *  Perfetto). */
int
runTraceDump(const Args &args)
{
    const std::string endpoint = "tcp://" + args.connect_host + ":" +
        std::to_string(args.connect_port);
    client::ClientOptions options;
    options.config = args.config;
    const auto client = client::Client::connectOrDie(endpoint, options);
    std::string json;
    const client::Status status = client->traceDump(json);
    fatal_if(!status.ok(), "server: %s", status.toString().c_str());
    std::cout << json << "\n";
    return 0;
}

int
runClient(const Args &args)
{
    fatal_if(args.model.empty(), "--connect needs --model");
    fatal_if(args.check && args.registry_dir.empty(),
             "--check needs --registry to load the oracle model");

    // The typed front door: the same client code would drive an
    // in-process endpoint by swapping this string for "local:..." or
    // "cluster:...".
    const std::string endpoint = "tcp://" + args.connect_host + ":" +
        std::to_string(args.connect_port);
    client::ClientOptions options;
    options.config = args.config;
    options.retry.max_attempts = args.retries;
    options.retry.timeout =
        std::chrono::microseconds(args.timeout_us);
    const auto client = client::Client::connectOrDie(endpoint, options);

    client::ModelInfo info;
    const client::Status info_status =
        client->info(args.model, args.version, info);
    fatal_if(!info_status.ok(), "server: %s",
             info_status.toString().c_str());
    std::cout << "model " << info.model << " v" << info.version
              << ": " << info.input_size << " -> "
              << info.output_size << ", " << info.shards
              << " shard(s), " << info.placement << "\n";

    const core::FunctionalModel model(args.config);
    const std::size_t distinct =
        std::min(args.distinct, args.requests);
    const auto inputs = makeDistinctInputs(
        distinct, info.input_size, args.act_density, model,
        args.seed);

    // Oracle outputs for --check: one scalar-backend run per distinct
    // input, against the same model file the daemon serves.
    std::vector<std::vector<std::int64_t>> reference;
    if (args.check) {
        serve::ModelRegistry registry(args.registry_dir, args.config);
        const auto loaded =
            registry.load(args.model, info.version);
        fatal_if(!loaded, "model '%s' v%u not in registry '%s'",
                 args.model.c_str(), info.version,
                 args.registry_dir.c_str());
        const auto oracle = engine::makeBackend(
            "scalar", args.config, {&loaded->plan()});
        for (const auto &input : inputs)
            reference.push_back(oracle->run(input).outputs.front());
    }

    Rng arrival_rng(args.seed ^ 0x5e57e11aULL);
    const std::vector<double> arrival_s = engine::openLoopArrivals(
        args.requests, args.rate, arrival_rng);

    std::uint64_t ok = 0, errors = 0, mismatches = 0;
    std::deque<std::pair<std::size_t,
                         std::future<client::InferenceResult>>>
        in_flight;

    auto readOne = [&] {
        auto [index, future] = std::move(in_flight.front());
        in_flight.pop_front();
        const client::InferenceResult result = future.get();
        if (!result.ok()) {
            ++errors;
        } else {
            ++ok;
            if (args.check &&
                result.outputs.front() != reference[index % distinct])
                ++mismatches;
        }
    };

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < args.requests; ++i) {
        if (args.rate > 0.0)
            std::this_thread::sleep_until(
                start + std::chrono::duration<double>(arrival_s[i]));
        while (in_flight.size() >= args.window)
            readOne();
        client::InferenceRequest request;
        request.model = args.model;
        request.version = args.version;
        request.priority = args.priority;
        request.deadline =
            std::chrono::microseconds(args.deadline_us);
        request.fixed.push_back(inputs[i % distinct]);
        in_flight.emplace_back(i, client->submit(std::move(request)));
    }
    while (!in_flight.empty())
        readOne();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();

    TextTable table({"Requests", "OK", "Errors", "Mismatch",
                     "Wall s", "Requests/s"});
    table.row()
        .add(static_cast<std::uint64_t>(args.requests))
        .add(ok)
        .add(errors)
        .add(mismatches)
        .add(wall_s, 3)
        .add(static_cast<double>(ok) / wall_s, 1);
    table.print(std::cout);
    client::EndpointStats stats;
    if (client->stats(stats).ok()) {
        if (args.stats_json)
            // Bare JSON on its own line for scripted consumers.
            std::cout << stats.json << "\n";
        else
            std::cout << "server stats: " << stats.json << "\n";
    }

    fatal_if(mismatches > 0,
             "%llu responses diverged from the scalar oracle",
             static_cast<unsigned long long>(mismatches));
    // Deadline-bearing traffic legitimately drops requests, and a
    // retrying client is knowingly driving a lossy (shedding or
    // flaky) server; everything else must succeed.
    fatal_if(errors > 0 && args.deadline_us == 0 && args.retries <= 1,
             "%llu requests failed",
             static_cast<unsigned long long>(errors));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value after %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--registry") {
            args.registry_dir = next();
        } else if (arg == "--publish") {
            args.publish_name = next();
        } else if (arg == "--benchmark") {
            args.benchmark = next();
        } else if (arg == "--rows") {
            args.rows = std::stoul(next());
        } else if (arg == "--cols") {
            args.cols = std::stoul(next());
        } else if (arg == "--density") {
            args.density = std::stod(next());
        } else if (arg == "--version") {
            args.version =
                static_cast<std::uint32_t>(std::stoul(next()));
        } else if (arg == "--list-models") {
            args.list_models = true;
        } else if (arg == "--listen") {
            args.listen = true;
            args.port = static_cast<std::uint16_t>(std::stoul(next()));
        } else if (arg == "--shards") {
            args.cluster.shards =
                static_cast<unsigned>(std::stoul(next()));
            fatal_if(args.cluster.shards == 0,
                     "--shards needs at least 1");
        } else if (arg == "--policy") {
            args.cluster.placement =
                serve::placementFromName(next());
        } else if (arg == "--backend") {
            // validateBackendName is fatal (listing the valid names)
            // on an unknown value.
            args.cluster.backend = next();
            engine::validateBackendName(args.cluster.backend);
        } else if (arg == "--kernel") {
            // kernelVariantFromName is fatal (listing the valid
            // names) on an unknown value.
            args.cluster.kernel =
                core::kernel::kernelVariantFromName(next());
        } else if (arg == "--residency") {
            // residencyFromName is fatal (listing the valid names)
            // on an unknown value.
            args.cluster.residency =
                core::kernel::residencyFromName(next());
        } else if (arg == "--threads-per-shard") {
            args.cluster.threads_per_shard =
                static_cast<unsigned>(std::stoul(next()));
            fatal_if(args.cluster.threads_per_shard == 0,
                     "--threads-per-shard needs at least 1");
        } else if (arg == "--max-batch") {
            args.cluster.server.max_batch = std::stoul(next());
            fatal_if(args.cluster.server.max_batch == 0,
                     "--max-batch needs at least 1");
        } else if (arg == "--max-delay-us") {
            const long long us = std::stoll(next());
            fatal_if(us < 0, "--max-delay-us must be >= 0");
            args.cluster.server.max_delay =
                std::chrono::microseconds(us);
        } else if (arg == "--min-delay-us") {
            const long long us = std::stoll(next());
            fatal_if(us < 0, "--min-delay-us must be >= 0");
            args.cluster.server.min_delay =
                std::chrono::microseconds(us);
        } else if (arg == "--fixed-delay") {
            args.cluster.server.adaptive_delay = false;
        } else if (arg == "--max-queue") {
            args.cluster.server.max_queue = std::stoul(next());
        } else if (arg == "--shed-policy") {
            const std::string policy = next();
            if (policy == "reject")
                args.cluster.server.shed_policy =
                    engine::ShedPolicy::RejectNew;
            else if (policy == "evict")
                args.cluster.server.shed_policy =
                    engine::ShedPolicy::EvictLowestPriority;
            else
                fatal("unknown shed policy '%s' (known: reject, "
                      "evict)",
                      policy.c_str());
        } else if (arg == "--eject-after") {
            args.cluster.eject_after_failures =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--duration-s") {
            args.duration_s = std::stod(next());
        } else if (arg == "--connect") {
            const std::string target = next();
            const std::size_t colon = target.rfind(':');
            fatal_if(colon == std::string::npos,
                     "--connect needs HOST:PORT");
            args.connect_host = target.substr(0, colon);
            args.connect_port = static_cast<std::uint16_t>(
                std::stoul(target.substr(colon + 1)));
        } else if (arg == "--model") {
            args.model = next();
        } else if (arg == "--requests") {
            args.requests = std::stoul(next());
            fatal_if(args.requests == 0,
                     "--requests needs at least 1");
        } else if (arg == "--rate") {
            args.rate = std::stod(next());
            fatal_if(args.rate < 0.0, "--rate must be >= 0");
        } else if (arg == "--window") {
            args.window = std::stoul(next());
            fatal_if(args.window == 0, "--window needs at least 1");
        } else if (arg == "--distinct") {
            args.distinct = std::stoul(next());
            fatal_if(args.distinct == 0,
                     "--distinct needs at least 1");
        } else if (arg == "--act-density") {
            args.act_density = std::stod(next());
        } else if (arg == "--priority") {
            args.priority =
                static_cast<std::int32_t>(std::stol(next()));
        } else if (arg == "--deadline-us") {
            args.deadline_us =
                static_cast<std::uint32_t>(std::stoul(next()));
        } else if (arg == "--retries") {
            args.retries = static_cast<unsigned>(std::stoul(next()));
            fatal_if(args.retries == 0, "--retries needs at least 1");
        } else if (arg == "--timeout-us") {
            args.timeout_us = std::stoull(next());
        } else if (arg == "--check") {
            args.check = true;
        } else if (arg == "--stats-json") {
            args.stats_json = true;
        } else if (arg == "--watch") {
            args.watch_s = std::stod(next());
            fatal_if(args.watch_s <= 0.0, "--watch must be > 0");
        } else if (arg == "--metrics-port") {
            args.metrics_enabled = true;
            args.metrics_port =
                static_cast<std::uint16_t>(std::stoul(next()));
        } else if (arg == "stats" || arg == "trace-dump") {
            fatal_if(!args.command.empty(),
                     "only one command may be given");
            args.command = arg;
        } else if (arg == "--pes") {
            args.config.n_pe =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--seed") {
            args.seed = std::stoull(next());
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }
    args.config.validate();

    if (!args.publish_name.empty()) {
        fatal_if(args.registry_dir.empty(),
                 "--publish needs --registry");
        return runPublish(args);
    }
    if (args.list_models) {
        fatal_if(args.registry_dir.empty(),
                 "--list-models needs --registry");
        return runListModels(args);
    }
    if (args.listen) {
        fatal_if(args.registry_dir.empty(),
                 "--listen needs --registry");
        return runDaemon(args);
    }
    if (!args.connect_host.empty()) {
        // The transport layer throws (it is library code); the CLI
        // reports failures in the repo's fatal() convention.
        try {
            if (args.command == "stats")
                return runStats(args);
            if (args.command == "trace-dump")
                return runTraceDump(args);
            if (args.model.empty() && args.stats_json)
                return runStats(args); // one-shot stats JSON
            return runClient(args);
        } catch (const std::exception &error) {
            fatal("%s", error.what());
        }
    }

    usage();
    return 1;
}
