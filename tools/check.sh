#!/usr/bin/env bash
# Tier-1 verification: configure, build and ctest the whole tree in
# Release and Debug, failing on any test regression. The kernel
# equivalence suites (`-L kernel`: test_kernel + test_kernel_variants)
# are additionally run with verbose output so a bit-exactness break —
# in any kernel variant — is loud in CI logs.
#
# The serving-cluster subsystem (src/serve/: registry, sharded
# cluster, wire protocol, TCP loopback) gets its own labeled ctest
# pass so a serving regression is called out by name even when the
# full run already covered it. A Release variant-matrix smoke then
# drives eie_sim through every kernel variant (--kernel
# reference|vector|fused|actsparse, plus compressed in both
# --residency modes) in both the batched-throughput and the serving
# path, each checked bit-exact against the scalar oracle by the tool
# itself.
#
# The telemetry subsystem (src/obs/: metrics registry, histogram
# quantiles, tracing, the stats/metrics JSON schema pin) likewise
# gets a labeled `-L obs` pass in both build types, as does the
# multi-tenant HTTP gateway (src/gateway/: HTTP/1.1 parser and
# listener, tenant table, gateway end-to-end) via `-L gateway`.
#
# A third pass rebuilds the concurrency-sensitive suites — worker
# pool, batched kernels (all variants), execution backends, the
# inference server, the cluster engine, the TCP front end, the
# fault-injection/retry suites and the lock-cheap metrics
# registry/tracing ring — under ThreadSanitizer
# (-DEIE_TSAN=ON) and runs them; a data race in the serving path
# fails the check even when the race never corrupts an assertion.
#
# A fourth pass rebuilds the robustness suites — wire-frame fuzz,
# HTTP-parser fuzz, compressed-stream fuzz, fault injection, retry,
# model-file corruption, tenant-config parsing — under
# Address+UndefinedBehavior sanitizers (-DEIE_ASAN=ON) so a decoder
# overread or UB on a garbage frame, corrupt weight stream or
# malformed HTTP request fails loudly instead of decoding garbage
# quietly.
#
# Finally two daemon-signal smokes: `eie_serve` against a scratch
# registry must exit 0 on SIGINT, and `eie_gateway` fronting that
# registry must hot-reload its tenant table on SIGHUP and exit 0 on
# SIGINT.
#
# Usage: tools/check.sh [extra cmake args...]

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

for build_type in Release Debug; do
    build_dir="build-check-${build_type,,}"
    echo "=== ${build_type} ==="
    cmake -B "${build_dir}" -S . \
        -DCMAKE_BUILD_TYPE="${build_type}" "$@"
    cmake --build "${build_dir}" -j "${jobs}"
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
    echo "=== ${build_type} kernel equivalence (-L kernel) ==="
    ctest --test-dir "${build_dir}" --output-on-failure -L kernel
    echo "=== ${build_type} serving cluster (-L serve) ==="
    ctest --test-dir "${build_dir}" --output-on-failure -L serve
    echo "=== ${build_type} client API (-L client) ==="
    ctest --test-dir "${build_dir}" --output-on-failure -L client
    echo "=== ${build_type} fault injection (-L faults) ==="
    ctest --test-dir "${build_dir}" --output-on-failure -L faults
    echo "=== ${build_type} telemetry (-L obs) ==="
    ctest --test-dir "${build_dir}" --output-on-failure -L obs
    echo "=== ${build_type} HTTP gateway (-L gateway) ==="
    ctest --test-dir "${build_dir}" --output-on-failure -L gateway
done

echo "=== kernel variant matrix (Release eie_sim smoke) ==="
for kernel in reference vector fused actsparse; do
    ./build-check-release/eie_sim --throughput 16 --benchmark NT-We \
        --kernel "${kernel}"
    ./build-check-release/eie_sim --serve 24 --benchmark NT-We \
        --kernel "${kernel}"
done
# The compressed decode-on-the-fly variant in both residency modes:
# decoded residency keeps the compressed stream side by side, while
# compressed residency makes it the only resident form.
for residency in decoded compressed; do
    ./build-check-release/eie_sim --throughput 16 --benchmark NT-We \
        --kernel compressed --residency "${residency}"
    ./build-check-release/eie_sim --serve 24 --benchmark NT-We \
        --kernel compressed --residency "${residency}"
done

echo "=== ThreadSanitizer (kernel + engine + server + cluster + \
client) ==="
tsan_dir="build-check-tsan"
tsan_tests="test_kernel test_kernel_variants \
test_kernel_compressed_stream test_backend test_server \
test_network_runner test_cluster test_tcp test_client test_session \
test_faults test_retry test_metrics test_tracing test_http \
test_gateway"
cmake -B "${tsan_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DEIE_TSAN=ON "$@"
# Build only the sanitized suites: instrumenting the full bench/tool
# tree would double the check's wall clock for no extra coverage.
cmake --build "${tsan_dir}" -j "${jobs}" \
    --target ${tsan_tests}
# tools/tsan.supp silences the uninstrumented-libstdc++ exception_ptr
# refcount false positive (see the file for the full story).
TSAN_OPTIONS="suppressions=$(pwd)/tools/tsan.supp \
${TSAN_OPTIONS:-}" \
ctest --test-dir "${tsan_dir}" --output-on-failure \
    -R "$(echo "${tsan_tests}" | tr ' ' '|')"

echo "=== Address+UB sanitizers (wire fuzz + faults + model file) ==="
asan_dir="build-check-asan"
asan_tests="test_wire test_model_file test_registry test_faults \
test_retry test_client test_kernel_compressed_stream test_http \
test_tenants"
cmake -B "${asan_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DEIE_ASAN=ON "$@"
cmake --build "${asan_dir}" -j "${jobs}" \
    --target ${asan_tests}
ctest --test-dir "${asan_dir}" --output-on-failure \
    -R "$(echo "${asan_tests}" | tr ' ' '|')"

echo "=== daemon signal smoke (SIGINT must exit 0) ==="
smoke_dir=$(mktemp -d)
trap 'rm -rf "${smoke_dir}"' EXIT
./build-check-release/eie_serve --registry "${smoke_dir}" \
    --publish smoke --rows 32 --cols 24
./build-check-release/eie_serve --registry "${smoke_dir}" --listen 0 &
daemon_pid=$!
sleep 1
kill -INT "${daemon_pid}"
daemon_status=0
wait "${daemon_pid}" || daemon_status=$?
if [ "${daemon_status}" -ne 0 ]; then
    echo "FAIL: daemon exited ${daemon_status} on SIGINT" >&2
    exit 1
fi

echo "=== gateway signal smoke (SIGHUP reloads, SIGINT exits 0) ==="
cat > "${smoke_dir}/tenants.json" <<'EOF'
{"tenants":[{"name":"smoke","token":"smoke-token"}]}
EOF
gateway_log="${smoke_dir}/gateway.log"
./build-check-release/eie_gateway \
    --backend "cluster:${smoke_dir},shards=1" \
    --tenants "${smoke_dir}/tenants.json" > "${gateway_log}" &
gateway_pid=$!
sleep 1
kill -HUP "${gateway_pid}"
sleep 1
if ! grep -q "reloaded" "${gateway_log}"; then
    echo "FAIL: gateway did not hot-reload tenants on SIGHUP" >&2
    cat "${gateway_log}" >&2
    exit 1
fi
kill -INT "${gateway_pid}"
gateway_status=0
wait "${gateway_pid}" || gateway_status=$?
if [ "${gateway_status}" -ne 0 ]; then
    echo "FAIL: gateway exited ${gateway_status} on SIGINT" >&2
    cat "${gateway_log}" >&2
    exit 1
fi

echo "all checks passed (Release + Debug + variant matrix + TSan \
+ ASan/UBSan + signal smokes)"
