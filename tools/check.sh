#!/usr/bin/env bash
# Tier-1 verification: configure, build and ctest the whole tree in
# Release and Debug, failing on any test regression. The kernel
# equivalence suite (test_kernel) is additionally run with verbose
# output so a bit-exactness break is loud in CI logs.
#
# Usage: tools/check.sh [extra cmake args...]

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

for build_type in Release Debug; do
    build_dir="build-check-${build_type,,}"
    echo "=== ${build_type} ==="
    cmake -B "${build_dir}" -S . \
        -DCMAKE_BUILD_TYPE="${build_type}" "$@"
    cmake --build "${build_dir}" -j "${jobs}"
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
    ctest --test-dir "${build_dir}" --output-on-failure -R test_kernel
done

echo "all checks passed (Release + Debug)"
