/**
 * @file
 * eie_sim — command-line driver for the cycle-accurate EIE simulator.
 *
 * Usage:
 *   eie_sim --list
 *   eie_sim [--benchmark NAME | --all] [--pes N] [--fifo N]
 *           [--width BITS] [--clock GHZ] [--no-bypass] [--relaxed]
 *           [--seed S] [--export-model PATH] [--dump-stats]
 *
 * Runs Table III benchmarks (or one of them) through the simulator
 * with the requested machine configuration and prints the timing,
 * balance, traffic and energy summary. --export-model writes the
 * EIEM compressed-model file of the chosen benchmark.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "compress/model_file.hh"
#include "energy/pe_model.hh"
#include "workloads/suite.hh"

namespace {

using namespace eie;

void
usage()
{
    std::cout <<
        "eie_sim — cycle-accurate EIE simulator driver\n"
        "  --list               list the Table III benchmarks\n"
        "  --benchmark NAME     run one benchmark (default: --all)\n"
        "  --all                run the whole suite\n"
        "  --pes N              number of PEs (default 64)\n"
        "  --fifo N             activation queue depth (default 8)\n"
        "  --width BITS         Spmat SRAM width (default 64)\n"
        "  --clock GHZ          clock in GHz (default 0.8)\n"
        "  --no-bypass          disable the accumulator bypass\n"
        "  --relaxed            warn instead of fail on SRAM capacity\n"
        "  --seed S             workload generation seed\n"
        "  --export-model PATH  write the benchmark's EIEM model file\n"
        "  --dump-stats         print the raw statistics of each run\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    core::EieConfig config;
    std::uint64_t seed = 2016;
    std::string export_path;
    bool dump_stats = false;
    bool run_all = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value after %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            for (const auto &b : workloads::suite())
                std::cout << b.name << "  (" << b.input << " -> "
                          << b.output << ", W "
                          << 100 * b.weight_density << "%, A "
                          << 100 * b.act_density << "%)  "
                          << b.description << "\n";
            return 0;
        } else if (arg == "--benchmark") {
            names.push_back(next());
        } else if (arg == "--all") {
            run_all = true;
        } else if (arg == "--pes") {
            config.n_pe = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--fifo") {
            config.fifo_depth =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--width") {
            config.spmat_width_bits =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--clock") {
            config.clock_ghz = std::stod(next());
        } else if (arg == "--no-bypass") {
            config.enable_bypass = false;
        } else if (arg == "--relaxed") {
            config.enforce_capacity = false;
        } else if (arg == "--seed") {
            seed = std::stoull(next());
        } else if (arg == "--export-model") {
            export_path = next();
        } else if (arg == "--dump-stats") {
            dump_stats = true;
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }
    config.validate();
    if (names.empty() || run_all)
        for (const auto &b : workloads::suite())
            names.push_back(b.name);

    workloads::SuiteRunner runner(seed);

    if (!export_path.empty()) {
        fatal_if(names.size() != 1,
                 "--export-model needs exactly one --benchmark");
        const auto &bench = workloads::findBenchmark(names.front());
        const auto plan = runner.plan(bench, config);
        fatal_if(plan.batches() != 1 || plan.passes() != 1,
                 "--export-model supports single-tile layers only "
                 "(this one needs %zu batches x %zu passes)",
                 plan.batches(), plan.passes());
        compress::saveModelFile(export_path,
                                plan.tiles[0][0].storage);
        std::cout << "wrote " << export_path << "\n";
        return 0;
    }

    TextTable table({"Benchmark", "Cycles", "Time(us)", "Theo(us)",
                     "LoadBal", "Entries", "Pad%", "Broadcasts",
                     "Power(W)", "Energy(uJ)"});
    for (const std::string &name : names) {
        const auto &bench = workloads::findBenchmark(name);
        const auto result = runner.runEie(bench, config);
        const auto &s = result.stats;
        const double watts = energy::acceleratorPowerWatts(
            config, energy::PeActivity::fromRun(s));
        table.row()
            .add(name)
            .add(s.cycles)
            .add(s.timeUs(), 2)
            .add(s.theoreticalTimeUs(), 2)
            .addPercent(s.loadBalance())
            .add(s.total_entries)
            .addPercent(s.total_entries
                            ? static_cast<double>(s.padding_entries) /
                              static_cast<double>(s.total_entries)
                            : 0.0)
            .add(s.broadcasts)
            .add(watts, 3)
            .add(energy::runEnergyUj(config, s), 3);
        if (dump_stats)
            s.print(std::cout);
    }

    std::cout << "EIE " << config.n_pe << " PEs @ "
              << config.clock_ghz * 1000 << " MHz, FIFO depth "
              << config.fifo_depth << ", Spmat width "
              << config.spmat_width_bits << "b\n";
    table.print(std::cout);
    return 0;
}
