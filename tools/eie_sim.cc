/**
 * @file
 * eie_sim — command-line driver for the EIE execution engine.
 *
 * Usage:
 *   eie_sim --list
 *   eie_sim [--benchmark NAME | --all] [--pes N] [--fifo N]
 *           [--width BITS] [--clock GHZ] [--no-bypass] [--relaxed]
 *           [--seed S] [--export-model PATH] [--dump-stats]
 *   eie_sim --throughput B [--threads T] [--kernel V] [--repeats R]
 *           [...]
 *   eie_sim --serve N [--rate RPS] [--backend NAME] [--kernel V]
 *           [--max-batch B] [--max-delay-us U] [--threads T] [...]
 *
 * Runs Table III benchmarks (or one of them) through the
 * cycle-accurate simulator with the requested machine configuration
 * and prints the timing, balance, traffic and energy summary.
 * --export-model writes the EIEM compressed-model file of the chosen
 * benchmark.
 *
 * --throughput switches to the host execution engine: each benchmark
 * layer runs through the unified "compiled" ExecutionBackend on B
 * frames, optionally PE-parallel across T worker threads, with the
 * "scalar" backend as both the baseline timing and the bit-exactness
 * oracle.
 *
 * --serve puts each benchmark layer behind the typed
 * eie::client::Client on a `local:<backend>` endpoint (an in-memory
 * model over a micro-batching InferenceServer) and drives it with
 * synthetic open-loop traffic: N single-vector requests with
 * exponential interarrival gaps at --rate requests/sec (0 =
 * back-to-back), reporting achieved throughput, request latency
 * percentiles and micro-batch statistics per benchmark.
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "compress/model_file.hh"
#include "core/functional.hh"
#include "core/kernel/worker_pool.hh"
#include "core/network_runner.hh"
#include "energy/pe_model.hh"
#include "engine/backend.hh"
#include "engine/server.hh"
#include "nn/generate.hh"
#include "workloads/suite.hh"

namespace {

using namespace eie;

void
usage()
{
    std::cout <<
        "eie_sim — EIE execution-engine driver\n"
        "  --list               list the Table III benchmarks\n"
        "  --benchmark NAME     run one benchmark (default: --all)\n"
        "  --all                run the whole suite\n"
        "  --pes N              number of PEs (default 64)\n"
        "  --fifo N             activation queue depth (default 8)\n"
        "  --width BITS         Spmat SRAM width (default 64)\n"
        "  --clock GHZ          clock in GHz (default 0.8)\n"
        "  --no-bypass          disable the accumulator bypass\n"
        "  --relaxed            warn instead of fail on SRAM capacity\n"
        "  --seed S             workload generation seed\n"
        "  --export-model PATH  write the benchmark's EIEM model file\n"
        "  --dump-stats         print the raw statistics of each run\n"
        "  --throughput B       run the batched host engine, B frames\n"
        "  --threads T          PE-parallel worker threads (default 1)\n"
        "  --kernel V           kernel variant: auto | reference | "
        "vector | fused | actsparse | compressed\n"
        "  --residency R        resident stream form: decoded | "
        "compressed | auto\n"
        "  --act-density D      activation density of generated "
        "inputs, 0..1\n"
        "                       (default: the benchmark's "
        "paper-reported density)\n"
        "  --repeats R          timing repetitions, best wins "
        "(default 3)\n"
        "  --serve N            serve N open-loop requests per "
        "benchmark\n"
        "  --rate RPS           offered request rate (0 = "
        "back-to-back)\n"
        "  --backend NAME       execution backend for --serve "
        "(default compiled)\n"
        "  --max-batch B        micro-batcher batch cap (default 16)\n"
        "  --max-delay-us U     micro-batcher forming deadline "
        "(default 200)\n";
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Quantized open-loop request inputs for one benchmark, at the
 *  paper-reported activation density unless --act-density overrides
 *  it (@p act_density < 0 = use the benchmark's). */
core::kernel::Batch
makeRequestInputs(const workloads::Benchmark &bench,
                  const core::FunctionalModel &model, std::size_t count,
                  std::uint64_t seed, double act_density = -1.0)
{
    const double density =
        act_density < 0.0 ? bench.act_density : act_density;
    core::kernel::Batch inputs;
    inputs.reserve(count);
    for (std::size_t b = 0; b < count; ++b) {
        Rng rng(seed + 77 * b + 1);
        inputs.push_back(model.quantizeInput(
            nn::makeActivations(bench.input, density, rng)));
    }
    return inputs;
}

/** The --throughput mode: scalar oracle vs. compiled batched engine,
 *  both driven through the unified ExecutionBackend API. */
int
runThroughput(workloads::SuiteRunner &runner,
              const std::vector<std::string> &names,
              const core::EieConfig &config, std::size_t batch,
              unsigned threads, core::kernel::KernelVariant kernel,
              core::kernel::Residency residency, unsigned repeats,
              std::uint64_t seed, double act_density)
{
    TextTable table({"Benchmark", "Batch", "Threads", "Scalar f/s",
                     "Batched f/s", "Speedup", "GOP/s", "Exact"});

    for (const std::string &name : names) {
        const auto &bench = workloads::findBenchmark(name);
        const core::FunctionalModel model(config);

        core::NetworkRunner net(config);
        net.addLayer(runner.layer(bench), nn::Nonlinearity::ReLU);

        // B frames at the benchmark's (or the overridden) density.
        const core::kernel::Batch inputs =
            makeRequestInputs(bench, model, batch, seed, act_density);

        // Scalar oracle timing: rep 0 walks the interpreter with work
        // accounting (it doubles as the reference and the GOP/s
        // denominator), further reps go through the scalar backend.
        core::kernel::Batch reference;
        double useful_gops = 0.0;
        double scalar_s = 0.0;
        {
            const auto start = std::chrono::steady_clock::now();
            for (const auto &frame : inputs) {
                auto result = model.run(net.plan(0), frame);
                useful_gops += result.work.usefulGops();
                reference.push_back(std::move(result.output_raw));
            }
            scalar_s = secondsSince(start);
        }
        const engine::ExecutionBackend &scalar = net.backend("scalar");
        for (unsigned rep = 1; rep < repeats; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            reference = scalar.runBatch(inputs).outputs;
            scalar_s = std::min(scalar_s, secondsSince(start));
        }

        // Compiled backend: pre-decoded kernels + worker pool.
        const engine::ExecutionBackend &compiled =
            net.backend("compiled", threads, kernel, residency);
        core::kernel::Batch outputs;
        double batched_s = 0.0;
        for (unsigned rep = 0; rep < repeats; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            outputs = compiled.runBatch(inputs).outputs;
            const double elapsed = secondsSince(start);
            batched_s = rep == 0 ? elapsed
                                 : std::min(batched_s, elapsed);
        }

        bool exact = outputs.size() == reference.size();
        for (std::size_t b = 0; exact && b < outputs.size(); ++b)
            exact = outputs[b] == reference[b];

        const double fbatch = static_cast<double>(batch);
        table.row()
            .add(name)
            .add(static_cast<std::uint64_t>(batch))
            .add(static_cast<std::uint64_t>(threads))
            .add(fbatch / scalar_s, 1)
            .add(fbatch / batched_s, 1)
            .add(scalar_s / batched_s, 2)
            .add(useful_gops / batched_s, 3)
            .add(exact ? "yes" : "NO");
        fatal_if(!exact,
                 "batched output of '%s' diverged from the scalar "
                 "interpreter", name.c_str());
    }

    std::cout << "Host engine: batch " << batch << ", " << threads
              << " thread(s), kernel '"
              << core::kernel::kernelVariantName(kernel)
              << "', residency '"
              << core::kernel::residencyName(residency) << "'\n";
    table.print(std::cout);
    return 0;
}

/** Serving knobs of the --serve mode. */
struct ServeArgs
{
    std::size_t requests = 0;    ///< 0 = mode off
    double rate = 0.0;           ///< offered req/s; 0 = back-to-back
    std::string backend = "compiled";
    core::kernel::KernelVariant kernel =
        core::kernel::KernelVariant::Auto;
    core::kernel::Residency residency =
        core::kernel::Residency::Decoded;
    engine::ServerOptions options;
    double act_density = -1.0; ///< <0 = the benchmark's paper density
};

/** The --serve mode: the typed eie::client::Client over a `local:`
 *  endpoint (in-memory model, micro-batching server underneath)
 *  under synthetic open-loop arrival traffic, one benchmark at a
 *  time. */
int
runServe(workloads::SuiteRunner &runner,
         const std::vector<std::string> &names,
         const core::EieConfig &config, const ServeArgs &args,
         unsigned threads, std::uint64_t seed)
{
    TextTable table({"Benchmark", "Requests", "Offered r/s",
                     "Achieved r/s", "p50 us", "p99 us", "Mean batch",
                     "Max depth", "Shed", "Exact"});
    std::string diverged;

    const std::string endpoint = "local:" + args.backend +
        ",kernel=" +
        core::kernel::kernelVariantName(args.kernel) +
        ",residency=" +
        core::kernel::residencyName(args.residency) +
        ",threads=" + std::to_string(threads);

    for (const std::string &name : names) {
        const auto &bench = workloads::findBenchmark(name);
        const core::FunctionalModel model(config);

        core::NetworkRunner net(config);
        net.addLayer(runner.layer(bench), nn::Nonlinearity::ReLU);

        const core::kernel::Batch inputs = makeRequestInputs(
            bench, model, args.requests, seed, args.act_density);

        Rng arrival_rng(seed ^ 0x5e57e11aULL);
        const std::vector<double> arrival_s = engine::openLoopArrivals(
            inputs.size(), args.rate, arrival_rng);

        // The compiled stack goes behind the client API as an
        // in-memory model; the endpoint string picks the backend,
        // kernel variant and worker threads.
        client::ClientOptions options;
        options.config = config;
        options.server = args.options;
        options.models.push_back(
            client::LocalModel{name, {&net.plan(0)}});
        const auto client =
            client::Client::connectOrDie(endpoint, options);

        const auto start = std::chrono::steady_clock::now();
        std::vector<std::future<client::InferenceResult>> futures;
        futures.reserve(inputs.size());
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            std::this_thread::sleep_until(
                start + std::chrono::duration<double>(arrival_s[i]));
            client::InferenceRequest request;
            request.model = name;
            request.fixed.push_back(inputs[i]);
            futures.push_back(client->submit(std::move(request)));
        }
        core::kernel::Batch outputs;
        outputs.reserve(futures.size());
        for (auto &future : futures) {
            client::InferenceResult result = future.get();
            fatal_if(!result.ok(), "request failed: %s",
                     result.status.toString().c_str());
            outputs.push_back(std::move(result.outputs.front()));
        }
        const double wall_s = secondsSince(start);

        // Bit-exactness spot check against the scalar oracle (capped:
        // the oracle is deliberately slow).
        const std::size_t check =
            std::min<std::size_t>(outputs.size(), 16);
        bool exact = true;
        const engine::ExecutionBackend &oracle = net.backend("scalar");
        for (std::size_t i = 0; exact && i < check; ++i)
            exact = outputs[i] ==
                oracle.run(inputs[i]).outputs.front();
        if (!exact)
            diverged = name; // reported (and fatal) after the table

        client::EndpointStats stats;
        fatal_if(!client->stats(stats).ok(),
                 "endpoint stats unavailable");
        table.row()
            .add(name)
            .add(stats.requests)
            .add(args.rate, 1)
            .add(static_cast<double>(stats.requests) / wall_s, 1)
            .add(stats.p50_latency_us, 1)
            .add(stats.p99_latency_us, 1)
            .add(stats.mean_batch, 2)
            .add(static_cast<std::uint64_t>(stats.max_queue_depth))
            .add(stats.requests_shed)
            .add(exact ? "yes" : "NO");
        client->close();
    }

    std::cout << "Serving engine: endpoint '" << endpoint
              << "', max batch " << args.options.max_batch
              << ", forming deadline "
              << args.options.max_delay.count()
              << " us, open-loop arrivals\n";
    table.print(std::cout);
    fatal_if(!diverged.empty(),
             "served output of '%s' diverged from the scalar oracle",
             diverged.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    core::EieConfig config;
    std::uint64_t seed = 2016;
    std::string export_path;
    bool dump_stats = false;
    bool run_all = false;
    std::size_t throughput_batch = 0;
    unsigned threads = 1;
    unsigned repeats = 3;
    ServeArgs serve;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value after %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            for (const auto &b : workloads::suite())
                std::cout << b.name << "  (" << b.input << " -> "
                          << b.output << ", W "
                          << 100 * b.weight_density << "%, A "
                          << 100 * b.act_density << "%)  "
                          << b.description << "\n";
            return 0;
        } else if (arg == "--benchmark") {
            names.push_back(next());
        } else if (arg == "--all") {
            run_all = true;
        } else if (arg == "--pes") {
            config.n_pe = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--fifo") {
            config.fifo_depth =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--width") {
            config.spmat_width_bits =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--clock") {
            config.clock_ghz = std::stod(next());
        } else if (arg == "--no-bypass") {
            config.enable_bypass = false;
        } else if (arg == "--relaxed") {
            config.enforce_capacity = false;
        } else if (arg == "--seed") {
            seed = std::stoull(next());
        } else if (arg == "--export-model") {
            export_path = next();
        } else if (arg == "--dump-stats") {
            dump_stats = true;
        } else if (arg == "--throughput") {
            throughput_batch = std::stoul(next());
            fatal_if(throughput_batch == 0,
                     "--throughput needs a batch size >= 1");
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(std::stoul(next()));
            const unsigned hw =
                core::kernel::WorkerPool::hardwareThreads();
            fatal_if(threads == 0,
                     "--threads needs at least 1 worker (got 0)");
            fatal_if(threads > hw,
                     "--threads %u exceeds this machine's %u hardware "
                     "thread(s); oversubscribing the PE-parallel pool "
                     "only adds contention", threads, hw);
        } else if (arg == "--serve") {
            serve.requests = std::stoul(next());
            fatal_if(serve.requests == 0,
                     "--serve needs at least 1 request");
        } else if (arg == "--rate") {
            serve.rate = std::stod(next());
            fatal_if(serve.rate < 0.0, "--rate must be >= 0");
        } else if (arg == "--backend") {
            // validateBackendName is fatal (listing the valid names)
            // on an unknown value.
            serve.backend = next();
            engine::validateBackendName(serve.backend);
        } else if (arg == "--kernel") {
            // kernelVariantFromName is fatal (listing the valid
            // names) on an unknown value.
            serve.kernel =
                core::kernel::kernelVariantFromName(next());
        } else if (arg == "--residency") {
            // residencyFromName is fatal (listing the valid names)
            // on an unknown value.
            serve.residency =
                core::kernel::residencyFromName(next());
        } else if (arg == "--max-batch") {
            serve.options.max_batch = std::stoul(next());
            fatal_if(serve.options.max_batch == 0,
                     "--max-batch needs at least 1");
        } else if (arg == "--max-delay-us") {
            const long long us = std::stoll(next());
            fatal_if(us < 0, "--max-delay-us must be >= 0");
            serve.options.max_delay = std::chrono::microseconds(us);
        } else if (arg == "--act-density") {
            serve.act_density = std::stod(next());
            fatal_if(serve.act_density < 0.0 ||
                         serve.act_density > 1.0,
                     "--act-density must be in [0, 1]");
        } else if (arg == "--repeats") {
            repeats = static_cast<unsigned>(std::stoul(next()));
            fatal_if(repeats == 0, "--repeats needs at least 1");
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }
    config.validate();
    // Fusion is the single-thread form; normalize here so the tables
    // and banners label the loop that actually runs.
    if (serve.kernel == core::kernel::KernelVariant::Fused &&
        threads > 1) {
        warn("kernel 'fused' is the single-thread form; %u threads "
             "run 'reference' instead", threads);
        serve.kernel = core::kernel::KernelVariant::Reference;
    }
    if (names.empty() || run_all)
        for (const auto &b : workloads::suite())
            names.push_back(b.name);

    workloads::SuiteRunner runner(seed);

    if (serve.requests > 0)
        return runServe(runner, names, config, serve, threads, seed);

    if (throughput_batch > 0)
        return runThroughput(runner, names, config, throughput_batch,
                             threads, serve.kernel, serve.residency,
                             repeats, seed, serve.act_density);

    if (!export_path.empty()) {
        fatal_if(names.size() != 1,
                 "--export-model needs exactly one --benchmark");
        const auto &bench = workloads::findBenchmark(names.front());
        const auto plan = runner.plan(bench, config);
        fatal_if(plan.batches() != 1 || plan.passes() != 1,
                 "--export-model supports single-tile layers only "
                 "(this one needs %zu batches x %zu passes)",
                 plan.batches(), plan.passes());
        compress::saveModelFile(export_path,
                                plan.tiles[0][0].storage);
        std::cout << "wrote " << export_path << "\n";
        return 0;
    }

    TextTable table({"Benchmark", "Cycles", "Time(us)", "Theo(us)",
                     "LoadBal", "Entries", "Pad%", "Broadcasts",
                     "Power(W)", "Energy(uJ)"});
    for (const std::string &name : names) {
        const auto &bench = workloads::findBenchmark(name);
        const auto result = runner.runEie(bench, config);
        const auto &s = result.stats;
        const double watts = energy::acceleratorPowerWatts(
            config, energy::PeActivity::fromRun(s));
        table.row()
            .add(name)
            .add(s.cycles)
            .add(s.timeUs(), 2)
            .add(s.theoreticalTimeUs(), 2)
            .addPercent(s.loadBalance())
            .add(s.total_entries)
            .addPercent(s.total_entries
                            ? static_cast<double>(s.padding_entries) /
                              static_cast<double>(s.total_entries)
                            : 0.0)
            .add(s.broadcasts)
            .add(watts, 3)
            .add(energy::runEnergyUj(config, s), 3);
        if (dump_stats)
            s.print(std::cout);
    }

    std::cout << "EIE " << config.n_pe << " PEs @ "
              << config.clock_ghz * 1000 << " MHz, FIFO depth "
              << config.fifo_depth << ", Spmat width "
              << config.spmat_width_bits << "b\n";
    table.print(std::cout);
    return 0;
}
