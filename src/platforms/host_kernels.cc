#include "platforms/host_kernels.hh"

#include <algorithm>

#include "common/logging.hh"

namespace eie::platforms {

CsrMatrix
CsrMatrix::fromSparse(const nn::SparseMatrix &m)
{
    CsrMatrix csr;
    csr.rows = m.rows();
    csr.cols = m.cols();

    // Count entries per row, then fill with a second pass.
    std::vector<std::uint32_t> counts(m.rows(), 0);
    for (std::size_t j = 0; j < m.cols(); ++j)
        for (const auto &e : m.column(j))
            ++counts[e.row];

    csr.row_ptr.resize(m.rows() + 1, 0);
    for (std::size_t i = 0; i < m.rows(); ++i)
        csr.row_ptr[i + 1] = csr.row_ptr[i] + counts[i];

    const std::size_t nnz = csr.row_ptr.back();
    csr.values.resize(nnz);
    csr.col_idx.resize(nnz);
    std::vector<std::uint32_t> cursor(csr.row_ptr.begin(),
                                      csr.row_ptr.end() - 1);
    for (std::size_t j = 0; j < m.cols(); ++j) {
        for (const auto &e : m.column(j)) {
            const std::uint32_t pos = cursor[e.row]++;
            csr.values[pos] = e.value;
            csr.col_idx[pos] = static_cast<std::uint32_t>(j);
        }
    }
    return csr;
}

void
denseGemv(const nn::Matrix &w, std::span<const float> a,
          std::span<float> y)
{
    panic_if(a.size() != w.cols() || y.size() != w.rows(),
             "GEMV size mismatch");
    const float *data = w.data().data();
    for (std::size_t i = 0; i < w.rows(); ++i) {
        const float *row = data + i * w.cols();
        float acc = 0.0f;
        for (std::size_t j = 0; j < w.cols(); ++j)
            acc += row[j] * a[j];
        y[i] = acc;
    }
}

void
csrSpmv(const CsrMatrix &w, std::span<const float> a, std::span<float> y)
{
    panic_if(a.size() != w.cols || y.size() != w.rows,
             "CSR SpMV size mismatch");
    for (std::size_t i = 0; i < w.rows; ++i) {
        float acc = 0.0f;
        for (std::uint32_t e = w.row_ptr[i]; e < w.row_ptr[i + 1]; ++e)
            acc += w.values[e] * a[w.col_idx[e]];
        y[i] = acc;
    }
}

void
cscCodebookSpmv(const compress::InterleavedCsc &w,
                std::span<const float> a, std::span<float> y)
{
    panic_if(a.size() != w.cols() || y.size() != w.rows(),
             "CSC SpMV size mismatch");
    std::fill(y.begin(), y.end(), 0.0f);

    // Hoist the 16-entry codebook out of the MAC loop, like the
    // compiled kernel path (core/kernel/) hoists rawValues().
    const float *decode_lut = w.codebook().values().data();
    const unsigned n_pe = w.numPe();
    for (unsigned k = 0; k < n_pe; ++k) {
        const auto &slice = w.pe(k);
        const auto &entries = slice.entries();
        const auto &col_ptr = slice.colPtr();
        for (std::size_t j = 0; j < w.cols(); ++j) {
            const float aj = a[j];
            if (aj == 0.0f)
                continue; // dynamic activation sparsity
            std::int64_t pos = -1;
            for (std::uint32_t e = col_ptr[j]; e < col_ptr[j + 1];
                 ++e) {
                pos += entries[e].zero_count + 1;
                const float weight =
                    decode_lut[entries[e].weight_index];
                y[static_cast<std::size_t>(pos) * n_pe + k] +=
                    weight * aj;
            }
        }
    }
}

} // namespace eie::platforms
