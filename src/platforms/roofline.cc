#include "platforms/roofline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace eie::platforms {

RooflinePlatform::RooflinePlatform(RooflineParams params)
    : params_(std::move(params))
{
    fatal_if(params_.dense_bw_gbs <= 0 || params_.sparse_bw_gbs <= 0 ||
             params_.dense_gemm_gflops <= 0 ||
             params_.sparse_gflops <= 0,
             "roofline parameters for '%s' must be positive",
             params_.name.c_str());
}

double
RooflinePlatform::timeUs(const Workload &w, bool compressed,
                         unsigned batch) const
{
    fatal_if(batch == 0, "batch must be >= 1");
    const double n = batch;

    double frame_us = 0.0;
    if (!compressed) {
        // Dense GEMV/GEMM over fp32 weights.
        const double bytes = w.denseWeightBytes(4.0);
        const double mem_us = bytes / (params_.dense_bw_gbs * 1e3) / n;
        const double compute_us =
            w.denseFlops() / (params_.dense_gemm_gflops * 1e3);
        frame_us = std::max(mem_us, compute_us);
        if (batch == 1) {
            // Batch-1 GEMV never reaches GEMM compute throughput;
            // bandwidth is the binding constraint.
            frame_us = mem_us;
        }
    } else {
        // CSR sparse: values + indices must be streamed either way.
        const double bytes = w.csrBytes();
        const double mem_us = bytes / (params_.sparse_bw_gbs * 1e3) / n;
        const double compute_us =
            w.sparseFlops() / (params_.sparse_gflops * 1e3);
        frame_us = batch == 1 ? mem_us : std::max(mem_us, compute_us);
    }
    return frame_us + params_.overhead_us / n;
}

RooflineParams
cpuCoreI7Params()
{
    RooflineParams p;
    p.name = "CPU (i7-5930K)";
    // Table IV dense batch-1: VGG-6 moves 411 MB in 35.0 ms and
    // Alex-7 67 MB in 6.2 ms -> ~11.8 GB/s effective GEMV bandwidth.
    p.dense_bw_gbs = 11.8;
    // Sparse batch-1: Alex-6/7 and VGG-6 CSR streams land at ~9 GB/s
    // (irregular access costs ~25% of the streaming bandwidth).
    p.sparse_bw_gbs = 9.0;
    // Batched dense: MKL SGEMM at ~200 GFLOP/s (Table IV batch 64).
    p.dense_gemm_gflops = 200.0;
    // Batched sparse: MKL CSRMM at ~4.6 GFLOP/s.
    p.sparse_gflops = 4.6;
    p.overhead_us = 10.0;
    p.power_watts = 73.0; // pcm-power socket+DRAM (Table V)
    return p;
}

RooflineParams
gpuTitanXParams()
{
    RooflineParams p;
    p.name = "GPU (Titan X)";
    // Table IV dense batch-1: Alex-6/7, VGG-6 all at ~280 GB/s
    // (83% of the 336 GB/s pin bandwidth).
    p.dense_bw_gbs = 280.0;
    // cuSPARSE CSRMV: ~195 GB/s effective.
    p.sparse_bw_gbs = 195.0;
    // cuBLAS SGEMM at batch 64: ~3.8 TFLOP/s.
    p.dense_gemm_gflops = 3800.0;
    // cuSPARSE CSRMM: ~66 GFLOP/s.
    p.sparse_gflops = 66.0;
    p.overhead_us = 20.0;
    p.power_watts = 159.0; // nvidia-smi (Table V)
    return p;
}

RooflineParams
mobileGpuTegraK1Params()
{
    RooflineParams p;
    p.name = "mGPU (Tegra K1)";
    // Table IV dense batch-1: ~11.6 GB/s effective DRAM bandwidth.
    p.dense_bw_gbs = 11.6;
    p.sparse_bw_gbs = 9.5;
    // Batched throughput on the 192-core K1 is erratic in Table IV
    // (thermal limits); ~45 GFLOP/s dense, ~1.8 GFLOP/s sparse fit
    // the AlexNet rows.
    p.dense_gemm_gflops = 45.0;
    p.sparse_gflops = 1.8;
    p.overhead_us = 300.0;
    // AP+DRAM power after AC/DC, regulator and peripheral
    // discounts (§V).
    p.power_watts = 5.1;
    return p;
}

std::vector<std::unique_ptr<PlatformModel>>
makeBaselinePlatforms()
{
    std::vector<std::unique_ptr<PlatformModel>> platforms;
    platforms.push_back(
        std::make_unique<RooflinePlatform>(cpuCoreI7Params()));
    platforms.push_back(
        std::make_unique<RooflinePlatform>(gpuTitanXParams()));
    platforms.push_back(
        std::make_unique<RooflinePlatform>(mobileGpuTegraK1Params()));
    return platforms;
}

} // namespace eie::platforms
