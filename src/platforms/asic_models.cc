#include "platforms/asic_models.hh"

namespace eie::platforms {

PlatformSpec
DaDianNaoModel::spec()
{
    PlatformSpec s;
    s.name = "DaDianNao";
    s.year = 2014;
    s.type = "ASIC";
    s.technology_nm = 28;
    s.clock_mhz = "606";
    s.memory_type = "eDRAM";
    s.max_model_params = "18M";
    s.quantization = "16-bit fixed";
    s.area_mm2 = 67.7;
    s.power_watts = 15.97;
    return s;
}

PlatformSpec
TrueNorthModel::spec()
{
    PlatformSpec s;
    s.name = "TrueNorth";
    s.year = 2014;
    s.type = "ASIC";
    s.technology_nm = 28;
    s.clock_mhz = "Async";
    s.memory_type = "SRAM";
    s.max_model_params = "256M";
    s.quantization = "1-bit fixed";
    s.area_mm2 = 430.0;
    s.power_watts = 0.18;
    return s;
}

PlatformSpec
AEyeModel::spec()
{
    PlatformSpec s;
    s.name = "A-Eye";
    s.year = 2015;
    s.type = "FPGA";
    s.technology_nm = 28;
    s.clock_mhz = "150";
    s.memory_type = "DRAM";
    s.max_model_params = "<500M";
    s.quantization = "16-bit fixed";
    s.area_mm2 = 0.0; // not reported
    s.power_watts = 9.63;
    return s;
}

PlatformSpec
cpuSpec()
{
    PlatformSpec s;
    s.name = "Core i7-5930K";
    s.year = 2014;
    s.type = "CPU";
    s.technology_nm = 22;
    s.clock_mhz = "3500";
    s.memory_type = "DRAM";
    s.max_model_params = "<16G";
    s.quantization = "32-bit float";
    s.area_mm2 = 356.0;
    s.power_watts = 73.0;
    return s;
}

PlatformSpec
gpuSpec()
{
    PlatformSpec s;
    s.name = "GeForce Titan X";
    s.year = 2015;
    s.type = "GPU";
    s.technology_nm = 28;
    s.clock_mhz = "1075";
    s.memory_type = "DRAM";
    s.max_model_params = "<3G";
    s.quantization = "32-bit float";
    s.area_mm2 = 601.0;
    s.power_watts = 159.0;
    return s;
}

PlatformSpec
mobileGpuSpec()
{
    PlatformSpec s;
    s.name = "Tegra K1";
    s.year = 2014;
    s.type = "mGPU";
    s.technology_nm = 28;
    s.clock_mhz = "852";
    s.memory_type = "DRAM";
    s.max_model_params = "<500M";
    s.quantization = "32-bit float";
    s.area_mm2 = 0.0; // not reported
    s.power_watts = 5.1;
    return s;
}

} // namespace eie::platforms
