/**
 * @file
 * An FC-layer M×V workload as the platform models see it: dimensions
 * and densities only (the models are analytical).
 */

#ifndef EIE_PLATFORMS_WORKLOAD_HH
#define EIE_PLATFORMS_WORKLOAD_HH

#include <cstddef>
#include <string>

namespace eie::platforms {

/** One matrix-vector workload b = W a. */
struct Workload
{
    std::string name;
    std::size_t rows = 0;          ///< output size
    std::size_t cols = 0;          ///< input size
    double weight_density = 1.0;   ///< fraction of non-zero weights
    double act_density = 1.0;      ///< fraction of non-zero inputs

    /** Dense FLOPs of the M×V (2 per weight). */
    double
    denseFlops() const
    {
        return 2.0 * static_cast<double>(rows) *
            static_cast<double>(cols);
    }

    /** Non-zero weights after pruning. */
    double
    nnz() const
    {
        return weight_density * static_cast<double>(rows) *
            static_cast<double>(cols);
    }

    /** FLOPs on the compressed network (weight sparsity only). */
    double sparseFlops() const { return 2.0 * nnz(); }

    /** Dense weight bytes at @p bytes_per_weight. */
    double
    denseWeightBytes(double bytes_per_weight = 4.0) const
    {
        return bytes_per_weight * static_cast<double>(rows) *
            static_cast<double>(cols);
    }

    /** CSR bytes: 4-byte value + 4-byte column index per non-zero,
     *  plus the row-pointer array. */
    double
    csrBytes() const
    {
        return nnz() * 8.0 + 4.0 * (static_cast<double>(rows) + 1.0);
    }
};

} // namespace eie::platforms

#endif // EIE_PLATFORMS_WORKLOAD_HH
