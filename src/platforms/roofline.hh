/**
 * @file
 * Analytical roofline models of the paper's general-purpose
 * comparison platforms (§V "Comparison Baseline"):
 *
 *  - CPU: Intel Core i7-5930K running MKL GEMV (dense) and MKL
 *    sparse CSRMV (compressed),
 *  - GPU: NVIDIA GeForce GTX Titan X with cuBLAS / cuSPARSE,
 *  - mGPU: NVIDIA Tegra K1 with cuBLAS / cuSPARSE.
 *
 * Batch-1 M×V has no weight reuse, so it is bandwidth-bound: time =
 * overhead + bytes / effective_bandwidth. Batched (64) execution is
 * compute-bound at the platform's GEMM (dense) or SpMM (sparse)
 * throughput. Effective bandwidths and throughputs are calibrated
 * from the paper's own Table IV wall-clock measurements (e.g. Titan X
 * dense batch-1 moves 4-byte weights at ~280 GB/s across Alex-6/7 and
 * VGG-6 within 2%); we cannot re-measure the 2016 hardware, and this
 * preserves exactly the who-wins-by-what-factor structure Figures 6-7
 * report. Power is the measured socket/board power the paper used
 * for its energy numbers (Table V).
 */

#ifndef EIE_PLATFORMS_ROOFLINE_HH
#define EIE_PLATFORMS_ROOFLINE_HH

#include <memory>
#include <string>
#include <vector>

#include "platforms/workload.hh"

namespace eie::platforms {

/** Abstract comparison platform. */
class PlatformModel
{
  public:
    virtual ~PlatformModel() = default;

    /** Display name, e.g. "GPU (Titan X)". */
    virtual const std::string &name() const = 0;

    /**
     * Per-frame latency in microseconds.
     *
     * @param w          the layer workload
     * @param compressed run the pruned (sparse) model instead of dense
     * @param batch      frames per kernel invocation (>= 1)
     */
    virtual double timeUs(const Workload &w, bool compressed,
                          unsigned batch) const = 0;

    /** Measured power in watts used for the energy comparison. */
    virtual double powerWatts() const = 0;

    /** Per-frame energy in microjoules. */
    double
    energyUj(const Workload &w, bool compressed, unsigned batch) const
    {
        return timeUs(w, compressed, batch) * powerWatts();
    }
};

/** Calibration constants of one roofline platform. */
struct RooflineParams
{
    std::string name;
    double dense_bw_gbs = 0.0;     ///< batch-1 dense GEMV bandwidth
    double sparse_bw_gbs = 0.0;    ///< batch-1 sparse CSRMV bandwidth
    double dense_gemm_gflops = 0.0;///< batched dense throughput
    double sparse_gflops = 0.0;    ///< batched sparse throughput
    double overhead_us = 0.0;      ///< per-kernel fixed overhead
    double power_watts = 0.0;      ///< measured socket/board power
};

/** Bandwidth/compute roofline with calibrated constants. */
class RooflinePlatform : public PlatformModel
{
  public:
    explicit RooflinePlatform(RooflineParams params);

    const std::string &name() const override { return params_.name; }
    double timeUs(const Workload &w, bool compressed,
                  unsigned batch) const override;
    double powerWatts() const override { return params_.power_watts; }

    const RooflineParams &params() const { return params_; }

  private:
    RooflineParams params_;
};

/** Core i7-5930K (Haswell-E), calibrated to Table IV. */
RooflineParams cpuCoreI7Params();

/** GeForce GTX Titan X, calibrated to Table IV. */
RooflineParams gpuTitanXParams();

/** Tegra K1 (AP + DRAM power per §V), calibrated to Table IV. */
RooflineParams mobileGpuTegraK1Params();

/** The three general-purpose baselines in paper order. */
std::vector<std::unique_ptr<PlatformModel>> makeBaselinePlatforms();

} // namespace eie::platforms

#endif // EIE_PLATFORMS_ROOFLINE_HH
