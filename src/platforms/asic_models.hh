/**
 * @file
 * Models of the ASIC/FPGA comparison platforms of Table V.
 *
 *  - DaDianNao [11]: all-eDRAM dense accelerator. M×V is completely
 *    memory-bound, so the paper estimates its throughput from the
 *    peak eDRAM bandwidth: 16 tiles x 4 banks x (1024b/8) x 606 MHz
 *    = 4964 GB/s over 16-bit dense weights. It cannot exploit
 *    sparsity or weight sharing.
 *  - TrueNorth [40]: published TIMIT LSTM throughput (the paper's
 *    footnote substitutes it for FC7, "different benchmarks differ
 *    < 2x"), 0.18 W, 430 mm2, 1-bit synapses, 256M parameter
 *    capacity.
 *  - A-Eye [14]: FPGA CONV accelerator fetching FC parameters from
 *    DDR3; FC-layer throughput is DDR3-bandwidth-bound.
 */

#ifndef EIE_PLATFORMS_ASIC_MODELS_HH
#define EIE_PLATFORMS_ASIC_MODELS_HH

#include "platforms/roofline.hh"

namespace eie::platforms {

/** Static datasheet row for Table V. */
struct PlatformSpec
{
    std::string name;
    int year = 0;
    std::string type;
    unsigned technology_nm = 0;
    std::string clock_mhz;     ///< "Async" for TrueNorth
    std::string memory_type;
    std::string max_model_params;
    std::string quantization;
    double area_mm2 = 0.0;     ///< 0 = not reported
    double power_watts = 0.0;
};

/** DaDianNao: peak-eDRAM-bandwidth-bound dense M×V. */
class DaDianNaoModel : public PlatformModel
{
  public:
    const std::string &name() const override { return name_; }

    double
    timeUs(const Workload &w, bool compressed,
           unsigned batch) const override
    {
        (void)compressed; // must expand to dense form (§II)
        (void)batch;
        const double bytes = w.denseWeightBytes(2.0); // 16-bit fixed
        return bytes / (peak_bw_gbs_ * 1e3);
    }

    double powerWatts() const override { return 15.97; }

    static PlatformSpec spec();

  private:
    std::string name_ = "DaDianNao";
    static constexpr double peak_bw_gbs_ = 4964.0;
};

/** TrueNorth: fixed published operating point. */
class TrueNorthModel : public PlatformModel
{
  public:
    const std::string &name() const override { return name_; }

    double
    timeUs(const Workload &w, bool compressed,
           unsigned batch) const override
    {
        (void)w;
        (void)compressed;
        (void)batch;
        return 1e6 / published_frames_per_s_;
    }

    double powerWatts() const override { return 0.18; }

    static PlatformSpec spec();

  private:
    std::string name_ = "TrueNorth";
    static constexpr double published_frames_per_s_ = 1989.0;
};

/** A-Eye: DDR3-bound FC execution on an FPGA. */
class AEyeModel : public PlatformModel
{
  public:
    const std::string &name() const override { return name_; }

    double
    timeUs(const Workload &w, bool compressed,
           unsigned batch) const override
    {
        (void)compressed; // optimised for CONV; FC streams from DDR3
        (void)batch;
        const double bytes = w.denseWeightBytes(2.0); // 16-bit fixed
        return bytes / (ddr3_bw_gbs_ * 1e3);
    }

    double powerWatts() const override { return 9.63; }

    static PlatformSpec spec();

  private:
    std::string name_ = "A-Eye (FPGA)";
    static constexpr double ddr3_bw_gbs_ = 1.1;
};

/** Datasheet rows for the general-purpose platforms of Table V. */
PlatformSpec cpuSpec();
PlatformSpec gpuSpec();
PlatformSpec mobileGpuSpec();

} // namespace eie::platforms

#endif // EIE_PLATFORMS_ASIC_MODELS_HH
