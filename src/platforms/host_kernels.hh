/**
 * @file
 * Runnable software M×V kernels — the honest, measurable counterpart
 * of the roofline models. bench/host_kernels times them with
 * google-benchmark on the build machine to confirm the qualitative
 * claim of §VI-A: model compression by itself on a general-purpose
 * processor yields only ~3x, because the irregular CSR walk wastes
 * most of the bandwidth win, while EIE's dedicated logic keeps it.
 */

#ifndef EIE_PLATFORMS_HOST_KERNELS_HH
#define EIE_PLATFORMS_HOST_KERNELS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "compress/interleaved.hh"
#include "nn/sparse.hh"

namespace eie::platforms {

/** Row-major CSR image of a sparse matrix (the cuSPARSE/MKL layout). */
struct CsrMatrix
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<float> values;
    std::vector<std::uint32_t> col_idx;
    std::vector<std::uint32_t> row_ptr; ///< rows+1 entries

    /** Convert from the column-major sparse representation. */
    static CsrMatrix fromSparse(const nn::SparseMatrix &m);
};

/** y = W a, dense row-major GEMV. */
void denseGemv(const nn::Matrix &w, std::span<const float> a,
               std::span<float> y);

/** y = W a over CSR storage (the MKL CSRMV access pattern). */
void csrSpmv(const CsrMatrix &w, std::span<const float> a,
             std::span<float> y);

/**
 * y = W a over the EIE interleaved CSC image in software: walks only
 * non-zero activations, decodes 4-bit indices through the codebook —
 * the access pattern a CPU would execute on the compressed model,
 * with all of EIE's indirection overheads visible.
 */
void cscCodebookSpmv(const compress::InterleavedCsc &w,
                     std::span<const float> a, std::span<float> y);

} // namespace eie::platforms

#endif // EIE_PLATFORMS_HOST_KERNELS_HH
