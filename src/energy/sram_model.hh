/**
 * @file
 * Analytical SRAM energy/area model ("cacti-lite") standing in for
 * Cacti [25], which the paper used for SRAM area and energy.
 *
 * Read energy model: E(C, W) = e0 * sqrt(C / C0) * (W + Wo) / (W0 + Wo)
 *  - Anchor: a 32-bit read from a 32KB array costs 5 pJ (Table I).
 *  - Capacity term: bitline/decoder energy grows ~ sqrt(capacity).
 *  - Width term: a constant per-access cost (wordline drive, row
 *    decode; Wo = 36 bit-equivalents) plus a per-bit cost (bitlines,
 *    sense amps). Narrow interfaces pay the fixed cost per few bits;
 *    wide ones amortise it but burn proportionally more bitlines.
 *    Combined with the simulator's read counts (which stop halving
 *    past 64 bits because fetched row tails fall into skipped
 *    columns), this is what makes the Figure 9 total-energy curve
 *    bottom out at the paper's 64-bit design point.
 *
 * Area model: bit cell area plus per-array periphery overhead that
 *  dominates small arrays. Calibrated against the paper's Table II
 *  module areas (SpmatRead 469,412 um2 for 128KB, PtrRead
 *  121,849 um2 for 32KB in two banks, ActRW 18,934 um2 for 2KB).
 */

#ifndef EIE_ENERGY_SRAM_MODEL_HH
#define EIE_ENERGY_SRAM_MODEL_HH

#include <cstddef>

namespace eie::energy {

/** Analytical SRAM energy and area estimates at 45 nm. */
class SramModel
{
  public:
    /**
     * Dynamic energy of one read access, picojoules.
     *
     * @param capacity_bytes array capacity
     * @param width_bits     interface width per access
     */
    static double readEnergyPj(std::size_t capacity_bytes,
                               unsigned width_bits);

    /** Write energy; SRAM writes cost roughly the same as reads at
     *  this granularity of modelling. */
    static double writeEnergyPj(std::size_t capacity_bytes,
                                unsigned width_bits);

    /** Array area in square micrometres at 45 nm. */
    static double areaUm2(std::size_t capacity_bytes);

    /** Leakage power in milliwatts (grows with capacity). */
    static double leakageMw(std::size_t capacity_bytes);
};

} // namespace eie::energy

#endif // EIE_ENERGY_SRAM_MODEL_HH
