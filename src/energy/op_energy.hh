/**
 * @file
 * Operation energy model for a 45 nm CMOS process — Table I of the
 * paper (from Horowitz's energy survey [9]) plus bit-width scaling for
 * the Figure 10 precision study.
 *
 * Width scaling: adder energy grows linearly with width; multiplier
 * energy grows super-linearly (array multiplier ~ quadratic, with the
 * exponent calibrated so a 16-bit fixed multiply costs 5x less than a
 * 32-bit fixed multiply, as §VI-C reports).
 */

#ifndef EIE_ENERGY_OP_ENERGY_HH
#define EIE_ENERGY_OP_ENERGY_HH

namespace eie::energy {

/** Table I constants and width-scaled variants. All in picojoules. */
class OpEnergy
{
  public:
    // --- Table I anchors (45 nm) ------------------------------------
    static constexpr double int_add_32 = 0.1;
    static constexpr double float_add_32 = 0.9;
    static constexpr double int_mult_32 = 3.1;
    static constexpr double float_mult_32 = 3.7;
    static constexpr double sram_read_32b_32k = 5.0;
    static constexpr double dram_read_32b = 640.0;

    /** Relative cost column of Table I (vs a 32-bit int add). */
    static constexpr double
    relativeCost(double energy_pj)
    {
        return energy_pj / int_add_32;
    }

    /** Integer add energy at @p bits width (linear scaling). */
    static double intAdd(unsigned bits);

    /**
     * Integer multiply energy at @p bits width. Exponent 2.32
     * calibrates 16-bit to 3.1/5 = 0.62 pJ ("5x less energy than
     * 32-bit fixed-point", §VI-C).
     */
    static double intMult(unsigned bits);

    /** Float multiply energy (32-bit anchor; 6.2x the 16-bit fixed
     *  multiply, §VI-C). */
    static double floatMult(unsigned bits);

    /** Float add energy. */
    static double floatAdd(unsigned bits);

    /** DRAM read energy for @p bits transferred (linear in width). */
    static double dramRead(unsigned bits);

    /**
     * One multiply-accumulate at the given precision: multiply plus
     * accumulator add.
     */
    static double
    fixedMac(unsigned bits)
    {
        return intMult(bits) + intAdd(bits);
    }
};

} // namespace eie::energy

#endif // EIE_ENERGY_OP_ENERGY_HH
