/**
 * @file
 * Area/power model of one EIE PE, standing in for the paper's
 * synthesis flow (Design Compiler + IC Compiler + PrimeTime, §V).
 *
 * Structure-from-first-principles, constants-by-calibration: SRAM
 * access energies and array areas come from SramModel / OpEnergy;
 * per-module logic constants are calibrated so that the default
 * configuration at nominal steady-state activity lands on the paper's
 * Table II breakdown (total 9.157 mW, 0.638 mm2, with SpmatRead
 * dominating both). The model then extrapolates across the design
 * space (SRAM width for Figure 9, PE count for Table V) using real
 * simulator activity.
 */

#ifndef EIE_ENERGY_PE_MODEL_HH
#define EIE_ENERGY_PE_MODEL_HH

#include "core/config.hh"
#include "core/run_stats.hh"

namespace eie::energy {

/** Per-cycle activity rates of one PE (all 0..1 unless noted). */
struct PeActivity
{
    double alu_issue_rate = 0.0;   ///< entries issued per cycle
    double spmat_fetch_rate = 0.0; ///< wide-row fetches per cycle
    double ptr_read_rate = 0.0;    ///< pointer-bank reads per cycle
                                   ///< (0..2)
    double act_access_rate = 0.0;  ///< act SRAM accesses per cycle
    double queue_push_rate = 0.0;  ///< queue pushes per cycle

    /**
     * The steady-state operating point of §VI: one entry issued per
     * cycle, a 64-bit Spmat row fetched every 8 cycles, a column
     * (avg 6.4 entries at 4K inputs, 10% density, 64 PEs) switched
     * every ~6.4 cycles costing two banked pointer reads.
     */
    static PeActivity nominal();

    /** Average per-PE activity measured from a simulator run. */
    static PeActivity fromRun(const core::RunStats &stats);
};

/** Table II-style per-module breakdown. */
struct PeBreakdown
{
    double act_queue = 0.0;
    double ptr_read = 0.0;
    double spmat_read = 0.0;
    double arith = 0.0;
    double act_rw = 0.0;
    double filler = 0.0; ///< filler cells (area only)

    double
    total() const
    {
        return act_queue + ptr_read + spmat_read + arith + act_rw +
            filler;
    }
};

/** Area/power estimates for one PE of a given configuration. */
class PeModel
{
  public:
    explicit PeModel(const core::EieConfig &config);

    /** Module area breakdown in um^2 (Table II right column). */
    PeBreakdown areaUm2() const;

    /** Module power breakdown in mW at @p activity
     *  (Table II left column at nominal activity). */
    PeBreakdown powerMw(const PeActivity &activity) const;

    /** Synthesis-reported critical path (§VI): 1.15 ns at 45 nm. */
    double criticalPathNs() const { return 1.15; }

    /** One LNZD node: 0.023 mW / 189 um2 (§VI). */
    static constexpr double lnzd_node_mw = 0.023;
    static constexpr double lnzd_node_um2 = 189.0;

  private:
    core::EieConfig config_;
};

/** Whole-accelerator power in watts at the given per-PE activity. */
double acceleratorPowerWatts(const core::EieConfig &config,
                             const PeActivity &activity);

/** Energy of one simulated run in microjoules. */
double runEnergyUj(const core::EieConfig &config,
                   const core::RunStats &stats);

/** Whole-accelerator area in mm^2 (PEs + LNZD tree). */
double acceleratorAreaMm2(const core::EieConfig &config);

} // namespace eie::energy

#endif // EIE_ENERGY_PE_MODEL_HH
