#include "energy/op_energy.hh"

#include <cmath>

#include "common/logging.hh"

namespace eie::energy {

namespace {

/** Calibrated multiplier width exponent: 3.1 * (16/32)^a = 0.62. */
constexpr double mult_exponent = 2.3219281; // log2(5)

double
widthRatio(unsigned bits)
{
    fatal_if(bits == 0 || bits > 64, "unsupported width %u", bits);
    return static_cast<double>(bits) / 32.0;
}

} // namespace

double
OpEnergy::intAdd(unsigned bits)
{
    return int_add_32 * widthRatio(bits);
}

double
OpEnergy::intMult(unsigned bits)
{
    return int_mult_32 * std::pow(widthRatio(bits), mult_exponent);
}

double
OpEnergy::floatMult(unsigned bits)
{
    return float_mult_32 * std::pow(widthRatio(bits), mult_exponent);
}

double
OpEnergy::floatAdd(unsigned bits)
{
    return float_add_32 * widthRatio(bits);
}

double
OpEnergy::dramRead(unsigned bits)
{
    return dram_read_32b * widthRatio(bits);
}

} // namespace eie::energy
