#include "energy/sram_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace eie::energy {

namespace {

// Energy anchors (Table I): 32-bit read of a 32KB array = 5 pJ.
constexpr double anchor_energy_pj = 5.0;
constexpr double anchor_capacity_bytes = 32.0 * 1024.0;
constexpr double anchor_width_bits = 32.0;
// Fixed per-access cost (wordline/decoder) in bit-equivalents.
constexpr double width_offset_bits = 36.0;

// Area calibration: a linear fit through Table II's three array
// sizes (SpmatRead 469,412 um2 at 128KB; PtrRead 121,849 um2 at
// 32KB; the act SRAM share of ActRW at 2KB) gives 0.442 um2 per bit
// cell plus ~5,950 um2 of periphery per array.
constexpr double bit_area_um2 = 0.442;
constexpr double periphery_um2 = 5949.0;

} // namespace

double
SramModel::readEnergyPj(std::size_t capacity_bytes, unsigned width_bits)
{
    fatal_if(capacity_bytes == 0, "zero-capacity SRAM");
    fatal_if(width_bits == 0, "zero-width SRAM access");
    const double cap_term =
        std::sqrt(static_cast<double>(capacity_bytes) /
                  anchor_capacity_bytes);
    const double width_term =
        (static_cast<double>(width_bits) + width_offset_bits) /
        (anchor_width_bits + width_offset_bits);
    return anchor_energy_pj * cap_term * width_term;
}

double
SramModel::writeEnergyPj(std::size_t capacity_bytes, unsigned width_bits)
{
    // Write drivers cost slightly more than sense amps.
    return 1.1 * readEnergyPj(capacity_bytes, width_bits);
}

double
SramModel::areaUm2(std::size_t capacity_bytes)
{
    fatal_if(capacity_bytes == 0, "zero-capacity SRAM");
    const double bits = static_cast<double>(capacity_bytes) * 8.0;
    return bits * bit_area_um2 + periphery_um2;
}

double
SramModel::leakageMw(std::size_t capacity_bytes)
{
    // ~8 nW per byte at 45 nm high-density cells.
    return static_cast<double>(capacity_bytes) * 8e-6;
}

} // namespace eie::energy
