/**
 * @file
 * Technology scaling between process nodes, used to project the
 * 45 nm EIE design to the 28 nm point of Table V ("EIE (28nm,
 * 256PE)") and to compare against competitors built at 28 nm.
 *
 * Classic scaling rules (area ~ s^2, delay ~ s, energy ~ s * V^2)
 * plus a documented projection helper that reproduces the paper's own
 * published operating point: 1200 MHz at 28 nm (a conservative 1.5x
 * over 800 MHz, less than the full 45/28 = 1.6x delay scaling) with
 * per-PE power held constant (the energy/op saving spent on the
 * higher clock).
 */

#ifndef EIE_ENERGY_TECH_SCALING_HH
#define EIE_ENERGY_TECH_SCALING_HH

namespace eie::energy {

/** First-order constant-field scaling between feature sizes. */
class TechScaling
{
  public:
    /** Area multiplier when porting from @p from_nm to @p to_nm. */
    static double
    areaScale(double from_nm, double to_nm)
    {
        const double s = to_nm / from_nm;
        return s * s;
    }

    /** Gate-delay multiplier (smaller = faster). */
    static double
    delayScale(double from_nm, double to_nm)
    {
        return to_nm / from_nm;
    }

    /** Dynamic energy-per-op multiplier at supply voltages
     *  @p v_from -> @p v_to. */
    static double
    energyScale(double from_nm, double to_nm, double v_from = 1.0,
                double v_to = 0.9)
    {
        const double s = to_nm / from_nm;
        const double v = v_to / v_from;
        return s * v * v;
    }
};

/** The paper's published 28 nm projection parameters (Table V). */
struct Eie28nmProjection
{
    /** Clock frequency multiplier 800 MHz -> 1200 MHz. */
    static constexpr double freq_scale = 1.5;
    /** Area multiplier per PE: (28/45)^2. */
    static constexpr double area_scale = (28.0 / 45.0) * (28.0 / 45.0);
    /** Per-PE power multiplier: energy/op scaling (~0.66x) spent on
     *  the 1.5x clock, net ~1.0 (0.59 W x 4 = 2.36 W in Table V). */
    static constexpr double power_scale = 1.0;
};

} // namespace eie::energy

#endif // EIE_ENERGY_TECH_SCALING_HH
