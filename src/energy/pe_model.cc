#include "energy/pe_model.hh"

#include <algorithm>

#include "energy/op_energy.hh"
#include "energy/sram_model.hh"

namespace eie::energy {

namespace {

// --- Calibration constants (fit to Table II at nominal activity) ----

// Flip-flop area per bit including local clocking, um2 (fits the
// 758 um2 activation queue: 8 x 32 flop bits + control).
constexpr double flop_area_um2_per_bit = 1.4;
constexpr double queue_control_area_um2 = 400.0;

// Arithmetic unit: 16x16 multiplier + 16-bit adder + codebook
// registers + pipeline registers (Table II: 3,110 um2).
constexpr double arith_area_um2 = 3110.0;

// ActRW control logic (ReLU unit, address generation, bypass muxes)
// on top of the act SRAM and the regfiles (closes Table II's
// 18,934 um2).
constexpr double act_rw_logic_area_um2 = 2876.0;

// Filler-cell fraction of placed module area (Table II: 3.76% of
// the total = ~3.9% of the module sum).
constexpr double filler_fraction = 0.039;

// Per-module logic/clock energy constants, pJ per event at 45 nm,
// absorbing decode muxes, pipeline registers and local clock load on
// top of the first-principles SRAM/arithmetic energies.
constexpr double spmat_logic_pj_per_entry = 3.04;
constexpr double ptr_logic_pj_per_cycle = 1.09;
constexpr double arith_pipeline_pj_per_mac = 0.78;
constexpr double regfile_pj_per_mac = 1.29;
constexpr double queue_clock_mw_per_bit = 0.00038;
constexpr double queue_push_pj = 0.20; // per bit-write event x 32b

} // namespace

PeActivity
PeActivity::nominal()
{
    PeActivity a;
    a.alu_issue_rate = 1.0;
    a.spmat_fetch_rate = 1.0 / 8.0;
    a.ptr_read_rate = 2.0 / 6.4;
    a.act_access_rate = 0.05;
    a.queue_push_rate = 1.0 / 6.4;
    return a;
}

PeActivity
PeActivity::fromRun(const core::RunStats &stats)
{
    PeActivity a;
    if (stats.cycles == 0 || stats.n_pe == 0)
        return a;
    const double pe_cycles =
        static_cast<double>(stats.cycles) * stats.n_pe;
    a.alu_issue_rate =
        static_cast<double>(stats.total_entries) / pe_cycles;
    a.spmat_fetch_rate =
        static_cast<double>(stats.spmat_row_fetches) / pe_cycles;
    a.ptr_read_rate =
        static_cast<double>(stats.ptr_sram_reads) / pe_cycles;
    a.act_access_rate =
        static_cast<double>(stats.act_sram_reads +
                            stats.act_sram_writes) / pe_cycles;
    // Every PE enqueues every broadcast.
    a.queue_push_rate =
        static_cast<double>(stats.broadcasts) /
        static_cast<double>(stats.cycles);
    return a;
}

PeModel::PeModel(const core::EieConfig &config) : config_(config)
{
    config_.validate();
}

PeBreakdown
PeModel::areaUm2() const
{
    PeBreakdown area;

    const std::size_t spmat_bytes = config_.spmat_capacity_entries;
    const std::size_t ptr_bytes =
        static_cast<std::size_t>(config_.ptr_capacity) * 2;
    const std::size_t act_bytes =
        static_cast<std::size_t>(config_.act_sram_entries) * 2;

    area.spmat_read = SramModel::areaUm2(spmat_bytes);
    area.ptr_read = SramModel::areaUm2(ptr_bytes);

    // ActRW = act SRAM + two regfile copies (src/dst) of 16-bit
    // entries + control logic.
    const double regfile_bits = 2.0 * config_.regfile_entries * 16.0;
    area.act_rw = SramModel::areaUm2(act_bytes) +
        regfile_bits * flop_area_um2_per_bit + act_rw_logic_area_um2;

    // Activation queue: fifo_depth x (16b value + 16b index) flops.
    area.act_queue = config_.fifo_depth * 32.0 * flop_area_um2_per_bit +
        queue_control_area_um2;

    area.arith = arith_area_um2;

    const double module_sum = area.act_queue + area.ptr_read +
        area.spmat_read + area.arith + area.act_rw;
    area.filler = filler_fraction * module_sum;
    return area;
}

PeBreakdown
PeModel::powerMw(const PeActivity &activity) const
{
    PeBreakdown power;
    const double f = config_.clock_ghz; // GHz: pJ * GHz = mW

    const std::size_t spmat_bytes = config_.spmat_capacity_entries;
    const std::size_t ptr_bytes =
        static_cast<std::size_t>(config_.ptr_capacity) * 2;
    const std::size_t act_bytes =
        static_cast<std::size_t>(config_.act_sram_entries) * 2;

    // Sparse matrix read: wide-row fetches plus per-entry decode.
    power.spmat_read =
        activity.spmat_fetch_rate *
            SramModel::readEnergyPj(spmat_bytes,
                                    config_.spmat_width_bits) * f +
        activity.alu_issue_rate * spmat_logic_pj_per_entry * f +
        SramModel::leakageMw(spmat_bytes);

    // Pointer read: banked 16-bit reads plus always-on decode logic.
    power.ptr_read =
        activity.ptr_read_rate *
            SramModel::readEnergyPj(ptr_bytes / 2, 16) * f +
        ptr_logic_pj_per_cycle * f +
        SramModel::leakageMw(ptr_bytes);

    // Arithmetic: 16-bit MAC plus pipeline registers.
    const unsigned mac_bits = config_.act_format.totalBits;
    power.arith = activity.alu_issue_rate *
        (OpEnergy::fixedMac(mac_bits) + arith_pipeline_pj_per_mac) * f;

    // Activation read/write: regfile traffic per MAC plus act SRAM.
    power.act_rw =
        activity.alu_issue_rate * regfile_pj_per_mac * f +
        activity.act_access_rate *
            SramModel::readEnergyPj(act_bytes, 64) * f +
        SramModel::leakageMw(act_bytes);

    // Activation queue: flop clock load plus push energy.
    power.act_queue =
        config_.fifo_depth * 32.0 * queue_clock_mw_per_bit *
            (f / 0.8) +
        activity.queue_push_rate * 32.0 * queue_push_pj * f / 32.0;

    power.filler = 0.0;
    return power;
}

double
acceleratorPowerWatts(const core::EieConfig &config,
                      const PeActivity &activity)
{
    const PeModel model(config);
    const double pe_mw = model.powerMw(activity).total();
    const double lnzd_mw =
        config.lnzdNodeCount() * PeModel::lnzd_node_mw;
    return (pe_mw * config.n_pe + lnzd_mw) / 1000.0;
}

double
runEnergyUj(const core::EieConfig &config, const core::RunStats &stats)
{
    const double watts =
        acceleratorPowerWatts(config, PeActivity::fromRun(stats));
    const double seconds = stats.timeUs() * 1e-6;
    return watts * seconds * 1e6;
}

double
acceleratorAreaMm2(const core::EieConfig &config)
{
    const PeModel model(config);
    const double pe_um2 = model.areaUm2().total();
    const double lnzd_um2 =
        config.lnzdNodeCount() * PeModel::lnzd_node_um2;
    return (pe_um2 * config.n_pe + lnzd_um2) / 1e6;
}

} // namespace eie::energy
