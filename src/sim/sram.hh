/**
 * @file
 * Single-ported synchronous SRAM model.
 *
 * A read requested in cycle t delivers its data in cycle t+1 (standard
 * synchronous SRAM behaviour, and the latency the EIE pipeline is built
 * around). The model stores whole words of up to 64 bits; wider
 * physical rows (the 64-bit Spmat interface, or the Figure 9 width
 * sweep up to 512 bits) are modelled as multiple logical 64-bit words
 * with a shared access counter, because only the counts and the
 * energy-per-access (from energy::SramModel) matter architecturally.
 *
 * Access counts feed the energy model (Figure 9, Table II).
 */

#ifndef EIE_SIM_SRAM_HH
#define EIE_SIM_SRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/stats.hh"

namespace eie::sim {

/** Single read/write port, synchronous-read SRAM of 64-bit words. */
class Sram
{
  public:
    /**
     * @param name       instance name for statistics
     * @param words      number of 64-bit storage words
     * @param stats      parent stat group (counters created beneath it)
     */
    Sram(const std::string &name, std::size_t words, StatGroup &stats);

    /** Backdoor initialisation (DMA in I/O mode): no access counted. */
    void load(std::size_t addr, std::uint64_t value);

    /** Backdoor bulk initialisation starting at address 0. */
    void load(const std::vector<std::uint64_t> &contents);

    /** Backdoor read for result extraction / verification. */
    std::uint64_t peek(std::size_t addr) const;

    /**
     * Issue a read of word @p addr this cycle; data is visible through
     * dataOut() after tick(). At most one access (read or write) per
     * cycle: single-ported.
     */
    void read(std::size_t addr);

    /** Issue a write of @p value to word @p addr this cycle. */
    void write(std::size_t addr, std::uint64_t value);

    /** Data from the read issued in the previous cycle. */
    std::uint64_t dataOut() const { return data_out_; }

    /** True if a read was performed last cycle (dataOut() is fresh). */
    bool dataValid() const { return data_valid_; }

    /** Clock edge: perform the queued access. */
    void tick();

    /** Number of storage words. */
    std::size_t words() const { return storage_.size(); }

    /** Total reads performed. */
    std::uint64_t readCount() const { return reads_.value(); }

    /** Total writes performed. */
    std::uint64_t writeCount() const { return writes_.value(); }

  private:
    enum class Op { None, Read, Write };

    std::vector<std::uint64_t> storage_;
    Counter &reads_;
    Counter &writes_;

    Op pending_op_ = Op::None;
    std::size_t pending_addr_ = 0;
    std::uint64_t pending_wdata_ = 0;

    std::uint64_t data_out_ = 0;
    bool data_valid_ = false;
};

} // namespace eie::sim

#endif // EIE_SIM_SRAM_HH
