/**
 * @file
 * Hierarchical statistics registry, in the spirit of gem5's Stats
 * package but deliberately small: named 64-bit counters organised in a
 * tree of groups, dumped as "path.to.counter  value  # description".
 */

#ifndef EIE_SIM_STATS_HH
#define EIE_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>

namespace eie::sim {

/** A monotonically-written 64-bit statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t delta) { value_ += delta; return *this; }

    /** Current value. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A named group of counters and child groups. Groups form a tree;
 * the full path of a counter is the dot-joined group names plus the
 * counter name.
 */
class StatGroup
{
  public:
    /**
     * @param name   this group's name segment (no dots)
     * @param parent parent group, or nullptr for a root
     */
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /**
     * Find or create a counter in this group.
     *
     * @param name counter name segment
     * @param desc one-line description (used on first creation)
     */
    Counter &counter(const std::string &name, const std::string &desc);

    /**
     * Look up a counter value by path relative to this group, e.g.
     * "pe0.actQueue.pushes". Fatal if the path does not resolve.
     */
    std::uint64_t value(const std::string &path) const;

    /** True if a counter exists at @p path relative to this group. */
    bool has(const std::string &path) const;

    /** Dump this subtree, one counter per line, prefix = full path. */
    void dump(std::ostream &os) const;

    /** Reset every counter in this subtree. */
    void resetAll();

    /** This group's name segment. */
    const std::string &name() const { return name_; }

    /** Full dotted path from the root. */
    std::string fullPath() const;

  private:
    struct Stat
    {
        Counter counter;
        std::string description;
    };

    const Counter *find(const std::string &path) const;

    std::string name_;
    StatGroup *parent_;
    std::map<std::string, Stat> stats_;
    std::map<std::string, StatGroup *> children_;
};

} // namespace eie::sim

#endif // EIE_SIM_STATS_HH
