#include "sim/sram.hh"

namespace eie::sim {

Sram::Sram(const std::string &name, std::size_t words, StatGroup &stats)
    : storage_(words, 0),
      reads_(stats.counter(name + "_reads", "SRAM read accesses")),
      writes_(stats.counter(name + "_writes", "SRAM write accesses"))
{
    panic_if(words == 0, "SRAM '%s' must have at least one word",
             name.c_str());
}

void
Sram::load(std::size_t addr, std::uint64_t value)
{
    panic_if(addr >= storage_.size(), "SRAM load address %zu out of %zu",
             addr, storage_.size());
    storage_[addr] = value;
}

void
Sram::load(const std::vector<std::uint64_t> &contents)
{
    panic_if(contents.size() > storage_.size(),
             "SRAM image (%zu words) exceeds capacity (%zu words)",
             contents.size(), storage_.size());
    std::copy(contents.begin(), contents.end(), storage_.begin());
}

std::uint64_t
Sram::peek(std::size_t addr) const
{
    panic_if(addr >= storage_.size(), "SRAM peek address %zu out of %zu",
             addr, storage_.size());
    return storage_[addr];
}

void
Sram::read(std::size_t addr)
{
    panic_if(pending_op_ != Op::None,
             "second access to single-ported SRAM in one cycle");
    panic_if(addr >= storage_.size(), "SRAM read address %zu out of %zu",
             addr, storage_.size());
    pending_op_ = Op::Read;
    pending_addr_ = addr;
}

void
Sram::write(std::size_t addr, std::uint64_t value)
{
    panic_if(pending_op_ != Op::None,
             "second access to single-ported SRAM in one cycle");
    panic_if(addr >= storage_.size(), "SRAM write address %zu out of %zu",
             addr, storage_.size());
    pending_op_ = Op::Write;
    pending_addr_ = addr;
    pending_wdata_ = value;
}

void
Sram::tick()
{
    data_valid_ = false;
    switch (pending_op_) {
      case Op::Read:
        data_out_ = storage_[pending_addr_];
        data_valid_ = true;
        ++reads_;
        break;
      case Op::Write:
        storage_[pending_addr_] = pending_wdata_;
        ++writes_;
        break;
      case Op::None:
        break;
    }
    pending_op_ = Op::None;
}

} // namespace eie::sim
