#include "sim/trace.hh"

#include <bitset>

#include "common/logging.hh"

namespace eie::sim {

namespace {

/** Short printable identifier for VCD signal #n. */
std::string
vcdId(std::size_t n)
{
    // Printable ASCII 33..126, base-94 little-endian.
    std::string id;
    do {
        id.push_back(static_cast<char>(33 + n % 94));
        n /= 94;
    } while (n > 0);
    return id;
}

} // namespace

VcdWriter::VcdWriter(std::ostream &os, std::string timescale)
    : os_(os), timescale_(std::move(timescale))
{}

void
VcdWriter::addSignal(const std::string &name, unsigned width,
                     std::function<std::uint64_t()> getter)
{
    panic_if(started_, "cannot add signals after start()");
    panic_if(width == 0 || width > 64, "unsupported VCD width %u", width);
    Entry entry;
    entry.name = name;
    entry.width = width;
    entry.getter = std::move(getter);
    entry.id = vcdId(entries_.size());
    entries_.push_back(std::move(entry));
}

void
VcdWriter::start()
{
    panic_if(started_, "start() called twice");
    started_ = true;

    os_ << "$timescale " << timescale_ << " $end\n";
    os_ << "$scope module eie $end\n";
    for (const Entry &entry : entries_) {
        // VCD identifiers cannot contain dots: flatten hierarchy.
        std::string flat = entry.name;
        for (char &c : flat)
            if (c == '.')
                c = '_';
        os_ << "$var wire " << entry.width << " " << entry.id << " "
            << flat << " $end\n";
    }
    os_ << "$upscope $end\n$enddefinitions $end\n";
}

void
VcdWriter::emitValue(const Entry &entry, std::uint64_t value)
{
    if (entry.width == 1) {
        os_ << (value & 1) << entry.id << "\n";
    } else {
        os_ << "b";
        bool leading = true;
        for (int bit = static_cast<int>(entry.width) - 1; bit >= 0; --bit) {
            const bool v = (value >> bit) & 1;
            if (v)
                leading = false;
            if (!leading || bit == 0)
                os_ << (v ? '1' : '0');
        }
        os_ << " " << entry.id << "\n";
    }
}

void
VcdWriter::sample(std::uint64_t cycle)
{
    panic_if(!started_, "sample() before start()");
    bool stamped = false;
    for (Entry &entry : entries_) {
        const std::uint64_t value = entry.getter();
        if (!entry.has_last || value != entry.last) {
            if (!stamped) {
                os_ << "#" << cycle << "\n";
                stamped = true;
            }
            emitValue(entry, value);
            entry.last = value;
            entry.has_last = true;
        }
    }
}

} // namespace eie::sim
