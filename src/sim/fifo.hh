/**
 * @file
 * Registered hardware FIFO model.
 *
 * Semantics match a synchronous FIFO with registered occupancy flags:
 * pushes and pops requested during a cycle become visible after tick()
 * (the clock edge). Flow control (full()/empty()) is evaluated on the
 * registered state, which is the conservative discipline the EIE
 * activation queue needs ("the broadcast is disabled if any PE has a
 * full queue", §IV).
 */

#ifndef EIE_SIM_FIFO_HH
#define EIE_SIM_FIFO_HH

#include <cstddef>
#include <deque>
#include <optional>

#include "common/logging.hh"

namespace eie::sim {

/** Synchronous FIFO with at most one push and one pop per cycle. */
template <typename T>
class Fifo
{
  public:
    /** @param capacity maximum number of stored entries (>= 1). */
    explicit Fifo(std::size_t capacity) : capacity_(capacity)
    {
        panic_if(capacity_ == 0, "FIFO capacity must be >= 1");
    }

    /** Registered occupancy. */
    std::size_t size() const { return entries_.size(); }

    /** Capacity given at construction. */
    std::size_t capacity() const { return capacity_; }

    /** True if no entry is visible this cycle. */
    bool empty() const { return entries_.empty(); }

    /** True if the registered occupancy equals the capacity. */
    bool full() const { return entries_.size() >= capacity_; }

    /** Head entry; requires !empty(). */
    const T &
    front() const
    {
        panic_if(entries_.empty(), "front() on empty FIFO");
        return entries_.front();
    }

    /**
     * Request a push this cycle. The entry appears after tick().
     * Pushing while full() is a modelling error (the producer must
     * respect flow control) and panics.
     */
    void
    push(const T &value)
    {
        panic_if(pending_push_.has_value(),
                 "multiple pushes into FIFO in one cycle");
        panic_if(full() && !pending_pop_,
                 "push into full FIFO without concurrent pop");
        pending_push_ = value;
    }

    /** Request a pop this cycle; the head disappears after tick(). */
    void
    pop()
    {
        panic_if(entries_.empty(), "pop() on empty FIFO");
        panic_if(pending_pop_, "multiple pops from FIFO in one cycle");
        pending_pop_ = true;
    }

    /** Clock edge: commit the pending push/pop. */
    void
    tick()
    {
        if (pending_pop_) {
            entries_.pop_front();
            pending_pop_ = false;
        }
        if (pending_push_.has_value()) {
            entries_.push_back(*pending_push_);
            pending_push_.reset();
            panic_if(entries_.size() > capacity_, "FIFO overflow");
        }
    }

    /** Drop all contents and pending operations. */
    void
    clear()
    {
        entries_.clear();
        pending_push_.reset();
        pending_pop_ = false;
    }

  private:
    std::size_t capacity_;
    std::deque<T> entries_;
    std::optional<T> pending_push_;
    bool pending_pop_ = false;
};

} // namespace eie::sim

#endif // EIE_SIM_FIFO_HH
