/**
 * @file
 * Wire and register primitives for the two-phase simulation kernel.
 *
 * Signal<T> models a combinational wire: writes take effect
 * immediately and are observed by later propagate() calls in the same
 * cycle. Every value-changing write is reported to a ChangeMonitor so
 * the simulator can iterate propagation to a fixed point and detect
 * combinational loops.
 *
 * Reg<T> models a D flip-flop: reads return the registered value,
 * writes go to the next-state side and become visible after tick()
 * (called from the owning module's update()).
 */

#ifndef EIE_SIM_SIGNAL_HH
#define EIE_SIM_SIGNAL_HH

#include <cstdint>

namespace eie::sim {

/** Counts value changes on wires during a propagate pass. */
class ChangeMonitor
{
  public:
    /** Record one value change. */
    void note() { ++changes_; }

    /** Total changes recorded since construction/reset. */
    std::uint64_t changes() const { return changes_; }

    /** Reset the change counter (start of a settle iteration). */
    void reset() { changes_ = 0; }

  private:
    std::uint64_t changes_ = 0;
};

/** A combinational wire carrying a value of type T. */
template <typename T>
class Signal
{
  public:
    /** @param monitor optional change monitor for settle detection. */
    explicit Signal(ChangeMonitor *monitor = nullptr, T initial = T{})
        : value_(initial), monitor_(monitor)
    {}

    /** Current driven value. */
    const T &read() const { return value_; }

    /** Drive the wire; notes a change if the value differs. */
    void
    write(const T &value)
    {
        if (!(value_ == value)) {
            value_ = value;
            if (monitor_)
                monitor_->note();
        }
    }

  private:
    T value_;
    ChangeMonitor *monitor_;
};

/** A D flip-flop carrying a value of type T. */
template <typename T>
class Reg
{
  public:
    explicit Reg(T initial = T{}) : cur_(initial), next_(initial) {}

    /** Registered (visible) value. */
    const T &read() const { return cur_; }

    /** Schedule @p value to be committed at the next clock edge. */
    void write(const T &value) { next_ = value; }

    /** Next-state value (what will be committed at tick()). */
    const T &pending() const { return next_; }

    /** Commit next-state; call from the owning module's update(). */
    void tick() { cur_ = next_; }

    /** Reset both sides immediately (out-of-band initialisation). */
    void
    reset(const T &value)
    {
        cur_ = value;
        next_ = value;
    }

  private:
    T cur_;
    T next_;
};

} // namespace eie::sim

#endif // EIE_SIM_SIGNAL_HH
