/**
 * @file
 * Minimal VCD (value change dump) writer for waveform-level debugging
 * of the cycle-accurate models. Signals are registered as polled
 * getters; the writer samples them once per cycle and emits standard
 * VCD that any waveform viewer (GTKWave etc.) can open.
 */

#ifndef EIE_SIM_TRACE_HH
#define EIE_SIM_TRACE_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace eie::sim {

/** Streams a VCD file from polled signal getters. */
class VcdWriter
{
  public:
    /**
     * @param os       output stream (must outlive the writer)
     * @param timescale VCD timescale string, e.g. "1ns"
     */
    explicit VcdWriter(std::ostream &os,
                       std::string timescale = "1ns");

    /**
     * Register a signal before the first sample() call.
     *
     * @param name   dotted hierarchical name, e.g. "pe0.queue.size"
     * @param width  bit width (1..64)
     * @param getter polled each cycle for the current value
     */
    void addSignal(const std::string &name, unsigned width,
                   std::function<std::uint64_t()> getter);

    /** Emit the header and the initial dump; call once. */
    void start();

    /** Sample all signals at @p cycle and emit changes. */
    void sample(std::uint64_t cycle);

  private:
    struct Entry
    {
        std::string name;
        unsigned width;
        std::function<std::uint64_t()> getter;
        std::string id;
        std::uint64_t last = 0;
        bool has_last = false;
    };

    void emitValue(const Entry &entry, std::uint64_t value);

    std::ostream &os_;
    std::string timescale_;
    std::vector<Entry> entries_;
    bool started_ = false;
};

} // namespace eie::sim

#endif // EIE_SIM_TRACE_HH
