#include "sim/simulator.hh"

#include "common/logging.hh"

namespace eie::sim {

Simulator::Simulator(std::string name) : stats_(std::move(name)) {}

void
Simulator::add(Module *module)
{
    panic_if(!module, "cannot register a null module");
    modules_.push_back(module);
}

void
Simulator::step()
{
    if (settle_max_passes_ == 0) {
        for (Module *m : modules_)
            m->propagate();
    } else {
        unsigned pass = 0;
        do {
            monitor_.reset();
            for (Module *m : modules_)
                m->propagate();
            ++pass;
            panic_if(pass > settle_max_passes_ && monitor_.changes() > 0,
                     "combinational loop: no settle after %u passes",
                     settle_max_passes_);
        } while (monitor_.changes() > 0);
    }

    for (Module *m : modules_)
        m->update();

    ++cycle_;
}

void
Simulator::run(std::uint64_t cycles)
{
    for (std::uint64_t i = 0; i < cycles; ++i)
        step();
}

bool
Simulator::runUntil(const std::function<bool()> &done,
                    std::uint64_t max_cycles)
{
    for (std::uint64_t i = 0; i < max_cycles; ++i) {
        step();
        if (done())
            return true;
    }
    return done();
}

void
Simulator::enableSettle(unsigned max_passes)
{
    panic_if(max_passes == 0, "settle mode needs at least one pass");
    settle_max_passes_ = max_passes;
}

} // namespace eie::sim
