#include "sim/stats.hh"

#include "common/logging.hh"

namespace eie::sim {

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    panic_if(name_.find('.') != std::string::npos,
             "stat group name '%s' must not contain dots", name_.c_str());
    if (parent_) {
        auto [it, inserted] = parent_->children_.emplace(name_, this);
        panic_if(!inserted, "duplicate stat group '%s' under '%s'",
                 name_.c_str(), parent_->fullPath().c_str());
    }
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->children_.erase(name_);
}

Counter &
StatGroup::counter(const std::string &name, const std::string &desc)
{
    panic_if(name.find('.') != std::string::npos,
             "counter name '%s' must not contain dots", name.c_str());
    auto [it, inserted] = stats_.try_emplace(name);
    if (inserted)
        it->second.description = desc;
    return it->second.counter;
}

const Counter *
StatGroup::find(const std::string &path) const
{
    const auto dot = path.find('.');
    if (dot == std::string::npos) {
        auto it = stats_.find(path);
        return it == stats_.end() ? nullptr : &it->second.counter;
    }
    auto child = children_.find(path.substr(0, dot));
    if (child == children_.end())
        return nullptr;
    return child->second->find(path.substr(dot + 1));
}

std::uint64_t
StatGroup::value(const std::string &path) const
{
    const Counter *c = find(path);
    panic_if(!c, "no statistic named '%s' under '%s'", path.c_str(),
             fullPath().c_str());
    return c->value();
}

bool
StatGroup::has(const std::string &path) const
{
    return find(path) != nullptr;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = fullPath();
    for (const auto &[name, stat] : stats_) {
        os << prefix << "." << name << "  " << stat.counter.value();
        if (!stat.description.empty())
            os << "  # " << stat.description;
        os << "\n";
    }
    for (const auto &[name, child] : children_)
        child->dump(os);
}

void
StatGroup::resetAll()
{
    for (auto &[name, stat] : stats_)
        stat.counter.reset();
    for (auto &[name, child] : children_)
        child->resetAll();
}

std::string
StatGroup::fullPath() const
{
    if (!parent_)
        return name_;
    return parent_->fullPath() + "." + name_;
}

} // namespace eie::sim
