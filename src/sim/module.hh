/**
 * @file
 * Base class for cycle-accurate hardware modules.
 *
 * The paper (§V, "Simulator, RTL and Layout") describes the authors'
 * evaluation vehicle: "Each hardware module is abstracted as an object
 * that implements two abstract methods: propagate and update,
 * corresponding to combination logic and the flip-flop in RTL." This
 * kernel implements exactly that two-phase discipline:
 *
 *  - propagate(): compute combinational outputs from registered state
 *    and input wires. Must be side-effect free on registered state and
 *    idempotent (the kernel may call it several times per cycle when
 *    settling combinational chains).
 *  - update(): the rising clock edge. Commit next-state into registers.
 */

#ifndef EIE_SIM_MODULE_HH
#define EIE_SIM_MODULE_HH

#include <string>

namespace eie::sim {

/** A clocked hardware module with two-phase (propagate/update) timing. */
class Module
{
  public:
    /** @param name hierarchical instance name, e.g. "pe3.actQueue". */
    explicit Module(std::string name) : name_(std::move(name)) {}

    virtual ~Module() = default;

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** Combinational logic: derive outputs from current state/inputs. */
    virtual void propagate() = 0;

    /** Sequential logic: commit next-state at the clock edge. */
    virtual void update() = 0;

    /** Instance name used in statistics and traces. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

} // namespace eie::sim

#endif // EIE_SIM_MODULE_HH
