/**
 * @file
 * The two-phase clocked simulator driving a set of Modules.
 *
 * Each cycle the simulator runs one or more propagate passes over all
 * modules (in registration order) followed by exactly one update pass.
 * Builders are expected to register modules in topological order of
 * their combinational dependencies so a single propagate pass settles
 * the design; for graphs where that is inconvenient, settle mode
 * iterates propagation until no Signal changes and panics if a
 * combinational loop prevents convergence.
 */

#ifndef EIE_SIM_SIMULATOR_HH
#define EIE_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/module.hh"
#include "sim/signal.hh"
#include "sim/stats.hh"

namespace eie::sim {

/** Drives registered modules with a single synchronous clock. */
class Simulator
{
  public:
    /** @param name root name for the statistics tree. */
    explicit Simulator(std::string name = "sim");

    /**
     * Register a module. Registration order defines propagate/update
     * order within a cycle. The simulator does not take ownership.
     */
    void add(Module *module);

    /** Advance one clock cycle. */
    void step();

    /** Advance @p cycles clock cycles. */
    void run(std::uint64_t cycles);

    /**
     * Step until @p done returns true (checked after each cycle).
     *
     * @return true if @p done fired, false if @p max_cycles elapsed.
     */
    bool runUntil(const std::function<bool()> &done,
                  std::uint64_t max_cycles);

    /** Cycles executed since construction. */
    std::uint64_t cycle() const { return cycle_; }

    /**
     * Enable settle mode: iterate propagate passes until the change
     * monitor reports no wire changes, up to @p max_passes per cycle
     * (panics on non-convergence, i.e. a combinational loop).
     * Signals must be constructed with this simulator's monitor()
     * for settle detection to see their changes.
     */
    void enableSettle(unsigned max_passes);

    /** Change monitor to hand to Signal constructors. */
    ChangeMonitor &monitor() { return monitor_; }

    /** Root of the statistics tree. */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    std::vector<Module *> modules_;
    StatGroup stats_;
    ChangeMonitor monitor_;
    std::uint64_t cycle_ = 0;
    unsigned settle_max_passes_ = 0; // 0 = single-pass mode
};

} // namespace eie::sim

#endif // EIE_SIM_SIMULATOR_HH
