/**
 * @file
 * Minimal JSON support for the telemetry surfaces: a streaming
 * writer so every exposition path (ServingDirectory::statsJson, the
 * client transports, MetricsRegistry::renderJson) emits through one
 * escaper instead of four hand-rolled ones, and a small
 * recursive-descent parser for the consumers we ship (eie_top, the
 * golden-schema test) that must read those documents back without a
 * third-party dependency.
 *
 * The parser handles the JSON this repo produces — objects, arrays,
 * strings with standard escapes, numbers, booleans, null — and
 * throws std::runtime_error on malformed input. It is not a
 * general-purpose validator (no \u surrogate pairs, no depth limit
 * beyond the stack).
 */

#ifndef EIE_OBS_JSON_HH
#define EIE_OBS_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace eie::obs {

/**
 * Streaming JSON writer with automatic comma placement. Calls must
 * nest correctly (beginObject/endObject balanced); keys only inside
 * objects, bare values only inside arrays.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Start a keyed child ("key": ...) inside an object. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    /** Shorthand: key(name).value(v). */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T v)
    {
        key(name);
        return value(v);
    }

    /** Splice an already-serialized JSON document as a value. */
    JsonWriter &raw(const std::string &json);

    std::string str() const;

    static std::string escape(const std::string &s);

  private:
    void separator();

    std::string out_;
    // Whether the container at each nesting depth has emitted its
    // first element yet (drives comma placement).
    std::vector<bool> has_elements_;
    bool pending_key_ = false;
};

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool
    isObject() const
    {
        return kind == Kind::Object;
    }

    bool
    isArray() const
    {
        return kind == Kind::Array;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /** find() + numeric coercion; @p fallback when absent. */
    double numberOr(const std::string &name, double fallback) const;

    /** find() + string coercion; @p fallback when absent. */
    std::string stringOr(const std::string &name,
                         const std::string &fallback) const;

    /** Sorted member names (schema tests). */
    std::vector<std::string> keys() const;
};

/** Parse @p text; throws std::runtime_error on malformed input. */
JsonValue parseJson(const std::string &text);

} // namespace eie::obs

#endif // EIE_OBS_JSON_HH
