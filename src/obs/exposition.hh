/**
 * @file
 * A tiny scrape endpoint: one listener thread serving the process
 * MetricsRegistry over HTTP/1.0 plaintext, close-after-response.
 *
 * This is deliberately not a web server — it exists so `eie_serve
 * --metrics-port` can be curl'd or Prometheus-scraped without the
 * binary wire protocol. `GET /metrics` returns the Prometheus text
 * format; any path containing "json" returns renderJson(). One
 * request per connection, no keep-alive, requests larger than 4 KiB
 * dropped.
 */

#ifndef EIE_OBS_EXPOSITION_HH
#define EIE_OBS_EXPOSITION_HH

#include <atomic>
#include <cstdint>
#include <thread>

namespace eie::obs {

class MetricsRegistry;

/** Blocking-accept scrape server on its own thread. */
class MetricsHttpServer
{
  public:
    /**
     * Bind and listen on 127.0.0.1:@p port (0 picks an ephemeral
     * port). Throws std::runtime_error when the socket cannot be
     * bound. @p registry must outlive the server.
     */
    MetricsHttpServer(MetricsRegistry &registry,
                      std::uint16_t port);
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &
    operator=(const MetricsHttpServer &) = delete;

    /** The bound port (useful when constructed with port 0). */
    std::uint16_t port() const;

    void stop();

  private:
    void serveLoop();

    MetricsRegistry &registry_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

} // namespace eie::obs

#endif // EIE_OBS_EXPOSITION_HH
