/**
 * @file
 * A tiny scrape endpoint serving the process MetricsRegistry over
 * HTTP — so `eie_serve --metrics-port` can be curl'd or
 * Prometheus-scraped without the binary wire protocol. `GET
 * /metrics` returns the Prometheus text format; any path containing
 * "json" returns renderJson().
 *
 * The HTTP machinery is the repo-wide gateway::HttpListener
 * (src/gateway/http.hh) — the same parser/listener behind the
 * multi-tenant gateway — kept behind this small class so callers
 * keep the historical (registry, port) API.
 */

#ifndef EIE_OBS_EXPOSITION_HH
#define EIE_OBS_EXPOSITION_HH

#include <cstdint>
#include <memory>

namespace eie::gateway {
class HttpListener;
}

namespace eie::obs {

class MetricsRegistry;

/** Blocking-accept scrape server on its own thread. */
class MetricsHttpServer
{
  public:
    /**
     * Bind and listen on 127.0.0.1:@p port (0 picks an ephemeral
     * port). Throws std::runtime_error when the socket cannot be
     * bound. @p registry must outlive the server.
     */
    MetricsHttpServer(MetricsRegistry &registry,
                      std::uint16_t port);
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &
    operator=(const MetricsHttpServer &) = delete;

    /** The bound port (useful when constructed with port 0). */
    std::uint16_t port() const;

    void stop();

  private:
    MetricsRegistry &registry_;
    std::unique_ptr<gateway::HttpListener> listener_;
};

} // namespace eie::obs

#endif // EIE_OBS_EXPOSITION_HH
