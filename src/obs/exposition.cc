#include "obs/exposition.hh"

#include "gateway/http.hh"
#include "obs/metrics.hh"

namespace eie::obs {

/**
 * The scrape endpoint is the shared gateway::HttpListener behind the
 * historical MetricsHttpServer API — one HTTP parser/listener for
 * this, the gateway, and the `http://` client transport instead of
 * hand-rolled copies. Behavior is a superset of the old HTTP/1.0
 * loop: same routes (any path containing "json" → renderJson, else
 * renderText), loopback bind, plus standards-grade parsing and
 * keep-alive for free.
 */
MetricsHttpServer::MetricsHttpServer(MetricsRegistry &registry,
                                     std::uint16_t port)
    : registry_(registry)
{
    gateway::HttpListener::Options options;
    options.port = port;
    listener_ = std::make_unique<gateway::HttpListener>(
        options,
        [this](const gateway::HttpRequest &request) {
            gateway::HttpResponse response;
            if (request.path.find("json") != std::string::npos) {
                response.body = registry_.renderJson();
            } else {
                response.content_type = "text/plain; version=0.0.4";
                response.body = registry_.renderText();
            }
            return response;
        });
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

std::uint16_t
MetricsHttpServer::port() const
{
    return listener_->port();
}

void
MetricsHttpServer::stop()
{
    listener_->stop();
}

} // namespace eie::obs
