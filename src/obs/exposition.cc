#include "obs/exposition.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hh"

namespace eie::obs {

namespace {

void
sendAll(int fd, const char *data, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::send(fd, data + sent, len - sent,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return; // Scrape client went away; nothing to do.
        }
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

MetricsHttpServer::MetricsHttpServer(MetricsRegistry &registry,
                                     std::uint16_t port)
    : registry_(registry)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error("metrics: socket() failed: "
                                 + std::string(strerror(errno)));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr))
        != 0) {
        int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("metrics: cannot bind port "
                                 + std::to_string(port) + ": "
                                 + std::string(strerror(err)));
    }
    if (::listen(listen_fd_, 8) != 0) {
        int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("metrics: listen() failed: "
                                 + std::string(strerror(err)));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serveLoop(); });
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

std::uint16_t
MetricsHttpServer::port() const
{
    return port_;
}

void
MetricsHttpServer::stop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) {
        if (thread_.joinable())
            thread_.join();
        return;
    }
    if (listen_fd_ >= 0)
        ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
MetricsHttpServer::serveLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // Listener shut down.
        }
        char request[4096];
        ssize_t n = ::recv(fd, request, sizeof(request) - 1, 0);
        if (n <= 0) {
            ::close(fd);
            continue;
        }
        request[n] = '\0';
        // First line only; everything we serve keys off the path.
        std::string first_line(request);
        if (auto eol = first_line.find('\r');
            eol != std::string::npos)
            first_line.resize(eol);
        bool want_json =
            first_line.find("json") != std::string::npos;
        std::string body = want_json ? registry_.renderJson()
                                     : registry_.renderText();
        std::string header =
            "HTTP/1.0 200 OK\r\nContent-Type: "
            + std::string(want_json
                              ? "application/json"
                              : "text/plain; version=0.0.4")
            + "\r\nContent-Length: "
            + std::to_string(body.size())
            + "\r\nConnection: close\r\n\r\n";
        sendAll(fd, header.data(), header.size());
        sendAll(fd, body.data(), body.size());
        ::close(fd);
    }
}

} // namespace eie::obs
