#include "obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/json.hh"

namespace eie::obs {

namespace {

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

double
traceNowUs()
{
    return traceTimeUs(std::chrono::steady_clock::now());
}

double
traceTimeUs(std::chrono::steady_clock::time_point tp)
{
    return std::chrono::duration<double, std::micro>(tp
                                                     - traceEpoch())
        .count();
}

std::uint64_t
traceThreadId()
{
    // Small dense per-thread ids read better in the chrome timeline
    // than hashed std::thread::id values.
    static std::atomic<std::uint64_t> next{1};
    thread_local std::uint64_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::uint64_t
nextTraceId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

SpanRing::SpanRing(std::size_t capacity)
{
    spans_.resize(std::max<std::size_t>(capacity, 1));
}

void
SpanRing::record(Span span)
{
    if (span.trace_id == 0)
        return;
    if (span.tid == 0)
        span.tid = traceThreadId();
    std::lock_guard<std::mutex> lock(mutex_);
    spans_[next_] = std::move(span);
    ++next_;
    if (next_ == spans_.size()) {
        next_ = 0;
        wrapped_ = true;
    }
}

void
SpanRing::record(std::uint64_t trace_id, std::string name,
                 std::string cat, double start_us, double end_us,
                 std::string arg)
{
    Span span;
    span.trace_id = trace_id;
    span.name = std::move(name);
    span.cat = std::move(cat);
    span.start_us = start_us;
    span.dur_us = std::max(0.0, end_us - start_us);
    span.arg = std::move(arg);
    record(std::move(span));
}

std::vector<Span>
SpanRing::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Span> out;
    if (wrapped_) {
        out.reserve(spans_.size());
        out.insert(out.end(), spans_.begin() + next_, spans_.end());
    } else {
        out.reserve(next_);
    }
    out.insert(out.end(), spans_.begin(), spans_.begin() + next_);
    return out;
}

void
SpanRing::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    next_ = 0;
    wrapped_ = false;
    for (auto &span : spans_)
        span = Span{};
}

std::size_t
SpanRing::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return wrapped_ ? spans_.size() : next_;
}

SpanRing &
processTraceRing()
{
    static SpanRing ring;
    return ring;
}

std::string
renderChromeTrace(const std::vector<Span> &spans)
{
    JsonWriter w;
    w.beginObject().key("traceEvents").beginArray();
    for (const Span &span : spans) {
        w.beginObject()
            .field("name", span.name)
            .field("cat",
                   span.cat.empty() ? std::string("eie")
                                    : span.cat)
            .field("ph", "X")
            .field("ts", span.start_us)
            .field("dur", span.dur_us)
            .field("pid", 1)
            .field("tid", span.tid);
        w.key("args").beginObject().field("trace_id",
                                          span.trace_id);
        if (!span.arg.empty())
            w.field("detail", span.arg);
        w.endObject().endObject();
    }
    w.endArray().endObject();
    return w.str();
}

} // namespace eie::obs
