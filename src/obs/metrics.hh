/**
 * @file
 * The process-wide telemetry substrate: named counters, gauges and
 * fixed-bucket log-scale latency histograms behind one
 * MetricsRegistry, with Prometheus-style text and JSON exposition.
 *
 * The serving stack used to grow one bespoke stats pipeline per layer
 * (ServerStats percentiles from a latency reservoir, ClusterStats
 * re-merging shard samples, EndpointStats request-weighting the
 * already-computed percentiles — which is not how quantiles compose).
 * This header replaces the lot: every component records into typed
 * handles, snapshots are plain mergeable structs, and every consumer
 * (stats() structs, statsJson, the Metrics wire frame, eie_top)
 * derives its percentiles from the same histogram code.
 *
 * Hot-path cost: a Counter::add or Histogram::record is a handful of
 * relaxed atomic operations — no lock, no allocation — so recording
 * from the batcher and kernel dispatch paths is within noise.
 *
 * Quantile policy: one nearest-rank implementation
 * (nearestRankIndex) shared by engine::percentileOf (exact, over raw
 * samples) and HistogramSnapshot::quantile (bucketed, linear
 * interpolation inside the bucket), so the two paths cannot drift.
 */

#ifndef EIE_OBS_METRICS_HH
#define EIE_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eie::obs {

/**
 * Nearest-rank index of quantile @p q in a sorted sample of
 * @p count elements: the 0-based index of the smallest element with
 * cumulative rank >= q * count. q <= 0 selects the minimum, q >= 1
 * the maximum. @p count must be > 0.
 */
std::size_t nearestRankIndex(std::uint64_t count, double q);

/** A monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A last-written instantaneous value (queue depth, density...). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Buckets of the log-scale histogram: bucket 0 holds values below
 *  1, then quarter-octave (x2^0.25) buckets up to ~11.8 seconds in
 *  microseconds, with the last bucket absorbing the overflow. */
inline constexpr std::size_t kHistogramBuckets = 96;

/** Lower bound of bucket @p index (0 for the first bucket). */
double bucketLowerBound(std::size_t index);

/** The bucket a recorded value lands in. */
std::size_t bucketIndex(double value);

/** One five-number latency summary derived from a histogram. */
struct LatencySummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double max = 0.0;
};

/**
 * A point-in-time copy of a Histogram: plain data, mergeable across
 * shards/servers/processes, the unit every stats snapshot carries.
 */
struct HistogramSnapshot
{
    std::array<std::uint64_t, kHistogramBuckets> counts{};
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;

    /** Fold @p other into this snapshot (bucket-wise addition). */
    void merge(const HistogramSnapshot &other);

    /** Nearest-rank quantile with linear interpolation inside the
     *  bucket; 0 when empty, the recorded maximum for q >= 1. */
    double quantile(double q) const;

    double mean() const;

    /** The full p50/p95/p99/p99.9 curve in one call. */
    LatencySummary summary() const;
};

/**
 * Lock-free fixed-bucket log-scale histogram. record() is a bucket
 * increment plus two relaxed atomic folds; snapshot() is a plain
 * copy. Safe for any number of concurrent recorders.
 */
class Histogram
{
  public:
    void record(double value);

    HistogramSnapshot snapshot() const;

  private:
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets>
        counts_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * Named metric handles with stable addresses: the first caller of
 * counter("x") allocates it, every later caller gets the same
 * object, and the returned reference stays valid for the registry's
 * lifetime. Registration takes a mutex; recording through a handle
 * never does — components look their handles up once (construction
 * time) and hit atomics afterwards.
 *
 * Metric names follow the Prometheus convention:
 * `eie_<component>_<what>[_total]`, with any variant/layer
 * discriminator suffixed (`eie_kernel_dispatch_total_vector`) since
 * this registry deliberately has no label machinery.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Prometheus-style plaintext exposition: counters and gauges as
     *  single samples, histograms as summary quantiles plus _count /
     *  _sum / _max. */
    std::string renderText() const;

    /** The same data as one JSON object:
     *  {"counters":{...},"gauges":{...},"histograms":{name:
     *  {"count","mean","p50","p95","p99","p999","max"}}}. */
    std::string renderJson() const;

    /** Names currently registered, sorted (tests/tools). */
    std::vector<std::string> counterNames() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** The process-global registry every serving component records into
 *  and every exposition surface (Metrics wire frame, --metrics-port,
 *  eie_top) reads from. */
MetricsRegistry &processRegistry();

} // namespace eie::obs

#endif // EIE_OBS_METRICS_HH
