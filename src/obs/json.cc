#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace eie::obs {

// ---------------------------------------------------------------
// Writer
// ---------------------------------------------------------------

void
JsonWriter::separator()
{
    if (pending_key_) {
        // The value completes a "key": pair — no comma here.
        pending_key_ = false;
        return;
    }
    if (has_elements_.empty())
        return;
    if (has_elements_.back())
        out_ += ',';
    has_elements_.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    out_ += '{';
    has_elements_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    has_elements_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    out_ += '[';
    has_elements_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    has_elements_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separator();
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    if (!std::isfinite(v)) {
        out_ += '0';
        return *this;
    }
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        out_ += buf;
        return *this;
    }
    // Shortest representation that parses back to exactly v: values
    // must survive a write/parse round trip bit-exactly (the HTTP
    // gateway ships session hidden states and float outputs as JSON).
    char buf[48];
    for (int precision = 6; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separator();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    separator();
    out_ += json;
    return *this;
}

std::string
JsonWriter::str() const
{
    return out_;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------
// Parser
// ---------------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(name);
    return it == object.end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(const std::string &name, double fallback) const
{
    const JsonValue *v = find(name);
    return (v != nullptr && v->kind == Kind::Number) ? v->number
                                                     : fallback;
}

std::string
JsonValue::stringOr(const std::string &name,
                    const std::string &fallback) const
{
    const JsonValue *v = find(name);
    return (v != nullptr && v->kind == Kind::String) ? v->string
                                                     : fallback;
}

std::vector<std::string>
JsonValue::keys() const
{
    std::vector<std::string> names;
    names.reserve(object.size());
    for (const auto &[name, value] : object)
        names.push_back(name);
    return names;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error("json parse error at offset "
                                 + std::to_string(pos_) + ": "
                                 + what);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()
               && std::isspace(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWhitespace();
        char c = peek();
        switch (c) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = parseString();
            return v;
        }
        case 't': {
            if (!consumeLiteral("true"))
                fail("bad literal");
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        case 'f': {
            if (!consumeLiteral("false"))
                fail("bad literal");
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return v;
        }
        case 'n': {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
        }
        default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWhitespace();
            std::string name = parseString();
            skipWhitespace();
            expect(':');
            v.object[name] = parseValue();
            skipWhitespace();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return v;
            }
            fail("expected ',' or '}'");
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            skipWhitespace();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return v;
            }
            fail("expected ',' or ']'");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code +=
                            static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code +=
                            static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Our emitters only escape control characters, so
                // a one-byte decode covers everything we produce.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else {
                    out += '?';
                }
                break;
            }
            default:
                fail("bad escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size()
               && (std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        try {
            v.number = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("bad number");
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace eie::obs
