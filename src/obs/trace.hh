/**
 * @file
 * Per-request tracing: a process-global bounded span ring plus a
 * chrome://tracing JSON renderer.
 *
 * A trace id is allocated at the edge (Client::submit /
 * Session::step), carried through the wire protocol (trailing field
 * negotiated at Hello, see wire.hh), and threaded through
 * SubmitOptions down to the batcher. Each stage that touches a
 * traced request drops one complete span — "enqueue",
 * "batch_form", "shard_submit", "kernel_run", "gather", "reply" —
 * into the ring. Requests with trace id 0 (the default) record
 * nothing, so the bench/hot path only pays a predicted-false
 * branch.
 *
 * The ring is fixed-capacity and mutex-guarded: tracing is a
 * debugging surface sampled per request, not a hot-path recorder,
 * so a lock beats the complexity of a lock-free ring and keeps the
 * structure trivially TSan-clean. Old spans are overwritten once
 * the ring wraps.
 *
 * Timestamps are microseconds since a process-local steady epoch
 * (first use), which is what chrome://tracing wants — relative
 * times on one axis — and avoids system_clock jumps.
 */

#ifndef EIE_OBS_TRACE_HH
#define EIE_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace eie::obs {

/** One completed operation attributed to a traced request. */
struct Span
{
    std::uint64_t trace_id = 0;
    /** Stage name ("enqueue", "kernel_run", ...). */
    std::string name;
    /** Component category ("server", "cluster", "tcp", "client"). */
    std::string cat;
    /** Start, microseconds since the process trace epoch. */
    double start_us = 0.0;
    double dur_us = 0.0;
    /** Stable id of the recording thread. */
    std::uint64_t tid = 0;
    /** Free-form annotation ("batch=7", "shard=2"). */
    std::string arg;
};

/** Microseconds since the process-local steady trace epoch. */
double traceNowUs();

/** Convert a steady_clock time point to trace-epoch microseconds. */
double traceTimeUs(std::chrono::steady_clock::time_point tp);

/** Stable small id for the calling thread (chrome tid field). */
std::uint64_t traceThreadId();

/**
 * Allocate the next nonzero trace id. Ids are process-unique and
 * dense; 0 always means "untraced".
 */
std::uint64_t nextTraceId();

/** Bounded in-memory span store; wraps once full. */
class SpanRing
{
  public:
    static constexpr std::size_t kDefaultCapacity = 8192;

    explicit SpanRing(std::size_t capacity = kDefaultCapacity);

    void record(Span span);

    /** Convenience: build and record a span ending "now". */
    void record(std::uint64_t trace_id, std::string name,
                std::string cat, double start_us, double end_us,
                std::string arg = {});

    /** All retained spans, oldest first. */
    std::vector<Span> snapshot() const;

    void clear();

    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::vector<Span> spans_;
    std::size_t next_ = 0;
    bool wrapped_ = false;
};

/** The process-global ring every serving component records into. */
SpanRing &processTraceRing();

/**
 * Render spans as a chrome://tracing "traceEvents" document
 * (complete events, ph:"X"). Load the output via chrome://tracing
 * or https://ui.perfetto.dev.
 */
std::string renderChromeTrace(const std::vector<Span> &spans);

} // namespace eie::obs

#endif // EIE_OBS_TRACE_HH
