#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace eie::obs {

namespace {

// Quarter-octave growth: bucket i >= 1 spans
// [2^((i-1)/4), 2^(i/4)) microseconds.
constexpr double kBucketRatioLog2 = 0.25;

} // namespace

std::size_t
nearestRankIndex(std::uint64_t count, double q)
{
    if (count == 0)
        return 0;
    if (q <= 0.0)
        return 0;
    if (q >= 1.0)
        return static_cast<std::size_t>(count - 1);
    // Nearest-rank definition: the smallest index whose 1-based rank
    // is >= q * count.
    double rank = std::ceil(q * static_cast<double>(count));
    if (rank < 1.0)
        rank = 1.0;
    auto index = static_cast<std::uint64_t>(rank) - 1;
    if (index >= count)
        index = count - 1;
    return static_cast<std::size_t>(index);
}

double
bucketLowerBound(std::size_t index)
{
    if (index == 0)
        return 0.0;
    return std::exp2(kBucketRatioLog2
                     * static_cast<double>(index - 1));
}

std::size_t
bucketIndex(double value)
{
    if (!(value >= 1.0))
        return 0;
    auto index = static_cast<std::size_t>(
                     std::floor(std::log2(value) / kBucketRatioLog2))
                 + 1;
    return std::min(index, kHistogramBuckets - 1);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        counts[i] += other.counts[i];
    count += other.count;
    sum += other.sum;
    max = std::max(max, other.max);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q >= 1.0)
        return max;
    // One sample IS every quantile; skip the in-bucket
    // interpolation, which would answer below the observed value.
    if (count == 1)
        return max;
    // Walk buckets until the cumulative count covers the target
    // rank, then interpolate linearly inside the bucket.
    std::uint64_t rank = nearestRankIndex(count, q) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        if (counts[i] == 0)
            continue;
        if (seen + counts[i] >= rank) {
            double lo = bucketLowerBound(i);
            double hi = (i + 1 < kHistogramBuckets)
                            ? bucketLowerBound(i + 1)
                            : max;
            hi = std::max(hi, lo);
            double within =
                (static_cast<double>(rank - seen) - 0.5)
                / static_cast<double>(counts[i]);
            double value = lo + (hi - lo) * within;
            // The histogram never claims a quantile beyond the
            // largest value it actually saw.
            return std::min(value, max);
        }
        seen += counts[i];
    }
    return max;
}

double
HistogramSnapshot::mean() const
{
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

LatencySummary
HistogramSnapshot::summary() const
{
    LatencySummary s;
    s.count = count;
    s.mean = mean();
    s.p50 = quantile(0.50);
    s.p95 = quantile(0.95);
    s.p99 = quantile(0.99);
    s.p999 = quantile(0.999);
    s.max = max;
    return s;
}

void
Histogram::record(double value)
{
    if (!(value >= 0.0))
        value = 0.0;
    counts_[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    double seen = max_.load(std::memory_order_relaxed);
    while (value > seen
           && !max_.compare_exchange_weak(
               seen, value, std::memory_order_relaxed)) {
    }
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
    return snap;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

namespace {

void
appendNumber(std::ostringstream &out, double v)
{
    // Integral values render without a trailing ".000000" so counter
    // samples stay grep-friendly.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        out << static_cast<long long>(v);
    } else {
        out << v;
    }
}

} // namespace

std::string
MetricsRegistry::renderText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    for (const auto &[name, c] : counters_) {
        out << "# TYPE " << name << " counter\n"
            << name << " " << c->value() << "\n";
    }
    for (const auto &[name, g] : gauges_) {
        out << "# TYPE " << name << " gauge\n" << name << " ";
        appendNumber(out, g->value());
        out << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        auto s = h->snapshot().summary();
        out << "# TYPE " << name << " summary\n";
        const std::pair<const char *, double> quantiles[] = {
            {"0.5", s.p50},
            {"0.95", s.p95},
            {"0.99", s.p99},
            {"0.999", s.p999},
        };
        for (const auto &[q, v] : quantiles) {
            out << name << "{quantile=\"" << q << "\"} ";
            appendNumber(out, v);
            out << "\n";
        }
        out << name << "_count " << s.count << "\n"
            << name << "_sum ";
        appendNumber(out, s.mean * static_cast<double>(s.count));
        out << "\n" << name << "_max ";
        appendNumber(out, s.max);
        out << "\n";
    }
    return out.str();
}

std::string
MetricsRegistry::renderJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            out << ",";
        first = false;
        out << "\"" << name << "\":" << c->value();
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        if (!first)
            out << ",";
        first = false;
        out << "\"" << name << "\":";
        appendNumber(out, g->value());
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        auto s = h->snapshot().summary();
        if (!first)
            out << ",";
        first = false;
        out << "\"" << name << "\":{\"count\":" << s.count
            << ",\"mean\":";
        appendNumber(out, s.mean);
        out << ",\"p50\":";
        appendNumber(out, s.p50);
        out << ",\"p95\":";
        appendNumber(out, s.p95);
        out << ",\"p99\":";
        appendNumber(out, s.p99);
        out << ",\"p999\":";
        appendNumber(out, s.p999);
        out << ",\"max\":";
        appendNumber(out, s.max);
        out << "}";
    }
    out << "}}";
    return out.str();
}

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        names.push_back(name);
    return names;
}

MetricsRegistry &
processRegistry()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace eie::obs
