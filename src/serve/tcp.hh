/**
 * @file
 * Loopback/LAN TCP transport for the serving cluster: a TcpServer
 * that dispatches wire-protocol frames (serve/wire.hh) onto a
 * ServingDirectory's ClusterEngines, and an asynchronous TcpClient
 * that speaks the same frames. This is the `tools/eie_serve` daemon's
 * front door and the transport behind `eie::client::Client`'s
 * `tcp://` endpoints.
 *
 * Connection model (server): one reader thread and one writer thread
 * per accepted connection. The reader decodes frames and submits
 * infer requests to the routed cluster immediately (so the cluster's
 * micro-batchers see the full pipeline depth); the writer completes
 * the per-request futures and streams the responses back, so a
 * client may pipeline arbitrarily many requests. Streaming LSTM
 * sessions (SessionOpen/SessionStep) are handled inline by the
 * reader — a step is inherently sequential (it consumes the previous
 * step's recurrent state), so the reader blocks on the M×V and
 * replies with the new hidden state. The handshake negotiates the
 * protocol version: both sides speak min(client, server) as long as
 * that is >= wire::kMinProtocolVersion; an older client receives a
 * HelloAck rejection encoded in the layout it can decode (see
 * wire.hh) and the connection closes. Malformed frames, handshake
 * violations and oversized bodies close the connection — they never
 * take the daemon down.
 *
 * Connection model (client): one background reader thread correlates
 * responses to in-flight requests — InferResponse and SessionState
 * by request id, SessionAck by session id, Stats/Info by per-type
 * FIFO (the server preserves each type's relative order, and the
 * send mutex keeps the promise queues in wire order) — and resolves
 * the matching std::future. Requests may be submitted from any thread and
 * responses may arrive in any order, so a future client no longer
 * head-of-line blocks on a FIFO readResponse(). Transport loss
 * resolves every in-flight inference/session future with an
 * Unavailable error response instead of throwing.
 *
 * Lifecycle: TcpServer::stop() closes the listener and all accepted
 * sockets and joins the per-connection threads; pending responses
 * complete first (shard servers guarantee every submitted future
 * resolves). Stop the TcpServer before stopping the directory's
 * clusters.
 */

#ifndef EIE_SERVE_TCP_HH
#define EIE_SERVE_TCP_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/cluster.hh"
#include "serve/wire.hh"

namespace eie::engine {
class LstmSession;
} // namespace eie::engine

namespace eie::serve {

/** Listening parameters of a TcpServer. */
struct TcpServerOptions
{
    /** TCP port; 0 binds an ephemeral port (read it via port()). */
    std::uint16_t port = 0;

    /** Bind address; loopback by default — exposing an unauthenticated
     *  inference socket beyond the host is an operator decision. */
    std::string bind_address = "127.0.0.1";

    int backlog = 64;

    /** Open LSTM sessions one connection may hold; an open beyond
     *  the cap is rejected with an Unavailable ack. Bounds the
     *  memory a client can pin server-side (each session holds the
     *  recurrent state plus the host gate math) the same way
     *  kMaxBodyBytes bounds per-frame allocations. */
    std::size_t max_sessions_per_connection = 64;
};

/** Frame-dispatching TCP front end over a ServingDirectory. */
class TcpServer
{
  public:
    TcpServer(ServingDirectory &directory,
              const TcpServerOptions &options = {});

    /** Stops and joins (see stop()). */
    ~TcpServer();

    TcpServer(const TcpServer &) = delete;
    TcpServer &operator=(const TcpServer &) = delete;

    /** Bind, listen and start accepting. Fatal on bind failure. */
    void start();

    /** The bound port (valid after start(); resolves port 0). */
    std::uint16_t port() const { return port_; }

    /** Close the listener and every connection, join all threads.
     *  Idempotent. */
    void stop();

    /** Connections accepted since start (diagnostics). */
    std::uint64_t connectionsAccepted() const;

    /** Connections currently tracked (live plus finished ones not
     *  yet reaped; reaping happens on accept). */
    std::size_t trackedConnections() const;

  private:
    /** One queued outbound response: either already materialised or
     *  an in-flight inference future completed by the writer. */
    struct Outbound
    {
        wire::Message ready;  ///< used when !pending.valid()
        std::uint64_t id = 0; ///< request id for pending responses
        std::future<std::vector<std::int64_t>> pending;
    };

    /** One open streaming LSTM session (reader-thread state). */
    struct LiveSession;

    struct Connection
    {
        ~Connection(); ///< out-of-line: LiveSession is incomplete here

        int fd = -1;
        std::thread reader;
        std::thread writer;
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<Outbound> outbox;
        bool closing = false;
        /** Open LSTM sessions by id; touched by the reader only. */
        std::map<std::uint64_t, std::unique_ptr<LiveSession>> sessions;
        /** Reader + writer still running; 0 = reapable. */
        std::atomic<int> live_threads{2};
    };

    void acceptLoop();
    void readerLoop(Connection &connection);
    void writerLoop(Connection &connection);
    void handleSessionOpen(Connection &connection,
                           const wire::SessionOpen &open);
    void handleSessionStep(Connection &connection,
                           const wire::SessionStep &step);
    void enqueue(Connection &connection, Outbound outbound);
    void reapFinishedLocked(); ///< caller holds connections_mutex_

    ServingDirectory &directory_;
    TcpServerOptions options_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptor_;
    bool started_ = false;

    mutable std::mutex connections_mutex_;
    std::vector<std::unique_ptr<Connection>> connections_;
    std::uint64_t accepted_ = 0;
    bool stopping_ = false;
    std::once_flag join_once_;
};

/**
 * Asynchronous wire-protocol client: pipelined submissions from any
 * thread, responses correlated by id on a background reader.
 */
class TcpClient
{
  public:
    /** Connect to @p host:@p port and handshake (negotiating the
     *  protocol version). Throws wire::WireError on a protocol or
     *  version mismatch and std::runtime_error on connection
     *  failure. */
    TcpClient(const std::string &host, std::uint16_t port);

    /** Closes and joins the reader. */
    ~TcpClient();

    TcpClient(const TcpClient &) = delete;
    TcpClient &operator=(const TcpClient &) = delete;

    /**
     * Submit one inference request; the future resolves with the
     * server's InferResponse once it arrives, in any order relative
     * to other in-flight requests. The future never throws: server
     * errors arrive as ok = false responses with an ErrorCode, and a
     * lost connection resolves every in-flight future with
     * ErrorCode::Unavailable.
     */
    std::future<wire::InferResponse>
    submitInfer(const std::string &model, std::uint32_t version,
                std::vector<std::int64_t> input,
                std::int32_t priority = 0,
                std::uint32_t deadline_us = 0,
                std::uint64_t trace_id = 0);

    /** Synchronous convenience: submit one request, wait for its
     *  response, return the output. Throws std::runtime_error with
     *  the server's message on an error response. */
    std::vector<std::int64_t>
    infer(const std::string &model,
          const std::vector<std::int64_t> &input,
          std::uint32_t version = 0);

    /** Open a streaming LSTM session on @p model; the ack carries
     *  the (X, H) shape. Same no-throw future semantics as
     *  submitInfer(). */
    std::future<wire::SessionAck>
    openSession(std::uint64_t session_id, const std::string &model,
                std::uint32_t version = 0);

    /** Submit one session step (x only; the state lives server
     *  side). Steps of one session must be submitted sequentially —
     *  wait for each SessionState before the next step. */
    std::future<wire::SessionState>
    submitStep(std::uint64_t session_id, std::vector<float> x,
               std::int32_t priority = 0,
               std::uint32_t deadline_us = 0,
               std::uint64_t trace_id = 0);

    /** Discard a session's server-side state (fire-and-forget). */
    void closeSession(std::uint64_t session_id);

    /** A fresh session id, unique within this client. */
    std::uint64_t nextSessionId();

    /** Fetch the server's aggregated stats JSON (blocking). Throws
     *  wire::WireError on a lost connection. */
    std::string stats();

    /** Describe a served model (sizes, shard layout; builds its
     *  cluster on first touch). Blocking; throws wire::WireError on
     *  a lost connection. */
    wire::InfoResponse info(const std::string &model,
                            std::uint32_t version = 0);

    /** Fetch the server's metrics registry exposition (blocking).
     *  Requires a v3 peer — throws wire::WireError when the
     *  negotiated protocol predates the Metrics frames, or on a lost
     *  connection. */
    wire::MetricsResponse metrics();

    /** Fetch the server's span ring as a chrome://tracing JSON
     *  document (blocking). Same v3 requirement as metrics(). */
    std::string traceDump();

    /** The protocol version negotiated at Hello:
     *  min(kProtocolVersion, server's version). Trace ids are only
     *  put on the wire when this is >= 3. */
    std::uint32_t negotiatedProtocol() const
    {
        return negotiated_protocol_;
    }

    /** Whether the connection is still up (in-flight futures after a
     *  loss resolve with Unavailable). */
    bool connected() const;

    /** Close the connection and join the reader; idempotent. Every
     *  in-flight future resolves with Unavailable. */
    void close();

  private:
    void sendFrame(const wire::Message &message); ///< locks send_mutex_
    /** Caller holds send_mutex_ (stats/info register their FIFO
     *  promise and send under one critical section so wire order
     *  matches queue order). */
    void sendFrameLocked(const wire::Message &message);
    void readerLoop();
    /** Resolve every in-flight future with @p code (Unavailable on a
     *  lost connection, ProtocolError on a wire violation) and mark
     *  the client disconnected. */
    void failAllPending(wire::ErrorCode code,
                        const std::string &reason);

    int fd_ = -1;
    std::uint32_t negotiated_protocol_ = wire::kProtocolVersion;

    std::mutex send_mutex_;
    std::atomic<bool> connected_{false};
    std::thread reader_;
    std::once_flag join_once_;

    mutable std::mutex pending_mutex_;
    std::atomic<std::uint64_t> next_id_{1};
    std::atomic<std::uint64_t> next_session_id_{1};
    std::map<std::uint64_t, std::promise<wire::InferResponse>>
        pending_infer_;
    /** Keyed by step id; the session id rides along so a failed
     *  connection can synthesize fully-addressed SessionStates. */
    std::map<std::uint64_t,
             std::pair<std::uint64_t, std::promise<wire::SessionState>>>
        pending_steps_;
    std::map<std::uint64_t, std::promise<wire::SessionAck>>
        pending_session_opens_; ///< keyed by session_id
    std::deque<std::promise<wire::StatsResponse>> pending_stats_;
    std::deque<std::promise<wire::InfoResponse>> pending_info_;
    std::deque<std::promise<wire::MetricsResponse>> pending_metrics_;
    std::deque<std::promise<wire::TraceResponse>> pending_trace_;
};

} // namespace eie::serve

#endif // EIE_SERVE_TCP_HH
