/**
 * @file
 * Loopback/LAN TCP transport for the serving cluster: a TcpServer
 * that dispatches wire-protocol frames (serve/wire.hh) onto a
 * ServingDirectory's ClusterEngines, and a TcpClient that speaks the
 * same frames. This is the `tools/eie_serve` daemon's front door.
 *
 * Connection model: one reader thread and one writer thread per
 * accepted connection. The reader decodes frames and submits infer
 * requests to the routed cluster immediately (so the cluster's
 * micro-batchers see the full pipeline depth); the writer completes
 * the per-request futures in request order and streams the responses
 * back, so a client may pipeline arbitrarily many requests and read
 * responses FIFO. Malformed frames, handshake violations and
 * oversized bodies close the connection — they never take the daemon
 * down.
 *
 * Lifecycle: TcpServer::stop() closes the listener and all accepted
 * sockets and joins the per-connection threads; pending responses
 * complete first (shard servers guarantee every submitted future
 * resolves). Stop the TcpServer before stopping the directory's
 * clusters.
 */

#ifndef EIE_SERVE_TCP_HH
#define EIE_SERVE_TCP_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cluster.hh"
#include "serve/wire.hh"

namespace eie::serve {

/** Listening parameters of a TcpServer. */
struct TcpServerOptions
{
    /** TCP port; 0 binds an ephemeral port (read it via port()). */
    std::uint16_t port = 0;

    /** Bind address; loopback by default — exposing an unauthenticated
     *  inference socket beyond the host is an operator decision. */
    std::string bind_address = "127.0.0.1";

    int backlog = 64;
};

/** Frame-dispatching TCP front end over a ServingDirectory. */
class TcpServer
{
  public:
    TcpServer(ServingDirectory &directory,
              const TcpServerOptions &options = {});

    /** Stops and joins (see stop()). */
    ~TcpServer();

    TcpServer(const TcpServer &) = delete;
    TcpServer &operator=(const TcpServer &) = delete;

    /** Bind, listen and start accepting. Fatal on bind failure. */
    void start();

    /** The bound port (valid after start(); resolves port 0). */
    std::uint16_t port() const { return port_; }

    /** Close the listener and every connection, join all threads.
     *  Idempotent. */
    void stop();

    /** Connections accepted since start (diagnostics). */
    std::uint64_t connectionsAccepted() const;

    /** Connections currently tracked (live plus finished ones not
     *  yet reaped; reaping happens on accept). */
    std::size_t trackedConnections() const;

  private:
    /** One queued outbound response: either already materialised or
     *  an in-flight inference future completed by the writer. */
    struct Outbound
    {
        wire::Message ready;  ///< used when !pending.valid()
        std::uint64_t id = 0; ///< request id for pending responses
        std::future<std::vector<std::int64_t>> pending;
    };

    struct Connection
    {
        int fd = -1;
        std::thread reader;
        std::thread writer;
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<Outbound> outbox;
        bool closing = false;
        /** Reader + writer still running; 0 = reapable. */
        std::atomic<int> live_threads{2};
    };

    void acceptLoop();
    void readerLoop(Connection &connection);
    void writerLoop(Connection &connection);
    void enqueue(Connection &connection, Outbound outbound);
    void reapFinishedLocked(); ///< caller holds connections_mutex_

    ServingDirectory &directory_;
    TcpServerOptions options_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptor_;
    bool started_ = false;

    mutable std::mutex connections_mutex_;
    std::vector<std::unique_ptr<Connection>> connections_;
    std::uint64_t accepted_ = 0;
    bool stopping_ = false;
    std::once_flag join_once_;
};

/** Blocking wire-protocol client (pipelining supported). */
class TcpClient
{
  public:
    /** Connect to @p host:@p port and handshake. Throws
     *  std::runtime_error on connection or handshake failure. */
    TcpClient(const std::string &host, std::uint16_t port);

    ~TcpClient();

    TcpClient(const TcpClient &) = delete;
    TcpClient &operator=(const TcpClient &) = delete;

    /**
     * Send one inference request without waiting (pipelining);
     * returns the request id. Responses arrive in request order via
     * readResponse().
     */
    std::uint64_t sendInfer(const std::string &model,
                            std::uint32_t version,
                            const std::vector<std::int64_t> &input,
                            std::int32_t priority = 0,
                            std::uint32_t deadline_us = 0);

    /** Read the next InferResponse (blocking). Throws WireError on a
     *  protocol violation or a closed connection. */
    wire::InferResponse readResponse();

    /** Synchronous convenience: send one request, wait for its
     *  response, return the output. Throws std::runtime_error with
     *  the server's message on an error response. */
    std::vector<std::int64_t>
    infer(const std::string &model,
          const std::vector<std::int64_t> &input,
          std::uint32_t version = 0);

    /** Fetch the server's aggregated stats JSON. Must not be called
     *  with inference responses still unread (responses are FIFO). */
    std::string stats();

    /** Describe a served model (sizes, shard layout; builds its
     *  cluster on first touch). Same FIFO caveat as stats(). */
    wire::InfoResponse info(const std::string &model,
                            std::uint32_t version = 0);

    /** Close the connection (idempotent; further calls throw). */
    void close();

  private:
    void sendFrame(const wire::Message &message);
    wire::Message readFrame();

    int fd_ = -1;
    std::uint64_t next_id_ = 1;
};

} // namespace eie::serve

#endif // EIE_SERVE_TCP_HH
