#include "serve/wire.hh"

#include <cstring>

namespace eie::serve::wire {

namespace {

/** Little-endian scalar/string/vector writer (appends to a buffer). */
class BodyWriter
{
  public:
    template <typename T>
    void
    scalar(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *p = reinterpret_cast<const std::uint8_t *>(&value);
        bytes_.insert(bytes_.end(), p, p + sizeof(T));
    }

    void
    string(const std::string &text)
    {
        scalar<std::uint32_t>(static_cast<std::uint32_t>(text.size()));
        bytes_.insert(bytes_.end(), text.begin(), text.end());
    }

    void
    vectorI64(const std::vector<std::int64_t> &values)
    {
        scalar<std::uint32_t>(
            static_cast<std::uint32_t>(values.size()));
        for (const std::int64_t v : values)
            scalar<std::int64_t>(v);
    }

    void
    vectorF32(const std::vector<float> &values)
    {
        scalar<std::uint32_t>(
            static_cast<std::uint32_t>(values.size()));
        for (const float v : values)
            scalar<float>(v);
    }

    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked reader over one frame body. */
class BodyReader
{
  public:
    explicit BodyReader(std::span<const std::uint8_t> bytes)
        : bytes_(bytes)
    {}

    template <typename T>
    T
    scalar()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (pos_ + sizeof(T) > bytes_.size())
            throw WireError("frame truncated");
        T value;
        std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return value;
    }

    std::string
    string(std::size_t max_len)
    {
        const auto len = scalar<std::uint32_t>();
        if (len > max_len)
            throw WireError("string field exceeds limit");
        if (pos_ + len > bytes_.size())
            throw WireError("frame truncated");
        std::string text(
            reinterpret_cast<const char *>(bytes_.data() + pos_), len);
        pos_ += len;
        return text;
    }

    std::vector<std::int64_t>
    vectorI64()
    {
        const auto count = scalar<std::uint32_t>();
        if (static_cast<std::size_t>(count) * 8 >
            bytes_.size() - pos_)
            throw WireError("vector field exceeds frame");
        std::vector<std::int64_t> values(count);
        for (auto &v : values)
            v = scalar<std::int64_t>();
        return values;
    }

    std::vector<float>
    vectorF32()
    {
        const auto count = scalar<std::uint32_t>();
        if (static_cast<std::size_t>(count) * 4 >
            bytes_.size() - pos_)
            throw WireError("vector field exceeds frame");
        std::vector<float> values(count);
        for (auto &v : values)
            v = scalar<float>();
        return values;
    }

    bool atEnd() const { return pos_ == bytes_.size(); }

    void
    done() const
    {
        if (pos_ != bytes_.size())
            throw WireError("trailing bytes after frame payload");
    }

  private:
    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
};

/** Wrap a finished body in the length-prefixed frame. */
std::vector<std::uint8_t>
frame(MsgType type, BodyWriter body_writer)
{
    const std::vector<std::uint8_t> payload = body_writer.take();
    const std::uint32_t body_len =
        static_cast<std::uint32_t>(1 + payload.size());
    std::vector<std::uint8_t> out;
    out.reserve(4 + body_len);
    const auto *p = reinterpret_cast<const std::uint8_t *>(&body_len);
    out.insert(out.end(), p, p + 4);
    out.push_back(static_cast<std::uint8_t>(type));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

ErrorCode
errorCodeFromByte(std::uint8_t byte)
{
    // Unknown codes from a newer peer degrade to Internal instead of
    // rejecting the frame: the error string still travels.
    return byte > static_cast<std::uint8_t>(ErrorCode::Unavailable)
        ? ErrorCode::Internal
        : static_cast<ErrorCode>(byte);
}

} // namespace

MsgType
messageType(const Message &message)
{
    return std::visit(
        [](const auto &msg) {
            using T = std::decay_t<decltype(msg)>;
            if constexpr (std::is_same_v<T, Hello>)
                return MsgType::Hello;
            else if constexpr (std::is_same_v<T, HelloAck>)
                return MsgType::HelloAck;
            else if constexpr (std::is_same_v<T, InferRequest>)
                return MsgType::InferRequest;
            else if constexpr (std::is_same_v<T, InferResponse>)
                return MsgType::InferResponse;
            else if constexpr (std::is_same_v<T, StatsRequest>)
                return MsgType::StatsRequest;
            else if constexpr (std::is_same_v<T, StatsResponse>)
                return MsgType::StatsResponse;
            else if constexpr (std::is_same_v<T, InfoRequest>)
                return MsgType::InfoRequest;
            else if constexpr (std::is_same_v<T, InfoResponse>)
                return MsgType::InfoResponse;
            else if constexpr (std::is_same_v<T, SessionOpen>)
                return MsgType::SessionOpen;
            else if constexpr (std::is_same_v<T, SessionAck>)
                return MsgType::SessionAck;
            else if constexpr (std::is_same_v<T, SessionStep>)
                return MsgType::SessionStep;
            else if constexpr (std::is_same_v<T, SessionState>)
                return MsgType::SessionState;
            else if constexpr (std::is_same_v<T, SessionClose>)
                return MsgType::SessionClose;
            else if constexpr (std::is_same_v<T, MetricsRequest>)
                return MsgType::MetricsRequest;
            else if constexpr (std::is_same_v<T, MetricsResponse>)
                return MsgType::MetricsResponse;
            else if constexpr (std::is_same_v<T, TraceRequest>)
                return MsgType::TraceRequest;
            else
                return MsgType::TraceResponse;
        },
        message);
}

std::vector<std::uint8_t>
encodeFrame(const Message &message)
{
    BodyWriter writer;
    std::visit(
        [&writer](const auto &msg) {
            using T = std::decay_t<decltype(msg)>;
            if constexpr (std::is_same_v<T, Hello>) {
                writer.scalar<std::uint32_t>(msg.protocol);
            } else if constexpr (std::is_same_v<T, HelloAck>) {
                writer.scalar<std::uint32_t>(msg.protocol);
                if (msg.wire_layout >= 2) {
                    writer.scalar<std::uint8_t>(msg.ok ? 1 : 0);
                    writer.string(msg.error);
                }
            } else if constexpr (std::is_same_v<T, InferRequest>) {
                writer.scalar<std::uint64_t>(msg.id);
                writer.string(msg.model);
                writer.scalar<std::uint32_t>(msg.version);
                writer.scalar<std::int32_t>(msg.priority);
                writer.scalar<std::uint32_t>(msg.deadline_us);
                writer.vectorI64(msg.input);
                // v3 trailing extension: only traced requests grow
                // the frame, so v2 servers keep decoding untraced
                // traffic (their reader would reject extra bytes).
                if (msg.trace_id != 0)
                    writer.scalar<std::uint64_t>(msg.trace_id);
            } else if constexpr (std::is_same_v<T, InferResponse>) {
                writer.scalar<std::uint64_t>(msg.id);
                writer.scalar<std::uint8_t>(msg.ok ? 1 : 0);
                if (msg.ok) {
                    writer.vectorI64(msg.output);
                } else {
                    writer.scalar<std::uint8_t>(
                        static_cast<std::uint8_t>(msg.code));
                    writer.string(msg.error);
                }
            } else if constexpr (std::is_same_v<T, StatsRequest>) {
                // empty payload
            } else if constexpr (std::is_same_v<T, StatsResponse>) {
                writer.string(msg.json);
            } else if constexpr (std::is_same_v<T, InfoRequest>) {
                writer.string(msg.model);
                writer.scalar<std::uint32_t>(msg.version);
            } else if constexpr (std::is_same_v<T, InfoResponse>) {
                writer.scalar<std::uint8_t>(msg.ok ? 1 : 0);
                writer.string(msg.error);
                writer.string(msg.model);
                writer.scalar<std::uint32_t>(msg.version);
                writer.scalar<std::uint64_t>(msg.input_size);
                writer.scalar<std::uint64_t>(msg.output_size);
                writer.scalar<std::uint32_t>(msg.shards);
                writer.string(msg.placement);
            } else if constexpr (std::is_same_v<T, SessionOpen>) {
                writer.scalar<std::uint64_t>(msg.session_id);
                writer.string(msg.model);
                writer.scalar<std::uint32_t>(msg.version);
            } else if constexpr (std::is_same_v<T, SessionAck>) {
                writer.scalar<std::uint64_t>(msg.session_id);
                writer.scalar<std::uint8_t>(msg.ok ? 1 : 0);
                writer.scalar<std::uint8_t>(
                    static_cast<std::uint8_t>(msg.code));
                writer.string(msg.error);
                writer.scalar<std::uint64_t>(msg.input_size);
                writer.scalar<std::uint64_t>(msg.hidden_size);
            } else if constexpr (std::is_same_v<T, SessionStep>) {
                writer.scalar<std::uint64_t>(msg.session_id);
                writer.scalar<std::uint64_t>(msg.id);
                writer.scalar<std::int32_t>(msg.priority);
                writer.scalar<std::uint32_t>(msg.deadline_us);
                writer.vectorF32(msg.x);
                if (msg.trace_id != 0)
                    writer.scalar<std::uint64_t>(msg.trace_id);
            } else if constexpr (std::is_same_v<T, SessionState>) {
                writer.scalar<std::uint64_t>(msg.session_id);
                writer.scalar<std::uint64_t>(msg.id);
                writer.scalar<std::uint8_t>(msg.ok ? 1 : 0);
                writer.scalar<std::uint8_t>(
                    static_cast<std::uint8_t>(msg.code));
                writer.string(msg.error);
                writer.vectorF32(msg.h);
            } else if constexpr (std::is_same_v<T, SessionClose>) {
                writer.scalar<std::uint64_t>(msg.session_id);
            } else if constexpr (std::is_same_v<T,
                                                MetricsRequest>) {
                // empty payload
            } else if constexpr (std::is_same_v<T,
                                                MetricsResponse>) {
                writer.string(msg.text);
                writer.string(msg.json);
            } else if constexpr (std::is_same_v<T, TraceRequest>) {
                // empty payload
            } else { // TraceResponse
                writer.string(msg.json);
            }
        },
        message);
    return frame(messageType(message), std::move(writer));
}

Message
decodeBody(std::span<const std::uint8_t> body)
{
    if (body.empty())
        throw WireError("empty frame body");
    if (body.size() > kMaxBodyBytes)
        throw WireError("frame body exceeds limit");

    BodyReader reader(body.subspan(1));
    switch (static_cast<MsgType>(body[0])) {
      case MsgType::Hello: {
        Hello msg;
        msg.protocol = reader.scalar<std::uint32_t>();
        reader.done();
        return msg;
      }
      case MsgType::HelloAck: {
        HelloAck msg;
        msg.protocol = reader.scalar<std::uint32_t>();
        if (reader.atEnd()) {
            // v1 legacy layout: the version field only.
            msg.wire_layout = 1;
            msg.ok = true;
        } else {
            msg.wire_layout = 2;
            msg.ok = reader.scalar<std::uint8_t>() != 0;
            msg.error = reader.string(kMaxBodyBytes);
        }
        reader.done();
        return msg;
      }
      case MsgType::InferRequest: {
        InferRequest msg;
        msg.id = reader.scalar<std::uint64_t>();
        msg.model = reader.string(kMaxModelName);
        msg.version = reader.scalar<std::uint32_t>();
        msg.priority = reader.scalar<std::int32_t>();
        msg.deadline_us = reader.scalar<std::uint32_t>();
        msg.input = reader.vectorI64();
        // v3 trailing trace id: absent on v2 frames and on untraced
        // v3 frames (both decode to trace_id 0).
        if (!reader.atEnd())
            msg.trace_id = reader.scalar<std::uint64_t>();
        reader.done();
        return msg;
      }
      case MsgType::InferResponse: {
        InferResponse msg;
        msg.id = reader.scalar<std::uint64_t>();
        msg.ok = reader.scalar<std::uint8_t>() != 0;
        if (msg.ok) {
            msg.output = reader.vectorI64();
        } else {
            msg.code = errorCodeFromByte(reader.scalar<std::uint8_t>());
            msg.error = reader.string(kMaxBodyBytes);
        }
        reader.done();
        return msg;
      }
      case MsgType::StatsRequest: {
        reader.done();
        return StatsRequest{};
      }
      case MsgType::StatsResponse: {
        StatsResponse msg;
        msg.json = reader.string(kMaxBodyBytes);
        reader.done();
        return msg;
      }
      case MsgType::InfoRequest: {
        InfoRequest msg;
        msg.model = reader.string(kMaxModelName);
        msg.version = reader.scalar<std::uint32_t>();
        reader.done();
        return msg;
      }
      case MsgType::InfoResponse: {
        InfoResponse msg;
        msg.ok = reader.scalar<std::uint8_t>() != 0;
        msg.error = reader.string(kMaxBodyBytes);
        msg.model = reader.string(kMaxModelName);
        msg.version = reader.scalar<std::uint32_t>();
        msg.input_size = reader.scalar<std::uint64_t>();
        msg.output_size = reader.scalar<std::uint64_t>();
        msg.shards = reader.scalar<std::uint32_t>();
        msg.placement = reader.string(kMaxBodyBytes);
        reader.done();
        return msg;
      }
      case MsgType::SessionOpen: {
        SessionOpen msg;
        msg.session_id = reader.scalar<std::uint64_t>();
        msg.model = reader.string(kMaxModelName);
        msg.version = reader.scalar<std::uint32_t>();
        reader.done();
        return msg;
      }
      case MsgType::SessionAck: {
        SessionAck msg;
        msg.session_id = reader.scalar<std::uint64_t>();
        msg.ok = reader.scalar<std::uint8_t>() != 0;
        msg.code = errorCodeFromByte(reader.scalar<std::uint8_t>());
        msg.error = reader.string(kMaxBodyBytes);
        msg.input_size = reader.scalar<std::uint64_t>();
        msg.hidden_size = reader.scalar<std::uint64_t>();
        reader.done();
        return msg;
      }
      case MsgType::SessionStep: {
        SessionStep msg;
        msg.session_id = reader.scalar<std::uint64_t>();
        msg.id = reader.scalar<std::uint64_t>();
        msg.priority = reader.scalar<std::int32_t>();
        msg.deadline_us = reader.scalar<std::uint32_t>();
        msg.x = reader.vectorF32();
        if (!reader.atEnd())
            msg.trace_id = reader.scalar<std::uint64_t>();
        reader.done();
        return msg;
      }
      case MsgType::SessionState: {
        SessionState msg;
        msg.session_id = reader.scalar<std::uint64_t>();
        msg.id = reader.scalar<std::uint64_t>();
        msg.ok = reader.scalar<std::uint8_t>() != 0;
        msg.code = errorCodeFromByte(reader.scalar<std::uint8_t>());
        msg.error = reader.string(kMaxBodyBytes);
        msg.h = reader.vectorF32();
        reader.done();
        return msg;
      }
      case MsgType::SessionClose: {
        SessionClose msg;
        msg.session_id = reader.scalar<std::uint64_t>();
        reader.done();
        return msg;
      }
      case MsgType::MetricsRequest: {
        reader.done();
        return MetricsRequest{};
      }
      case MsgType::MetricsResponse: {
        MetricsResponse msg;
        msg.text = reader.string(kMaxBodyBytes);
        msg.json = reader.string(kMaxBodyBytes);
        reader.done();
        return msg;
      }
      case MsgType::TraceRequest: {
        reader.done();
        return TraceRequest{};
      }
      case MsgType::TraceResponse: {
        TraceResponse msg;
        msg.json = reader.string(kMaxBodyBytes);
        reader.done();
        return msg;
      }
    }
    throw WireError("unknown frame type " +
                    std::to_string(static_cast<unsigned>(body[0])));
}

} // namespace eie::serve::wire
