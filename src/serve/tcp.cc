#include "serve/tcp.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace eie::serve {

namespace {

/** Receive exactly @p size bytes; false on EOF/error/shutdown. */
bool
recvExact(int fd, void *out, std::size_t size)
{
    auto *p = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        const ssize_t got = ::recv(fd, p, size, 0);
        if (got == 0)
            return false; // orderly EOF
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += got;
        size -= static_cast<std::size_t>(got);
    }
    return true;
}

/** Send all of @p data; false on error/shutdown. */
bool
sendAll(int fd, const std::uint8_t *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t sent =
            ::send(fd, data, size, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += sent;
        size -= static_cast<std::size_t>(sent);
    }
    return true;
}

/** Read one whole frame body; empty vector on EOF/close. Throws
 *  WireError on an oversized frame. */
std::vector<std::uint8_t>
recvFrameBody(int fd)
{
    std::uint32_t body_len = 0;
    if (!recvExact(fd, &body_len, sizeof(body_len)))
        return {};
    if (body_len == 0 || body_len > wire::kMaxBodyBytes)
        throw wire::WireError("frame body length " +
                              std::to_string(body_len) +
                              " out of range");
    std::vector<std::uint8_t> body(body_len);
    if (!recvExact(fd, body.data(), body.size()))
        return {};
    return body;
}

void
setNoDelay(int fd)
{
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

// ------------------------------------------------------------ TcpServer

TcpServer::TcpServer(ServingDirectory &directory,
                     const TcpServerOptions &options)
    : directory_(directory), options_(options)
{}

TcpServer::~TcpServer()
{
    stop();
}

void
TcpServer::start()
{
    fatal_if(started_, "TcpServer::start() called twice");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatal_if(listen_fd_ < 0, "socket(): %s", std::strerror(errno));

    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    fatal_if(::inet_pton(AF_INET, options_.bind_address.c_str(),
                         &addr.sin_addr) != 1,
             "invalid bind address '%s'",
             options_.bind_address.c_str());
    fatal_if(::bind(listen_fd_,
                    reinterpret_cast<const sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "bind(%s:%u): %s", options_.bind_address.c_str(),
             options_.port, std::strerror(errno));
    fatal_if(::listen(listen_fd_, options_.backlog) != 0,
             "listen(): %s", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    fatal_if(::getsockname(listen_fd_,
                           reinterpret_cast<sockaddr *>(&bound),
                           &bound_len) != 0,
             "getsockname(): %s", std::strerror(errno));
    port_ = ntohs(bound.sin_port);

    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
TcpServer::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            // Transient failures (peer reset before accept, momentary
            // fd exhaustion) must not kill the accept loop — only a
            // stop() (which closes the listener) ends it.
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            {
                std::lock_guard<std::mutex> lock(connections_mutex_);
                if (stopping_)
                    return;
            }
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOBUFS || errno == ENOMEM) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            inform("accept(): %s; no longer accepting",
                   std::strerror(errno));
            return;
        }
        setNoDelay(fd);
        std::lock_guard<std::mutex> lock(connections_mutex_);
        if (stopping_) {
            ::close(fd);
            return;
        }
        reapFinishedLocked();
        ++accepted_;
        auto connection = std::make_unique<Connection>();
        connection->fd = fd;
        Connection &ref = *connection;
        connection->reader =
            std::thread([this, &ref] { readerLoop(ref); });
        connection->writer =
            std::thread([this, &ref] { writerLoop(ref); });
        connections_.push_back(std::move(connection));
    }
}

void
TcpServer::reapFinishedLocked()
{
    // Join and release connections whose both threads have exited, so
    // a long-lived daemon under connection churn does not accumulate
    // fds and thread handles until stop(). Caller holds
    // connections_mutex_.
    std::erase_if(connections_, [](const std::unique_ptr<Connection>
                                       &connection) {
        if (connection->live_threads.load() != 0)
            return false;
        if (connection->reader.joinable())
            connection->reader.join();
        if (connection->writer.joinable())
            connection->writer.join();
        ::close(connection->fd);
        return true;
    });
}

void
TcpServer::enqueue(Connection &connection, Outbound outbound)
{
    {
        std::lock_guard<std::mutex> lock(connection.mutex);
        connection.outbox.push_back(std::move(outbound));
    }
    connection.cv.notify_all();
}

void
TcpServer::readerLoop(Connection &connection)
{
    bool greeted = false;
    try {
        for (;;) {
            const std::vector<std::uint8_t> body =
                recvFrameBody(connection.fd);
            if (body.empty())
                break; // client closed (or stop() shut us down)
            wire::Message message = wire::decodeBody(body);

            if (!greeted) {
                const auto *hello =
                    std::get_if<wire::Hello>(&message);
                if (hello == nullptr ||
                    hello->protocol != wire::kProtocolVersion)
                    break; // handshake violation: drop
                greeted = true;
                Outbound ack;
                ack.ready = wire::HelloAck{};
                enqueue(connection, std::move(ack));
                continue;
            }

            if (auto *request =
                    std::get_if<wire::InferRequest>(&message)) {
                std::string error;
                ClusterEngine *cluster = directory_.cluster(
                    request->model, request->version, error);
                if (cluster != nullptr &&
                    request->input.size() != cluster->inputSize())
                    error = "input length " +
                        std::to_string(request->input.size()) +
                        " != model input size " +
                        std::to_string(cluster->inputSize());
                if (cluster == nullptr || !error.empty()) {
                    wire::InferResponse response;
                    response.id = request->id;
                    response.ok = false;
                    response.error = error;
                    Outbound out;
                    out.ready = std::move(response);
                    enqueue(connection, std::move(out));
                    continue;
                }
                engine::SubmitOptions submit;
                submit.priority = request->priority;
                submit.deadline =
                    std::chrono::microseconds(request->deadline_us);
                Outbound out;
                out.id = request->id;
                out.pending = cluster->submit(
                    std::move(request->input), submit);
                enqueue(connection, std::move(out));
            } else if (std::holds_alternative<wire::StatsRequest>(
                           message)) {
                Outbound out;
                out.ready =
                    wire::StatsResponse{directory_.statsJson()};
                enqueue(connection, std::move(out));
            } else if (const auto *info =
                           std::get_if<wire::InfoRequest>(&message)) {
                wire::InfoResponse response;
                std::string error;
                const ClusterEngine *cluster = directory_.cluster(
                    info->model, info->version, error);
                if (cluster == nullptr) {
                    response.error = error;
                } else {
                    response.ok = true;
                    response.model = cluster->model().name();
                    response.version = cluster->model().version();
                    response.input_size = cluster->inputSize();
                    response.output_size = cluster->outputSize();
                    response.shards = cluster->shardCount();
                    response.placement = placementName(
                        cluster->options().placement);
                }
                Outbound out;
                out.ready = std::move(response);
                enqueue(connection, std::move(out));
            } else {
                break; // client sent a server-to-client frame: drop
            }
        }
    } catch (const wire::WireError &error) {
        if (!Logger::quiet())
            inform("dropping connection: %s", error.what());
    }

    {
        std::lock_guard<std::mutex> lock(connection.mutex);
        connection.closing = true;
    }
    connection.cv.notify_all();
    // Wake a writer blocked in send() and prevent further reads.
    ::shutdown(connection.fd, SHUT_RD);
    connection.live_threads.fetch_sub(1);
}

void
TcpServer::writerLoop(Connection &connection)
{
    for (;;) {
        Outbound outbound;
        {
            std::unique_lock<std::mutex> lock(connection.mutex);
            connection.cv.wait(lock, [&connection] {
                return connection.closing ||
                    !connection.outbox.empty();
            });
            if (connection.outbox.empty())
                break; // closing and fully flushed
            outbound = std::move(connection.outbox.front());
            connection.outbox.pop_front();
        }

        wire::Message message;
        if (outbound.pending.valid()) {
            wire::InferResponse response;
            response.id = outbound.id;
            try {
                response.output = outbound.pending.get();
                response.ok = true;
            } catch (const std::exception &error) {
                response.ok = false;
                response.error = error.what();
            }
            message = std::move(response);
        } else {
            message = std::move(outbound.ready);
        }
        const std::vector<std::uint8_t> frame =
            wire::encodeFrame(message);
        if (!sendAll(connection.fd, frame.data(), frame.size()))
            break; // peer gone; pending futures still complete above
    }
    // Flushed (or the peer is gone): FIN the socket so the client's
    // reads terminate, and unblock a reader still in recv() when the
    // writer is the one bailing out.
    ::shutdown(connection.fd, SHUT_RDWR);
    connection.live_threads.fetch_sub(1);
}

void
TcpServer::stop()
{
    if (!started_)
        return;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        stopping_ = true;
    }
    std::call_once(join_once_, [this] {
        // Closing the listener pops acceptLoop out of accept().
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        if (acceptor_.joinable())
            acceptor_.join();

        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (auto &connection : connections_) {
            ::shutdown(connection->fd, SHUT_RDWR);
            {
                std::lock_guard<std::mutex> conn_lock(
                    connection->mutex);
                connection->closing = true;
            }
            connection->cv.notify_all();
        }
        for (auto &connection : connections_) {
            if (connection->reader.joinable())
                connection->reader.join();
            if (connection->writer.joinable())
                connection->writer.join();
            ::close(connection->fd);
        }
        connections_.clear();
    });
}

std::uint64_t
TcpServer::connectionsAccepted() const
{
    std::lock_guard<std::mutex> lock(connections_mutex_);
    return accepted_;
}

std::size_t
TcpServer::trackedConnections() const
{
    std::lock_guard<std::mutex> lock(connections_mutex_);
    return connections_.size();
}

// ------------------------------------------------------------ TcpClient

TcpClient::TcpClient(const std::string &host, std::uint16_t port)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *results = nullptr;
    const int rc = ::getaddrinfo(
        host.c_str(), std::to_string(port).c_str(), &hints, &results);
    if (rc != 0)
        throw std::runtime_error("cannot resolve '" + host +
                                 "': " + ::gai_strerror(rc));

    int fd = -1;
    for (const addrinfo *ai = results; ai != nullptr;
         ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(results);
    if (fd < 0)
        throw std::runtime_error("cannot connect to " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    setNoDelay(fd);
    fd_ = fd;

    sendFrame(wire::Hello{});
    const wire::Message ack = readFrame();
    const auto *hello_ack = std::get_if<wire::HelloAck>(&ack);
    if (hello_ack == nullptr ||
        hello_ack->protocol != wire::kProtocolVersion) {
        close();
        throw std::runtime_error("handshake failed: unexpected or "
                                 "mismatched HelloAck");
    }
}

TcpClient::~TcpClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
TcpClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
TcpClient::sendFrame(const wire::Message &message)
{
    if (fd_ < 0)
        throw wire::WireError("client connection is closed");
    const std::vector<std::uint8_t> frame =
        wire::encodeFrame(message);
    if (!sendAll(fd_, frame.data(), frame.size()))
        throw wire::WireError("connection lost while sending");
}

wire::Message
TcpClient::readFrame()
{
    if (fd_ < 0)
        throw wire::WireError("client connection is closed");
    const std::vector<std::uint8_t> body = recvFrameBody(fd_);
    if (body.empty())
        throw wire::WireError("connection closed by server");
    return wire::decodeBody(body);
}

std::uint64_t
TcpClient::sendInfer(const std::string &model, std::uint32_t version,
                     const std::vector<std::int64_t> &input,
                     std::int32_t priority, std::uint32_t deadline_us)
{
    wire::InferRequest request;
    request.id = next_id_++;
    request.model = model;
    request.version = version;
    request.priority = priority;
    request.deadline_us = deadline_us;
    request.input = input;
    sendFrame(request);
    return request.id;
}

wire::InferResponse
TcpClient::readResponse()
{
    const wire::Message message = readFrame();
    const auto *response = std::get_if<wire::InferResponse>(&message);
    if (response == nullptr)
        throw wire::WireError("expected an InferResponse frame");
    return *response;
}

std::vector<std::int64_t>
TcpClient::infer(const std::string &model,
                 const std::vector<std::int64_t> &input,
                 std::uint32_t version)
{
    const std::uint64_t id = sendInfer(model, version, input);
    wire::InferResponse response = readResponse();
    if (response.id != id)
        throw wire::WireError("response id does not match request");
    if (!response.ok)
        throw std::runtime_error("server error: " + response.error);
    return std::move(response.output);
}

std::string
TcpClient::stats()
{
    sendFrame(wire::StatsRequest{});
    const wire::Message message = readFrame();
    const auto *response = std::get_if<wire::StatsResponse>(&message);
    if (response == nullptr)
        throw wire::WireError("expected a StatsResponse frame");
    return response->json;
}

wire::InfoResponse
TcpClient::info(const std::string &model, std::uint32_t version)
{
    wire::InfoRequest request;
    request.model = model;
    request.version = version;
    sendFrame(request);
    const wire::Message message = readFrame();
    const auto *response = std::get_if<wire::InfoResponse>(&message);
    if (response == nullptr)
        throw wire::WireError("expected an InfoResponse frame");
    return *response;
}

} // namespace eie::serve
