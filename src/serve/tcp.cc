#include "serve/tcp.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/faultpoint.hh"
#include "common/logging.hh"
#include "engine/lstm_session.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace eie::serve {

namespace {

/** Receive exactly @p size bytes; false on EOF/error/shutdown. */
bool
recvExact(int fd, void *out, std::size_t size)
{
    auto *p = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        const ssize_t got = ::recv(fd, p, size, 0);
        if (got == 0)
            return false; // orderly EOF
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += got;
        size -= static_cast<std::size_t>(got);
    }
    return true;
}

/** Send all of @p data; false on error/shutdown. */
bool
sendAll(int fd, const std::uint8_t *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t sent =
            ::send(fd, data, size, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += sent;
        size -= static_cast<std::size_t>(sent);
    }
    return true;
}

/** Read one whole frame body; empty vector on EOF/close. Throws
 *  WireError on an oversized frame. */
std::vector<std::uint8_t>
recvFrameBody(int fd)
{
    std::uint32_t body_len = 0;
    if (!recvExact(fd, &body_len, sizeof(body_len)))
        return {};
    if (body_len == 0 || body_len > wire::kMaxBodyBytes)
        throw wire::WireError("frame body length " +
                              std::to_string(body_len) +
                              " out of range");
    std::vector<std::uint8_t> body(body_len);
    if (!recvExact(fd, body.data(), body.size()))
        return {};
    return body;
}

void
setNoDelay(int fd)
{
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/**
 * Remove and return the pending entry registered under @p key, if
 * still present — the one correlate/reclaim primitive shared by the
 * client's reader (response arrived) and its submitters (send
 * failed): whoever extracts the entry owns resolving its promise,
 * so the two sides can never double-resolve.
 */
template <typename Map>
std::optional<typename Map::mapped_type>
takePending(std::mutex &mutex, Map &map, std::uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = map.find(key);
    if (it == map.end())
        return std::nullopt;
    typename Map::mapped_type value = std::move(it->second);
    map.erase(it);
    return value;
}

/**
 * Resolve the oldest promise of a FIFO-correlated response queue
 * (stats/info/metrics/trace — the server answers each type in
 * order). An empty queue is tolerated: failAllPending() already
 * claimed the promise on a racing connection loss.
 */
template <typename Response>
void
resolveFifo(std::mutex &mutex,
            std::deque<std::promise<Response>> &queue,
            Response response)
{
    std::promise<Response> promise;
    bool found = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!queue.empty()) {
            promise = std::move(queue.front());
            queue.pop_front();
            found = true;
        }
    }
    if (found)
        promise.set_value(std::move(response));
}

/** Map a ServingDirectory lookup failure onto the wire taxonomy: a
 *  missing model is the client's NotFound; a policy rejection (e.g.
 *  the partitioned-shards preflight) is a server deployment problem,
 *  hence Internal. */
wire::ErrorCode
clusterErrorCode(ServingDirectory::LookupStatus status)
{
    return status == ServingDirectory::LookupStatus::NotFound
        ? wire::ErrorCode::NotFound
        : wire::ErrorCode::Internal;
}

} // namespace

// ------------------------------------------------------------ TcpServer

/** One open streaming LSTM session (reader-thread state). */
struct TcpServer::LiveSession
{
    LiveSession(const core::EieConfig &config,
                const engine::LstmShape &shape, ClusterEngine *engine)
        : session(config, shape), cluster(engine)
    {}

    engine::LstmSession session;
    /** The None-nonlinearity cluster running the gate M×V; owned by
     *  the ServingDirectory, which outlives the server. */
    ClusterEngine *cluster;
};

TcpServer::Connection::~Connection() = default;

TcpServer::TcpServer(ServingDirectory &directory,
                     const TcpServerOptions &options)
    : directory_(directory), options_(options)
{}

TcpServer::~TcpServer()
{
    stop();
}

void
TcpServer::start()
{
    fatal_if(started_, "TcpServer::start() called twice");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatal_if(listen_fd_ < 0, "socket(): %s", std::strerror(errno));

    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    fatal_if(::inet_pton(AF_INET, options_.bind_address.c_str(),
                         &addr.sin_addr) != 1,
             "invalid bind address '%s'",
             options_.bind_address.c_str());
    fatal_if(::bind(listen_fd_,
                    reinterpret_cast<const sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "bind(%s:%u): %s", options_.bind_address.c_str(),
             options_.port, std::strerror(errno));
    fatal_if(::listen(listen_fd_, options_.backlog) != 0,
             "listen(): %s", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    fatal_if(::getsockname(listen_fd_,
                           reinterpret_cast<sockaddr *>(&bound),
                           &bound_len) != 0,
             "getsockname(): %s", std::strerror(errno));
    port_ = ntohs(bound.sin_port);

    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
TcpServer::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            // Transient failures (peer reset before accept, momentary
            // fd exhaustion) must not kill the accept loop — only a
            // stop() (which closes the listener) ends it.
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            {
                std::lock_guard<std::mutex> lock(connections_mutex_);
                if (stopping_)
                    return;
            }
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOBUFS || errno == ENOMEM) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            inform("accept(): %s; no longer accepting",
                   std::strerror(errno));
            return;
        }
        setNoDelay(fd);
        std::lock_guard<std::mutex> lock(connections_mutex_);
        if (stopping_) {
            ::close(fd);
            return;
        }
        reapFinishedLocked();
        ++accepted_;
        auto connection = std::make_unique<Connection>();
        connection->fd = fd;
        Connection &ref = *connection;
        connection->reader =
            std::thread([this, &ref] { readerLoop(ref); });
        connection->writer =
            std::thread([this, &ref] { writerLoop(ref); });
        connections_.push_back(std::move(connection));
    }
}

void
TcpServer::reapFinishedLocked()
{
    // Join and release connections whose both threads have exited, so
    // a long-lived daemon under connection churn does not accumulate
    // fds and thread handles until stop(). Caller holds
    // connections_mutex_.
    std::erase_if(connections_, [](const std::unique_ptr<Connection>
                                       &connection) {
        if (connection->live_threads.load() != 0)
            return false;
        if (connection->reader.joinable())
            connection->reader.join();
        if (connection->writer.joinable())
            connection->writer.join();
        ::close(connection->fd);
        return true;
    });
}

void
TcpServer::enqueue(Connection &connection, Outbound outbound)
{
    {
        std::lock_guard<std::mutex> lock(connection.mutex);
        connection.outbox.push_back(std::move(outbound));
    }
    connection.cv.notify_all();
}

void
TcpServer::handleSessionOpen(Connection &connection,
                             const wire::SessionOpen &open)
{
    wire::SessionAck ack;
    ack.session_id = open.session_id;

    std::string error;
    ServingDirectory::LookupStatus lookup;
    // Sessions run the gate M×V with no drain non-linearity: the
    // pre-activations feed the host-side sigmoids/tanh.
    ClusterEngine *cluster =
        directory_.cluster(open.model, open.version, error,
                           nn::Nonlinearity::None, &lookup);
    engine::LstmShape shape;
    if (cluster == nullptr) {
        ack.code = clusterErrorCode(lookup);
        ack.error = std::move(error);
    } else if (!engine::LstmShape::derive(cluster->inputSize(),
                                          cluster->outputSize(), shape,
                                          error)) {
        ack.code = wire::ErrorCode::InvalidArgument;
        ack.error = std::move(error);
    } else if (connection.sessions.count(open.session_id) != 0) {
        ack.code = wire::ErrorCode::InvalidArgument;
        ack.error = "session id " + std::to_string(open.session_id) +
            " is already open on this connection";
    } else if (connection.sessions.size() >=
               options_.max_sessions_per_connection) {
        ack.code = wire::ErrorCode::Unavailable;
        ack.error = "session limit (" +
            std::to_string(options_.max_sessions_per_connection) +
            " per connection) reached; close a session first";
    } else {
        connection.sessions.emplace(
            open.session_id,
            std::make_unique<LiveSession>(cluster->model().config(),
                                          shape, cluster));
        ack.ok = true;
        ack.input_size = shape.input_size;
        ack.hidden_size = shape.hidden_size;
    }

    Outbound out;
    out.ready = std::move(ack);
    enqueue(connection, std::move(out));
}

void
TcpServer::handleSessionStep(Connection &connection,
                             const wire::SessionStep &step)
{
    wire::SessionState state;
    state.session_id = step.session_id;
    state.id = step.id;

    const auto it = connection.sessions.find(step.session_id);
    if (it == connection.sessions.end()) {
        state.code = wire::ErrorCode::NotFound;
        state.error = "session " + std::to_string(step.session_id) +
            " is not open on this connection";
    } else {
        LiveSession &live = *it->second;
        engine::SubmitOptions submit;
        submit.priority = step.priority;
        submit.deadline = std::chrono::microseconds(step.deadline_us);
        submit.trace_id = step.trace_id;
        const nn::Vector x(step.x.begin(), step.x.end());
        // A step consumes the previous step's state, so it is served
        // synchronously here in the reader; a failed step leaves the
        // session state unchanged (the client may retry).
        try {
            const nn::Vector h = live.session.step(
                x, [&](std::vector<std::int64_t> packed) {
                    return live.cluster
                        ->submit(std::move(packed), submit)
                        .get();
                });
            state.ok = true;
            state.h.assign(h.begin(), h.end());
        } catch (const std::invalid_argument &error) {
            state.code = wire::ErrorCode::InvalidArgument;
            state.error = error.what();
        } catch (const engine::DeadlineExpired &error) {
            state.code = wire::ErrorCode::DeadlineExpired;
            state.error = error.what();
        } catch (const engine::ServerStopped &error) {
            state.code = wire::ErrorCode::Unavailable;
            state.error = error.what();
        } catch (const std::exception &error) {
            state.code = wire::ErrorCode::Internal;
            state.error = error.what();
        }
    }

    Outbound out;
    out.ready = std::move(state);
    enqueue(connection, std::move(out));
}

void
TcpServer::readerLoop(Connection &connection)
{
    bool greeted = false;
    try {
        for (;;) {
            const std::vector<std::uint8_t> body =
                recvFrameBody(connection.fd);
            if (body.empty())
                break; // client closed (or stop() shut us down)
            wire::Message message = wire::decodeBody(body);

            if (!greeted) {
                const auto *hello =
                    std::get_if<wire::Hello>(&message);
                if (hello == nullptr)
                    break; // not a handshake: drop
                wire::HelloAck ack;
                // Answer in the layout the client can decode — a v1
                // peer gets the protocol-only ack its own handshake
                // check rejects cleanly.
                ack.wire_layout = std::min(hello->protocol,
                                           wire::kProtocolVersion);
                if (hello->protocol < wire::kMinProtocolVersion) {
                    ack.ok = false;
                    ack.error = "unsupported protocol version " +
                        std::to_string(hello->protocol) +
                        " (server speaks " +
                        std::to_string(wire::kMinProtocolVersion) +
                        ".." +
                        std::to_string(wire::kProtocolVersion) + ")";
                    Outbound nack;
                    nack.ready = std::move(ack);
                    enqueue(connection, std::move(nack));
                    break; // writer flushes the rejection, then closes
                }
                // Both sides proceed at min(client, server); the ack
                // carries the negotiated version so the client pins
                // the same number.
                ack.protocol = std::min(hello->protocol,
                                        wire::kProtocolVersion);
                greeted = true;
                Outbound out;
                out.ready = std::move(ack);
                enqueue(connection, std::move(out));
                continue;
            }

            if (auto *request =
                    std::get_if<wire::InferRequest>(&message)) {
                std::string error;
                wire::ErrorCode code = wire::ErrorCode::Internal;
                ServingDirectory::LookupStatus lookup;
                ClusterEngine *cluster = directory_.cluster(
                    request->model, request->version, error,
                    nn::Nonlinearity::ReLU, &lookup);
                if (cluster == nullptr) {
                    code = clusterErrorCode(lookup);
                } else if (request->input.size() !=
                           cluster->inputSize()) {
                    code = wire::ErrorCode::InvalidArgument;
                    error = "input length " +
                        std::to_string(request->input.size()) +
                        " != model input size " +
                        std::to_string(cluster->inputSize());
                }
                if (cluster == nullptr || !error.empty()) {
                    wire::InferResponse response;
                    response.id = request->id;
                    response.ok = false;
                    response.code = code;
                    response.error = std::move(error);
                    Outbound out;
                    out.ready = std::move(response);
                    enqueue(connection, std::move(out));
                    continue;
                }
                engine::SubmitOptions submit;
                submit.priority = request->priority;
                submit.deadline =
                    std::chrono::microseconds(request->deadline_us);
                submit.trace_id = request->trace_id;
                Outbound out;
                out.id = request->id;
                out.pending = cluster->submit(
                    std::move(request->input), submit);
                enqueue(connection, std::move(out));
            } else if (std::holds_alternative<wire::StatsRequest>(
                           message)) {
                Outbound out;
                out.ready =
                    wire::StatsResponse{directory_.statsJson()};
                enqueue(connection, std::move(out));
            } else if (std::holds_alternative<wire::MetricsRequest>(
                           message)) {
                obs::MetricsRegistry &registry =
                    obs::processRegistry();
                Outbound out;
                out.ready = wire::MetricsResponse{
                    registry.renderText(), registry.renderJson()};
                enqueue(connection, std::move(out));
            } else if (std::holds_alternative<wire::TraceRequest>(
                           message)) {
                Outbound out;
                out.ready = wire::TraceResponse{obs::renderChromeTrace(
                    obs::processTraceRing().snapshot())};
                enqueue(connection, std::move(out));
            } else if (const auto *info =
                           std::get_if<wire::InfoRequest>(&message)) {
                wire::InfoResponse response;
                std::string error;
                const ClusterEngine *cluster = directory_.cluster(
                    info->model, info->version, error);
                if (cluster == nullptr) {
                    response.error = error;
                } else {
                    response.ok = true;
                    response.model = cluster->model().name();
                    response.version = cluster->model().version();
                    response.input_size = cluster->inputSize();
                    response.output_size = cluster->outputSize();
                    response.shards = cluster->shardCount();
                    response.placement = placementName(
                        cluster->options().placement);
                }
                Outbound out;
                out.ready = std::move(response);
                enqueue(connection, std::move(out));
            } else if (const auto *open =
                           std::get_if<wire::SessionOpen>(&message)) {
                handleSessionOpen(connection, *open);
            } else if (const auto *step =
                           std::get_if<wire::SessionStep>(&message)) {
                handleSessionStep(connection, *step);
            } else if (const auto *session_close =
                           std::get_if<wire::SessionClose>(
                               &message)) {
                connection.sessions.erase(session_close->session_id);
            } else {
                break; // client sent a server-to-client frame: drop
            }
        }
    } catch (const wire::WireError &error) {
        if (!Logger::quiet())
            inform("dropping connection: %s", error.what());
    }

    {
        std::lock_guard<std::mutex> lock(connection.mutex);
        connection.closing = true;
    }
    connection.cv.notify_all();
    // Wake a writer blocked in send() and prevent further reads.
    ::shutdown(connection.fd, SHUT_RD);
    connection.live_threads.fetch_sub(1);
}

void
TcpServer::writerLoop(Connection &connection)
{
    for (;;) {
        Outbound outbound;
        {
            std::unique_lock<std::mutex> lock(connection.mutex);
            connection.cv.wait(lock, [&connection] {
                return connection.closing ||
                    !connection.outbox.empty();
            });
            if (connection.outbox.empty())
                break; // closing and fully flushed
            outbound = std::move(connection.outbox.front());
            connection.outbox.pop_front();
        }

        wire::Message message;
        if (outbound.pending.valid()) {
            wire::InferResponse response;
            response.id = outbound.id;
            try {
                response.output = outbound.pending.get();
                response.ok = true;
            } catch (const engine::DeadlineExpired &error) {
                response.code = wire::ErrorCode::DeadlineExpired;
                response.error = error.what();
            } catch (const engine::ServerOverloaded &error) {
                // A shed is "not now", not "broken": Unavailable, so
                // clients know a backoff-retry can succeed.
                response.code = wire::ErrorCode::Unavailable;
                response.error = error.what();
            } catch (const engine::ServerStopped &error) {
                response.code = wire::ErrorCode::Unavailable;
                response.error = error.what();
            } catch (const std::exception &error) {
                response.code = wire::ErrorCode::Internal;
                response.error = error.what();
            }
            message = std::move(response);
        } else {
            message = std::move(outbound.ready);
        }
        const std::vector<std::uint8_t> frame =
            wire::encodeFrame(message);
        if (!sendAll(connection.fd, frame.data(), frame.size()))
            break; // peer gone; pending futures still complete above
        if (fault::fire("tcp.drop_after_write")) {
            // Injected connection loss: the response went out, then
            // the link died — the worst case for clients, which must
            // treat the next request's failure as retryable.
            ::shutdown(connection.fd, SHUT_RDWR);
            break;
        }
    }
    // Flushed (or the peer is gone): FIN the socket so the client's
    // reads terminate, and unblock a reader still in recv() when the
    // writer is the one bailing out.
    ::shutdown(connection.fd, SHUT_RDWR);
    connection.live_threads.fetch_sub(1);
}

void
TcpServer::stop()
{
    if (!started_)
        return;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        stopping_ = true;
    }
    std::call_once(join_once_, [this] {
        // Closing the listener pops acceptLoop out of accept().
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        if (acceptor_.joinable())
            acceptor_.join();

        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (auto &connection : connections_) {
            ::shutdown(connection->fd, SHUT_RDWR);
            {
                std::lock_guard<std::mutex> conn_lock(
                    connection->mutex);
                connection->closing = true;
            }
            connection->cv.notify_all();
        }
        for (auto &connection : connections_) {
            if (connection->reader.joinable())
                connection->reader.join();
            if (connection->writer.joinable())
                connection->writer.join();
            ::close(connection->fd);
        }
        connections_.clear();
    });
}

std::uint64_t
TcpServer::connectionsAccepted() const
{
    std::lock_guard<std::mutex> lock(connections_mutex_);
    return accepted_;
}

std::size_t
TcpServer::trackedConnections() const
{
    std::lock_guard<std::mutex> lock(connections_mutex_);
    return connections_.size();
}

// ------------------------------------------------------------ TcpClient

TcpClient::TcpClient(const std::string &host, std::uint16_t port)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *results = nullptr;
    const int rc = ::getaddrinfo(
        host.c_str(), std::to_string(port).c_str(), &hints, &results);
    if (rc != 0)
        throw std::runtime_error("cannot resolve '" + host +
                                 "': " + ::gai_strerror(rc));

    int fd = -1;
    for (const addrinfo *ai = results; ai != nullptr;
         ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(results);
    if (fd < 0)
        throw std::runtime_error("cannot connect to " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    setNoDelay(fd);
    fd_ = fd;

    // Handshake synchronously (the reader thread starts only after a
    // successful negotiation, so a rejected connection never has
    // in-flight state to fail).
    try {
        const std::vector<std::uint8_t> hello =
            wire::encodeFrame(wire::Hello{});
        if (!sendAll(fd_, hello.data(), hello.size()))
            throw wire::WireError(
                "connection lost while sending Hello");
        const std::vector<std::uint8_t> body = recvFrameBody(fd_);
        if (body.empty())
            throw wire::WireError(
                "handshake failed: server closed the connection "
                "without a HelloAck (protocol version mismatch with "
                "a pre-v2 server?)");
        const wire::Message message = wire::decodeBody(body);
        const auto *ack = std::get_if<wire::HelloAck>(&message);
        if (ack == nullptr)
            throw wire::WireError(
                "handshake failed: expected a HelloAck frame");
        if (!ack->ok)
            throw wire::WireError("handshake rejected by server: " +
                                  ack->error);
        if (ack->protocol < wire::kMinProtocolVersion ||
            ack->protocol > wire::kProtocolVersion)
            throw wire::WireError(
                "protocol version mismatch: client speaks " +
                std::to_string(wire::kMinProtocolVersion) + ".." +
                std::to_string(wire::kProtocolVersion) +
                ", server negotiated " +
                std::to_string(ack->protocol));
        // min(client, server): an older server pins us to its
        // revision — trace ids stay off the wire and metrics/trace
        // queries are refused locally.
        negotiated_protocol_ = ack->protocol;
    } catch (...) {
        ::close(fd_);
        fd_ = -1;
        throw;
    }

    connected_.store(true);
    reader_ = std::thread([this] { readerLoop(); });
}

TcpClient::~TcpClient()
{
    close();
    if (fd_ >= 0)
        ::close(fd_);
}

bool
TcpClient::connected() const
{
    return connected_.load();
}

void
TcpClient::close()
{
    // Shut the socket down (unblocking a reader in recv — it then
    // fails all in-flight futures) and join exactly once; the fd is
    // released by the destructor so concurrent senders never race a
    // reused descriptor.
    std::call_once(join_once_, [this] {
        connected_.store(false);
        if (fd_ >= 0)
            ::shutdown(fd_, SHUT_RDWR);
        if (reader_.joinable())
            reader_.join();
    });
}

void
TcpClient::failAllPending(wire::ErrorCode code,
                          const std::string &reason)
{
    connected_.store(false);

    std::map<std::uint64_t, std::promise<wire::InferResponse>> infers;
    std::map<std::uint64_t,
             std::pair<std::uint64_t, std::promise<wire::SessionState>>>
        steps;
    std::map<std::uint64_t, std::promise<wire::SessionAck>> opens;
    std::deque<std::promise<wire::StatsResponse>> stats;
    std::deque<std::promise<wire::InfoResponse>> infos;
    std::deque<std::promise<wire::MetricsResponse>> metrics;
    std::deque<std::promise<wire::TraceResponse>> traces;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        infers.swap(pending_infer_);
        steps.swap(pending_steps_);
        opens.swap(pending_session_opens_);
        stats.swap(pending_stats_);
        infos.swap(pending_info_);
        metrics.swap(pending_metrics_);
        traces.swap(pending_trace_);
    }

    for (auto &[id, promise] : infers) {
        wire::InferResponse response;
        response.id = id;
        response.code = code;
        response.error = reason;
        promise.set_value(std::move(response));
    }
    for (auto &[id, step] : steps) {
        wire::SessionState state;
        state.session_id = step.first;
        state.id = id;
        state.code = code;
        state.error = reason;
        step.second.set_value(std::move(state));
    }
    for (auto &[session_id, promise] : opens) {
        wire::SessionAck ack;
        ack.session_id = session_id;
        ack.code = code;
        ack.error = reason;
        promise.set_value(std::move(ack));
    }
    const auto lost =
        std::make_exception_ptr(wire::WireError(reason));
    for (auto &promise : stats)
        promise.set_exception(lost);
    for (auto &promise : infos)
        promise.set_exception(lost);
    for (auto &promise : metrics)
        promise.set_exception(lost);
    for (auto &promise : traces)
        promise.set_exception(lost);
}

void
TcpClient::readerLoop()
{
    std::string reason = "connection closed by server";
    wire::ErrorCode code = wire::ErrorCode::Unavailable;
    try {
        for (;;) {
            const std::vector<std::uint8_t> body =
                recvFrameBody(fd_);
            if (body.empty())
                break;
            wire::Message message = wire::decodeBody(body);

            if (auto *response =
                    std::get_if<wire::InferResponse>(&message)) {
                if (auto promise = takePending(
                        pending_mutex_, pending_infer_,
                        response->id))
                    promise->set_value(std::move(*response));
                // An unknown id is tolerated: the submitter may have
                // failed its promise on a send error already.
            } else if (auto *state =
                           std::get_if<wire::SessionState>(
                               &message)) {
                if (auto step = takePending(pending_mutex_,
                                            pending_steps_,
                                            state->id))
                    step->second.set_value(std::move(*state));
            } else if (auto *ack = std::get_if<wire::SessionAck>(
                           &message)) {
                if (auto promise = takePending(
                        pending_mutex_, pending_session_opens_,
                        ack->session_id))
                    promise->set_value(std::move(*ack));
            } else if (auto *stats_response =
                           std::get_if<wire::StatsResponse>(
                               &message)) {
                resolveFifo(pending_mutex_, pending_stats_,
                            std::move(*stats_response));
            } else if (auto *info_response =
                           std::get_if<wire::InfoResponse>(
                               &message)) {
                resolveFifo(pending_mutex_, pending_info_,
                            std::move(*info_response));
            } else if (auto *metrics_response =
                           std::get_if<wire::MetricsResponse>(
                               &message)) {
                resolveFifo(pending_mutex_, pending_metrics_,
                            std::move(*metrics_response));
            } else if (auto *trace_response =
                           std::get_if<wire::TraceResponse>(
                               &message)) {
                resolveFifo(pending_mutex_, pending_trace_,
                            std::move(*trace_response));
            } else {
                reason = "protocol violation: unexpected frame type "
                         "from server";
                code = wire::ErrorCode::ProtocolError;
                break;
            }
        }
    } catch (const wire::WireError &error) {
        reason = error.what();
        code = wire::ErrorCode::ProtocolError;
    }

    ::shutdown(fd_, SHUT_RDWR);
    failAllPending(code, reason);
}

void
TcpClient::sendFrameLocked(const wire::Message &message)
{
    if (!connected_.load())
        throw wire::WireError("client connection is closed");
    const std::vector<std::uint8_t> frame =
        wire::encodeFrame(message);
    if (!sendAll(fd_, frame.data(), frame.size())) {
        connected_.store(false);
        throw wire::WireError("connection lost while sending");
    }
}

void
TcpClient::sendFrame(const wire::Message &message)
{
    std::lock_guard<std::mutex> lock(send_mutex_);
    sendFrameLocked(message);
}

std::future<wire::InferResponse>
TcpClient::submitInfer(const std::string &model,
                       std::uint32_t version,
                       std::vector<std::int64_t> input,
                       std::int32_t priority,
                       std::uint32_t deadline_us,
                       std::uint64_t trace_id)
{
    wire::InferRequest request;
    request.id = next_id_.fetch_add(1);
    request.model = model;
    request.version = version;
    request.priority = priority;
    request.deadline_us = deadline_us;
    request.input = std::move(input);
    // A pre-v3 server would choke on the trailing extension — the
    // request simply travels untraced.
    if (negotiated_protocol_ >= 3)
        request.trace_id = trace_id;

    std::future<wire::InferResponse> future;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        future = pending_infer_[request.id].get_future();
    }
    try {
        sendFrame(request);
    } catch (const wire::WireError &error) {
        // Resolve the promise ourselves unless the reader's
        // failAllPending() already claimed it.
        if (auto promise = takePending(pending_mutex_,
                                       pending_infer_, request.id)) {
            wire::InferResponse response;
            response.id = request.id;
            response.code = wire::ErrorCode::Unavailable;
            response.error = error.what();
            promise->set_value(std::move(response));
        }
    }
    return future;
}

std::vector<std::int64_t>
TcpClient::infer(const std::string &model,
                 const std::vector<std::int64_t> &input,
                 std::uint32_t version)
{
    wire::InferResponse response =
        submitInfer(model, version, input).get();
    if (!response.ok)
        throw std::runtime_error("server error: " + response.error);
    return std::move(response.output);
}

std::future<wire::SessionAck>
TcpClient::openSession(std::uint64_t session_id,
                       const std::string &model,
                       std::uint32_t version)
{
    wire::SessionOpen open;
    open.session_id = session_id;
    open.model = model;
    open.version = version;

    std::future<wire::SessionAck> future;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        future = pending_session_opens_[session_id].get_future();
    }
    try {
        sendFrame(open);
    } catch (const wire::WireError &error) {
        if (auto promise = takePending(pending_mutex_,
                                       pending_session_opens_,
                                       session_id)) {
            wire::SessionAck ack;
            ack.session_id = session_id;
            ack.code = wire::ErrorCode::Unavailable;
            ack.error = error.what();
            promise->set_value(std::move(ack));
        }
    }
    return future;
}

std::future<wire::SessionState>
TcpClient::submitStep(std::uint64_t session_id, std::vector<float> x,
                      std::int32_t priority,
                      std::uint32_t deadline_us,
                      std::uint64_t trace_id)
{
    wire::SessionStep step;
    step.session_id = session_id;
    step.id = next_id_.fetch_add(1);
    step.priority = priority;
    step.deadline_us = deadline_us;
    step.x = std::move(x);
    if (negotiated_protocol_ >= 3)
        step.trace_id = trace_id;

    std::future<wire::SessionState> future;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        auto &pending = pending_steps_[step.id];
        pending.first = session_id;
        future = pending.second.get_future();
    }
    try {
        sendFrame(step);
    } catch (const wire::WireError &error) {
        if (auto pending = takePending(pending_mutex_,
                                       pending_steps_, step.id)) {
            wire::SessionState state;
            state.session_id = session_id;
            state.id = step.id;
            state.code = wire::ErrorCode::Unavailable;
            state.error = error.what();
            pending->second.set_value(std::move(state));
        }
    }
    return future;
}

void
TcpClient::closeSession(std::uint64_t session_id)
{
    try {
        wire::SessionClose close_msg;
        close_msg.session_id = session_id;
        sendFrame(close_msg);
    } catch (const wire::WireError &) {
        // Fire-and-forget: a lost connection discards the state
        // server-side anyway.
    }
}

std::uint64_t
TcpClient::nextSessionId()
{
    return next_session_id_.fetch_add(1);
}

std::string
TcpClient::stats()
{
    // Register + send under send_mutex_: StatsResponses are matched
    // FIFO, so the promise queue must mirror the wire order exactly.
    std::future<wire::StatsResponse> future;
    {
        std::lock_guard<std::mutex> send_lock(send_mutex_);
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            pending_stats_.emplace_back();
            future = pending_stats_.back().get_future();
        }
        try {
            sendFrameLocked(wire::StatsRequest{});
        } catch (const wire::WireError &) {
            // Unless the reader's failAllPending() beat us to it,
            // the back is still our promise (send_mutex_ excludes
            // other registrars).
            std::promise<wire::StatsResponse> promise;
            bool mine = false;
            {
                std::lock_guard<std::mutex> lock(pending_mutex_);
                if (!pending_stats_.empty()) {
                    promise = std::move(pending_stats_.back());
                    pending_stats_.pop_back();
                    mine = true;
                }
            }
            if (mine)
                promise.set_exception(std::current_exception());
        }
    }
    return future.get().json;
}

wire::InfoResponse
TcpClient::info(const std::string &model, std::uint32_t version)
{
    wire::InfoRequest request;
    request.model = model;
    request.version = version;

    std::future<wire::InfoResponse> future;
    {
        std::lock_guard<std::mutex> send_lock(send_mutex_);
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            pending_info_.emplace_back();
            future = pending_info_.back().get_future();
        }
        try {
            sendFrameLocked(request);
        } catch (const wire::WireError &) {
            std::promise<wire::InfoResponse> promise;
            bool mine = false;
            {
                std::lock_guard<std::mutex> lock(pending_mutex_);
                if (!pending_info_.empty()) {
                    promise = std::move(pending_info_.back());
                    pending_info_.pop_back();
                    mine = true;
                }
            }
            if (mine)
                promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

wire::MetricsResponse
TcpClient::metrics()
{
    if (negotiated_protocol_ < 3)
        throw wire::WireError(
            "server speaks protocol v" +
            std::to_string(negotiated_protocol_) +
            "; Metrics queries need v3");
    // Same register-then-send critical section as stats(): the
    // MetricsResponses are matched FIFO.
    std::future<wire::MetricsResponse> future;
    {
        std::lock_guard<std::mutex> send_lock(send_mutex_);
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            pending_metrics_.emplace_back();
            future = pending_metrics_.back().get_future();
        }
        try {
            sendFrameLocked(wire::MetricsRequest{});
        } catch (const wire::WireError &) {
            std::promise<wire::MetricsResponse> promise;
            bool mine = false;
            {
                std::lock_guard<std::mutex> lock(pending_mutex_);
                if (!pending_metrics_.empty()) {
                    promise = std::move(pending_metrics_.back());
                    pending_metrics_.pop_back();
                    mine = true;
                }
            }
            if (mine)
                promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::string
TcpClient::traceDump()
{
    if (negotiated_protocol_ < 3)
        throw wire::WireError(
            "server speaks protocol v" +
            std::to_string(negotiated_protocol_) +
            "; Trace queries need v3");
    std::future<wire::TraceResponse> future;
    {
        std::lock_guard<std::mutex> send_lock(send_mutex_);
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            pending_trace_.emplace_back();
            future = pending_trace_.back().get_future();
        }
        try {
            sendFrameLocked(wire::TraceRequest{});
        } catch (const wire::WireError &) {
            std::promise<wire::TraceResponse> promise;
            bool mine = false;
            {
                std::lock_guard<std::mutex> lock(pending_mutex_);
                if (!pending_trace_.empty()) {
                    promise = std::move(pending_trace_.back());
                    pending_trace_.pop_back();
                    mine = true;
                }
            }
            if (mine)
                promise.set_exception(std::current_exception());
        }
    }
    return future.get().json;
}

} // namespace eie::serve
