#include "serve/cluster.hh"

#include <algorithm>
#include <sstream>

#include "common/fixed_point.hh"
#include "common/logging.hh"
#include "engine/backends.hh"
#include "obs/json.hh"
#include "obs/trace.hh"

namespace eie::serve {

namespace {

/**
 * Contiguous column boundaries (shards+1 values) balancing stored
 * non-zeros: boundary s sits where the cumulative entry weight
 * crosses s/shards of the total, constrained so every shard owns at
 * least one column. Columns are weighted nnz+1 so empty columns still
 * spread instead of piling onto one shard.
 */
std::vector<std::size_t>
partitionColumns(const nn::SparseMatrix &weights, unsigned shards)
{
    const std::size_t cols = weights.cols();
    fatal_if(cols < shards,
             "cannot column-partition %zu columns over %u shards",
             cols, shards);

    std::vector<std::uint64_t> prefix(cols + 1, 0);
    for (std::size_t j = 0; j < cols; ++j)
        prefix[j + 1] = prefix[j] + weights.column(j).size() + 1;

    std::vector<std::size_t> bounds(shards + 1, 0);
    bounds[shards] = cols;
    for (unsigned s = 1; s < shards; ++s) {
        const std::uint64_t ideal =
            prefix[cols] * s / shards;
        const std::size_t lo = bounds[s - 1] + 1;
        const std::size_t hi = cols - (shards - s);
        std::size_t cut = static_cast<std::size_t>(
            std::lower_bound(prefix.begin(), prefix.end(), ideal) -
            prefix.begin());
        bounds[s] = std::clamp(cut, lo, hi);
    }
    return bounds;
}

} // namespace

Placement
placementFromName(const std::string &name)
{
    if (name == "replicated")
        return Placement::Replicated;
    if (name == "partitioned")
        return Placement::ColumnPartitioned;
    fatal("unknown placement '%s' (known: replicated, partitioned)",
          name.c_str());
    return Placement::Replicated; // unreachable: fatal() exits
}

const char *
placementName(Placement placement)
{
    return placement == Placement::Replicated ? "replicated"
                                              : "partitioned";
}

// -------------------------------------------------------- ClusterEngine

ClusterEngine::ClusterEngine(std::shared_ptr<const LoadedModel> model,
                             const ClusterOptions &options)
    : model_(std::move(model)), options_(options),
      m_failovers_(obs::processRegistry().counter(
          "eie_cluster_failovers_total")),
      m_failed_(obs::processRegistry().counter(
          "eie_cluster_failed_total")),
      m_ejections_(obs::processRegistry().counter(
          "eie_cluster_ejections_total")),
      m_gather_latency_(obs::processRegistry().histogram(
          "eie_cluster_gather_latency_us"))
{
    fatal_if(!model_, "cluster needs a model");
    fatal_if(options_.shards == 0, "cluster needs at least one shard");

    // Multi-thread shards demote the fused variant to the per-slice
    // loop (and their shared stack skips the fused stream entirely);
    // normalize here so stats and banners report the variant that
    // actually runs.
    if (options_.kernel == core::kernel::KernelVariant::Fused &&
        options_.threads_per_shard > 1) {
        warn("kernel 'fused' is the single-thread form; shards with "
             "%u threads run 'reference' instead",
             options_.threads_per_shard);
        options_.kernel = core::kernel::KernelVariant::Reference;
    }

    const core::EieConfig &config = model_->config();
    shards_.reserve(options_.shards);

    // Tag each shard's fault points "shard<N>" (unless the caller
    // chose a tag) so tests can inject failures into exactly one
    // replica and watch the breaker eject it.
    const auto shardServerOptions = [&](unsigned s) {
        engine::ServerOptions server = options_.server;
        if (server.fault_tag.empty())
            server.fault_tag = "shard" + std::to_string(s);
        return server;
    };

    if (options_.placement == Placement::Replicated) {
        col_bounds_ = {0, model_->inputSize()};
        const std::vector<const core::LayerPlan *> plans{
            &model_->plan()};
        // "compiled" shards adopt one shared pre-decoded stack: N
        // replicas, one copy of the weights.
        std::shared_ptr<const engine::CompiledStack> stack;
        if (options_.backend == "compiled")
            stack = engine::compileLayerStack(
                config, plans,
                engine::compiledStackOptions(
                    options_.threads_per_shard, options_.kernel,
                    options_.residency));
        for (unsigned s = 0; s < options_.shards; ++s) {
            std::unique_ptr<engine::ExecutionBackend> backend;
            if (stack)
                backend = std::make_unique<engine::CompiledBackend>(
                    plans, stack, options_.threads_per_shard,
                    options_.kernel);
            else
                backend = engine::makeBackend(
                    options_.backend, config, plans,
                    options_.threads_per_shard, options_.kernel,
                    options_.residency);
            shards_.push_back(std::make_unique<engine::InferenceServer>(
                std::move(backend), shardServerOptions(s)));
        }
        if (healthTracking()) {
            health_.resize(shards_.size());
            gatherer_ = std::thread([this] { healthLoop(); });
        }
        return;
    }

    // Column-partitioned: one contiguous, nnz-balanced column range
    // per shard, each planned as its own sub-layer with no drain
    // non-linearity — the gather applies it after summing partials.
    col_bounds_ = partitionColumns(model_->quantized(),
                                   options_.shards);
    shard_plans_.reserve(options_.shards);
    for (unsigned s = 0; s < options_.shards; ++s) {
        const std::size_t begin = col_bounds_[s];
        const std::size_t end = col_bounds_[s + 1];
        shard_plans_.push_back(core::planLayer(
            model_->name() + "#cols" + std::to_string(begin) + "-" +
                std::to_string(end),
            model_->quantized().colSlice(begin, end),
            model_->codebook(), nn::Nonlinearity::None, config));
    }
    for (unsigned s = 0; s < options_.shards; ++s)
        shards_.push_back(std::make_unique<engine::InferenceServer>(
            engine::makeBackend(options_.backend, config,
                                {&shard_plans_[s]},
                                options_.threads_per_shard,
                                options_.kernel, options_.residency),
            shardServerOptions(s)));
    gatherer_ = std::thread([this] { gatherLoop(); });
}

ClusterEngine::~ClusterEngine()
{
    stop();
}

std::size_t
ClusterEngine::pickShard()
{
    std::lock_guard<std::mutex> lock(route_mutex_);
    return pickShardLocked(shards_.size());
}

std::size_t
ClusterEngine::pickShardLocked(std::size_t exclude)
{
    // Recovery probes: with ejected shards present, every Nth routing
    // decision sends one live request to a sick shard — a success
    // there is the only way back into rotation.
    if (!health_.empty() && options_.probe_interval > 0) {
        bool any_ejected = false;
        for (const ShardHealth &h : health_)
            any_ejected = any_ejected || h.ejected;
        if (any_ejected &&
            ++probe_tick_ % options_.probe_interval == 0) {
            for (std::size_t i = 0; i < shards_.size(); ++i) {
                const std::size_t at =
                    (round_robin_ + i) % shards_.size();
                if (at != exclude && health_[at].ejected) {
                    ++health_[at].probes;
                    return at;
                }
            }
        }
    }

    // Least-loaded healthy shard by live queue depth; the scan starts
    // one past the last pick so depth ties degrade to round-robin.
    // Two passes: first over healthy shards, then (when everything
    // eligible is ejected) over all of them — routing must make
    // progress even with the whole cluster sick.
    std::size_t best = shards_.size();
    std::size_t best_depth = 0;
    for (const bool ignore_health : {false, true}) {
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            const std::size_t at = (round_robin_ + i) % shards_.size();
            if (at == exclude)
                continue;
            if (!ignore_health && !health_.empty() &&
                health_[at].ejected)
                continue;
            const std::size_t depth = shards_[at]->queueDepth();
            if (best == shards_.size() || depth < best_depth) {
                best = at;
                best_depth = depth;
            }
        }
        if (best != shards_.size())
            break;
    }
    if (best != shards_.size())
        round_robin_ = best + 1;
    return best;
}

void
ClusterEngine::recordOutcome(std::size_t shard, bool success)
{
    std::lock_guard<std::mutex> lock(route_mutex_);
    if (health_.empty())
        return;
    ShardHealth &health = health_[shard];
    if (success) {
        health.consecutive_failures = 0;
        if (health.ejected) {
            health.ejected = false;
            inform("shard %zu recovered; back in rotation", shard);
        }
        return;
    }
    ++health.failures;
    if (++health.consecutive_failures >=
            options_.eject_after_failures &&
        !health.ejected) {
        health.ejected = true;
        ++health.ejections;
        m_ejections_.add();
        warn("shard %zu ejected after %u consecutive failures",
             shard, health.consecutive_failures);
    }
}

std::future<std::vector<std::int64_t>>
ClusterEngine::submit(std::vector<std::int64_t> input_raw,
                      const engine::SubmitOptions &options)
{
    fatal_if(input_raw.size() != inputSize(),
             "input length %zu != model input size %zu",
             input_raw.size(), inputSize());
    {
        std::lock_guard<std::mutex> lock(gather_mutex_);
        if (stopping_) {
            std::promise<std::vector<std::int64_t>> promise;
            promise.set_exception(
                std::make_exception_ptr(engine::ServerStopped{}));
            return promise.get_future();
        }
    }

    if (options_.placement == Placement::Replicated) {
        const std::size_t shard = pickShard();
        if (options.trace_id != 0) {
            const double now_us = obs::traceNowUs();
            obs::processTraceRing().record(
                options.trace_id, "shard_submit", "cluster", now_us,
                now_us, "shard=" + std::to_string(shard));
        }
        if (!healthTracking())
            return shards_[shard]->submit(std::move(input_raw),
                                          options);

        // With the breaker on, the health worker interposes on every
        // outcome: it scores the shard, and fails a sick replica's
        // request over to a healthy one once before reporting.
        TrackedJob job;
        job.input = input_raw; // failover copy
        job.options = options;
        job.shard = shard;
        job.attempt =
            shards_[shard]->submit(std::move(input_raw), options);
        std::future<std::vector<std::int64_t>> future =
            job.promise.get_future();
        {
            std::lock_guard<std::mutex> lock(gather_mutex_);
            if (stopping_) {
                job.promise.set_exception(
                    std::make_exception_ptr(engine::ServerStopped{}));
                return future;
            }
            health_queue_.push_back(std::move(job));
        }
        gather_cv_.notify_all();
        return future;
    }

    // Scatter: each shard sees only its owned input columns.
    GatherJob job;
    job.enqueued = std::chrono::steady_clock::now();
    job.trace_id = options.trace_id;
    if (options.trace_id != 0) {
        const double now_us = obs::traceTimeUs(job.enqueued);
        obs::processTraceRing().record(
            options.trace_id, "shard_submit", "cluster", now_us,
            now_us, "scatter=" + std::to_string(shards_.size()));
    }
    job.parts.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s)
        job.parts.push_back(shards_[s]->submit(
            std::vector<std::int64_t>(
                input_raw.begin() +
                    static_cast<std::ptrdiff_t>(col_bounds_[s]),
                input_raw.begin() +
                    static_cast<std::ptrdiff_t>(col_bounds_[s + 1])),
            options));
    std::future<std::vector<std::int64_t>> future =
        job.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(gather_mutex_);
        if (stopping_) {
            // stop() may have slipped in since the check above; a job
            // enqueued now would never be gathered (the worker exits
            // once stopping_ and drained), so fail it instead.
            job.promise.set_exception(
                std::make_exception_ptr(engine::ServerStopped{}));
            return future;
        }
        gather_queue_.push_back(std::move(job));
    }
    gather_cv_.notify_all();
    return future;
}

std::vector<std::int64_t>
ClusterEngine::infer(std::vector<std::int64_t> input_raw)
{
    return submit(std::move(input_raw)).get();
}

void
ClusterEngine::gatherLoop()
{
    const FixedFormat acc_fmt = model_->config().act_format;
    for (;;) {
        GatherJob job;
        {
            std::unique_lock<std::mutex> lock(gather_mutex_);
            gather_cv_.wait(lock, [this] {
                return stopping_ || !gather_queue_.empty();
            });
            if (gather_queue_.empty())
                return; // stopping_ and drained
            job = std::move(gather_queue_.front());
            gather_queue_.pop_front();
        }

        try {
            // Reduce in ascending column order: with per-MAC
            // saturation never engaged this equals the oracle's
            // sequential accumulation (see the header's caveat).
            std::vector<std::int64_t> acc(outputSize(), 0);
            for (auto &part : job.parts) {
                const std::vector<std::int64_t> partial = part.get();
                panic_if(partial.size() != acc.size(),
                         "shard partial size %zu != output size %zu",
                         partial.size(), acc.size());
                for (std::size_t r = 0; r < acc.size(); ++r)
                    acc[r] =
                        saturateRaw(acc[r] + partial[r], acc_fmt);
            }
            switch (model_->nonlin()) {
              case nn::Nonlinearity::ReLU:
                for (std::int64_t &value : acc)
                    value = reluRaw(value);
                break;
              case nn::Nonlinearity::None:
                break;
              default:
                panic("cluster gather supports ReLU or None only");
            }

            const auto gather_end = std::chrono::steady_clock::now();
            const double latency_us =
                std::chrono::duration<double, std::micro>(
                    gather_end - job.enqueued)
                    .count();
            gather_latencies_.record(latency_us);
            m_gather_latency_.record(latency_us);
            {
                std::lock_guard<std::mutex> lock(gather_mutex_);
                ++gathered_;
            }
            if (job.trace_id != 0)
                obs::processTraceRing().record(
                    job.trace_id, "gather", "cluster",
                    obs::traceTimeUs(job.enqueued),
                    obs::traceTimeUs(gather_end),
                    "parts=" + std::to_string(job.parts.size()));
            job.promise.set_value(std::move(acc));
        } catch (const engine::DeadlineExpired &) {
            // One request dropped on a shard is one dropped gather —
            // counted here so the cluster reports client requests,
            // not per-shard sub-requests.
            {
                std::lock_guard<std::mutex> lock(gather_mutex_);
                ++gather_dropped_;
            }
            job.promise.set_exception(std::current_exception());
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(gather_mutex_);
                ++gather_failed_;
            }
            m_failed_.add();
            job.promise.set_exception(std::current_exception());
        }
    }
}

void
ClusterEngine::healthLoop()
{
    for (;;) {
        TrackedJob job;
        {
            std::unique_lock<std::mutex> lock(gather_mutex_);
            gather_cv_.wait(lock, [this] {
                return stopping_ || !health_queue_.empty();
            });
            if (health_queue_.empty())
                return; // stopping_ and drained
            job = std::move(health_queue_.front());
            health_queue_.pop_front();
        }

        std::exception_ptr error;
        try {
            job.promise.set_value(job.attempt.get());
            recordOutcome(job.shard, true);
            continue;
        } catch (const engine::DeadlineExpired &) {
            // A deadline drop says "too slow under this load", not
            // "sick": it neither scores the shard nor fails over.
            job.promise.set_exception(std::current_exception());
            continue;
        } catch (const engine::ServerOverloaded &) {
            // Shedding is admission control doing its job; rerouting
            // a shed would defeat it (the other replicas are at
            // least as loaded — routing is least-loaded).
            job.promise.set_exception(std::current_exception());
            continue;
        } catch (...) {
            error = std::current_exception();
        }

        {
            // During shutdown every queued request collapses to
            // ServerStopped; scoring that would eject shards (and
            // warn) over a clean stop.
            std::lock_guard<std::mutex> lock(gather_mutex_);
            if (stopping_) {
                job.promise.set_exception(error);
                continue;
            }
        }
        recordOutcome(job.shard, false);

        // Failover: one more attempt, on the best shard that is not
        // the one that just failed. Sequential (the worker waits for
        // it) — failures are the rare path.
        std::size_t other = shards_.size();
        {
            std::lock_guard<std::mutex> lock(route_mutex_);
            other = pickShardLocked(job.shard);
        }
        if (other == shards_.size()) {
            job.promise.set_exception(error);
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(gather_mutex_);
            ++failovers_;
        }
        m_failovers_.add();
        try {
            job.promise.set_value(
                shards_[other]->submit(job.input, job.options).get());
            recordOutcome(other, true);
        } catch (const engine::DeadlineExpired &) {
            job.promise.set_exception(std::current_exception());
        } catch (const engine::ServerOverloaded &) {
            job.promise.set_exception(std::current_exception());
        } catch (...) {
            recordOutcome(other, false);
            job.promise.set_exception(std::current_exception());
        }
    }
}

void
ClusterEngine::stop()
{
    {
        std::lock_guard<std::mutex> lock(gather_mutex_);
        stopping_ = true;
    }
    gather_cv_.notify_all();
    // Draining the shards completes every scattered part, which in
    // turn unblocks the gather worker's pending jobs.
    for (auto &shard : shards_)
        shard->stop();
    std::call_once(join_once_, [this] {
        if (gatherer_.joinable())
            gatherer_.join();
    });
}

ClusterStats
ClusterEngine::stats() const
{
    ClusterStats stats;
    stats.shards.reserve(shards_.size());

    std::vector<ShardHealth> health;
    {
        std::lock_guard<std::mutex> lock(route_mutex_);
        health = health_;
    }
    {
        std::lock_guard<std::mutex> lock(gather_mutex_);
        stats.failovers = failovers_;
    }

    std::uint64_t shard_requests = 0;
    std::uint64_t shard_batches = 0;
    obs::HistogramSnapshot latency;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        ShardStats shard;
        shard.server = shards_[s]->stats();
        shard.queue_depth = shards_[s]->queueDepth();
        stats.requests_shed += shard.server.requests_shed;
        if (s < health.size()) {
            shard.ejected = health[s].ejected;
            shard.failures = health[s].failures;
            shard.ejections = health[s].ejections;
            shard.probes = health[s].probes;
            if (shard.ejected)
                ++stats.shards_ejected;
        }
        if (options_.placement == Placement::Replicated) {
            shard.col_begin = col_bounds_.front();
            shard.col_end = col_bounds_.back();
            // Merging histograms combines the shard distributions
            // exactly (bucket-wise) — unlike averaging the shards'
            // already-computed percentiles.
            latency.merge(shard.server.latency);
        } else {
            shard.col_begin = col_bounds_[s];
            shard.col_end = col_bounds_[s + 1];
        }
        shard_requests += shard.server.requests;
        shard_batches += shard.server.batches;
        // Replicated: one client request = one shard request, so the
        // shard sum is the cluster count. Partitioned shards each see
        // every request; drops are counted at the gather instead.
        if (options_.placement == Placement::Replicated)
            stats.dropped_deadline += shard.server.dropped_deadline;
        stats.shards.push_back(std::move(shard));
    }
    for (ShardStats &shard : stats.shards)
        shard.utilization = shard_requests
            ? static_cast<double>(shard.server.requests) /
                static_cast<double>(shard_requests)
            : 0.0;
    stats.mean_batch = shard_batches
        ? static_cast<double>(shard_requests) /
            static_cast<double>(shard_batches)
        : 0.0;

    if (options_.placement == Placement::Replicated) {
        stats.requests = shard_requests;
    } else {
        {
            std::lock_guard<std::mutex> lock(gather_mutex_);
            stats.requests = gathered_;
            stats.failed = gather_failed_;
            stats.dropped_deadline = gather_dropped_;
        }
        latency = gather_latencies_.snapshot();
    }
    stats.latency = latency;
    const obs::LatencySummary summary = latency.summary();
    stats.p50_latency_us = summary.p50;
    stats.p95_latency_us = summary.p95;
    stats.p99_latency_us = summary.p99;
    stats.p999_latency_us = summary.p999;
    stats.max_latency_us = summary.max;
    return stats;
}

std::vector<engine::LayerDispatchStats>
mergeLayerDispatch(const std::vector<ShardStats> &shards)
{
    std::vector<engine::LayerDispatchStats> merged;
    for (const ShardStats &shard : shards) {
        if (merged.size() < shard.server.layers.size())
            merged.resize(shard.server.layers.size());
        for (std::size_t i = 0; i < shard.server.layers.size(); ++i) {
            const engine::LayerDispatchStats &in =
                shard.server.layers[i];
            engine::LayerDispatchStats &out = merged[i];
            out.layer = in.layer;
            if (!in.kernel.empty()) {
                out.kernel = in.kernel;
                out.last_act_density = in.last_act_density;
            }
            // Shards share one compiled stack, so the resident form
            // and footprint are per-layer facts, not per-shard sums:
            // last reporting shard wins.
            if (!in.residency.empty()) {
                out.residency = in.residency;
                out.decoded_bytes = in.decoded_bytes;
                out.compressed_bytes = in.compressed_bytes;
            }
            if (in.sweeps > 0) {
                const double total = out.mean_act_density *
                        static_cast<double>(out.sweeps) +
                    in.mean_act_density *
                        static_cast<double>(in.sweeps);
                out.sweeps += in.sweeps;
                out.mean_act_density =
                    total / static_cast<double>(out.sweeps);
            }
            if (in.decode_sweeps > 0) {
                const double total = out.mean_decode_us *
                        static_cast<double>(out.decode_sweeps) +
                    in.mean_decode_us *
                        static_cast<double>(in.decode_sweeps);
                out.decode_sweeps += in.decode_sweeps;
                out.mean_decode_us =
                    total / static_cast<double>(out.decode_sweeps);
            }
        }
    }
    return merged;
}

// ----------------------------------------------------- ServingDirectory

ServingDirectory::ServingDirectory(ModelRegistry &registry,
                                   const ClusterOptions &defaults)
    : registry_(registry), defaults_(defaults)
{}

ServingDirectory::~ServingDirectory()
{
    stopAll();
}

ClusterEngine *
ServingDirectory::cluster(const std::string &name,
                          std::uint32_t version, std::string &error,
                          nn::Nonlinearity nonlin,
                          LookupStatus *status)
{
    const auto fail = [&](LookupStatus kind, std::string message) {
        error = std::move(message);
        if (status != nullptr)
            *status = kind;
        return nullptr;
    };

    LoadError load_error = LoadError::None;
    std::string load_detail;
    const std::shared_ptr<const LoadedModel> model = registry_.load(
        name, version, nonlin, &load_error, &load_detail);
    if (!model) {
        // Corrupt is not NotFound: the model is published but its
        // file is unreadable (truncated, bad checksum...), so tell
        // the caller something is wrong server-side rather than
        // inviting a doomed republish-and-retry loop.
        if (load_error == LoadError::Corrupt)
            return fail(LookupStatus::Rejected,
                        "model '" + name + "' is unreadable: " +
                            load_detail);
        return fail(LookupStatus::NotFound,
                    "model '" + name + "'" +
                        (version
                             ? " version " + std::to_string(version)
                             : "") +
                        " not found in registry");
    }
    // Preflight what ClusterEngine's constructor would fatal() on: a
    // client request must never be able to take the daemon down.
    if (defaults_.placement == Placement::ColumnPartitioned &&
        model->inputSize() < defaults_.shards)
        return fail(LookupStatus::Rejected,
                    "model '" + model->name() + "' has " +
                        std::to_string(model->inputSize()) +
                        " input columns, fewer than the " +
                        std::to_string(defaults_.shards) +
                        " partitioned shards");
    if (status != nullptr)
        *status = LookupStatus::Ok;
    // Nonlinearity is part of the identity: an LSTM session's None
    // cluster must never alias the default ReLU inference cluster.
    const std::string key = model->name() + "@" +
        std::to_string(model->version()) + "#" +
        std::to_string(static_cast<int>(nonlin));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = clusters_.find(key);
        if (it != clusters_.end())
            return it->second.get();
    }

    // Build outside the lock: planning the column slices and
    // compiling N shard backends must not stall requests for models
    // that are already serving. A racing build of the same model
    // wastes one engine; the first insert wins and the loser is
    // stopped outside the lock.
    auto built = std::make_unique<ClusterEngine>(model, defaults_);
    ClusterEngine *result = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = clusters_.find(key);
        if (it == clusters_.end())
            it = clusters_.emplace(key, std::move(built)).first;
        result = it->second.get();
    }
    return result; // a losing `built` drains its shards here
}

std::string
ServingDirectory::statsJson() const
{
    obs::JsonWriter w;
    w.beginObject().key("clusters").beginArray();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[key, cluster] : clusters_) {
        const ClusterStats stats = cluster->stats();
        w.beginObject()
            .field("model", cluster->model().name())
            .field("version",
                   std::uint64_t{cluster->model().version()})
            .field("placement",
                   placementName(cluster->options().placement))
            .field("backend", cluster->options().backend)
            .field("kernel",
                   core::kernel::kernelVariantName(
                       cluster->options().kernel))
            .field("residency",
                   core::kernel::residencyName(
                       cluster->options().residency))
            .field("shards", std::uint64_t{cluster->shardCount()})
            .field("requests", stats.requests)
            .field("dropped_deadline", stats.dropped_deadline)
            .field("failed", stats.failed)
            .field("requests_shed", stats.requests_shed)
            .field("failovers", stats.failovers)
            .field("shards_ejected", stats.shards_ejected)
            .field("mean_batch", stats.mean_batch)
            .field("p50_latency_us", stats.p50_latency_us)
            .field("p95_latency_us", stats.p95_latency_us)
            .field("p99_latency_us", stats.p99_latency_us)
            .field("p999_latency_us", stats.p999_latency_us);
        w.key("layers").beginArray();
        for (const engine::LayerDispatchStats &layer :
             mergeLayerDispatch(stats.shards)) {
            w.beginObject()
                .field("layer", layer.layer)
                .field("kernel", layer.kernel)
                .field("act_density", layer.last_act_density)
                .field("mean_act_density", layer.mean_act_density)
                .field("sweeps", layer.sweeps)
                .field("residency", layer.residency)
                .field("decoded_bytes", layer.decoded_bytes)
                .field("compressed_bytes", layer.compressed_bytes)
                .field("decode_us", layer.mean_decode_us)
                .endObject();
        }
        w.endArray();
        w.key("shard_stats").beginArray();
        for (const ShardStats &shard : stats.shards) {
            w.beginObject()
                .field("requests", shard.server.requests)
                .field("queue_depth",
                       std::uint64_t{shard.queue_depth})
                .field("utilization", shard.utilization)
                .field("shed", shard.server.requests_shed)
                .field("forming_delay_us",
                       shard.server.forming_delay_us)
                .field("health",
                       shard.ejected ? "ejected" : "healthy")
                .field("failures", shard.failures)
                .field("col_begin", std::uint64_t{shard.col_begin})
                .field("col_end", std::uint64_t{shard.col_end})
                .endObject();
        }
        w.endArray().endObject();
    }
    w.endArray().endObject();
    return w.str();
}

std::vector<ServingDirectory::ClusterSnapshot>
ServingDirectory::statsSnapshot() const
{
    std::vector<ClusterSnapshot> snapshots;
    std::lock_guard<std::mutex> lock(mutex_);
    snapshots.reserve(clusters_.size());
    for (const auto &[key, cluster] : clusters_)
        snapshots.push_back({cluster->model().name(),
                             cluster->model().version(),
                             cluster->stats()});
    return snapshots;
}

void
ServingDirectory::stopAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[key, cluster] : clusters_)
        cluster->stop();
}

} // namespace eie::serve
