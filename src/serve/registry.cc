#include "serve/registry.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>

#include <unistd.h>

#include "common/logging.hh"
#include "compress/model_file.hh"

namespace eie::serve {

namespace fs = std::filesystem;

namespace {

bool
validModelName(const std::string &name)
{
    if (name.empty() || name.size() > 128)
        return false;
    for (const char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
            c == '.' || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    // Dot-only names would escape the registry root as path segments.
    return name != "." && name != "..";
}

/** Cache key: a LoadedModel is specific to (name, version, nonlin). */
std::string
cacheKey(const std::string &name, std::uint32_t version,
         nn::Nonlinearity nonlin)
{
    return name + "@" + std::to_string(version) + "#" +
        std::to_string(static_cast<int>(nonlin));
}

/** Parse "v<digits>.eiem" into a version number; 0 on mismatch. */
std::uint32_t
parseVersionFile(const std::string &filename)
{
    if (filename.size() < 7 || filename.front() != 'v' ||
        !filename.ends_with(".eiem"))
        return 0;
    const std::string digits =
        filename.substr(1, filename.size() - 6);
    if (digits.empty() ||
        !std::all_of(digits.begin(), digits.end(), [](char c) {
            return std::isdigit(static_cast<unsigned char>(c));
        }))
        return 0;
    try {
        const unsigned long value = std::stoul(digits);
        return value > 0xffffffffUL
            ? 0
            : static_cast<std::uint32_t>(value);
    } catch (const std::exception &) {
        return 0;
    }
}

} // namespace

// ---------------------------------------------------------- LoadedModel

LoadedModel::LoadedModel(std::string name, std::uint32_t version,
                         nn::Nonlinearity nonlin,
                         const core::EieConfig &config,
                         nn::SparseMatrix quantized,
                         compress::Codebook codebook)
    : name_(std::move(name)), version_(version), nonlin_(nonlin),
      config_(config), quantized_(std::move(quantized)),
      codebook_(std::move(codebook)),
      plan_(core::planLayer(name_, quantized_, codebook_, nonlin_,
                            config_))
{}

std::shared_ptr<const LoadedModel>
LoadedModel::fromStorage(std::string name, std::uint32_t version,
                         const compress::InterleavedCsc &storage,
                         nn::Nonlinearity nonlin,
                         const core::EieConfig &config)
{
    // decode() drops the padding entries and yields codebook values,
    // so re-planning for any PE count reproduces the stored network
    // exactly (nearest-codebook re-encoding of codebook values is the
    // identity).
    return std::shared_ptr<const LoadedModel>(new LoadedModel(
        std::move(name), version, nonlin, config, storage.decode(),
        storage.codebook()));
}

// -------------------------------------------------------- ModelRegistry

ModelRegistry::ModelRegistry(std::string root,
                             const core::EieConfig &config)
    : root_(std::move(root)), config_(config)
{
    config_.validate();
    fatal_if(root_.empty(), "registry needs a root directory");
    std::error_code ec;
    fs::create_directories(root_, ec);
    fatal_if(ec && !fs::is_directory(root_),
             "cannot create registry root '%s': %s", root_.c_str(),
             ec.message().c_str());
}

std::string
ModelRegistry::modelDir(const std::string &name) const
{
    return (fs::path(root_) / name).string();
}

std::string
ModelRegistry::versionPath(const std::string &name,
                           std::uint32_t version) const
{
    return (fs::path(root_) / name /
            ("v" + std::to_string(version) + ".eiem"))
        .string();
}

std::string
ModelRegistry::publish(const std::string &name, std::uint32_t version,
                       const compress::InterleavedCsc &storage)
{
    fatal_if(!validModelName(name),
             "invalid model name '%s' (allowed: [A-Za-z0-9._-], "
             "max 128 chars)", name.c_str());
    fatal_if(version == 0, "model versions start at 1");

    std::error_code ec;
    fs::create_directories(modelDir(name), ec);
    fatal_if(ec && !fs::is_directory(modelDir(name)),
             "cannot create model directory '%s': %s",
             modelDir(name).c_str(), ec.message().c_str());

    // Write-then-rename so a daemon serving from the same registry
    // can never observe (and fatal on) a half-written file: rename
    // within one directory is atomic, and the temp name does not
    // parse as a version file, so latestVersion() ignores it.
    const std::string path = versionPath(name, version);
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid());
    compress::saveModelFile(temp, storage);
    std::error_code rename_ec;
    fs::rename(temp, path, rename_ec);
    if (rename_ec) {
        fs::remove(temp);
        fatal("cannot move '%s' into place: %s", path.c_str(),
              rename_ec.message().c_str());
    }
    {
        // A republished version must not serve the stale artifact
        // (under any nonlinearity it was loaded with).
        std::lock_guard<std::mutex> lock(mutex_);
        const std::string prefix =
            name + "@" + std::to_string(version) + "#";
        for (auto it = cache_.lower_bound(prefix);
             it != cache_.end() && it->first.starts_with(prefix);)
            it = cache_.erase(it);
    }
    return path;
}

std::vector<ModelId>
ModelRegistry::list() const
{
    std::vector<ModelId> models;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(root_, ec)) {
        if (!entry.is_directory())
            continue;
        const std::string name = entry.path().filename().string();
        if (!validModelName(name))
            continue;
        for (const auto &file :
             fs::directory_iterator(entry.path(), ec)) {
            const std::uint32_t version =
                parseVersionFile(file.path().filename().string());
            if (version != 0)
                models.push_back(ModelId{name, version});
        }
    }
    std::sort(models.begin(), models.end(),
              [](const ModelId &a, const ModelId &b) {
                  return a.name != b.name ? a.name < b.name
                                          : a.version < b.version;
              });
    return models;
}

std::uint32_t
ModelRegistry::latestVersion(const std::string &name) const
{
    std::uint32_t latest = 0;
    std::error_code ec;
    for (const auto &file :
         fs::directory_iterator(modelDir(name), ec))
        latest = std::max(
            latest, parseVersionFile(file.path().filename().string()));
    return latest;
}

bool
ModelRegistry::has(const std::string &name, std::uint32_t version) const
{
    std::error_code ec;
    return version != 0 &&
        fs::is_regular_file(versionPath(name, version), ec);
}

std::shared_ptr<const LoadedModel>
ModelRegistry::load(const std::string &name, std::uint32_t version,
                    nn::Nonlinearity nonlin, LoadError *error,
                    std::string *detail)
{
    const auto fail = [&](LoadError why, const std::string &what) {
        if (error)
            *error = why;
        if (detail)
            *detail = what;
        return nullptr;
    };
    if (error)
        *error = LoadError::None;

    if (!validModelName(name))
        return fail(LoadError::NotFound,
                    "invalid model name '" + name + "'");
    if (version == 0) {
        version = latestVersion(name);
        if (version == 0)
            return fail(LoadError::NotFound,
                        "no published versions of '" + name + "'");
    }
    const std::string key = cacheKey(name, version, nonlin);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
    }
    if (!has(name, version))
        return fail(LoadError::NotFound,
                    "'" + versionPath(name, version) + "' not found");

    // Deserialise and plan outside the lock: loading a large model
    // must not stall lookups of already-cached ones. A racing load of
    // the same model wastes one plan; the first insert wins.
    std::shared_ptr<const LoadedModel> loaded;
    try {
        loaded = LoadedModel::fromStorage(
            name, version,
            compress::loadModelFile(versionPath(name, version)),
            nonlin, config_);
    } catch (const compress::ModelFileError &e) {
        // A corrupt artifact must poison only requests for it, not
        // the serving process — and must not be cached, so a repaired
        // republish is picked up on the next load.
        warn("model '%s' v%u is unreadable: %s", name.c_str(), version,
             e.what());
        return fail(LoadError::Corrupt, e.what());
    }

    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = cache_.emplace(key, std::move(loaded));
    return it->second;
}

} // namespace eie::serve
