/**
 * @file
 * Sharded multi-instance serving: one ClusterEngine owns N shard
 * workers, each an engine::InferenceServer over its own EIE execution
 * backend, under one of two placement policies (EIE §VII, Fig. 11 —
 * compressed-sparse inference parallelises across PEs *and* across
 * instances):
 *
 *  - Replicated: every shard holds the full layer; requests route to
 *    the least-loaded shard (live queue depth, round-robin on ties).
 *    Shards running the "compiled" backend share one immutable
 *    pre-decoded stack (engine::compileLayerStack), so N replicas
 *    cost one copy of the weights. This is the throughput policy.
 *
 *  - ColumnPartitioned: the layer's columns are split into contiguous
 *    ranges balanced by stored non-zeros, one sub-layer per shard
 *    (cf. core/ext/column_partition — the §VII-A scheme, which costs
 *    a cross-PE reduction on chip but is exactly what lets a layer
 *    too big for one instance spread across several). submit()
 *    scatters the matching input slice to every shard and a gather
 *    worker sums the partial outputs (saturating adds in column
 *    order) and applies the non-linearity. This is the capacity
 *    policy for large layers.
 *
 * Outputs are bit-exact with the scalar oracle on the full layer:
 * replicated trivially (same plan, same backend semantics), and
 * column-partitioned whenever no intermediate accumulation saturates
 * — splitting columns only reorders saturating adds, and below the
 * accumulator limits the order is immaterial. Saturating workloads
 * should shard replicated.
 */

#ifndef EIE_SERVE_CLUSTER_HH
#define EIE_SERVE_CLUSTER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/server.hh"
#include "serve/registry.hh"

namespace eie::serve {

/** How a ClusterEngine places a model onto its shards. */
enum class Placement
{
    Replicated,       ///< full copy per shard, least-loaded routing
    ColumnPartitioned ///< contiguous column ranges, scatter-gather
};

/** Parse "replicated" / "partitioned" (fatal on anything else). */
Placement placementFromName(const std::string &name);

/** The registry name of @p placement. */
const char *placementName(Placement placement);

/** Shape and policy of one serving cluster. */
struct ClusterOptions
{
    unsigned shards = 1;
    Placement placement = Placement::Replicated;

    /** Execution backend per shard ("compiled", "scalar", "sim"). */
    std::string backend = "compiled";

    /** Kernel variant of every "compiled" shard's inner loop (see
     *  core/kernel/variant.hh; Auto = fastest bit-exact). */
    core::kernel::KernelVariant kernel =
        core::kernel::KernelVariant::Auto;

    /** Resident stream form of every "compiled" shard's shared stack
     *  (see core/kernel/compiled_layer.hh): decoded SoA arrays,
     *  compressed nibble+Huffman streams decoded on the fly, or
     *  per-layer auto selection by footprint. */
    core::kernel::Residency residency =
        core::kernel::Residency::Decoded;

    /** PE-parallel worker threads inside each shard's backend. */
    unsigned threads_per_shard = 1;

    /** Micro-batcher policy of every shard's InferenceServer. */
    engine::ServerOptions server;

    /**
     * Shard circuit breaker: this many consecutive request failures
     * (errors, not deadline drops or sheds) eject a shard from
     * least-loaded routing until a probe succeeds. 0 (the default)
     * disables health tracking; with it enabled, replicated
     * placement also fails each failed request over to one healthy
     * shard before reporting the error.
     */
    unsigned eject_after_failures = 0;

    /** With ejected shards present, every Nth routing decision sends
     *  a live request to one of them as a recovery probe. */
    unsigned probe_interval = 8;
};

/** One shard's contribution to the cluster statistics. */
struct ShardStats
{
    engine::ServerStats server;
    std::size_t queue_depth = 0; ///< live queue depth at snapshot
    double utilization = 0.0;    ///< share of the cluster's requests
    std::size_t col_begin = 0;   ///< owned columns [col_begin,
    std::size_t col_end = 0;     ///<               col_end)

    // Circuit-breaker health (all zero when tracking is disabled).
    bool ejected = false;         ///< out of routing, probes only
    std::uint64_t failures = 0;   ///< total recorded request errors
    std::uint64_t ejections = 0;  ///< times the breaker tripped
    std::uint64_t probes = 0;     ///< recovery probes routed here
};

/** Aggregated cluster statistics since construction. */
struct ClusterStats
{
    std::uint64_t requests = 0; ///< completed end-to-end requests
    std::uint64_t dropped_deadline = 0;
    std::uint64_t failed = 0; ///< gathers failed by a shard error
    std::uint64_t requests_shed = 0; ///< rejected by admission control
    std::uint64_t failovers = 0;     ///< re-routed off a sick shard
    std::uint64_t shards_ejected = 0; ///< currently ejected shards
    double mean_batch = 0.0;  ///< request-weighted over shards

    /** End-to-end request latency percentiles: shard histograms
     *  merged (replicated) or gather-side measurements (partitioned),
     *  all through obs::HistogramSnapshot::quantile. */
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double p999_latency_us = 0.0;
    double max_latency_us = 0.0;

    /** The merged distribution behind the percentiles, for callers
     *  that aggregate further (client transports). */
    obs::HistogramSnapshot latency;

    std::vector<ShardStats> shards;
};

/**
 * Fold every shard's per-layer kernel dispatch stats into one
 * per-layer view (shards serve the same layer stack, so layer i
 * merges across shards): last non-empty decision wins for
 * kernel/last density, measured densities combine sweep-weighted.
 * Shared by statsJson() and the client transports so the aggregation
 * policy cannot drift between them.
 */
std::vector<engine::LayerDispatchStats>
mergeLayerDispatch(const std::vector<ShardStats> &shards);

/** N InferenceServer shards behind one submit() front door. */
class ClusterEngine
{
  public:
    /** Build the shard plans/backends/servers for @p model. The model
     *  is shared (and kept alive) by the cluster. */
    ClusterEngine(std::shared_ptr<const LoadedModel> model,
                  const ClusterOptions &options);

    /** Stops (drains) every shard and the gather worker. */
    ~ClusterEngine();

    ClusterEngine(const ClusterEngine &) = delete;
    ClusterEngine &operator=(const ClusterEngine &) = delete;

    const LoadedModel &model() const { return *model_; }
    const ClusterOptions &options() const { return options_; }
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    std::size_t inputSize() const { return model_->inputSize(); }
    std::size_t outputSize() const { return model_->outputSize(); }

    /**
     * Enqueue one input vector. Replicated: routes to the shard with
     * the shallowest queue. Partitioned: scatters input slices to
     * every shard; the returned future resolves when the gather
     * completes. Fails (future exception) on deadline expiry, a
     * stopped cluster, or a shard error. Fatal on a wrong input size.
     */
    std::future<std::vector<std::int64_t>>
    submit(std::vector<std::int64_t> input_raw,
           const engine::SubmitOptions &options = {});

    /** Blocking convenience wrapper: submit and wait. */
    std::vector<std::int64_t>
    infer(std::vector<std::int64_t> input_raw);

    /** Stop accepting, drain every shard, join workers. Idempotent. */
    void stop();

    /** Aggregated snapshot across all shards. */
    ClusterStats stats() const;

    /** Column ownership boundaries (shards+1 ascending values; for
     *  Replicated every shard owns the full range). */
    const std::vector<std::size_t> &columnBounds() const
    {
        return col_bounds_;
    }

  private:
    struct GatherJob
    {
        std::vector<std::future<std::vector<std::int64_t>>> parts;
        std::promise<std::vector<std::int64_t>> promise;
        std::chrono::steady_clock::time_point enqueued;
        std::uint64_t trace_id = 0;
    };

    /** One replicated request under health tracking: the in-flight
     *  attempt plus everything needed to retry it on another shard. */
    struct TrackedJob
    {
        std::future<std::vector<std::int64_t>> attempt;
        std::promise<std::vector<std::int64_t>> promise;
        std::vector<std::int64_t> input; ///< copy kept for failover
        engine::SubmitOptions options;
        std::size_t shard = 0;
    };

    /** Per-shard breaker state, guarded by route_mutex_. */
    struct ShardHealth
    {
        unsigned consecutive_failures = 0;
        bool ejected = false;
        std::uint64_t failures = 0;
        std::uint64_t ejections = 0;
        std::uint64_t probes = 0;
    };

    void gatherLoop();
    void healthLoop();
    bool healthTracking() const
    {
        return options_.placement == Placement::Replicated &&
            options_.eject_after_failures > 0;
    }
    std::size_t pickShard(); ///< least-loaded, round-robin on ties
    /** Least-loaded healthy shard != @p exclude (shards_.size() =
     *  exclude nothing); occasionally a probe to an ejected shard.
     *  Returns shards_.size() when no eligible shard exists. */
    std::size_t pickShardLocked(std::size_t exclude);
    void recordOutcome(std::size_t shard, bool success);

    std::shared_ptr<const LoadedModel> model_;
    ClusterOptions options_;

    /** Partitioned sub-plans (empty for Replicated). Stable storage:
     *  backends keep pointers into it. */
    std::vector<core::LayerPlan> shard_plans_;
    std::vector<std::size_t> col_bounds_;

    std::vector<std::unique_ptr<engine::InferenceServer>> shards_;
    std::size_t round_robin_ = 0; ///< guarded by route_mutex_
    mutable std::mutex route_mutex_;

    // Breaker state, guarded by route_mutex_ (sized to shards_ when
    // health tracking is on, empty otherwise).
    std::vector<ShardHealth> health_;
    std::uint64_t probe_tick_ = 0;

    // Gather worker (partitioned placement only) and health worker
    // (replicated with breaker enabled) — mutually exclusive, so
    // they share the mutex/cv/thread slot.
    mutable std::mutex gather_mutex_;
    std::condition_variable gather_cv_;
    std::deque<GatherJob> gather_queue_;
    std::deque<TrackedJob> health_queue_;
    bool stopping_ = false;
    std::uint64_t gathered_ = 0;
    std::uint64_t gather_failed_ = 0;
    std::uint64_t gather_dropped_ = 0; ///< deadline-dropped gathers
    std::uint64_t failovers_ = 0;      ///< guarded by gather_mutex_

    /** End-to-end gather latency distribution (internally atomic). */
    obs::Histogram gather_latencies_;

    /** Process-wide registry handles (resolved at construction). */
    obs::Counter &m_failovers_;
    obs::Counter &m_failed_;
    obs::Counter &m_ejections_;
    obs::Histogram &m_gather_latency_;

    std::thread gatherer_;
    std::once_flag join_once_;
};

/**
 * Lazily-built ClusterEngines over a ModelRegistry, one per served
 * (model, version): the lookup the TCP front end dispatches on.
 */
class ServingDirectory
{
  public:
    /** Clusters are built on first request with @p defaults. */
    ServingDirectory(ModelRegistry &registry,
                     const ClusterOptions &defaults);

    ~ServingDirectory();

    ServingDirectory(const ServingDirectory &) = delete;
    ServingDirectory &operator=(const ServingDirectory &) = delete;

    /** Why a cluster() lookup failed — typed, so the transports map
     *  it onto their error taxonomies without parsing messages. */
    enum class LookupStatus
    {
        Ok,       ///< cluster returned
        NotFound, ///< no such model/version in the registry
        Rejected, ///< model exists but cannot serve under the
                  ///< directory's policy (e.g. fewer input columns
                  ///< than partitioned shards)
    };

    /**
     * The cluster serving @p name at @p version (0 = latest) with
     * drain non-linearity @p nonlin, building it on first use.
     * Plain inference uses the default ReLU; streaming LSTM sessions
     * ask for Nonlinearity::None (gate pre-activations feed
     * sigmoids/tanh on the host, so the M×V must not rectify) — the
     * two are distinct cache entries sharing one LoadedModel's
     * weights. Returns nullptr and sets @p error (and, when given,
     * @p status) when the lookup fails.
     */
    ClusterEngine *cluster(const std::string &name,
                           std::uint32_t version, std::string &error,
                           nn::Nonlinearity nonlin =
                               nn::Nonlinearity::ReLU,
                           LookupStatus *status = nullptr);

    /** Aggregate statistics of every live cluster as a JSON object
     *  string (the wire protocol's stats payload). */
    std::string statsJson() const;

    /** One live cluster's identity and statistics snapshot. */
    struct ClusterSnapshot
    {
        std::string model;
        std::uint32_t version = 0;
        ClusterStats stats;
    };

    /** Structured per-cluster statistics (what statsJson renders),
     *  for in-process callers that aggregate rather than print. */
    std::vector<ClusterSnapshot> statsSnapshot() const;

    /** Stop (drain) every cluster. */
    void stopAll();

  private:
    ModelRegistry &registry_;
    ClusterOptions defaults_;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<ClusterEngine>> clusters_;
};

} // namespace eie::serve

#endif // EIE_SERVE_CLUSTER_HH
