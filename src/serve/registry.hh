/**
 * @file
 * The serving cluster's model registry: named, versioned compressed
 * models on disk in the EIEM format (compress/model_file), loaded and
 * planned once and handed out as shared immutable artifacts.
 *
 * Directory layout, one file per published version:
 *
 *   <root>/<model name>/v<version>.eiem
 *
 * load() deserialises the interleaved-CSC image, reconstructs the
 * quantised weight matrix and codebook from it, and compiles a
 * LayerPlan for the registry's machine configuration — possibly a
 * different PE count than the file was encoded for, since planLayer
 * re-interleaves tiles for the target machine. Loaded models are
 * cached by (name, version): every shard of a ClusterEngine (and any
 * number of clusters) shares one LoadedModel, so the planning work
 * and the quantised weights exist once per process.
 */

#ifndef EIE_SERVE_REGISTRY_HH
#define EIE_SERVE_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "compress/interleaved.hh"
#include "core/config.hh"
#include "core/plan.hh"
#include "nn/sparse.hh"

namespace eie::serve {

/** One (name, version) coordinate in the registry. */
struct ModelId
{
    std::string name;
    std::uint32_t version = 0;

    bool
    operator==(const ModelId &other) const
    {
        return name == other.name && version == other.version;
    }
};

/**
 * A model loaded and planned for one machine configuration. Immutable
 * after construction; shards of a cluster share it by shared_ptr.
 * The quantised weights and codebook are retained so the cluster can
 * build column-partitioned sub-plans without re-reading the file.
 */
class LoadedModel
{
  public:
    /** Plan @p storage (an EIEM image, from disk or in memory) for
     *  @p config. */
    static std::shared_ptr<const LoadedModel>
    fromStorage(std::string name, std::uint32_t version,
                const compress::InterleavedCsc &storage,
                nn::Nonlinearity nonlin, const core::EieConfig &config);

    const std::string &name() const { return name_; }
    std::uint32_t version() const { return version_; }
    const core::EieConfig &config() const { return config_; }
    nn::Nonlinearity nonlin() const { return nonlin_; }

    /** The full-layer plan, compiled for config(). */
    const core::LayerPlan &plan() const { return plan_; }

    /** Codebook-quantised weights (decoded from the stored image). */
    const nn::SparseMatrix &quantized() const { return quantized_; }

    /** The shared-weight table of the stored image. */
    const compress::Codebook &codebook() const { return codebook_; }

    std::size_t inputSize() const { return plan_.input_size; }
    std::size_t outputSize() const { return plan_.output_size; }

  private:
    LoadedModel(std::string name, std::uint32_t version,
                nn::Nonlinearity nonlin, const core::EieConfig &config,
                nn::SparseMatrix quantized, compress::Codebook codebook);

    std::string name_;
    std::uint32_t version_;
    nn::Nonlinearity nonlin_;
    core::EieConfig config_;
    nn::SparseMatrix quantized_;
    compress::Codebook codebook_;
    core::LayerPlan plan_;
};

/** Why ModelRegistry::load() returned nullptr. */
enum class LoadError {
    None,     ///< load succeeded
    NotFound, ///< no such model/version on disk
    Corrupt,  ///< the file exists but cannot be parsed
};

/** Named, versioned EIEM models under one root directory. */
class ModelRegistry
{
  public:
    /**
     * @param root   registry directory (created if missing)
     * @param config machine configuration models are planned for
     */
    ModelRegistry(std::string root, const core::EieConfig &config);

    const std::string &root() const { return root_; }
    const core::EieConfig &config() const { return config_; }

    /**
     * Write @p storage as version @p version of model @p name
     * (version must be >= 1; overwriting an existing version is
     * allowed and invalidates its cache entry). Returns the file
     * path. Fatal on an invalid name (allowed: [A-Za-z0-9._-]).
     */
    std::string publish(const std::string &name, std::uint32_t version,
                        const compress::InterleavedCsc &storage);

    /** Every (name, version) present on disk, sorted by name then
     *  ascending version. */
    std::vector<ModelId> list() const;

    /** Highest published version of @p name; 0 when absent. */
    std::uint32_t latestVersion(const std::string &name) const;

    /** Whether version @p version of @p name exists on disk. */
    bool has(const std::string &name, std::uint32_t version) const;

    /**
     * Load (or fetch from cache) version @p version of @p name;
     * version 0 resolves to the latest published version. Returns
     * nullptr when the model (or the requested version) does not
     * exist or its file is corrupt — @p error (when non-null)
     * distinguishes the two and @p detail carries the parse error, so
     * one bad `.eiem` is a per-request failure, never a process exit.
     */
    std::shared_ptr<const LoadedModel>
    load(const std::string &name, std::uint32_t version = 0,
         nn::Nonlinearity nonlin = nn::Nonlinearity::ReLU,
         LoadError *error = nullptr, std::string *detail = nullptr);

  private:
    std::string modelDir(const std::string &name) const;
    std::string versionPath(const std::string &name,
                            std::uint32_t version) const;

    std::string root_;
    core::EieConfig config_;

    mutable std::mutex mutex_;
    /** Cache key "name@version#nonlin" (version resolved, never 0):
     *  the plan depends on the drain nonlinearity too. */
    std::map<std::string, std::shared_ptr<const LoadedModel>> cache_;
};

} // namespace eie::serve

#endif // EIE_SERVE_REGISTRY_HH
