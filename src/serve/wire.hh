/**
 * @file
 * The serving cluster's wire protocol: length-prefixed binary frames
 * carrying inference requests/responses and stats queries between a
 * TcpClient and a TcpServer (serve/tcp.hh).
 *
 * Frame layout (little-endian scalars):
 *
 *   u32 body_len | body
 *   body = u8 type | payload
 *
 * Payloads by type:
 *   Hello / HelloAck : u32 protocol version (handshake, first frame
 *                      in each direction)
 *   InferRequest     : u64 id, str model, u32 version (0 = latest),
 *                      i32 priority, u32 deadline_us (0 = none),
 *                      vec<i64> input (raw fixed-point activations)
 *   InferResponse    : u64 id, u8 ok, then str error (ok = 0) or
 *                      vec<i64> output (ok = 1)
 *   StatsRequest     : empty
 *   StatsResponse    : str json (ServingDirectory::statsJson)
 *   InfoRequest      : str model, u32 version (0 = latest)
 *   InfoResponse     : u8 ok, str error, str model, u32 version,
 *                      u64 input_size, u64 output_size, u32 shards,
 *                      str placement
 *
 * str is u32 length + bytes; vec<i64> is u32 count + count x i64.
 * Decoding is defensive — a malformed or oversized frame throws
 * WireError (the transport drops the connection) instead of killing
 * the daemon, unlike the fatal()-on-corruption model-file loader
 * whose inputs are operator-owned files.
 */

#ifndef EIE_SERVE_WIRE_HH
#define EIE_SERVE_WIRE_HH

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace eie::serve::wire {

/** Protocol revision; bumped on any frame-layout change. */
inline constexpr std::uint32_t kProtocolVersion = 1;

/** Upper bound on one frame's body, guarding decoder allocations. */
inline constexpr std::size_t kMaxBodyBytes = std::size_t{1} << 28;

/** Longest accepted model name (matches the registry's limit). */
inline constexpr std::size_t kMaxModelName = 128;

/** Frame type tags (the body's leading byte). */
enum class MsgType : std::uint8_t
{
    Hello = 1,
    HelloAck = 2,
    InferRequest = 3,
    InferResponse = 4,
    StatsRequest = 5,
    StatsResponse = 6,
    InfoRequest = 7,
    InfoResponse = 8,
};

struct Hello
{
    std::uint32_t protocol = kProtocolVersion;
};

struct HelloAck
{
    std::uint32_t protocol = kProtocolVersion;
};

struct InferRequest
{
    std::uint64_t id = 0;
    std::string model;
    std::uint32_t version = 0;   ///< 0 = latest published
    std::int32_t priority = 0;   ///< engine::SubmitOptions::priority
    std::uint32_t deadline_us = 0; ///< 0 = no deadline
    std::vector<std::int64_t> input;
};

struct InferResponse
{
    std::uint64_t id = 0;
    bool ok = false;
    std::string error;                 ///< set when !ok
    std::vector<std::int64_t> output;  ///< set when ok
};

struct StatsRequest
{};

struct StatsResponse
{
    std::string json;
};

struct InfoRequest
{
    std::string model;
    std::uint32_t version = 0; ///< 0 = latest published
};

struct InfoResponse
{
    bool ok = false;
    std::string error; ///< set when !ok
    std::string model;
    std::uint32_t version = 0; ///< resolved (never 0 when ok)
    std::uint64_t input_size = 0;
    std::uint64_t output_size = 0;
    std::uint32_t shards = 0;
    std::string placement;
};

using Message = std::variant<Hello, HelloAck, InferRequest,
                             InferResponse, StatsRequest,
                             StatsResponse, InfoRequest,
                             InfoResponse>;

/** Thrown on any malformed, truncated or oversized frame. */
class WireError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Serialise @p message as one whole frame (length prefix included). */
std::vector<std::uint8_t> encodeFrame(const Message &message);

/**
 * Decode one frame body (the bytes after the length prefix: type tag
 * plus payload). Throws WireError on unknown types, truncation,
 * trailing garbage or limit violations.
 */
Message decodeBody(std::span<const std::uint8_t> body);

/** The type tag @p message would carry on the wire. */
MsgType messageType(const Message &message);

} // namespace eie::serve::wire

#endif // EIE_SERVE_WIRE_HH
