/**
 * @file
 * The serving cluster's wire protocol: length-prefixed binary frames
 * carrying inference requests/responses, streaming LSTM session
 * traffic and stats queries between a TcpClient and a TcpServer
 * (serve/tcp.hh).
 *
 * Frame layout (little-endian scalars):
 *
 *   u32 body_len | body
 *   body = u8 type | payload
 *
 * Payloads by type:
 *   Hello            : u32 protocol version (first frame the client
 *                      sends)
 *   HelloAck         : u32 protocol version, then — in the v2 layout —
 *                      u8 ok and str error. The server answers in the
 *                      layout of min(client version, server version)
 *                      so a v1 client still decodes the ack: a
 *                      mismatched client gets a clean rejection (v2+:
 *                      ok = 0 plus the reason; v1: a protocol number
 *                      its own handshake check refuses) instead of
 *                      undefined decoding of later frames.
 *   InferRequest     : u64 id, str model, u32 version (0 = latest),
 *                      i32 priority, u32 deadline_us (0 = none),
 *                      vec<i64> input (raw fixed-point activations),
 *                      then optionally (v3) u64 trace_id — only
 *                      present when nonzero, so a v2 peer decodes
 *                      untraced requests unchanged
 *   InferResponse    : u64 id, u8 ok, then vec<i64> output (ok = 1)
 *                      or u8 code + str error (ok = 0)
 *   StatsRequest     : empty
 *   StatsResponse    : str json (ServingDirectory::statsJson)
 *   InfoRequest      : str model, u32 version (0 = latest)
 *   InfoResponse     : u8 ok, str error, str model, u32 version,
 *                      u64 input_size, u64 output_size, u32 shards,
 *                      str placement
 *   SessionOpen      : u64 session_id, str model, u32 version
 *   SessionAck       : u64 session_id, u8 ok, u8 code, str error,
 *                      u64 input_size (X), u64 hidden_size (H)
 *   SessionStep      : u64 session_id, u64 id, i32 priority,
 *                      u32 deadline_us, vec<f32> x, then optionally
 *                      (v3) u64 trace_id when nonzero
 *   SessionState     : u64 session_id, u64 id, u8 ok, u8 code,
 *                      str error, vec<f32> h (the new hidden state)
 *   SessionClose     : u64 session_id (one-way; no reply)
 *   MetricsRequest   : empty (v3)
 *   MetricsResponse  : str text (Prometheus exposition), str json
 *                      (MetricsRegistry::renderJson) (v3)
 *   TraceRequest     : empty (v3)
 *   TraceResponse    : str json (chrome://tracing traceEvents) (v3)
 *
 * str is u32 length + bytes; vec<i64> is u32 count + count x i64;
 * vec<f32> is u32 count + count x f32 (IEEE-754 bit patterns, so a
 * session's recurrent state round-trips bit-exactly). Decoding is
 * defensive — a malformed or oversized frame throws WireError (the
 * transport drops the connection) instead of killing the daemon,
 * unlike the fatal()-on-corruption model-file loader whose inputs are
 * operator-owned files.
 *
 * Version history:
 *   v1 — Hello..InfoResponse, error responses carried a string only.
 *   v2 — HelloAck gained ok/error (negotiated layout), InferResponse
 *        errors carry an ErrorCode, session messages added.
 *   v3 — InferRequest/SessionStep carry an optional trailing
 *        trace_id; Metrics/Trace query frames added. v2 peers are
 *        still accepted (both sides speak min(client, server)): a
 *        client talking to a v2 server sends no trace ids and
 *        refuses metrics/trace queries locally.
 */

#ifndef EIE_SERVE_WIRE_HH
#define EIE_SERVE_WIRE_HH

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace eie::serve::wire {

/** Protocol revision; bumped on any frame-layout change. */
inline constexpr std::uint32_t kProtocolVersion = 3;

/** Oldest peer revision both endpoints still interoperate with:
 *  the negotiated version is min(client, server) and either side
 *  rejects anything below this. */
inline constexpr std::uint32_t kMinProtocolVersion = 2;

/** Upper bound on one frame's body, guarding decoder allocations. */
inline constexpr std::size_t kMaxBodyBytes = std::size_t{1} << 28;

/** Longest accepted model name (matches the registry's limit). */
inline constexpr std::size_t kMaxModelName = 128;

/** Frame type tags (the body's leading byte). */
enum class MsgType : std::uint8_t
{
    Hello = 1,
    HelloAck = 2,
    InferRequest = 3,
    InferResponse = 4,
    StatsRequest = 5,
    StatsResponse = 6,
    InfoRequest = 7,
    InfoResponse = 8,
    SessionOpen = 9,
    SessionAck = 10,
    SessionStep = 11,
    SessionState = 12,
    SessionClose = 13,
    MetricsRequest = 14,
    MetricsResponse = 15,
    TraceRequest = 16,
    TraceResponse = 17,
};

/**
 * Failure taxonomy carried on error responses, one byte on the wire.
 * Mirrored (and extended with client-local codes) by
 * client::StatusCode so every transport reports the same failure the
 * same way.
 */
enum class ErrorCode : std::uint8_t
{
    Internal = 0,        ///< unclassified server-side failure
    InvalidArgument = 1, ///< wrong input size / not LSTM-shaped / ...
    NotFound = 2,        ///< unknown model, version or session
    DeadlineExpired = 3, ///< dropped in a queue past its deadline
    Unavailable = 4,     ///< server stopped / shutting down
    /** Synthesized by TcpClient for responses it fails after a wire
     *  violation; a server never sends it (decoding maps the byte to
     *  Internal like any unknown code). */
    ProtocolError = 5,
};

struct Hello
{
    std::uint32_t protocol = kProtocolVersion;
};

struct HelloAck
{
    std::uint32_t protocol = kProtocolVersion;
    bool ok = true;
    std::string error; ///< set when !ok (v2 layout only)

    /**
     * Which layout to encode with: >= 2 appends ok/error, 1 is the
     * protocol-only legacy layout. The server sets this to
     * min(client's Hello version, kProtocolVersion) so the peer can
     * always decode the ack; filled on decode with the layout found.
     * Never travels as a field itself.
     */
    std::uint32_t wire_layout = kProtocolVersion;
};

struct InferRequest
{
    std::uint64_t id = 0;
    std::string model;
    std::uint32_t version = 0;   ///< 0 = latest published
    std::int32_t priority = 0;   ///< engine::SubmitOptions::priority
    std::uint32_t deadline_us = 0; ///< 0 = no deadline
    std::vector<std::int64_t> input;

    /** v3 trailing extension: the request's distributed trace id.
     *  Encoded only when nonzero (so the v2 layout is unchanged for
     *  untraced traffic); 0 after decoding a v2 frame. */
    std::uint64_t trace_id = 0;
};

struct InferResponse
{
    std::uint64_t id = 0;
    bool ok = false;
    ErrorCode code = ErrorCode::Internal; ///< meaningful when !ok
    std::string error;                 ///< set when !ok
    std::vector<std::int64_t> output;  ///< set when ok
};

struct StatsRequest
{};

struct StatsResponse
{
    std::string json;
};

struct InfoRequest
{
    std::string model;
    std::uint32_t version = 0; ///< 0 = latest published
};

struct InfoResponse
{
    bool ok = false;
    std::string error; ///< set when !ok
    std::string model;
    std::uint32_t version = 0; ///< resolved (never 0 when ok)
    std::uint64_t input_size = 0;
    std::uint64_t output_size = 0;
    std::uint32_t shards = 0;
    std::string placement;
};

/** Open a streaming LSTM session on @p model (state lives server
 *  side, one session per @p session_id per connection). */
struct SessionOpen
{
    std::uint64_t session_id = 0; ///< client-chosen, unique per conn
    std::string model;
    std::uint32_t version = 0; ///< 0 = latest published
};

struct SessionAck
{
    std::uint64_t session_id = 0;
    bool ok = false;
    ErrorCode code = ErrorCode::Internal; ///< meaningful when !ok
    std::string error;
    std::uint64_t input_size = 0;  ///< X (per-step input length)
    std::uint64_t hidden_size = 0; ///< H (hidden/cell state length)
};

/** One LSTM time step: x only — the server packs [x; h; 1] with the
 *  session's recurrent state and runs the M×V. */
struct SessionStep
{
    std::uint64_t session_id = 0;
    std::uint64_t id = 0; ///< step id (shared id space with infer)
    std::int32_t priority = 0;
    std::uint32_t deadline_us = 0; ///< 0 = no deadline
    std::vector<float> x;

    /** v3 trailing extension, same rules as InferRequest::trace_id. */
    std::uint64_t trace_id = 0;
};

/** The state half of the session pair: the new hidden state after
 *  one committed step (the cell state stays server-side). */
struct SessionState
{
    std::uint64_t session_id = 0;
    std::uint64_t id = 0;
    bool ok = false;
    ErrorCode code = ErrorCode::Internal; ///< meaningful when !ok
    std::string error;
    std::vector<float> h;
};

/** Discard a session's state (one-way; unknown ids are ignored). */
struct SessionClose
{
    std::uint64_t session_id = 0;
};

/** Ask the server for its process metrics registry (v3). */
struct MetricsRequest
{};

struct MetricsResponse
{
    std::string text; ///< Prometheus-style plaintext exposition
    std::string json; ///< MetricsRegistry::renderJson
};

/** Ask the server for its span ring as a chrome trace (v3). */
struct TraceRequest
{};

struct TraceResponse
{
    std::string json; ///< chrome://tracing traceEvents document
};

using Message = std::variant<Hello, HelloAck, InferRequest,
                             InferResponse, StatsRequest,
                             StatsResponse, InfoRequest,
                             InfoResponse, SessionOpen, SessionAck,
                             SessionStep, SessionState, SessionClose,
                             MetricsRequest, MetricsResponse,
                             TraceRequest, TraceResponse>;

/** Thrown on any malformed, truncated or oversized frame. */
class WireError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Serialise @p message as one whole frame (length prefix included). */
std::vector<std::uint8_t> encodeFrame(const Message &message);

/**
 * Decode one frame body (the bytes after the length prefix: type tag
 * plus payload). Throws WireError on unknown types, truncation,
 * trailing garbage or limit violations.
 */
Message decodeBody(std::span<const std::uint8_t> body);

/** The type tag @p message would carry on the wire. */
MsgType messageType(const Message &message);

} // namespace eie::serve::wire

#endif // EIE_SERVE_WIRE_HH
