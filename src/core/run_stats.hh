/**
 * @file
 * Aggregated results of one accelerator run: the output vector plus
 * all cycle, work, traffic and balance statistics the paper's
 * evaluation reports.
 */

#ifndef EIE_CORE_RUN_STATS_HH
#define EIE_CORE_RUN_STATS_HH

#include <cstdint>
#include <ostream>
#include <vector>

namespace eie::core {

/** Timing/traffic statistics of one layer execution. */
struct RunStats
{
    unsigned n_pe = 0;
    double clock_ghz = 0.0;

    std::uint64_t cycles = 0;          ///< total (compute + drain)
    std::uint64_t compute_cycles = 0;  ///< broadcast/MAC phase
    std::uint64_t drain_cycles = 0;    ///< batch write-back phase

    std::uint64_t broadcasts = 0;      ///< non-zero activations sent
    std::uint64_t gated_cycles = 0;    ///< broadcast gated (queue full)

    std::uint64_t total_entries = 0;   ///< MACs issued (incl. padding)
    std::uint64_t padding_entries = 0; ///< padding-zero MACs

    std::uint64_t hazard_stalls = 0;   ///< accumulator-hazard bubbles
    std::uint64_t fetch_stalls = 0;    ///< Spmat-fetch-wait bubbles
    std::uint64_t starved_cycles = 0;  ///< no-work bubbles

    std::vector<std::uint64_t> pe_busy; ///< per-PE ALU-issue cycles

    std::uint64_t ptr_sram_reads = 0;
    std::uint64_t spmat_row_fetches = 0;
    std::uint64_t act_sram_reads = 0;
    std::uint64_t act_sram_writes = 0;

    /** Perfect-balance lower bound: ceil(total_entries / n_pe). */
    std::uint64_t theoretical_cycles = 0;

    /** Figure 8/13 metric: mean ALU-busy fraction over the run. */
    double loadBalance() const;

    /** Wall-clock time at the configured frequency, microseconds. */
    double timeUs() const;

    /** Theoretical (perfectly balanced) time, microseconds. */
    double theoreticalTimeUs() const;

    /** Actual over theoretical cycle ratio (§VI-A: about 1.1). */
    double actualOverTheoretical() const;

    /** One-line human-readable summary. */
    void print(std::ostream &os) const;
};

/** Output vector plus statistics. */
struct RunResult
{
    std::vector<std::int64_t> output_raw;
    RunStats stats;
};

} // namespace eie::core

#endif // EIE_CORE_RUN_STATS_HH
