/**
 * @file
 * Activation Read/Write Unit (§IV): two 64-entry activation register
 * files (source and destination) that swap roles between layers, plus
 * the 2KB per-PE activation SRAM used when vectors exceed the register
 * files.
 *
 * Model responsibilities:
 *  - hold the PE's share of the input activation vector in the act
 *    SRAM (source side) and count the LNZD scan reads over it,
 *  - drain the destination accumulators into the act SRAM at batch
 *    end ("The SRAM is read only at the beginning and written at the
 *    end of the batch") through a 64-bit port carrying four 16-bit
 *    activations per access,
 *  - hand the committed outputs back to the accelerator (ping-pong:
 *    they become the next layer's source without any data movement).
 */

#ifndef EIE_CORE_ACT_RW_HH
#define EIE_CORE_ACT_RW_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "sim/sram.hh"
#include "sim/stats.hh"

namespace eie::core {

/** Source/destination activation storage of one PE. */
class ActRwUnit
{
  public:
    ActRwUnit(const EieConfig &config, sim::StatGroup &stats);

    /**
     * Load this PE's share of the input vector (backdoor; the I/O-mode
     * DMA or the previous layer's drain already paid for the writes).
     * Counts the pass's LNZD scan reads: the scan walks the stored
     * share once per pass at four activations per 64-bit access.
     */
    void loadSourceShare(std::size_t share_entries);

    /** Account one extra scan pass over the stored source share
     *  (row batches re-scan the input). */
    void accountScanPass();

    /**
     * Begin draining @p values (the batch's accumulator contents)
     *  into the destination half of the act SRAM.
     */
    void startDrain(const std::vector<std::int64_t> &values);

    /** True while drain writes remain. */
    bool draining() const { return drain_pos_ < drain_values_.size(); }

    /** Advance one drain cycle (one 64-bit write = 4 activations). */
    void drainCycle();

    /** Clock edge. */
    void tick() { sram_.tick(); }

    /** Committed outputs of the last drained batch. */
    const std::vector<std::int64_t> &
    drained() const
    {
        return drain_values_;
    }

    /** Activation SRAM reads / writes so far. */
    std::uint64_t reads() const { return sram_.readCount(); }
    std::uint64_t writes() const { return sram_.writeCount(); }

  private:
    static constexpr unsigned acts_per_word_ = 4; // 4 x 16b in 64b

    sim::Sram sram_;
    std::size_t source_entries_ = 0;
    std::size_t dest_base_words_ = 0;
    std::vector<std::int64_t> drain_values_;
    std::size_t drain_pos_ = 0;
    sim::Counter &scan_reads_;
};

} // namespace eie::core

#endif // EIE_CORE_ACT_RW_HH
