#include "core/lnzd.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace eie::core {

LnzdCandidate
lnzdSelect(std::span<const LnzdCandidate> children)
{
    LnzdCandidate best;
    for (const LnzdCandidate &c : children) {
        if (!c.valid)
            continue;
        if (!best.valid || c.index < best.index)
            best = c;
    }
    return best;
}

LnzdTree::LnzdTree(unsigned n_leaves, unsigned fanin)
    : n_leaves_(n_leaves), fanin_(fanin)
{
    panic_if(n_leaves_ == 0, "LNZD tree needs at least one leaf");
    panic_if(fanin_ < 2, "LNZD fan-in must be >= 2");
    node_count_ = 0;
    depth_ = 0;
    unsigned level = n_leaves_;
    while (level > 1) {
        level = static_cast<unsigned>(divCeil(level, fanin_));
        node_count_ += level;
        ++depth_;
    }
}

LnzdCandidate
LnzdTree::select(std::span<const LnzdCandidate> leaves) const
{
    panic_if(leaves.size() != n_leaves_,
             "LNZD select over %zu leaves, tree has %u", leaves.size(),
             n_leaves_);
    std::vector<LnzdCandidate> level(leaves.begin(), leaves.end());
    while (level.size() > 1) {
        std::vector<LnzdCandidate> next;
        next.reserve(divCeil(level.size(), fanin_));
        for (std::size_t base = 0; base < level.size(); base += fanin_) {
            const std::size_t count =
                std::min<std::size_t>(fanin_, level.size() - base);
            next.push_back(lnzdSelect(
                std::span<const LnzdCandidate>(level.data() + base,
                                               count)));
        }
        level = std::move(next);
    }
    return level.front();
}

std::vector<std::pair<std::uint32_t, std::int64_t>>
LnzdTree::scan(const std::vector<std::int64_t> &acts, unsigned n_pe) const
{
    panic_if(n_pe != n_leaves_, "scan over %u PEs, tree has %u leaves",
             n_pe, n_leaves_);

    // Per-PE cursor over its local (strided) share of the vector.
    // cursor[k] is the next global index >= k (stride n_pe) that PE k
    // has not yet offered.
    std::vector<std::uint64_t> cursor(n_pe);
    for (unsigned k = 0; k < n_pe; ++k)
        cursor[k] = k;

    auto candidate = [&](unsigned k) {
        LnzdCandidate c;
        std::uint64_t i = cursor[k];
        while (i < acts.size() && acts[i] == 0)
            i += n_pe;
        cursor[k] = i;
        if (i < acts.size()) {
            c.valid = true;
            c.index = static_cast<std::uint32_t>(i);
            c.value = acts[i];
        }
        return c;
    };

    std::vector<std::pair<std::uint32_t, std::int64_t>> schedule;
    std::vector<LnzdCandidate> leaves(n_pe);
    while (true) {
        for (unsigned k = 0; k < n_pe; ++k)
            leaves[k] = candidate(k);
        const LnzdCandidate pick = select(leaves);
        if (!pick.valid)
            break;
        schedule.emplace_back(pick.index, pick.value);
        cursor[pick.index % n_pe] = pick.index + n_pe;
    }
    return schedule;
}

} // namespace eie::core
