/**
 * @file
 * The EIE accelerator: a CCU plus an array of PEs driven by the
 * two-phase simulation kernel. This is the cycle-accurate counterpart
 * of FunctionalModel; the two are verified bit-exact against each
 * other and against the floating-point golden model.
 *
 * Execution of a planned layer (§IV "Central Control Unit"):
 *  - I/O mode: each tile's per-PE slices are DMA-loaded (backdoor,
 *    one-time cost outside the measured compute cycles, as in the
 *    paper).
 *  - Computing mode: per pass, the CCU broadcasts the LNZD-scanned
 *    non-zero activations; PEs consume them as described in pe.hh.
 *  - Batch drain: accumulators pass through ReLU and drain to the
 *    activation SRAM; ping-pong makes them the next layer's source
 *    with no extra transfer.
 */

#ifndef EIE_CORE_ACCELERATOR_HH
#define EIE_CORE_ACCELERATOR_HH

#include <vector>

#include "core/config.hh"
#include "core/functional.hh"
#include "core/kernel/compiled_layer.hh"
#include "core/plan.hh"
#include "core/run_stats.hh"
#include "nn/tensor.hh"

namespace eie::core {

/** Cycle-accurate EIE instance. */
class Accelerator
{
  public:
    explicit Accelerator(const EieConfig &config);

    /**
     * Execute a planned layer on a raw fixed-point input vector.
     * Lowers the plan to the pre-decoded kernel format (with the
     * simulator stream) and delegates to the CompiledLayer overload;
     * repeat callers should compile once themselves.
     */
    RunResult run(const LayerPlan &plan,
                  const std::vector<std::int64_t> &input_raw) const;

    /**
     * Execute a pre-compiled layer (CompiledLayer::compile with
     * CompileOptions::sim_stream) on a raw fixed-point input vector. This is
     * the simulator's hot loop: the PEs walk the flat pre-decoded
     * arrays, with cycle timing identical to interpreting the raw
     * interleaved-CSC image.
     */
    RunResult run(const kernel::CompiledLayer &layer,
                  const std::vector<std::int64_t> &input_raw) const;

    /**
     * Convenience float wrapper: quantise the input, run, dequantise
     * the output. Statistics are returned through @p stats_out when
     * non-null.
     */
    nn::Vector runFloat(const LayerPlan &plan, const nn::Vector &input,
                        RunStats *stats_out = nullptr) const;

    const EieConfig &config() const { return config_; }

  private:
    EieConfig config_;
};

} // namespace eie::core

#endif // EIE_CORE_ACCELERATOR_HH
