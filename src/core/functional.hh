/**
 * @file
 * Untimed, bit-exact functional model of EIE.
 *
 * Executes a LayerPlan with exactly the datapath semantics of the
 * hardware — 4-bit codebook decode to 16-bit fixed point, saturating
 * multiply-accumulate in column-broadcast order, padding entries as
 * real (zero-valued) work — but without cycle timing. It is the golden
 * reference the cycle-accurate simulator must match bit-for-bit, and
 * its work counts drive the "theoretical time" analyses (§VI-A).
 */

#ifndef EIE_CORE_FUNCTIONAL_HH
#define EIE_CORE_FUNCTIONAL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/kernel/variant.hh"
#include "core/plan.hh"
#include "nn/tensor.hh"

namespace eie::core {

/** Work accounting from a functional execution. */
struct WorkStats
{
    /** (v,z) entries walked, including padding. */
    std::uint64_t total_entries = 0;
    /** Padding entries walked. */
    std::uint64_t padding_entries = 0;
    /** Non-zero activations broadcast (summed over batches/passes —
     *  each batch re-scans the input). */
    std::uint64_t broadcasts = 0;
    /** Entries walked per PE (load-balance denominator). */
    std::vector<std::uint64_t> pe_entries;

    /** Perfect-balance cycle count: ceil(total_entries / n_pe). */
    std::uint64_t theoreticalCycles(unsigned n_pe) const;

    /** Useful (non-padding) multiply-accumulates x2 = GOPs executed
     *  on the compressed network. */
    double usefulGops() const;
};

/** Output and work accounting of one functional layer execution. */
struct FunctionalResult
{
    std::vector<std::int64_t> output_raw;
    WorkStats work;
};

/** The untimed reference machine. */
class FunctionalModel
{
  public:
    explicit FunctionalModel(const EieConfig &config);
    ~FunctionalModel();

    /** Copies share the configuration but not the batch-path cache. */
    FunctionalModel(const FunctionalModel &other);
    FunctionalModel &operator=(const FunctionalModel &other);

    /**
     * Execute a planned layer on a raw fixed-point input vector.
     * Zero activations are skipped exactly as the LNZD broadcast
     * would skip them.
     */
    FunctionalResult run(const LayerPlan &plan,
                         const std::vector<std::int64_t> &input_raw) const;

    /**
     * Execute a planned layer on a batch of input vectors through the
     * engine's "compiled" ExecutionBackend (pre-decoded format, one
     * column sweep amortized over the batch; see core/kernel/ and
     * engine/backend.hh). Bit-exact with run() on every frame.
     *
     * The compiled backend — pre-decoded layer plus worker pool — is
     * cached across calls, keyed by a content fingerprint of the
     * plan, so steady callers compile and spawn threads once. Layer
     * stacks should use NetworkRunner, which owns per-network
     * backends.
     *
     * @param threads worker threads for PE-parallel execution (1 =
     *                single-threaded, the default)
     * @param kernel  kernel variant for the compiled backend's inner
     *                loop (see core/kernel/variant.hh; Auto = fastest
     *                bit-exact for the configured formats)
     */
    std::vector<std::vector<std::int64_t>>
    runBatch(const LayerPlan &plan,
             const std::vector<std::vector<std::int64_t>> &inputs,
             unsigned threads = 1,
             kernel::KernelVariant kernel =
                 kernel::KernelVariant::Auto) const;

    /** Quantise a float vector into the configured activation format. */
    std::vector<std::int64_t> quantizeInput(const nn::Vector &input) const;

    /** Convert raw outputs back to floats. */
    nn::Vector dequantize(const std::vector<std::int64_t> &raw) const;

  private:
    EieConfig config_;

    /** Batch-path cache (compiled backend + plan fingerprint),
     *  mutex-guarded internally; see functional.cc. */
    struct BatchCache;
    mutable std::unique_ptr<BatchCache> batch_cache_;
};

} // namespace eie::core

#endif // EIE_CORE_FUNCTIONAL_HH
