/**
 * @file
 * Distributed leading non-zero detection (§IV, Figure 4a).
 *
 * Input activations are distributed across PEs (a_i lives on PE
 * i mod N). Each group of lnzd_fanin PEs feeds an LNZD node that
 * selects the next non-zero activation among its children; nodes form
 * a tree (a quadtree in the paper: 16 + 4 + 1 = 21 nodes at 64 PEs)
 * whose root is the CCU. The selected non-zero is broadcast back to
 * every PE.
 *
 * The node selection logic here is structural and unit-tested; the
 * timing model drives it through LnzdTree::scan, which produces the
 * broadcast order (ascending activation index), and charges the tree
 * depth as broadcast pipeline latency. The paper notes the broadcast
 * "is not on the critical path and can be pipelined", which is why a
 * latency + 1/cycle-throughput model is faithful.
 */

#ifndef EIE_CORE_LNZD_HH
#define EIE_CORE_LNZD_HH

#include <cstdint>
#include <span>
#include <vector>

namespace eie::core {

/** One candidate offered to an LNZD node. */
struct LnzdCandidate
{
    bool valid = false;        ///< a non-zero is available
    std::uint32_t index = 0;   ///< global activation index
    std::int64_t value = 0;    ///< raw fixed-point activation value
};

/**
 * Combinational selection of one LNZD node: the valid candidate with
 * the smallest activation index (ascending scan order).
 */
LnzdCandidate lnzdSelect(std::span<const LnzdCandidate> children);

/** The reduction tree over n_leaves PE candidates. */
class LnzdTree
{
  public:
    /**
     * @param n_leaves number of PEs
     * @param fanin    children per node (4 in the paper)
     */
    LnzdTree(unsigned n_leaves, unsigned fanin);

    /** Total internal nodes (21 for 64 leaves at fan-in 4). */
    unsigned nodeCount() const { return node_count_; }

    /** Tree depth in node levels. */
    unsigned depth() const { return depth_; }

    /**
     * Hierarchical selection across per-PE candidates: reduces
     * @p leaves (one candidate per PE) level by level using
     * lnzdSelect and returns the root's pick.
     */
    LnzdCandidate select(std::span<const LnzdCandidate> leaves) const;

    /**
     * Produce the full broadcast schedule for a distributed
     * activation vector: repeatedly offer each PE's next local
     * non-zero and take the root selection, until exhausted. The
     * result is the (index, value) sequence the CCU broadcasts.
     *
     * @param acts raw activation vector (index i lives on PE i % n_pe)
     * @param n_pe number of PEs the vector is distributed over
     */
    std::vector<std::pair<std::uint32_t, std::int64_t>>
    scan(const std::vector<std::int64_t> &acts, unsigned n_pe) const;

  private:
    unsigned n_leaves_;
    unsigned fanin_;
    unsigned node_count_;
    unsigned depth_;
};

} // namespace eie::core

#endif // EIE_CORE_LNZD_HH
