#include "core/functional.hh"

#include <cstring>
#include <mutex>
#include <type_traits>

#include "common/bits.hh"
#include "engine/backend.hh"

namespace eie::core {

/** Cached "compiled" backend for the batch path. The backend is held
 *  by shared_ptr so callers execute outside the cache lock: a cache
 *  replacement under a concurrent runBatch just drops the old
 *  backend's last reference when that call finishes. */
struct FunctionalModel::BatchCache
{
    std::mutex mutex;
    std::uint64_t fingerprint = 0;
    unsigned threads = 0;
    kernel::KernelVariant kernel = kernel::KernelVariant::Auto;
    std::shared_ptr<engine::ExecutionBackend> backend;
};

namespace {

/** FNV-1a over the plan's full content (structure, entries, codebook)
 *  so the cache can never serve a stale kernel — two plans hash equal
 *  only if they describe the same stored image. */
class Fnv1a
{
  public:
    void
    mix(std::uint64_t value)
    {
        // Word-at-a-time FNV variant: one xor/multiply per 64 bits
        // keeps the per-call fingerprint walk cheap relative to the
        // MAC sweep it guards.
        hash_ ^= value;
        hash_ *= 0x100000001b3ull;
    }

    /** Mix a POD array eight bytes at a time (tail zero-padded). */
    template <typename T>
    void
    mixBytes(const std::vector<T> &data)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *bytes =
            reinterpret_cast<const unsigned char *>(data.data());
        const std::size_t total = data.size() * sizeof(T);
        std::size_t at = 0;
        for (; at + 8 <= total; at += 8) {
            std::uint64_t word;
            std::memcpy(&word, bytes + at, 8);
            mix(word);
        }
        std::uint64_t tail = 0;
        if (at < total)
            std::memcpy(&tail, bytes + at, total - at);
        mix(tail);
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t
fingerprintPlan(const LayerPlan &plan)
{
    Fnv1a fnv;
    for (char c : plan.name)
        fnv.mix(static_cast<std::uint64_t>(c));
    fnv.mix(plan.input_size);
    fnv.mix(plan.output_size);
    fnv.mix(static_cast<std::uint64_t>(plan.nonlin));
    fnv.mix(plan.n_pe);
    for (const auto &batch_tiles : plan.tiles) {
        for (const Tile &tile : batch_tiles) {
            fnv.mix(tile.row_begin);
            fnv.mix(tile.row_end);
            fnv.mix(tile.col_begin);
            fnv.mix(tile.col_end);
            for (std::int64_t raw :
                 tile.storage.codebook().rawValues())
                fnv.mix(static_cast<std::uint64_t>(raw));
            for (unsigned k = 0; k < tile.storage.numPe(); ++k) {
                const auto &slice = tile.storage.pe(k);
                fnv.mixBytes(slice.colPtr());
                fnv.mixBytes(slice.entries());
            }
        }
    }
    return fnv.value();
}

} // namespace

std::uint64_t
WorkStats::theoreticalCycles(unsigned n_pe) const
{
    return divCeil(total_entries, n_pe);
}

double
WorkStats::usefulGops() const
{
    return 2.0 * static_cast<double>(total_entries - padding_entries) /
        1e9;
}

FunctionalModel::FunctionalModel(const EieConfig &config)
    : config_(config), batch_cache_(std::make_unique<BatchCache>())
{
    config_.validate();
}

FunctionalModel::~FunctionalModel() = default;

FunctionalModel::FunctionalModel(const FunctionalModel &other)
    : config_(other.config_),
      batch_cache_(std::make_unique<BatchCache>())
{}

FunctionalModel &
FunctionalModel::operator=(const FunctionalModel &other)
{
    if (this != &other) {
        config_ = other.config_;
        batch_cache_ = std::make_unique<BatchCache>();
    }
    return *this;
}

std::vector<std::int64_t>
FunctionalModel::quantizeInput(const nn::Vector &input) const
{
    std::vector<std::int64_t> raw(input.size());
    for (std::size_t i = 0; i < input.size(); ++i)
        raw[i] = quantize(input[i], config_.act_format);
    return raw;
}

nn::Vector
FunctionalModel::dequantize(const std::vector<std::int64_t> &raw) const
{
    nn::Vector out(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
        out[i] = static_cast<float>(toDouble(raw[i], config_.act_format));
    return out;
}

std::vector<std::vector<std::int64_t>>
FunctionalModel::runBatch(
    const LayerPlan &plan,
    const std::vector<std::vector<std::int64_t>> &inputs,
    unsigned threads, kernel::KernelVariant kernel) const
{
    const std::uint64_t fingerprint = fingerprintPlan(plan);
    std::shared_ptr<engine::ExecutionBackend> backend;
    {
        std::lock_guard<std::mutex> lock(batch_cache_->mutex);
        if (!batch_cache_->backend ||
            batch_cache_->fingerprint != fingerprint ||
            batch_cache_->threads != threads ||
            batch_cache_->kernel != kernel) {
            batch_cache_->backend = engine::makeBackend(
                "compiled", config_, {&plan}, threads, kernel);
            batch_cache_->fingerprint = fingerprint;
            batch_cache_->threads = threads;
            batch_cache_->kernel = kernel;
        }
        backend = batch_cache_->backend;
    }
    // Execute outside the cache lock: concurrent callers on the same
    // model only serialize if they share a worker pool.
    return backend->runBatch(inputs).outputs;
}

FunctionalResult
FunctionalModel::run(const LayerPlan &plan,
                     const std::vector<std::int64_t> &input_raw) const
{
    panic_if(input_raw.size() != plan.input_size,
             "input length %zu != planned %zu", input_raw.size(),
             plan.input_size);
    panic_if(plan.n_pe != config_.n_pe,
             "plan compiled for %u PEs, machine has %u", plan.n_pe,
             config_.n_pe);

    const unsigned n_pe = config_.n_pe;
    FunctionalResult result;
    result.output_raw.assign(plan.output_size, 0);
    result.work.pe_entries.assign(n_pe, 0);

    for (const auto &batch_tiles : plan.tiles) {
        panic_if(batch_tiles.empty(), "batch with no tiles");
        const std::size_t row_begin = batch_tiles.front().row_begin;
        const std::size_t row_end = batch_tiles.front().row_end;

        // Destination accumulators for this batch, zero-initialised
        // (§III-C: "The accumulators are initialized to zero before
        // each layer computation").
        std::vector<std::int64_t> acc(row_end - row_begin, 0);

        for (const Tile &tile : batch_tiles) {
            const auto &storage = tile.storage;
            // Same decode helper as the simulator and the compiled
            // kernel: the codebook's materialized raw-value LUT.
            const auto &raw_lut = storage.codebook().rawValues();
            for (std::size_t jc = 0; jc < storage.cols(); ++jc) {
                const std::int64_t a = input_raw[tile.col_begin + jc];
                if (a == 0)
                    continue; // LNZD skips zero activations
                ++result.work.broadcasts;

                for (unsigned k = 0; k < n_pe; ++k) {
                    const auto &slice = storage.pe(k);
                    std::int64_t pos = -1;
                    const auto &entries = slice.entries();
                    for (std::uint32_t e = slice.colPtr()[jc];
                         e < slice.colPtr()[jc + 1]; ++e) {
                        const auto &entry = entries[e];
                        pos += entry.zero_count + 1;
                        const std::int64_t w =
                            raw_lut[entry.weight_index];
                        const std::size_t local_row =
                            static_cast<std::size_t>(pos) * n_pe + k;
                        acc[local_row] = macFixed(
                            acc[local_row], w, a, config_.weight_format,
                            config_.act_format);

                        ++result.work.total_entries;
                        ++result.work.pe_entries[k];
                        if (entry.weight_index == 0)
                            ++result.work.padding_entries;
                    }
                }
            }
        }

        // Drain: apply the non-linearity and commit the batch rows.
        for (std::size_t r = 0; r < acc.size(); ++r) {
            std::int64_t value = acc[r];
            switch (plan.nonlin) {
              case nn::Nonlinearity::ReLU:
                value = reluRaw(value);
                break;
              case nn::Nonlinearity::None:
                break;
              default:
                fatal("the accelerator only applies ReLU or None; "
                      "other nonlinearities run on the host");
            }
            result.output_raw[row_begin + r] = value;
        }
    }
    return result;
}

} // namespace eie::core
