#include "core/functional.hh"

#include "common/bits.hh"
#include "core/kernel/compiled_layer.hh"
#include "core/kernel/executor.hh"

namespace eie::core {

std::uint64_t
WorkStats::theoreticalCycles(unsigned n_pe) const
{
    return divCeil(total_entries, n_pe);
}

double
WorkStats::usefulGops() const
{
    return 2.0 * static_cast<double>(total_entries - padding_entries) /
        1e9;
}

FunctionalModel::FunctionalModel(const EieConfig &config) : config_(config)
{
    config_.validate();
}

std::vector<std::int64_t>
FunctionalModel::quantizeInput(const nn::Vector &input) const
{
    std::vector<std::int64_t> raw(input.size());
    for (std::size_t i = 0; i < input.size(); ++i)
        raw[i] = quantize(input[i], config_.act_format);
    return raw;
}

nn::Vector
FunctionalModel::dequantize(const std::vector<std::int64_t> &raw) const
{
    nn::Vector out(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
        out[i] = static_cast<float>(toDouble(raw[i], config_.act_format));
    return out;
}

std::vector<std::vector<std::int64_t>>
FunctionalModel::runBatch(
    const LayerPlan &plan,
    const std::vector<std::vector<std::int64_t>> &inputs,
    unsigned threads) const
{
    const auto compiled = kernel::CompiledLayer::compile(plan, config_);
    if (threads > 1) {
        kernel::WorkerPool pool(threads);
        return kernel::runBatch(compiled, inputs, &pool);
    }
    return kernel::runBatch(compiled, inputs);
}

FunctionalResult
FunctionalModel::run(const LayerPlan &plan,
                     const std::vector<std::int64_t> &input_raw) const
{
    panic_if(input_raw.size() != plan.input_size,
             "input length %zu != planned %zu", input_raw.size(),
             plan.input_size);
    panic_if(plan.n_pe != config_.n_pe,
             "plan compiled for %u PEs, machine has %u", plan.n_pe,
             config_.n_pe);

    const unsigned n_pe = config_.n_pe;
    FunctionalResult result;
    result.output_raw.assign(plan.output_size, 0);
    result.work.pe_entries.assign(n_pe, 0);

    for (const auto &batch_tiles : plan.tiles) {
        panic_if(batch_tiles.empty(), "batch with no tiles");
        const std::size_t row_begin = batch_tiles.front().row_begin;
        const std::size_t row_end = batch_tiles.front().row_end;

        // Destination accumulators for this batch, zero-initialised
        // (§III-C: "The accumulators are initialized to zero before
        // each layer computation").
        std::vector<std::int64_t> acc(row_end - row_begin, 0);

        for (const Tile &tile : batch_tiles) {
            const auto &storage = tile.storage;
            // Same decode helper as the simulator and the compiled
            // kernel: the codebook's materialized raw-value LUT.
            const auto &raw_lut = storage.codebook().rawValues();
            for (std::size_t jc = 0; jc < storage.cols(); ++jc) {
                const std::int64_t a = input_raw[tile.col_begin + jc];
                if (a == 0)
                    continue; // LNZD skips zero activations
                ++result.work.broadcasts;

                for (unsigned k = 0; k < n_pe; ++k) {
                    const auto &slice = storage.pe(k);
                    std::int64_t pos = -1;
                    const auto &entries = slice.entries();
                    for (std::uint32_t e = slice.colPtr()[jc];
                         e < slice.colPtr()[jc + 1]; ++e) {
                        const auto &entry = entries[e];
                        pos += entry.zero_count + 1;
                        const std::int64_t w =
                            raw_lut[entry.weight_index];
                        const std::size_t local_row =
                            static_cast<std::size_t>(pos) * n_pe + k;
                        acc[local_row] = macFixed(
                            acc[local_row], w, a, config_.weight_format,
                            config_.act_format);

                        ++result.work.total_entries;
                        ++result.work.pe_entries[k];
                        if (entry.weight_index == 0)
                            ++result.work.padding_entries;
                    }
                }
            }
        }

        // Drain: apply the non-linearity and commit the batch rows.
        for (std::size_t r = 0; r < acc.size(); ++r) {
            std::int64_t value = acc[r];
            switch (plan.nonlin) {
              case nn::Nonlinearity::ReLU:
                value = reluRaw(value);
                break;
              case nn::Nonlinearity::None:
                break;
              default:
                fatal("the accelerator only applies ReLU or None; "
                      "other nonlinearities run on the host");
            }
            result.output_raw[row_begin + r] = value;
        }
    }
    return result;
}

} // namespace eie::core
