/**
 * @file
 * Central Control Unit (§IV): the root of the LNZD tree. In computing
 * mode it "repeatedly collects a non-zero value from the LNZD quadtree
 * and broadcasts this value to all PEs ... until the input length is
 * exceeded", and "the broadcast is disabled if any PE has a full
 * queue".
 *
 * Timing model: the broadcast schedule for a pass is produced by
 * LnzdTree::scan (ascending-index non-zeros); emission runs at one
 * non-zero per cycle after an initial pipeline latency of tree depth
 * plus one, and is gated on the registered queue-full state of the
 * PEs (conservative flow control, checked against FIFO capacity by
 * the queue model itself).
 */

#ifndef EIE_CORE_CCU_HH
#define EIE_CORE_CCU_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.hh"
#include "core/lnzd.hh"
#include "sim/module.hh"
#include "sim/stats.hh"

namespace eie::core {

/** The broadcast wire driven by the CCU, read by every PE. */
struct Broadcast
{
    bool valid = false;
    std::uint32_t col = 0;     ///< activation index j
    std::int64_t value = 0;    ///< raw fixed-point a_j
};

/** Root LNZD node / broadcast sequencer. */
class Ccu : public sim::Module
{
  public:
    Ccu(const EieConfig &config, sim::StatGroup &parent);

    /**
     * Program a pass: the (index, value) non-zero schedule to
     * broadcast, plus the LNZD pipeline latency in cycles before the
     * first emission.
     */
    void configurePass(
        std::vector<std::pair<std::uint32_t, std::int64_t>> schedule,
        unsigned latency);

    /**
     * Wire up flow control: @p any_full must return true when any
     * PE's activation queue is full (registered state).
     */
    void attachQueueFull(std::function<bool()> any_full);

    /** The broadcast driven this cycle (valid after propagate()). */
    const Broadcast &broadcastOut() const { return out_; }

    /** True once the pass schedule is exhausted. */
    bool done() const { return cursor_ >= schedule_.size(); }

    void propagate() override;
    void update() override;

  private:
    std::vector<std::pair<std::uint32_t, std::int64_t>> schedule_;
    std::size_t cursor_ = 0;
    unsigned latency_remaining_ = 0;
    std::function<bool()> any_full_;
    Broadcast out_;
    bool emitted_this_cycle_ = false;

    sim::Counter &broadcasts_;
    sim::Counter &gated_cycles_;
};

} // namespace eie::core

#endif // EIE_CORE_CCU_HH
