#include "core/run_stats.hh"

#include <numeric>

namespace eie::core {

double
RunStats::loadBalance() const
{
    if (cycles == 0 || n_pe == 0)
        return 1.0;
    const std::uint64_t busy =
        std::accumulate(pe_busy.begin(), pe_busy.end(), std::uint64_t{0});
    return static_cast<double>(busy) /
        (static_cast<double>(n_pe) * static_cast<double>(cycles));
}

double
RunStats::timeUs() const
{
    return clock_ghz <= 0.0 ? 0.0
        : static_cast<double>(cycles) / (clock_ghz * 1e3);
}

double
RunStats::theoreticalTimeUs() const
{
    return clock_ghz <= 0.0 ? 0.0
        : static_cast<double>(theoretical_cycles) / (clock_ghz * 1e3);
}

double
RunStats::actualOverTheoretical() const
{
    return theoretical_cycles == 0 ? 0.0
        : static_cast<double>(cycles) /
          static_cast<double>(theoretical_cycles);
}

void
RunStats::print(std::ostream &os) const
{
    os << "cycles=" << cycles << " (compute=" << compute_cycles
       << ", drain=" << drain_cycles << ")"
       << " time_us=" << timeUs()
       << " broadcasts=" << broadcasts
       << " entries=" << total_entries
       << " (padding=" << padding_entries << ")"
       << " load_balance=" << loadBalance()
       << " actual/theoretical=" << actualOverTheoretical() << "\n";
}

} // namespace eie::core
