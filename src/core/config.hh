/**
 * @file
 * EIE machine configuration.
 *
 * Defaults reproduce the paper's 64-PE, 800 MHz design point:
 * per-PE 128KB Spmat SRAM (131072 8-bit entries), 32KB pointer SRAM
 * (16384 16-bit pointers in two banks), 2KB activation SRAM (1024
 * 16-bit activations), 64-entry source/destination activation register
 * files, 8-deep activation FIFO queue, 64-bit Spmat SRAM interface and
 * a 4-ary LNZD tree (§IV, §VI).
 */

#ifndef EIE_CORE_CONFIG_HH
#define EIE_CORE_CONFIG_HH

#include "common/bits.hh"
#include "common/fixed_point.hh"
#include "common/logging.hh"

namespace eie::core {

/** Static configuration of an EIE accelerator instance. */
struct EieConfig
{
    /** Number of processing elements. */
    unsigned n_pe = 64;

    /** Activation FIFO queue depth (Figure 8 sweeps 1..256). */
    unsigned fifo_depth = 8;

    /** Destination-activation register file entries per PE — bounds
     *  the output rows a PE can accumulate per batch. */
    unsigned regfile_entries = 64;

    /** Spmat SRAM capacity in 8-bit (v,z) entries per PE (128KB). */
    unsigned spmat_capacity_entries = 131072;

    /** Pointer SRAM capacity in 16-bit pointers per PE (32KB). */
    unsigned ptr_capacity = 16384;

    /** Activation SRAM capacity in 16-bit activations per PE (2KB). */
    unsigned act_sram_entries = 1024;

    /** Spmat SRAM interface width in bits (Figure 9 sweeps 32..512). */
    unsigned spmat_width_bits = 64;

    /** Fan-in of each LNZD tree node (quadtree in the paper). */
    unsigned lnzd_fanin = 4;

    /** Accumulator-bypass path in the arithmetic pipeline (§VI).
     *  Disabling it (ablation) stalls same-accumulator issues until
     *  the in-flight update retires. */
    bool enable_bypass = true;

    /** Fail loudly when a layer exceeds SRAM capacities. Design-space
     *  sweeps (e.g. 1-PE scalability points) disable this and only
     *  warn, since the paper's simulator did the same exploration. */
    bool enforce_capacity = true;

    /** Clock frequency in GHz (800 MHz in the paper's 45nm design). */
    double clock_ghz = 0.8;

    /** Fixed-point format of activations and accumulators. */
    FixedFormat act_format = fixed16;

    /** Fixed-point format of decoded (codebook) weights. */
    FixedFormat weight_format = fixed16;

    /** (v,z) entries delivered per Spmat row fetch (8 at 64 bits). */
    unsigned
    entriesPerSpmatRow() const
    {
        return spmat_width_bits / 8;
    }

    /** LNZD broadcast pipeline latency: tree depth plus one. */
    unsigned
    lnzdLatency() const
    {
        unsigned depth = 0;
        unsigned span = 1;
        while (span < n_pe) {
            span *= lnzd_fanin;
            ++depth;
        }
        return depth + 1;
    }

    /** Number of LNZD nodes in the reduction tree
     *  (16 + 4 + 1 = 21 for 64 PEs, §VI). */
    unsigned
    lnzdNodeCount() const
    {
        unsigned nodes = 0;
        unsigned level = n_pe;
        while (level > 1) {
            level = static_cast<unsigned>(
                divCeil(level, lnzd_fanin));
            nodes += level;
        }
        return nodes;
    }

    /** Peak multiply-accumulate throughput in GOP/s (2 ops per MAC,
     *  one MAC per PE per cycle): 102.4 GOP/s at the default point. */
    double
    peakGops() const
    {
        return 2.0 * n_pe * clock_ghz;
    }

    /** Sanity-check parameter combinations. */
    void
    validate() const
    {
        fatal_if(n_pe == 0, "need at least one PE");
        fatal_if(fifo_depth == 0, "FIFO depth must be >= 1");
        fatal_if(regfile_entries == 0, "register file must be >= 1");
        fatal_if(spmat_width_bits % 8 != 0 || spmat_width_bits < 8,
                 "Spmat width %u must be a positive multiple of 8 bits",
                 spmat_width_bits);
        fatal_if(lnzd_fanin < 2, "LNZD fan-in must be >= 2");
        fatal_if(clock_ghz <= 0.0, "clock must be positive");
    }
};

} // namespace eie::core

#endif // EIE_CORE_CONFIG_HH
