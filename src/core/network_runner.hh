/**
 * @file
 * Multi-layer feed-forward execution on one EIE instance.
 *
 * §IV "Activation Read/Write": the source and destination activation
 * register files exchange roles between layers, "thus no additional
 * data transfer is needed to support multi-layer feed-forward
 * computation". NetworkRunner captures that usage: compile a stack of
 * compressed layers once, then run inputs through the whole stack
 * with raw fixed-point activations flowing layer to layer.
 */

#ifndef EIE_CORE_NETWORK_RUNNER_HH
#define EIE_CORE_NETWORK_RUNNER_HH

#include <string>
#include <vector>

#include "core/accelerator.hh"
#include "core/plan.hh"
#include "nn/layer.hh"

namespace eie::core {

/** Per-layer and end-to-end results of one network inference. */
struct NetworkResult
{
    std::vector<std::int64_t> output_raw;
    std::vector<RunStats> per_layer;

    /** Total cycles across all layers. */
    std::uint64_t totalCycles() const;

    /** End-to-end latency in microseconds. */
    double totalTimeUs() const;
};

/** A compiled stack of compressed FC layers. */
class NetworkRunner
{
  public:
    explicit NetworkRunner(const EieConfig &config);

    /**
     * Append a layer (compiled immediately). The layer object must
     * outlive the runner. Layer input sizes must chain: the first
     * layer defines the network input size, each further layer's
     * input must equal the previous layer's output.
     */
    void addLayer(const compress::CompressedLayer &layer,
                  nn::Nonlinearity nonlin);

    /** Number of layers added. */
    std::size_t layerCount() const { return plans_.size(); }

    std::size_t inputSize() const;
    std::size_t outputSize() const;

    /** Run one input through the whole stack (raw fixed point). */
    NetworkResult run(const std::vector<std::int64_t> &input_raw) const;

    /** Float convenience wrapper. */
    nn::Vector runFloat(const nn::Vector &input,
                        NetworkResult *result_out = nullptr) const;

  private:
    EieConfig config_;
    Accelerator accelerator_;
    FunctionalModel functional_;
    std::vector<LayerPlan> plans_;
};

} // namespace eie::core

#endif // EIE_CORE_NETWORK_RUNNER_HH
