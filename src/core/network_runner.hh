/**
 * @file
 * Multi-layer feed-forward execution on one EIE instance.
 *
 * §IV "Activation Read/Write": the source and destination activation
 * register files exchange roles between layers, "thus no additional
 * data transfer is needed to support multi-layer feed-forward
 * computation". NetworkRunner captures that usage: compile a stack of
 * compressed layers once, then run inputs through the whole stack
 * with raw fixed-point activations flowing layer to layer.
 */

#ifndef EIE_CORE_NETWORK_RUNNER_HH
#define EIE_CORE_NETWORK_RUNNER_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/accelerator.hh"
#include "core/kernel/compiled_layer.hh"
#include "core/kernel/executor.hh"
#include "core/plan.hh"
#include "nn/layer.hh"

namespace eie::core {

/** Per-layer and end-to-end results of one network inference. */
struct NetworkResult
{
    std::vector<std::int64_t> output_raw;
    std::vector<RunStats> per_layer;

    /** Total cycles across all layers. */
    std::uint64_t totalCycles() const;

    /** End-to-end latency in microseconds. */
    double totalTimeUs() const;
};

/** A compiled stack of compressed FC layers. */
class NetworkRunner
{
  public:
    explicit NetworkRunner(const EieConfig &config);

    /**
     * Append a layer (compiled immediately). The layer object must
     * outlive the runner. Layer input sizes must chain: the first
     * layer defines the network input size, each further layer's
     * input must equal the previous layer's output.
     */
    void addLayer(const compress::CompressedLayer &layer,
                  nn::Nonlinearity nonlin);

    /** Number of layers added. */
    std::size_t layerCount() const { return plans_.size(); }

    /** The compiled plan of layer @p i (for oracles and analyses). */
    const LayerPlan &
    plan(std::size_t i) const
    {
        fatal_if(i >= plans_.size(), "layer %zu out of %zu", i,
                 plans_.size());
        return plans_[i];
    }

    std::size_t inputSize() const;
    std::size_t outputSize() const;

    /** Run one input through the whole stack (raw fixed point). */
    NetworkResult run(const std::vector<std::int64_t> &input_raw) const;

    /** Float convenience wrapper. */
    nn::Vector runFloat(const nn::Vector &input,
                        NetworkResult *result_out = nullptr) const;

    /**
     * Throughput path: run a batch of inputs through the whole stack
     * on the compiled kernels (plans are lowered into the pre-decoded
     * format on the first call, then cached). Activations ping-pong
     * between layers exactly as in run(); outputs are bit-exact with
     * running each frame through run() individually.
     *
     * Thread-safe, but concurrent callers on the same runner
     * serialize (they share one worker pool); for truly concurrent
     * serving use one NetworkRunner per request thread or drive
     * kernel::runBatch with caller-owned pools.
     *
     * @param threads PE-parallel worker threads (1 = single-threaded).
     *                The pool persists across calls with the same
     *                thread count.
     */
    kernel::Batch runBatch(const kernel::Batch &inputs,
                           unsigned threads = 1) const;

    /** Float convenience wrapper around runBatch(). */
    std::vector<nn::Vector>
    runFloatBatch(const std::vector<nn::Vector> &inputs,
                  unsigned threads = 1) const;

  private:
    EieConfig config_;
    Accelerator accelerator_;
    FunctionalModel functional_;
    std::vector<LayerPlan> plans_;

    /** Batched-path state, built lazily on first runBatch() and
     *  guarded by batch_mutex_ (run()/runFloat() never touch it). */
    mutable std::mutex batch_mutex_;
    mutable std::vector<kernel::CompiledLayer> kernels_;
    mutable std::unique_ptr<kernel::WorkerPool> pool_;
};

} // namespace eie::core

#endif // EIE_CORE_NETWORK_RUNNER_HH
