/**
 * @file
 * Multi-layer feed-forward execution on one EIE instance.
 *
 * §IV "Activation Read/Write": the source and destination activation
 * register files exchange roles between layers, "thus no additional
 * data transfer is needed to support multi-layer feed-forward
 * computation". NetworkRunner captures that usage: compile a stack of
 * compressed layers once, then run inputs through the whole stack
 * with raw fixed-point activations flowing layer to layer.
 *
 * Execution goes through the unified engine::ExecutionBackend API:
 * the runner owns one lazily-built backend per (name, threads) pair —
 * run() drives the cycle-accurate "sim" backend, runBatch() the
 * "compiled" kernel backend — and backend() hands any of the three
 * paths to callers that want to drive them directly (or to wrap in an
 * engine::InferenceServer).
 */

#ifndef EIE_CORE_NETWORK_RUNNER_HH
#define EIE_CORE_NETWORK_RUNNER_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/functional.hh"
#include "core/kernel/executor.hh"
#include "core/plan.hh"
#include "core/run_stats.hh"
#include "nn/layer.hh"

namespace eie::engine {
class ExecutionBackend;
} // namespace eie::engine

namespace eie::core {

/** Per-layer and end-to-end results of one network inference. */
struct NetworkResult
{
    std::vector<std::int64_t> output_raw;
    std::vector<RunStats> per_layer;

    /** Total cycles across all layers. */
    std::uint64_t totalCycles() const;

    /** End-to-end latency in microseconds. */
    double totalTimeUs() const;
};

/** A compiled stack of compressed FC layers. */
class NetworkRunner
{
  public:
    explicit NetworkRunner(const EieConfig &config);
    ~NetworkRunner();

    NetworkRunner(const NetworkRunner &) = delete;
    NetworkRunner &operator=(const NetworkRunner &) = delete;

    /**
     * Append a layer (compiled immediately). The layer object must
     * outlive the runner. Layer input sizes must chain: the first
     * layer defines the network input size, each further layer's
     * input must equal the previous layer's output. Invalidates every
     * backend previously returned by backend().
     */
    void addLayer(const compress::CompressedLayer &layer,
                  nn::Nonlinearity nonlin);

    /** Number of layers added. */
    std::size_t layerCount() const { return plans_.size(); }

    /** The compiled plan of layer @p i (for oracles and analyses). */
    const LayerPlan &
    plan(std::size_t i) const
    {
        fatal_if(i >= plans_.size(), "layer %zu out of %zu", i,
                 plans_.size());
        return plans_[i];
    }

    /** The compiled plans of the whole stack, execution order. */
    const std::vector<LayerPlan> &plans() const { return plans_; }

    /** The machine configuration the stack was compiled for. */
    const EieConfig &config() const { return config_; }

    std::size_t inputSize() const;
    std::size_t outputSize() const;

    /**
     * The execution backend @p name ("scalar", "compiled", "sim")
     * over this network, built on first use and cached per
     * (name, threads, kernel, residency). The reference stays valid
     * until the next addLayer() or the runner's destruction.
     * Thread-safe.
     *
     * @param threads   PE-parallel worker threads (compiled backend
     *                  only; the other backends ignore it)
     * @param kernel    compiled backend's kernel variant (see
     *                  core/kernel/variant.hh; the other backends
     *                  ignore it)
     * @param residency compiled backend's resident stream form (see
     *                  core/kernel/compiled_layer.hh; the other
     *                  backends ignore it)
     */
    engine::ExecutionBackend &
    backend(const std::string &name, unsigned threads = 1,
            kernel::KernelVariant kernel = kernel::KernelVariant::Auto,
            kernel::Residency residency =
                kernel::Residency::Decoded) const;

    /** Run one input through the whole stack (raw fixed point) on the
     *  cycle-accurate backend, returning per-layer timing. */
    NetworkResult run(const std::vector<std::int64_t> &input_raw) const;

    /** Float convenience wrapper. */
    nn::Vector runFloat(const nn::Vector &input,
                        NetworkResult *result_out = nullptr) const;

    /**
     * Throughput path: run a batch of inputs through the whole stack
     * on the compiled backend (pre-decoded kernels, cached across
     * calls). Activations ping-pong between layers exactly as in
     * run(); outputs are bit-exact with running each frame through
     * run() individually.
     *
     * Thread-safe, but concurrent callers on the same thread count
     * serialize (they share one worker pool). For concurrent serving
     * use engine::InferenceServer, which owns the batching.
     *
     * @param threads PE-parallel worker threads (1 = single-threaded).
     *                The backend (pool included) persists per thread
     *                count.
     * @param kernel  kernel variant (Auto = fastest bit-exact for the
     *                layer formats and call shape)
     */
    kernel::Batch runBatch(const kernel::Batch &inputs,
                           unsigned threads = 1,
                           kernel::KernelVariant kernel =
                               kernel::KernelVariant::Auto) const;

    /** Float convenience wrapper around runBatch(). */
    std::vector<nn::Vector>
    runFloatBatch(const std::vector<nn::Vector> &inputs,
                  unsigned threads = 1) const;

  private:
    EieConfig config_;
    FunctionalModel functional_;
    std::vector<LayerPlan> plans_;

    /** Backend cache keyed by "name/threads/kernel/residency", built
     *  lazily and invalidated by addLayer(); guarded by
     *  backend_mutex_. */
    mutable std::mutex backend_mutex_;
    mutable std::map<std::string,
                     std::unique_ptr<engine::ExecutionBackend>>
        backends_;
};

} // namespace eie::core

#endif // EIE_CORE_NETWORK_RUNNER_HH
