#include "core/ccu.hh"

#include "common/logging.hh"

namespace eie::core {

Ccu::Ccu(const EieConfig &config, sim::StatGroup &parent)
    : sim::Module("ccu"),
      broadcasts_(parent.counter("broadcasts",
                                 "non-zero activations broadcast")),
      gated_cycles_(parent.counter("gated_cycles",
                                   "cycles broadcast was gated by a "
                                   "full PE queue"))
{
    (void)config;
}

void
Ccu::configurePass(
    std::vector<std::pair<std::uint32_t, std::int64_t>> schedule,
    unsigned latency)
{
    schedule_ = std::move(schedule);
    cursor_ = 0;
    latency_remaining_ = latency;
    out_ = Broadcast{};
    emitted_this_cycle_ = false;
}

void
Ccu::attachQueueFull(std::function<bool()> any_full)
{
    any_full_ = std::move(any_full);
}

void
Ccu::propagate()
{
    out_ = Broadcast{};
    emitted_this_cycle_ = false;

    if (latency_remaining_ > 0 || cursor_ >= schedule_.size())
        return;

    panic_if(!any_full_, "CCU flow control not attached");
    if (any_full_()) {
        ++gated_cycles_;
        return;
    }

    out_.valid = true;
    out_.col = schedule_[cursor_].first;
    out_.value = schedule_[cursor_].second;
    emitted_this_cycle_ = true;
}

void
Ccu::update()
{
    if (latency_remaining_ > 0) {
        --latency_remaining_;
        return;
    }
    if (emitted_this_cycle_) {
        ++cursor_;
        ++broadcasts_;
    }
}

} // namespace eie::core
