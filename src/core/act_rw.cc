#include "core/act_rw.hh"

#include "common/bits.hh"

namespace eie::core {

ActRwUnit::ActRwUnit(const EieConfig &config, sim::StatGroup &stats)
    : sram_("act",
            std::max<std::size_t>(1, divCeil(config.act_sram_entries,
                                             acts_per_word_)),
            stats),
      scan_reads_(stats.counter("act_scan_reads",
                                "64-bit act SRAM reads by the LNZD "
                                "scan"))
{}

void
ActRwUnit::loadSourceShare(std::size_t share_entries)
{
    source_entries_ = share_entries;
    dest_base_words_ = divCeil(share_entries, acts_per_word_);
    if (dest_base_words_ >= sram_.words()) {
        warn("source activation share (%zu) fills the act SRAM; "
             "destination drain will reuse low words", share_entries);
        dest_base_words_ = 0;
    }
    accountScanPass();
}

void
ActRwUnit::accountScanPass()
{
    scan_reads_ += divCeil(source_entries_, acts_per_word_);
}

void
ActRwUnit::startDrain(const std::vector<std::int64_t> &values)
{
    panic_if(draining(), "startDrain while a drain is in progress");
    drain_values_ = values;
    drain_pos_ = 0;
}

void
ActRwUnit::drainCycle()
{
    panic_if(!draining(), "drainCycle with nothing to drain");
    // Pack four 16-bit activations into one 64-bit write.
    std::uint64_t word = 0;
    const std::size_t base = drain_pos_;
    for (unsigned lane = 0;
         lane < acts_per_word_ && drain_pos_ < drain_values_.size();
         ++lane, ++drain_pos_) {
        const auto raw16 = static_cast<std::uint64_t>(
            drain_values_[drain_pos_] & 0xffff);
        word |= raw16 << (16 * lane);
    }
    const std::size_t addr =
        dest_base_words_ + base / acts_per_word_;
    sram_.write(addr < sram_.words() ? addr : addr % sram_.words(),
                word);
}

} // namespace eie::core
