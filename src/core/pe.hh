/**
 * @file
 * One EIE Processing Element (§IV, Figure 4b).
 *
 * Per-cycle behaviour (all sequential work happens in update(); the
 * only combinational input is the CCU broadcast wire sampled in
 * propagate()):
 *
 *  1. Accept the broadcast (a_j, j) into the activation queue.
 *  2. Issue one (v, x) entry of the active column into the 4-stage
 *     arithmetic pipeline (codebook decode + address accumulation,
 *     destination read + multiply, shift-add, destination write).
 *  3. Capture pointer-read data into the column descriptor buffer.
 *  4. When the active column is exhausted and a descriptor is ready,
 *     switch to the new column.
 *  5. Pop the queue head and issue the banked pointer reads for the
 *     next column (overlapped with the current column's tail).
 *  6. Run the Spmat row-buffer prefetch policy.
 *
 * The one-entry descriptor buffer plus cross-column row prefetch keep
 * the arithmetic unit fed at one entry per cycle in the steady state,
 * so remaining bubbles are starvation — the quantity Figures 8/13
 * measure.
 */

#ifndef EIE_CORE_PE_HH
#define EIE_CORE_PE_HH

#include <cstdint>
#include <vector>

#include "compress/interleaved.hh"
#include "core/act_rw.hh"
#include "core/arith.hh"
#include "core/ccu.hh"
#include "core/config.hh"
#include "core/ptr_read.hh"
#include "core/spmat_read.hh"
#include "sim/fifo.hh"
#include "sim/module.hh"
#include "sim/stats.hh"

namespace eie::core {

/** A broadcast activation waiting in a PE's queue. */
struct QueuedAct
{
    std::uint32_t col = 0;
    std::int64_t value = 0;
};

/** One processing element. */
class Pe : public sim::Module
{
  public:
    /**
     * @param index  PE number (owns rows i with i % n_pe == index)
     * @param config machine configuration
     * @param ccu    broadcast source
     * @param parent statistics tree root
     */
    Pe(unsigned index, const EieConfig &config, const Ccu &ccu,
       sim::StatGroup &parent);

    /**
     * Load one tile's pre-decoded slice (I/O mode). This is the hot
     * path: the slice's SimEntry stream (compiled once per layer with
     * CompiledLayer::CompileOptions::sim_stream) is borrowed zero-copy and
     * must outlive the pass.
     *
     * @param slice        this PE's compiled share (sim stream built)
     * @param batch_start  true on the first pass of a row batch:
     *                     resizes and zeroes the accumulators
     */
    void loadTile(const kernel::CompiledSlice &slice, bool batch_start);

    /**
     * Load one tile's slice from the raw interleaved-CSC image
     * (I/O mode). Decodes the slice into an owned SimEntry stream on
     * the spot — identical timing, but the decode cost recurs per
     * load; steady-state callers should compile once and use the
     * CompiledSlice overload.
     *
     * @param slice        this PE's interleaved-CSC share
     * @param codebook     shared-weight table
     * @param batch_start  true on the first pass of a row batch:
     *                     resizes and zeroes the accumulators
     */
    void loadTile(const compress::PeSlice &slice,
                  const compress::Codebook &codebook, bool batch_start);

    /** Registered queue-full state (CCU flow control). */
    bool queueFull() const { return queue_.full(); }

    /** All work for the current pass finished. */
    bool idle() const;

    /** Apply ReLU to the accumulators (end of the final pass). */
    void applyRelu() { arith_.applyRelu(); }

    /** Begin draining the batch accumulators to the act SRAM. */
    void startBatchDrain();

    /** True while drain writes remain. */
    bool draining() const { return act_rw_.draining(); }

    /** Values committed by the last drain (local row order). */
    const std::vector<std::int64_t> &
    drainedValues() const
    {
        return act_rw_.drained();
    }

    void propagate() override;
    void update() override;

    /** @name Statistics accessors for RunStats assembly. */
    ///@{
    std::uint64_t busyCycles() const { return busy_.value(); }
    std::uint64_t starvedCycles() const { return starved_.value(); }
    std::uint64_t hazardStalls() const { return hazard_stalls_.value(); }
    std::uint64_t fetchStalls() const { return fetch_stalls_.value(); }
    std::uint64_t macs() const { return macs_issued_; }
    std::uint64_t spmatRowFetches() const { return spmat_.rowFetches(); }
    std::uint64_t ptrReads() const { return ptr_reads_seen_; }
    std::uint64_t actReads() const;
    std::uint64_t actWrites() const { return act_rw_.writes(); }
    ///@}

  private:
    enum class DescState { Empty, Waiting, Ready };
    enum class Mode { Compute, Drain };

    void computeCycle();
    void resetFrontEnd(std::size_t pass_cols, std::uint32_t local_rows,
                       bool batch_start);

    unsigned index_;
    unsigned n_pe_;

    sim::StatGroup stats_;
    sim::Fifo<QueuedAct> queue_;
    PointerReadUnit ptr_;
    SpmatReadUnit spmat_;
    ArithmeticUnit arith_;
    ActRwUnit act_rw_;

    const Ccu &ccu_;

    Broadcast stashed_bcast_;

    // Active-column walk state. (The hardware's address-accumulation
    // register is resolved at compile time: SimEntry rows arrive
    // absolute, so only the driving activation remains.)
    std::int64_t act_value_ = 0;    ///< activation driving this column

    // One-entry column descriptor buffer.
    DescState desc_state_ = DescState::Empty;
    std::uint32_t desc_begin_ = 0;
    std::uint32_t desc_end_ = 0;
    std::int64_t desc_value_ = 0;

    Mode mode_ = Mode::Compute;

    std::uint64_t macs_issued_ = 0;
    std::uint64_t ptr_reads_seen_ = 0;

    sim::Counter &busy_;
    sim::Counter &starved_;
    sim::Counter &hazard_stalls_;
    sim::Counter &fetch_stalls_;
    sim::Counter &queue_pushes_;
};

} // namespace eie::core

#endif // EIE_CORE_PE_HH
