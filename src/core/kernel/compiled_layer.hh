/**
 * @file
 * The pre-decoded kernel format of the fast execution path.
 *
 * The interleaved CSC image the hardware walks (4-bit codebook index +
 * 4-bit zero run, §III-B) is deliberately indirect: it optimizes SRAM
 * bits, and the PE pays one decode per entry per input vector. A
 * software engine must hoist that indirection out of the MAC loop (the
 * authors' 2023 retrospective makes exactly this point), so compile()
 * lowers a LayerPlan once into flat per-PE arrays of
 * (batch-local output row, decoded fixed-point weight):
 *
 *  - zero-run deltas are resolved to absolute rows,
 *  - padding entries (codebook index 0) are stripped — they exist only
 *    to keep the 4-bit run field in range and always contribute zero,
 *  - the 16-entry codebook is materialized through Codebook::rawValues()
 *    so every weight is already a raw fixed-point operand.
 *
 * The tile grid of the plan (row batches x column passes) is preserved
 * so the execution semantics — per-batch accumulator initialisation,
 * accumulation across passes, non-linearity on drain — stay bit-exact
 * with FunctionalModel::run. PE slices stay separate because PE k owns
 * output rows i mod N == k: executing slices on different threads is
 * race-free by construction.
 */

#ifndef EIE_CORE_KERNEL_COMPILED_LAYER_HH
#define EIE_CORE_KERNEL_COMPILED_LAYER_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "core/plan.hh"

namespace eie::core::kernel {

/** One pre-decoded matrix entry: destination row and raw weight. */
struct KernelEntry
{
    /** Output row relative to the tile's row batch (row_begin). */
    std::uint32_t row = 0;
    /** Codebook-decoded fixed-point weight (weight_format raw). */
    std::int32_t weight_raw = 0;
};

/** One PE's pre-decoded share of a tile. */
struct CompiledSlice
{
    std::vector<KernelEntry> entries; ///< padding stripped
    std::vector<std::uint32_t> col_ptr; ///< pass cols + 1 offsets
};

/** One row-batch x column-pass tile in kernel format. */
struct CompiledTile
{
    std::size_t row_begin = 0;
    std::size_t row_end = 0;
    std::size_t col_begin = 0;
    std::size_t col_end = 0;
    std::vector<CompiledSlice> slices; ///< one per PE
};

/** A layer lowered to the kernel format, ready for runBatch(). */
struct CompiledLayer
{
    std::string name;
    std::size_t input_size = 0;
    std::size_t output_size = 0;
    nn::Nonlinearity nonlin = nn::Nonlinearity::ReLU;
    unsigned n_pe = 0;

    /** Datapath formats captured at compile time (from EieConfig). */
    FixedFormat act_format;
    FixedFormat weight_format;

    /** tiles[batch][pass], mirroring LayerPlan::tiles. */
    std::vector<std::vector<CompiledTile>> tiles;

    /** Real (non-padding) entries kept by the compile. */
    std::uint64_t real_entries = 0;
    /** Padding entries stripped by the compile. */
    std::uint64_t stripped_padding = 0;

    /**
     * Lower @p plan for execution on a machine with @p config's
     * datapath formats. The plan must have been compiled for the same
     * PE count.
     */
    static CompiledLayer compile(const LayerPlan &plan,
                                 const EieConfig &config);
};

} // namespace eie::core::kernel

#endif // EIE_CORE_KERNEL_COMPILED_LAYER_HH
