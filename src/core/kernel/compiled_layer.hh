/**
 * @file
 * The pre-decoded kernel format of the fast execution path
 * (KernelStream v2).
 *
 * The interleaved CSC image the hardware walks (4-bit codebook index +
 * 4-bit zero run, §III-B) is deliberately indirect: it optimizes SRAM
 * bits, and the PE pays one decode per entry per input vector. A
 * software engine must hoist that indirection out of the MAC loop (the
 * authors' 2023 retrospective makes exactly this point), so compile()
 * lowers a LayerPlan once into flat structure-of-arrays streams per PE
 * slice — codebook-pre-expanded int32 weight values, batch-local
 * output rows and per-column extents in separate contiguous arrays:
 *
 *  - zero-run deltas are resolved to absolute rows,
 *  - padding entries (codebook index 0) are stripped — they exist only
 *    to keep the 4-bit run field in range and always contribute zero,
 *  - the 16-entry codebook is materialized through Codebook::rawValues()
 *    so every weight is already a raw fixed-point operand.
 *
 * The SoA split is what lets the "vector" kernel variant run a SIMD
 * saturating MAC over 32-bit lanes (weights stream through one array,
 * rows through another, nothing interleaved), and each tile optionally
 * carries a slice-fused single stream — all PE slices merged per
 * column, rows sorted — so a 1-thread run walks one column extent
 * instead of one per PE. See core/kernel/variant.hh for the variant
 * registry that picks the inner loop.
 *
 * The tile grid of the plan (row batches x column passes) is preserved
 * so the execution semantics — per-batch accumulator initialisation,
 * accumulation across passes, non-linearity on drain — stay bit-exact
 * with FunctionalModel::run. PE slices stay separate because PE k owns
 * output rows i mod N == k: executing slices on different threads is
 * race-free by construction.
 */

#ifndef EIE_CORE_KERNEL_COMPILED_LAYER_HH
#define EIE_CORE_KERNEL_COMPILED_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compress/interleaved.hh"
#include "core/config.hh"
#include "core/kernel/compressed_stream.hh"
#include "core/plan.hh"

namespace eie::core::kernel {

/**
 * Which form of a layer's weight streams stays resident after
 * compile:
 *
 *  - Decoded: the pre-decoded SoA arrays (today's fast path, ~12
 *    bytes per entry). The compressed stream is built alongside only
 *    when CompileOptions::compressed_stream asks for it.
 *  - Compressed: the CompressedSliceStream per tile slice is the
 *    *only* resident form (~1-2 bytes per entry); every runBatch
 *    decodes tile-granular chunks into scratch and all variants
 *    resolve to KernelVariant::Compressed.
 *  - Auto: per layer, Compressed when the estimated decoded
 *    footprint exceeds kAutoResidencyCompressBytes (the decoded
 *    stack would spill the last-level cache anyway, so decode ALU
 *    trades against DRAM bandwidth), Decoded below it.
 */
enum class Residency
{
    Decoded,
    Compressed,
    Auto,
};

/** Auto residency keeps a layer decoded below this estimated decoded
 *  stream footprint and compresses it at or above (an LLC-scale
 *  threshold: in-cache layers never win by decoding on the fly). */
constexpr std::uint64_t kAutoResidencyCompressBytes = 8ull << 20;

/** Registry name of @p residency ("decoded", "compressed", "auto"). */
const char *residencyName(Residency residency);

/** Parse a residency name; fatal (listing the valid names) on an
 *  unknown one. */
Residency residencyFromName(const std::string &name);

/** Options for CompiledLayer::compile. */
struct CompileOptions
{
    /** Build the padding-stripped SoA streams runBatch() consumes. On
     *  by default; the simulator-only path turns it off to halve
     *  compile work and resident entry storage. */
    bool host_stream = true;

    /** Also build the per-tile slice-fused single stream the "fused"
     *  kernel variant walks on 1-thread runs. Costs a second resident
     *  copy of the host entries; ignored without host_stream. */
    bool fused_stream = true;

    /** Also build the padding-preserving per-PE SimEntry streams the
     *  cycle-accurate path consumes. Off by default: the host kernel
     *  path does not pay for timing-model state. */
    bool sim_stream = false;

    /** Also build the compressed per-slice streams when the resolved
     *  residency is Decoded, so KernelVariant::Compressed stays
     *  executable side by side with the decoded arrays (tests,
     *  benches, explicit --kernel compressed runs). Implied by
     *  Residency::Compressed. */
    bool compressed_stream = false;

    /** Which stream form stays resident (see Residency). */
    Residency residency = Residency::Decoded;
};

/**
 * One flat SoA kernel stream (KernelStream v2): per entry a
 * destination row and a codebook-pre-expanded weight, in separate
 * contiguous arrays, with per-column extents in col_ptr. Used both
 * per PE slice (CompiledSlice::stream) and slice-fused per tile
 * (CompiledTile::fused).
 */
struct SliceStream
{
    /** Output row of each entry, relative to the tile's row batch
     *  (row_begin). */
    std::vector<std::uint32_t> rows;
    /** Codebook-decoded fixed-point weight of each entry
     *  (weight_format raw). */
    std::vector<std::int32_t> weights;
    /** Per-column extents: pass cols + 1 offsets into rows/weights. */
    std::vector<std::uint32_t> col_ptr;

    /**
     * Bandwidth-halved mirror of rows/weights for the batch-1
     * actsparse walk: entry e packed as (rows[e] << 16) | weights[e]
     * in 16 bits each. Built only when every row index and weight raw
     * of the stream fits (the paper's 16-bit formats always do);
     * empty otherwise. Same per-column extents (col_ptr).
     */
    std::vector<std::uint32_t> packed;

    std::size_t entryCount() const { return rows.size(); }
    bool hasPacked() const { return packed.size() == rows.size(); }

    /** Fill packed from rows/weights if they fit 16 bits each. */
    void buildPacked();
};

/**
 * One pre-decoded entry of the cycle simulator's stream. Unlike the
 * host streams, padding entries are preserved (they occupy real SRAM
 * bandwidth and pipeline slots, which the timing model must charge)
 * and rows are PE-local accumulator indices, matching the per-PE
 * register files the simulator models.
 */
struct SimEntry
{
    std::uint32_t local_row = 0;  ///< PE-local accumulator index
    std::int32_t weight_raw = 0;  ///< codebook-decoded fixed point
    bool is_padding = false;      ///< codebook index 0 entry
};

/** One PE's pre-decoded share of a tile. */
struct CompiledSlice
{
    /** The padding-stripped SoA host stream of this slice (empty
     *  under compressed residency — the compressed stream is the
     *  only resident form). */
    SliceStream stream;

    /** The compressed-resident form (CompileOptions::compressed_stream
     *  or Residency::Compressed): 4-bit codebook nibbles + Huffman
     *  row deltas, decoded per runBatch into scratch. */
    CompressedSliceStream compressed;

    /** @name Simulator stream (only with CompileOptions::sim_stream).
     *  Entry-for-entry image of the interleaved CSC walk — padding
     *  preserved, zero runs resolved, weights decoded — so the
     *  cycle-accurate PE consumes it with identical timing but
     *  without per-entry decode work. */
    ///@{
    std::vector<SimEntry> sim_entries;
    std::vector<std::uint32_t> sim_col_ptr; ///< cols+1, incl. padding
    ///@}

    /** Local output rows this PE owns in the tile's row batch. */
    std::uint32_t local_rows = 0;
};

/** One row-batch x column-pass tile in kernel format. */
struct CompiledTile
{
    std::size_t row_begin = 0;
    std::size_t row_end = 0;
    std::size_t col_begin = 0;
    std::size_t col_end = 0;
    std::vector<CompiledSlice> slices; ///< one per PE

    /** All PE slices merged into one stream, entries row-sorted per
     *  column (only with CompileOptions::fused_stream). Entries of a
     *  column always hit distinct accumulator rows — PE k owns rows
     *  i mod N == k and CSC stores one entry per (row, col) — so the
     *  merge order cannot change any saturating-MAC sequence. */
    SliceStream fused;

    /** Stored entries (incl. padding) over all slices — sizes the
     *  simulator's per-pass cycle budget. */
    std::uint64_t total_entries = 0;
};

/** A layer lowered to the kernel format, ready for runBatch(). */
struct CompiledLayer
{
    std::string name;
    std::size_t input_size = 0;
    std::size_t output_size = 0;
    nn::Nonlinearity nonlin = nn::Nonlinearity::ReLU;
    unsigned n_pe = 0;

    /** Datapath formats captured at compile time (from EieConfig). */
    FixedFormat act_format;
    FixedFormat weight_format;

    /** tiles[batch][pass], mirroring LayerPlan::tiles. */
    std::vector<std::vector<CompiledTile>> tiles;

    /** Real (non-padding) entries kept by the compile. */
    std::uint64_t real_entries = 0;
    /** Padding entries stripped by the compile. */
    std::uint64_t stripped_padding = 0;

    /** Slices carry the host SoA streams (CompileOptions::host_stream). */
    bool has_host_stream = false;
    /** Tiles carry the slice-fused stream (CompileOptions::fused_stream). */
    bool has_fused_stream = false;
    /** Slices carry the simulator stream (CompileOptions::sim_stream). */
    bool has_sim_stream = false;
    /** Slices carry the compressed stream (compressed_stream option
     *  or compressed residency). */
    bool has_compressed_stream = false;

    /** The resolved residency of this layer (never Auto). */
    Residency residency = Residency::Decoded;

    /** Resident bytes of the decoded SoA forms (per-slice streams,
     *  packed mirrors, fused streams, column pointers); 0 under
     *  compressed residency. */
    std::uint64_t decoded_stream_bytes = 0;
    /** Resident bytes of the compressed streams; 0 when not built. */
    std::uint64_t compressed_stream_bytes = 0;

    /** Stream bytes actually resident for this layer (the sum of
     *  whichever forms were kept). */
    std::uint64_t
    residentStreamBytes() const
    {
        return decoded_stream_bytes + compressed_stream_bytes;
    }

    /**
     * Lower @p plan for execution on a machine with @p config's
     * datapath formats. The plan must have been compiled for the same
     * PE count.
     */
    static CompiledLayer compile(const LayerPlan &plan,
                                 const EieConfig &config,
                                 const CompileOptions &options = {});
};

/**
 * Decode one PE slice into its simulator stream: zero runs resolved to
 * PE-local rows, weights decoded through @p raw_lut, padding entries
 * preserved in place. Shared by compile() and the legacy
 * Pe::loadTile(PeSlice) path so the two streams cannot diverge.
 */
std::vector<SimEntry>
decodeSimStream(const compress::PeSlice &slice,
                const std::vector<std::int64_t> &raw_lut);

} // namespace eie::core::kernel

#endif // EIE_CORE_KERNEL_COMPILED_LAYER_HH
