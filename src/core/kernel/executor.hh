/**
 * @file
 * Batched execution of a CompiledLayer.
 *
 * One sweep over the compressed columns is amortized across the whole
 * batch: per column the active (non-zero) frames are gathered once,
 * then every pre-decoded entry issues one MAC per active frame. Each
 * frame's accumulator therefore sees exactly the update sequence the
 * scalar interpreter would produce (passes, then columns, then entries
 * in ascending order; zero activations skipped), so outputs are
 * bit-exact with FunctionalModel::run — saturation order included.
 *
 * Parallel execution splits the work across PE slices: PE k only ever
 * writes output rows i mod N == k, so threads share the accumulator
 * buffer without synchronization or write conflicts.
 */

#ifndef EIE_CORE_KERNEL_EXECUTOR_HH
#define EIE_CORE_KERNEL_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "core/kernel/compiled_layer.hh"
#include "core/kernel/worker_pool.hh"

namespace eie::core::kernel {

/** A batch of raw fixed-point activation vectors, one per frame. */
using Batch = std::vector<std::vector<std::int64_t>>;

/**
 * Execute @p layer on every frame of @p inputs.
 *
 * @param layer  a compiled layer
 * @param inputs B activation vectors of layer.input_size each
 * @param pool   optional worker pool; when non-null and holding more
 *               than one thread, PE slices execute in parallel
 * @return B output vectors of layer.output_size each
 */
Batch runBatch(const CompiledLayer &layer, const Batch &inputs,
               WorkerPool *pool = nullptr);

} // namespace eie::core::kernel

#endif // EIE_CORE_KERNEL_EXECUTOR_HH
