/**
 * @file
 * Batched, variant-dispatched execution of a CompiledLayer.
 *
 * One sweep over the compressed columns is amortized across the whole
 * batch. The inner loop is selected by KernelVariant (see
 * variant.hh): the scalar sparse-gather reference walk, the SIMD
 * dense-batch vector MAC, the slice-fused serial stream, or the
 * activation-sparse queue walk (a front-end nonzero scan compresses
 * each frame into a compact (column, value) queue — the paper's
 * NZ-detect stage — and the inner loop touches only nonzero
 * columns). Every
 * variant preserves the exact per-accumulator update sequence of the
 * scalar interpreter (passes, then columns, then at most one entry
 * per accumulator per column; a zero activation contributes a zero
 * product and sat(acc + 0) == acc), so outputs are bit-exact with
 * FunctionalModel::run — saturation order included — regardless of
 * the variant.
 *
 * Parallel execution splits the work across PE slices: PE k only ever
 * writes output rows i mod N == k, so threads share the accumulator
 * buffer without synchronization or write conflicts. The fused
 * variant is the single-thread form; under a multi-thread pool it
 * demotes to the per-slice reference loop (outputs unchanged).
 *
 * Inputs are raw act_format values (quantizeInput or a previous
 * layer's outputs); the vector variant relies on that contract to
 * keep its 32-bit lanes exact, and runBatch enforces it — a batch
 * containing any out-of-format activation (e.g. unvalidated remote
 * input) executes on the reference loop instead, preserving the
 * defined wide-integer semantics without a crash path.
 */

#ifndef EIE_CORE_KERNEL_EXECUTOR_HH
#define EIE_CORE_KERNEL_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "core/kernel/compiled_layer.hh"
#include "core/kernel/variant.hh"
#include "core/kernel/worker_pool.hh"

namespace eie::core::kernel {

/** A batch of raw fixed-point activation vectors, one per frame. */
using Batch = std::vector<std::vector<std::int64_t>>;

/**
 * The dispatch decision of one runBatch call, for observability: the
 * variant the call actually executed and the measured (sampled)
 * fraction of nonzero input activations that drove density-aware
 * Auto resolution. Surfaced through RunReport / ServerStats /
 * statsJson so the decision is visible across the serving stack.
 */
struct DispatchInfo
{
    KernelVariant variant = KernelVariant::Auto; ///< executed variant
    double act_density = -1.0; ///< sampled nonzero fraction, <0 unknown

    /** Time this sweep spent decoding compressed-resident streams
     *  into scratch, microseconds (0 for every other variant). Summed
     *  across worker threads, so it is decode CPU time, not added
     *  wall-clock. */
    double decode_us = 0.0;
};

/**
 * The sampled activation-density probe of density-aware Auto
 * dispatch: the fraction of nonzero values across @p inputs, scanned
 * with a stride so at most a few thousand elements are touched no
 * matter the batch shape (amortized to noise next to the MAC sweep).
 * Returns a negative value for an empty batch (density unknown).
 */
double probeActivationDensity(const Batch &inputs);

/**
 * Execute @p layer on every frame of @p inputs.
 *
 * @param layer   a compiled layer (host stream required)
 * @param inputs  B activation vectors of layer.input_size each
 * @param pool    optional worker pool; when non-null and holding more
 *                than one thread, PE slices execute in parallel
 * @param variant inner-loop selection; Auto resolves to the fastest
 *                bit-exact variant for the layer's formats, this
 *                call's batch/thread shape and the probed activation
 *                density (resolveKernelVariant)
 * @param dispatch optional out-param recording the executed variant
 *                and the probed activation density
 * @return B output vectors of layer.output_size each
 */
Batch runBatch(const CompiledLayer &layer, const Batch &inputs,
               WorkerPool *pool = nullptr,
               KernelVariant variant = KernelVariant::Auto,
               DispatchInfo *dispatch = nullptr);

} // namespace eie::core::kernel

#endif // EIE_CORE_KERNEL_EXECUTOR_HH
