#include "core/kernel/compressed_stream.hh"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/bitstream.hh"
#include "common/logging.hh"
#include "compress/huffman.hh"
#include "core/kernel/compiled_layer.hh"

namespace eie::core::kernel {

namespace {

/** The continuation escape of the delta byte stream: a 255 symbol
 *  adds 255 to the running delta and extends into the next symbol,
 *  so any delta fits a short byte sequence while typical deltas
 *  (dense-ish slices) stay one cheap symbol. */
constexpr unsigned kDeltaEscape = 255;

/** Longest legal canonical codeword (HuffmanCode rejects deeper). */
constexpr unsigned kMaxCodeLength = 32;

/** Width of the table-decode peek window: codewords at most this
 *  long decode in one table lookup (virtually all symbols — the
 *  delta distribution is steep); longer ones take the per-length
 *  walk. 2^10 entries keep the table build cheap per slice. */
constexpr unsigned kPeekBits = 10;

[[noreturn]] void
malformed(const char *what)
{
    throw CompressedStreamError(
        std::string("compressed stream: ") + what);
}

/** One peek-table slot: the codeword whose transmitted bits are the
 *  slot index's low @ref length bits (length 0 = no codeword at most
 *  kPeekBits long matches — take the per-length walk). When a second
 *  complete codeword also fits the window and neither symbol is the
 *  escape, @ref pair_length holds the combined bit count so the hot
 *  loop emits two row deltas per table hit. */
struct LutEntry
{
    std::uint8_t symbol = 0;
    std::uint8_t length = 0;
    std::uint8_t symbol2 = 0;
    std::uint8_t pair_length = 0;
};

/**
 * A canonical-Huffman table decoder over the (length, symbol)-sorted
 * sequential code assignment of compress::HuffmanCode::canonicalize:
 * per length L with count[L] codewords, the first codeword is the
 * previous length's last-plus-one shifted left, and symbols ascend
 * within a length. Decoding peeks kPeekBits into a one-hit lookup
 * table; the per-length walk remains as the fallback for codewords
 * longer than the window.
 */
struct CanonicalDecoder
{
    std::array<std::uint32_t, kMaxCodeLength + 1> count{};
    std::array<std::uint32_t, kMaxCodeLength + 1> first_code{};
    std::array<std::uint32_t, kMaxCodeLength + 1> offset{};
    std::vector<std::uint8_t> symbols; ///< sorted by (length, symbol)
    unsigned max_length = 0;

    /** Peek table indexed by the next kPeekBits of the stream in
     *  transmission order (codeword bits land LSB-first, so the
     *  index holds each codeword bit-reversed); Kraft bounds the
     *  build at 2^kPeekBits slot writes. */
    std::array<LutEntry, 1u << kPeekBits> lut{};

    explicit CanonicalDecoder(
        const std::array<std::uint8_t, 256> &lengths)
    {
        for (unsigned s = 0; s < 256; ++s) {
            const unsigned len = lengths[s];
            if (len == 0)
                continue;
            if (len > kMaxCodeLength)
                malformed("code length exceeds 32 bits");
            ++count[len];
        }
        symbols.reserve(256);
        std::uint64_t code = 0;
        unsigned prev_len = 0;
        std::uint32_t assigned = 0;
        for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
            if (count[len] == 0)
                continue;
            code <<= (len - prev_len);
            prev_len = len;
            first_code[len] = static_cast<std::uint32_t>(code);
            offset[len] = assigned;
            code += count[len];
            assigned += count[len];
            // An over-subscribed length table would assign codewords
            // past the 2^len code space: garbage, not a code.
            if (code > (std::uint64_t{1} << len))
                malformed("over-subscribed code-length table");
            max_length = len;
        }
        if (assigned == 0)
            return; // empty code: legal only for an empty stream
        // Symbols ascend within a length, so one ascending pass with
        // per-length write cursors produces the (length, symbol)
        // order directly.
        symbols.resize(assigned);
        std::array<std::uint32_t, kMaxCodeLength + 1> cursor = offset;
        for (unsigned s = 0; s < 256; ++s)
            if (lengths[s] != 0)
                symbols[cursor[lengths[s]]++] =
                    static_cast<std::uint8_t>(s);

        // Fill the peek table: each codeword of length L <= kPeekBits
        // owns every slot whose low L bits are its bit-reversed code.
        std::uint32_t index = 0;
        for (unsigned len = 1;
             len <= std::min(max_length, kPeekBits); ++len) {
            for (std::uint32_t r = 0; r < count[len]; ++r) {
                const std::uint32_t codeword = first_code[len] + r;
                std::uint32_t reversed = 0;
                for (unsigned b = 0; b < len; ++b)
                    reversed |= ((codeword >> b) & 1u)
                        << (len - 1 - b);
                const LutEntry entry{
                    symbols[offset[len] + r],
                    static_cast<std::uint8_t>(len), 0, 0};
                for (std::uint32_t slot = reversed;
                     slot < (1u << kPeekBits);
                     slot += (1u << len))
                    lut[slot] = entry;
                ++index;
            }
        }
        (void)index;

        // Pair pass: a slot whose remaining window bits start another
        // complete codeword decodes two symbols at once. Escapes stay
        // on the single-symbol path (they extend the same delta).
        for (std::uint32_t slot = 0; slot < (1u << kPeekBits);
             ++slot) {
            const LutEntry first = lut[slot];
            if (first.length == 0 || first.symbol == kDeltaEscape)
                continue;
            const LutEntry second = lut[slot >> first.length];
            if (second.length == 0 ||
                second.symbol == kDeltaEscape ||
                first.length + second.length > kPeekBits)
                continue;
            lut[slot].symbol2 = second.symbol;
            lut[slot].pair_length = static_cast<std::uint8_t>(
                first.length + second.length);
        }
    }
};

/** Bounds-checked bit cursor over the delta bitstream (LSB-first
 *  within each byte, matching BitWriter) with a 64-bit refill
 *  buffer: the next unconsumed stream bit is always the buffer's
 *  LSB. Throws instead of the process-aborting BitReader. */
struct BitCursor
{
    const std::uint8_t *bytes;
    std::uint64_t byte_count;
    std::uint64_t bit_count;
    std::uint64_t consumed = 0;
    std::uint64_t buf = 0;
    unsigned buf_bits = 0;
    std::uint64_t next_byte = 0;

    void
    refill()
    {
        while (buf_bits <= 56 && next_byte < byte_count) {
            buf |= static_cast<std::uint64_t>(bytes[next_byte++])
                << buf_bits;
            buf_bits += 8;
        }
    }

    std::uint64_t remaining() const { return bit_count - consumed; }

    bool
    next()
    {
        if (consumed >= bit_count)
            malformed("truncated delta bitstream");
        if (buf_bits == 0)
            refill();
        const bool bit = buf & 1;
        buf >>= 1;
        --buf_bits;
        ++consumed;
        return bit;
    }
};

/** Decode one canonical-Huffman symbol, MSB-first codewords: one
 *  peek-table hit for codewords at most kPeekBits long (virtually
 *  all of them), the per-length walk for the rare long ones and for
 *  truncated tails (which it reports as malformed). */
std::uint8_t
decodeSymbol(const CanonicalDecoder &decoder, BitCursor &cursor)
{
    if (cursor.buf_bits < kPeekBits)
        cursor.refill();
    const LutEntry entry =
        decoder.lut[cursor.buf & ((1u << kPeekBits) - 1)];
    if (entry.length != 0 && entry.length <= cursor.buf_bits &&
        entry.length <= cursor.remaining()) {
        cursor.buf >>= entry.length;
        cursor.buf_bits -= entry.length;
        cursor.consumed += entry.length;
        return entry.symbol;
    }
    std::uint32_t code = 0;
    for (unsigned len = 1; len <= decoder.max_length; ++len) {
        code = (code << 1) | (cursor.next() ? 1u : 0u);
        if (decoder.count[len] == 0)
            continue;
        const std::uint32_t first = decoder.first_code[len];
        if (code >= first && code - first < decoder.count[len])
            return decoder
                .symbols[decoder.offset[len] + (code - first)];
    }
    malformed("bit pattern matches no codeword");
}

} // namespace

std::size_t
CompressedSliceStream::byteSize() const
{
    return col_ptr.size() * sizeof(std::uint32_t) + nibbles.size() +
        delta_bits.size() + code_lengths.size() +
        weight_lut.size() * sizeof(std::int32_t);
}

CompressedSliceStream
CompressedSliceStream::encode(const compress::DecodedSliceImage &image,
                              const std::vector<std::int64_t> &raw_lut,
                              unsigned n_pe, unsigned pe,
                              std::uint32_t local_rows)
{
    panic_if(raw_lut.size() > 16, "codebook with %zu > 16 entries",
             raw_lut.size());
    panic_if(image.col_ptr.empty(), "slice image with no columns");
    panic_if(image.local_rows.size() != image.weight_indices.size(),
             "slice image rows/indices mismatch");

    CompressedSliceStream stream;
    stream.n_pe = n_pe;
    stream.pe = pe;
    stream.local_rows = local_rows;
    stream.entry_count =
        static_cast<std::uint32_t>(image.local_rows.size());
    stream.col_ptr = image.col_ptr;
    for (std::size_t v = 0; v < raw_lut.size(); ++v)
        stream.weight_lut[v] = static_cast<std::int32_t>(raw_lut[v]);

    // Packed 4-bit codebook indices, two entries per byte.
    stream.nibbles.assign((image.weight_indices.size() + 1) / 2, 0);
    for (std::size_t e = 0; e < image.weight_indices.size(); ++e) {
        const std::uint8_t index = image.weight_indices[e];
        panic_if(index >= 16, "codebook index %u out of range", index);
        stream.nibbles[e / 2] |= static_cast<std::uint8_t>(
            index << ((e % 2) * 4));
    }

    // Per-column local-row deltas as a byte stream (the zero-run
    // field of §III-B, re-derived from the padding-stripped image so
    // runs past 255 take the escape instead of padding entries).
    std::vector<std::uint8_t> deltas;
    deltas.reserve(image.local_rows.size());
    for (std::size_t j = 0; j + 1 < image.col_ptr.size(); ++j) {
        std::int64_t prev = -1;
        for (std::uint32_t e = image.col_ptr[j];
             e < image.col_ptr[j + 1]; ++e) {
            const std::int64_t row = image.local_rows[e];
            panic_if(row <= prev,
                     "slice image rows not ascending in column %zu",
                     j);
            std::int64_t delta = row - prev - 1;
            prev = row;
            while (delta >= static_cast<std::int64_t>(kDeltaEscape)) {
                deltas.push_back(
                    static_cast<std::uint8_t>(kDeltaEscape));
                delta -= kDeltaEscape;
            }
            deltas.push_back(static_cast<std::uint8_t>(delta));
        }
    }

    if (!deltas.empty()) {
        const auto code = compress::HuffmanCode::fromFrequencies(
            compress::countFrequencies(deltas));
        for (unsigned s = 0; s < 256; ++s)
            stream.code_lengths[s] = static_cast<std::uint8_t>(
                code.codeLength(static_cast<std::uint8_t>(s)));
        BitWriter writer;
        code.encode(deltas, writer);
        stream.delta_bits = writer.bytes();
        stream.delta_bit_count = writer.bitCount();
    }
    return stream;
}

void
CompressedSliceStream::decode(SliceStream &out) const
{
    // Structural validation before any array walk: every quantity the
    // hot loops index by must be internally consistent, so a garbage
    // stream throws here instead of reading out of bounds below.
    if (n_pe == 0)
        malformed("zero PE count");
    if (col_ptr.empty())
        malformed("empty column pointer array");
    if (col_ptr.front() != 0)
        malformed("column pointers do not start at 0");
    // Reduction instead of an early-out branch per column so the
    // check vectorizes (wide layers have one col_ptr per column).
    std::uint32_t non_monotone = 0;
    for (std::size_t j = 0; j + 1 < col_ptr.size(); ++j)
        non_monotone |=
            static_cast<std::uint32_t>(col_ptr[j] > col_ptr[j + 1]);
    if (non_monotone)
        malformed("column pointers not monotone");
    if (col_ptr.back() != entry_count)
        malformed("column pointers do not cover the entry count");
    if (nibbles.size() !=
        (static_cast<std::size_t>(entry_count) + 1) / 2)
        malformed("nibble array does not match the entry count");
    if (delta_bit_count > delta_bits.size() * 8ull)
        malformed("delta bit count exceeds the backing bytes");
    if (entry_count > 0 && local_rows == 0)
        malformed("entries in a slice with no rows");
    // Global rows must stay in uint32 (they index accumulators).
    if (local_rows > 0 &&
        (static_cast<std::uint64_t>(local_rows - 1) * n_pe + pe) >
            0xffffffffull)
        malformed("row range overflows 32-bit row indices");

    out.col_ptr = col_ptr;
    out.packed.clear();
    out.rows.resize(entry_count);
    out.weights.resize(entry_count);
    if (entry_count == 0)
        return;

    const CanonicalDecoder decoder(code_lengths);
    if (decoder.symbols.empty())
        malformed("entries but an empty code-length table");
    BitCursor cursor{delta_bits.data(), delta_bits.size(),
                     delta_bit_count};

    // Hoist every array into a local pointer: the output row/weight
    // stores are the same element types as the inputs, so without
    // this the compiler must re-load bounds and table entries per
    // entry against possible aliasing.
    const std::uint32_t *const cp = col_ptr.data();
    const std::size_t col_count = col_ptr.size() - 1;
    const std::uint8_t *const nib = nibbles.data();
    std::int32_t lut16[16];
    for (unsigned v = 0; v < 16; ++v)
        lut16[v] = weight_lut[v];
    std::uint32_t *const out_rows = out.rows.data();
    std::int32_t *const out_weights = out.weights.data();
    const std::uint64_t rows_limit = local_rows;
    const std::uint64_t stride = n_pe;
    const std::uint64_t base = pe;

    // Two passes: the Huffman walk is a serial dependency chain
    // (each codeword's length positions the next), while the column
    // walk's loop bounds are data-dependent (most columns hold zero
    // or one entry in a wide layer), which a fused loop pays for as
    // a branch mispredict per column. Split, pass 1 runs the chain
    // in a tight exactly-entry_count loop — two deltas per table hit
    // on the pair path — and pass 2 reconstructs rows branch-free
    // from a running prefix and column-start marks.
    //
    // Pass 1: one escape-folded row delta per entry.
    const auto folded =
        std::make_unique_for_overwrite<std::uint32_t[]>(entry_count);
    const std::uint32_t peek_mask = (1u << kPeekBits) - 1;
    std::uint32_t e = 0;
    while (e < entry_count) {
        if (cursor.buf_bits < kPeekBits)
            cursor.refill();
        const LutEntry entry = decoder.lut[cursor.buf & peek_mask];
        if (entry.pair_length != 0 && e + 2 <= entry_count &&
            entry.pair_length <= cursor.buf_bits &&
            entry.pair_length <= cursor.remaining()) {
            // Neither symbol is an escape (the pair pass guarantees
            // it), so these are two complete folded deltas.
            if (entry.symbol > rows_limit ||
                entry.symbol2 > rows_limit)
                malformed("runaway row delta");
            folded[e] = entry.symbol;
            folded[e + 1] = entry.symbol2;
            e += 2;
            cursor.buf >>= entry.pair_length;
            cursor.buf_bits -= entry.pair_length;
            cursor.consumed += entry.pair_length;
            continue;
        }
        std::uint64_t delta = 0;
        std::uint8_t symbol;
        while ((symbol = decodeSymbol(decoder, cursor)) ==
               kDeltaEscape) {
            delta += kDeltaEscape;
            if (delta > rows_limit)
                malformed("runaway row delta");
        }
        delta += symbol;
        if (delta > rows_limit)
            malformed("runaway row delta");
        folded[e++] = static_cast<std::uint32_t>(delta);
    }

    // Pass 2: rows from the folded deltas without per-column loops.
    // With Hx[e] the running sum of folded[i] + 1 over i < e, the
    // local row of entry e in the column starting at entry s is
    // Hx[e] + folded[e] - Hx[s]: the prefix both strides over column
    // boundaries and restores the +1-per-predecessor rule, and the
    // column base Hx[s] rides along in a register via a conditional
    // move on a start mark. Empty columns re-mark the next column's
    // first entry with the identical base, so duplicates are
    // harmless and the mark loop is branch-free too.
    const auto start_mark =
        std::make_unique_for_overwrite<std::uint8_t[]>(
            static_cast<std::size_t>(entry_count) + 1);
    std::memset(start_mark.get(), 0,
                static_cast<std::size_t>(entry_count) + 1);
    for (std::size_t j = 0; j < col_count; ++j)
        start_mark[cp[j]] = 1;

    std::uint64_t run = 0; // Hx[e]
    std::uint64_t col_base = 0;
    for (std::uint32_t i = 0; i < entry_count; ++i) {
        col_base = start_mark[i] ? run : col_base;
        const std::uint64_t local = run + folded[i] - col_base;
        if (local >= rows_limit)
            malformed("row outside the slice's range");
        const std::uint8_t index =
            (nib[i / 2] >> ((i % 2) * 4)) & 0xf;
        out_rows[i] =
            static_cast<std::uint32_t>(local * stride + base);
        out_weights[i] = lut16[index];
        run += folded[i] + 1;
    }
}

} // namespace eie::core::kernel
