/**
 * @file
 * The compressed-resident kernel stream (KernelStream v2c).
 *
 * EIE's central premise is that weights stay *compressed* next to the
 * compute and are decoded on the fly; the pre-decoded SoA streams of
 * compiled_layer.hh invert that trade — they optimize the MAC inner
 * loop at ~12 resident bytes per entry, so a large multi-model
 * serving process is footprint- and memory-bandwidth-bound long
 * before it is ALU-bound. CompressedSliceStream restores the paper's
 * trade in software: one PE slice of one tile stored as
 *
 *  - packed 4-bit codebook indices (two entries per byte, the
 *    Spmat nibble exactly),
 *  - a canonical-Huffman-coded stream of PE-local row deltas per
 *    column (delta = local_row - prev - 1, with a 255-continuation
 *    escape for runs past one byte), byte-aligned per slice,
 *  - the 256-entry code-length table the canonical code rebuilds
 *    from (the representation compress/huffman.hh stores),
 *  - the verbatim per-column extents (col_ptr) and the 16-entry
 *    codebook LUT of raw fixed-point weight values.
 *
 * decode() expands a stream back into the SliceStream shape the
 * existing MAC inner loops consume, bit-exactly: the decoded rows
 * and weights are definitionally identical to what compile() would
 * have produced, so every downstream sweep (vector / actsparse /
 * reference) preserves the saturating-MAC order verbatim.
 *
 * Robustness contract: decode() performs its own bounds checks and
 * throws CompressedStreamError on any malformed stream — truncated
 * bits, over-subscribed code-length tables, runaway deltas, rows out
 * of the slice's range — and never reads or writes out of bounds.
 * (BitReader::panic_if aborts the process on underrun, which is the
 * wrong failure mode for data that may cross a trust boundary; the
 * hot decoder here is also a table walk, not the std::map lookup of
 * HuffmanCode::decode.)
 */

#ifndef EIE_CORE_KERNEL_COMPRESSED_STREAM_HH
#define EIE_CORE_KERNEL_COMPRESSED_STREAM_HH

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "compress/interleaved.hh"

namespace eie::core::kernel {

struct SliceStream;

/** A malformed compressed stream (typed so callers can distinguish
 *  data corruption from programming errors). */
class CompressedStreamError : public std::runtime_error
{
  public:
    explicit CompressedStreamError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * One PE slice of one tile in compressed-resident form. Plain data:
 * copyable, no hidden decode state, byte-accounted by byteSize().
 */
struct CompressedSliceStream
{
    /** Interleaving parameters: global row = local * n_pe + pe. */
    std::uint32_t n_pe = 1;
    std::uint32_t pe = 0;

    /** PE-local rows this slice owns (decoded rows validate < this). */
    std::uint32_t local_rows = 0;

    /** Total (padding-stripped) entries across all columns. */
    std::uint32_t entry_count = 0;

    /** Per-column entry extents, pass cols + 1 offsets. */
    std::vector<std::uint32_t> col_ptr;

    /** Packed 4-bit codebook indices: entry e in nibble e of
     *  nibbles[e / 2] (low nibble first), (entry_count + 1) / 2
     *  bytes. */
    std::vector<std::uint8_t> nibbles;

    /** Canonical-Huffman bitstream of the per-column local-row delta
     *  bytes (LSB-first byte packing, codewords MSB-first — the
     *  compress/huffman.hh convention). */
    std::vector<std::uint8_t> delta_bits;
    std::uint64_t delta_bit_count = 0;

    /** Canonical code length per delta byte symbol (0 = absent). */
    std::array<std::uint8_t, 256> code_lengths{};

    /** Codebook raw values (weight_format fixed point). */
    std::array<std::int32_t, 16> weight_lut{};

    /** Resident bytes of this stream (arrays + tables). */
    std::size_t byteSize() const;

    /**
     * Encode one tile-slice from its padding-stripped decoded image
     * and the tile codebook's raw values — the exact inputs
     * CompiledLayer::compile lowers into the decoded SliceStream, so
     * encode + decode reproduces it bit for bit.
     */
    static CompressedSliceStream
    encode(const compress::DecodedSliceImage &image,
           const std::vector<std::int64_t> &raw_lut, unsigned n_pe,
           unsigned pe, std::uint32_t local_rows);

    /**
     * Expand into @p out (rows / weights / col_ptr; the packed mirror
     * is left empty — the scratch is transient, and every inner loop
     * has a non-packed path). Reuses @p out's capacity across calls.
     *
     * @throws CompressedStreamError on any malformed stream; on
     *         throw @p out is in an unspecified but valid state.
     */
    void decode(SliceStream &out) const;
};

} // namespace eie::core::kernel

#endif // EIE_CORE_KERNEL_COMPRESSED_STREAM_HH
