#include "core/kernel/worker_pool.hh"

#include <algorithm>

namespace eie::core::kernel {

WorkerPool::WorkerPool(unsigned threads)
{
    const unsigned helpers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(helpers);
    for (unsigned t = 0; t < helpers; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

unsigned
WorkerPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
WorkerPool::drain(const std::function<void(std::size_t)> &fn,
                  std::size_t count)
{
    for (;;) {
        std::size_t index;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (next_index_ >= count)
                return;
            index = next_index_++;
        }
        fn(index);
    }
}

void
WorkerPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        job_count_ = count;
        next_index_ = 0;
        active_ = static_cast<unsigned>(workers_.size());
        ++generation_;
    }
    start_cv_.notify_all();

    drain(fn, count);

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return active_ == 0; });
    job_ = nullptr;
}

void
WorkerPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t)> *job;
        std::size_t count;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return stop_ || generation_ != seen_generation;
            });
            if (stop_)
                return;
            seen_generation = generation_;
            job = job_;
            count = job_count_;
        }

        drain(*job, count);

        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--active_ == 0)
                done_cv_.notify_all();
        }
    }
}

} // namespace eie::core::kernel
