#include "core/kernel/variant.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/kernel/compiled_layer.hh"

namespace eie::core::kernel {

const std::vector<std::string> &
kernelVariantNames()
{
    static const std::vector<std::string> names{
        "auto",      "reference", "vector",
        "fused",     "actsparse", "compressed"};
    return names;
}

const char *
kernelVariantName(KernelVariant variant)
{
    switch (variant) {
      case KernelVariant::Auto:
        return "auto";
      case KernelVariant::Reference:
        return "reference";
      case KernelVariant::Vector:
        return "vector";
      case KernelVariant::Fused:
        return "fused";
      case KernelVariant::ActSparse:
        return "actsparse";
      case KernelVariant::Compressed:
        return "compressed";
    }
    panic("invalid kernel variant %d", static_cast<int>(variant));
    return ""; // unreachable: panic() aborts
}

KernelVariant
kernelVariantFromName(const std::string &name)
{
    if (name == "auto")
        return KernelVariant::Auto;
    if (name == "reference")
        return KernelVariant::Reference;
    if (name == "vector")
        return KernelVariant::Vector;
    if (name == "fused")
        return KernelVariant::Fused;
    if (name == "actsparse")
        return KernelVariant::ActSparse;
    if (name == "compressed")
        return KernelVariant::Compressed;
    std::string known;
    for (const std::string &n : kernelVariantNames())
        known += (known.empty() ? "" : ", ") + n;
    fatal("unknown kernel variant '%s' (known: %s)", name.c_str(),
          known.c_str());
    return KernelVariant::Auto; // unreachable: fatal() exits
}

bool
vectorEligible(const FixedFormat &weight_fmt, const FixedFormat &acc_fmt)
{
    // The "shift and add" alignment must be an arithmetic right shift
    // (a left shift would widen the product past the lane).
    const int shift = 2 * static_cast<int>(weight_fmt.fracBits) -
        static_cast<int>(acc_fmt.fracBits);
    if (shift < 0 || shift > 31)
        return false;
    // w * a must fit an int32 lane: |w| <= 2^(wb-1), |a| <= 2^(ab-1),
    // so the product magnitude is at most 2^(wb+ab-2).
    const int product_bits = static_cast<int>(weight_fmt.totalBits) +
        static_cast<int>(acc_fmt.totalBits) - 2;
    if (product_bits > 30)
        return false;
    // acc + (product >> shift) must fit an int32 lane before the
    // saturation clamp.
    const int sum_bits = std::max(
        static_cast<int>(acc_fmt.totalBits) - 1, product_bits - shift);
    return sum_bits <= 29;
}

bool
vectorEligible(const CompiledLayer &layer)
{
    return vectorEligible(layer.weight_format, layer.act_format);
}

KernelVariant
resolveKernelVariant(KernelVariant requested, const CompiledLayer &layer,
                     std::size_t batch, unsigned threads,
                     double act_density)
{
    // A compressed-resident layer has no decoded arrays: every
    // request resolves to the decode-on-the-fly path, the only
    // executable (and bit-exact) form.
    if (!layer.has_host_stream && layer.has_compressed_stream)
        return KernelVariant::Compressed;
    switch (requested) {
      case KernelVariant::Reference:
        return KernelVariant::Reference;
      case KernelVariant::ActSparse:
        // Int64 scalar MAC like reference: bit-exact for every
        // format, any batch, any thread count — never demotes.
        return KernelVariant::ActSparse;
      case KernelVariant::Vector:
        fatal_if(!vectorEligible(layer),
                 "kernel variant 'vector' is not bit-exact for layer "
                 "'%s' (weights Q%u.%u, accumulator Q%u.%u overflow "
                 "32-bit lanes); use 'auto', 'reference', 'fused' or "
                 "'actsparse'",
                 layer.name.c_str(), layer.weight_format.totalBits,
                 layer.weight_format.fracBits,
                 layer.act_format.totalBits, layer.act_format.fracBits);
        return KernelVariant::Vector;
      case KernelVariant::Fused:
        // Fusion is the single-thread form; a pooled run executes the
        // per-slice streams instead (outputs unchanged).
        if (threads > 1 || !layer.has_fused_stream)
            return KernelVariant::Reference;
        return KernelVariant::Fused;
      case KernelVariant::Compressed:
        fatal_if(!layer.has_compressed_stream,
                 "kernel variant 'compressed' needs the compressed "
                 "stream, but layer '%s' was compiled without it "
                 "(CompileOptions::compressed_stream or compressed "
                 "residency)", layer.name.c_str());
        return KernelVariant::Compressed;
      case KernelVariant::Auto:
        break;
    }
    if (vectorEligible(layer) && batch >= kVectorAutoBatch)
        return KernelVariant::Vector;
    if (act_density >= 0.0 && act_density <= kActSparseAutoMaxDensity)
        return KernelVariant::ActSparse;
    if (threads <= 1 && layer.has_fused_stream)
        return KernelVariant::Fused;
    return KernelVariant::Reference;
}

KernelVariant
resolveKernelVariant(KernelVariant requested, const CompiledLayer &layer,
                     std::size_t batch, unsigned threads)
{
    return resolveKernelVariant(requested, layer, batch, threads, -1.0);
}

// simdIsaName() is defined in executor.cc, next to the MAC row
// kernel dispatch it reports on, so the stamp can never drift from
// the loop that actually runs.

} // namespace eie::core::kernel
