/**
 * @file
 * The kernel-variant registry of the compiled execution path.
 *
 * One pre-decoded KernelStream (see compiled_layer.hh) can be walked
 * by more than one inner loop, and which loop wins depends on the
 * batch size, the thread count and the datapath formats. Instead of
 * forking the executor per loop, every consumer — CompiledBackend,
 * the WorkerPool batched executor, the serving cluster and the CLI
 * tools — selects a KernelVariant by name and kernel::runBatch
 * dispatches:
 *
 *  - "reference": the scalar sparse-gather loop over the per-slice
 *    streams. Bit-exact for every format; the in-process oracle the
 *    other variants are validated against.
 *  - "vector": a 32-bit-lane SIMD saturating MAC, dense over the
 *    batch dimension (zero activations contribute a zero product, and
 *    sat(acc + 0) == acc, so skipping them is an optimization, not a
 *    semantic — the dense sweep is bit-exact). Requires the layer's
 *    formats to fit 32-bit lanes; see vectorEligible().
 *  - "fused": the per-column slice-fused stream — all PE slices of a
 *    tile merged into one row-sorted stream per column, so a
 *    single-thread run walks one column extent instead of one per PE
 *    and never scatters between per-slice accumulator views. With a
 *    multi-thread pool (fusion is the 1-thread form) it falls back to
 *    the per-slice reference loop, outputs unchanged.
 *  - "actsparse": the paper's leading-nonzero-detect datapath. A
 *    front-end scan compresses each input frame into a compact
 *    (column, value) activation queue, and the inner loop walks only
 *    the nonzero columns of the stream — zero activations cost
 *    nothing, so batch-1 latency scales with activation density
 *    instead of layer width. Works for every format (int64 scalar
 *    MAC, like reference) and any thread count.
 *  - "compressed": the decode-on-the-fly path over the
 *    compressed-resident streams (compressed_stream.hh). Each tile
 *    slice is expanded into a small thread-local scratch stream and
 *    swept by the existing vector/actsparse inner loops, so outputs
 *    stay bit-exact while the resident form is the 4-bit nibble +
 *    Huffman row-delta stream. Requires the layer to carry the
 *    compressed stream (CompileOptions::compressed_stream or
 *    compressed residency); a compressed-resident layer resolves
 *    every request to this variant — it is the only executable form.
 *  - "auto": the fastest variant that is bit-exact for the layer's
 *    formats and the call's batch/thread shape; the default
 *    everywhere. When the caller supplies a measured activation
 *    density, auto is density-aware: small-batch low-density calls
 *    route to "actsparse" (see kActSparseAutoMaxDensity).
 *
 * All variants produce bit-identical outputs (the saturating-MAC
 * update sequence per accumulator is preserved exactly); "vector" is
 * additionally gated by the format predicate so it can never be
 * selected where 32-bit lanes would overflow.
 */

#ifndef EIE_CORE_KERNEL_VARIANT_HH
#define EIE_CORE_KERNEL_VARIANT_HH

#include <string>
#include <vector>

#include "common/fixed_point.hh"

namespace eie::core::kernel {

struct CompiledLayer;

/** The registered kernel inner loops (Auto = select per call). */
enum class KernelVariant
{
    Auto,       ///< fastest bit-exact variant for the call shape
    Reference,  ///< scalar sparse-gather loop, the oracle
    Vector,     ///< SIMD 32-bit-lane dense-batch saturating MAC
    Fused,      ///< slice-fused single stream per column (1 thread)
    ActSparse,  ///< nonzero-activation queue walk (EIE NZ-detect)
    Compressed, ///< decode-on-the-fly over compressed-resident streams
};

/** Auto routes to Vector at or above this batch when the formats are
 *  eligible: below it the dense lanes carry too many zeros to beat
 *  the sparse gather loops. */
constexpr std::size_t kVectorAutoBatch = 8;

/** Auto routes small batches to ActSparse when the measured
 *  activation density is at or below this fraction; above it the
 *  per-frame stream re-walk stops paying for the skipped zeros. */
constexpr double kActSparseAutoMaxDensity = 0.5;

/** Registry names, selection order ("auto", "reference", ...). */
const std::vector<std::string> &kernelVariantNames();

/** The registry name of @p variant. */
const char *kernelVariantName(KernelVariant variant);

/** Parse a registry name; fatal (listing the valid names) on an
 *  unknown one. */
KernelVariant kernelVariantFromName(const std::string &name);

/**
 * Whether the "vector" variant's 32-bit lanes are bit-exact for a
 * layer with weights in @p weight_fmt accumulating into @p acc_fmt
 * activations: the product must fit an int32 lane, the shift-and-add
 * alignment must be a right shift, and accumulator + aligned product
 * must fit an int32 lane before saturation.
 */
bool vectorEligible(const FixedFormat &weight_fmt,
                    const FixedFormat &acc_fmt);

/** Format predicate over a compiled layer's captured formats. */
bool vectorEligible(const CompiledLayer &layer);

/**
 * Resolve @p requested for one runBatch call:
 *
 *  - Auto picks Vector when the formats are eligible and the batch is
 *    wide enough to fill lanes (>= kVectorAutoBatch); below that it
 *    picks ActSparse when @p act_density is known (>= 0) and at most
 *    kActSparseAutoMaxDensity, then the Fused stream for serial
 *    batches, and Reference otherwise.
 *  - Fused demotes to Reference when the pool runs more than one
 *    thread (the fused stream is a single serial walk) or the layer
 *    was compiled without the fused stream.
 *  - Vector is fatal when the layer's formats are not eligible: the
 *    lanes would overflow, silently breaking bit-exactness.
 *  - ActSparse and Reference always resolve to themselves: both are
 *    int64 scalar paths, bit-exact for every format and thread count.
 *  - Compressed is fatal when the layer carries no compressed stream;
 *    on a compressed-resident layer (no decoded arrays) every request
 *    — Auto or explicit — resolves to Compressed, the only executable
 *    form (bit-exact, so the demotion is always safe).
 *
 * @p act_density is the measured fraction of nonzero input
 * activations, or negative when unknown (the density-blind overload).
 * The returned variant is always directly executable on @p layer.
 */
KernelVariant resolveKernelVariant(KernelVariant requested,
                                   const CompiledLayer &layer,
                                   std::size_t batch, unsigned threads,
                                   double act_density);

/** Density-blind overload: resolves with unknown activation density
 *  (Auto never picks ActSparse). */
KernelVariant resolveKernelVariant(KernelVariant requested,
                                   const CompiledLayer &layer,
                                   std::size_t batch, unsigned threads);

/**
 * The instruction set the SIMD MAC row kernel dispatched to at
 * runtime on this machine: "avx512", "avx2", "sse4.1" or "scalar"
 * (the portable fallback loop). Stamped into BENCH_*.json files.
 */
const char *simdIsaName();

} // namespace eie::core::kernel

#endif // EIE_CORE_KERNEL_VARIANT_HH
