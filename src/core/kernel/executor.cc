#include "core/kernel/executor.hh"

#include <atomic>
#include <chrono>

#include "common/fixed_point.hh"
#include "common/logging.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EIE_KERNEL_X86 1
#include <immintrin.h>
#endif

namespace eie::core::kernel {

namespace {

/**
 * Per-pass activation panel of the sparse variants: the active
 * (non-zero) frames of each column, gathered once per tile instead of
 * once per PE per frame. Column j's active frames occupy slots
 * [j*B, j*B + count[j]).
 */
struct ActivationPanel
{
    std::vector<std::uint32_t> frame; ///< frame index of each slot
    std::vector<std::int64_t> value;  ///< activation value of the slot
    std::vector<std::uint32_t> count; ///< active frames per column

    void
    gather(const Batch &inputs, std::size_t col_begin,
           std::size_t col_end)
    {
        const std::size_t cols = col_end - col_begin;
        const std::size_t batch = inputs.size();
        frame.resize(cols * batch);
        value.resize(cols * batch);
        count.assign(cols, 0);
        for (std::size_t j = 0; j < cols; ++j) {
            std::uint32_t n = 0;
            const std::size_t base = j * batch;
            for (std::size_t b = 0; b < batch; ++b) {
                const std::int64_t a = inputs[b][col_begin + j];
                if (a == 0)
                    continue; // the LNZD would never broadcast it
                frame[base + n] = static_cast<std::uint32_t>(b);
                value[base + n] = a;
                ++n;
            }
            count[j] = n;
        }
    }
};

/**
 * Per-pass activation panel of the actsparse variant: each frame
 * compressed into a compact (column, value) queue by a front-end
 * nonzero scan — the paper's NZ-detect / CSC activation vector.
 * Frame b's queue occupies slots [begin[b], begin[b+1]), columns in
 * ascending tile-relative order, so the per-frame stream walk visits
 * columns in the same order as the reference sweep and stays
 * bit-exact. Zero activations never enter a queue: batch-1 cost
 * scales with activation density, not layer width.
 */
struct QueuePanel
{
    std::vector<std::uint32_t> col;   ///< tile-relative column
    std::vector<std::int64_t> value;  ///< activation value
    std::vector<std::uint32_t> begin; ///< frame b: [begin[b], begin[b+1])

    void
    gather(const Batch &inputs, std::size_t col_begin,
           std::size_t col_end)
    {
        const std::size_t batch = inputs.size();
        col.clear();
        value.clear();
        col.reserve(batch * (col_end - col_begin));
        value.reserve(batch * (col_end - col_begin));
        begin.assign(batch + 1, 0);
        for (std::size_t b = 0; b < batch; ++b) {
            const std::int64_t *input = inputs[b].data();
            for (std::size_t j = col_begin; j < col_end; ++j) {
                const std::int64_t a = input[j];
                if (a == 0)
                    continue;
                col.push_back(
                    static_cast<std::uint32_t>(j - col_begin));
                value.push_back(a);
            }
            begin[b + 1] = static_cast<std::uint32_t>(col.size());
        }
    }
};

/**
 * Per-pass activation panel of the vector variant: every frame of
 * every column, transposed to column-major int32 so the MAC row
 * kernel streams contiguous lanes. Zero activations stay in place —
 * their product is zero and sat(acc + 0) == acc, so the dense sweep
 * is bit-exact with the sparse skip — but columns with no active
 * frame at all are flagged and skipped whole.
 */
struct DensePanel
{
    std::vector<std::int32_t> value;  ///< cols x batch, column-major
    std::vector<std::uint8_t> active; ///< any non-zero frame in column

    void
    gather(const Batch &inputs, std::size_t col_begin,
           std::size_t col_end)
    {
        const std::size_t cols = col_end - col_begin;
        const std::size_t batch = inputs.size();
        value.resize(cols * batch);
        active.assign(cols, 0);
        for (std::size_t j = 0; j < cols; ++j) {
            const std::size_t base = j * batch;
            std::uint8_t any = 0;
            for (std::size_t b = 0; b < batch; ++b) {
                // In act_format range by the withinActFormat() gate
                // in runBatch(), so the cast is value-preserving.
                const std::int64_t a = inputs[b][col_begin + j];
                value[base + b] = static_cast<std::int32_t>(a);
                any |= a != 0;
            }
            active[j] = any;
        }
    }
};

// ------------------------------------------------- MAC row kernels

/**
 * One saturating MAC row of the vector variant:
 * acc[b] = clamp(acc[b] + ((w * act[b]) >> shift), lo, hi) for every
 * frame b. All intermediates fit 32-bit lanes by vectorEligible();
 * C++20 guarantees the arithmetic right shift on negatives.
 */
using MacRowFn = void (*)(std::int32_t *acc, const std::int32_t *act,
                          std::int32_t w, int shift, std::int32_t lo,
                          std::int32_t hi, std::size_t n);

void
macRowScalar(std::int32_t *acc, const std::int32_t *act, std::int32_t w,
             int shift, std::int32_t lo, std::int32_t hi, std::size_t n)
{
    for (std::size_t b = 0; b < n; ++b) {
        std::int32_t v = acc[b] + ((w * act[b]) >> shift);
        v = v < lo ? lo : v;
        v = v > hi ? hi : v;
        acc[b] = v;
    }
}

#if defined(EIE_KERNEL_X86)

__attribute__((target("sse4.1"))) void
macRowSse41(std::int32_t *acc, const std::int32_t *act, std::int32_t w,
            int shift, std::int32_t lo, std::int32_t hi, std::size_t n)
{
    const __m128i vw = _mm_set1_epi32(w);
    const __m128i vlo = _mm_set1_epi32(lo);
    const __m128i vhi = _mm_set1_epi32(hi);
    const __m128i vshift = _mm_cvtsi32_si128(shift);
    std::size_t b = 0;
    for (; b + 4 <= n; b += 4) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(act + b));
        const __m128i vacc = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(acc + b));
        __m128i v = _mm_add_epi32(
            vacc, _mm_sra_epi32(_mm_mullo_epi32(vw, va), vshift));
        v = _mm_min_epi32(_mm_max_epi32(v, vlo), vhi);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + b), v);
    }
    macRowScalar(acc + b, act + b, w, shift, lo, hi, n - b);
}

__attribute__((target("avx512f,avx512bw"))) void
macRowAvx512(std::int32_t *acc, const std::int32_t *act, std::int32_t w,
             int shift, std::int32_t lo, std::int32_t hi, std::size_t n)
{
    const __m512i vw = _mm512_set1_epi32(w);
    const __m512i vlo = _mm512_set1_epi32(lo);
    const __m512i vhi = _mm512_set1_epi32(hi);
    const __m128i vshift = _mm_cvtsi32_si128(shift);
    std::size_t b = 0;
    for (; b + 16 <= n; b += 16) {
        const __m512i va = _mm512_loadu_si512(
            reinterpret_cast<const void *>(act + b));
        const __m512i vacc = _mm512_loadu_si512(
            reinterpret_cast<const void *>(acc + b));
        __m512i v = _mm512_add_epi32(
            vacc,
            _mm512_sra_epi32(_mm512_mullo_epi32(vw, va), vshift));
        v = _mm512_min_epi32(_mm512_max_epi32(v, vlo), vhi);
        _mm512_storeu_si512(reinterpret_cast<void *>(acc + b), v);
    }
    macRowScalar(acc + b, act + b, w, shift, lo, hi, n - b);
}

__attribute__((target("avx2"))) void
macRowAvx2(std::int32_t *acc, const std::int32_t *act, std::int32_t w,
           int shift, std::int32_t lo, std::int32_t hi, std::size_t n)
{
    const __m256i vw = _mm256_set1_epi32(w);
    const __m256i vlo = _mm256_set1_epi32(lo);
    const __m256i vhi = _mm256_set1_epi32(hi);
    const __m128i vshift = _mm_cvtsi32_si128(shift);
    std::size_t b = 0;
    for (; b + 8 <= n; b += 8) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(act + b));
        const __m256i vacc = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + b));
        __m256i v = _mm256_add_epi32(
            vacc,
            _mm256_sra_epi32(_mm256_mullo_epi32(vw, va), vshift));
        v = _mm256_min_epi32(_mm256_max_epi32(v, vlo), vhi);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + b), v);
    }
    macRowScalar(acc + b, act + b, w, shift, lo, hi, n - b);
}

#endif // EIE_KERNEL_X86

/** The dispatched MAC row kernel and the ISA label BENCH files
 *  stamp for it — one selection site, so they cannot drift. */
struct MacRowKernel
{
    MacRowFn fn;
    const char *isa;
};

/** Runtime ISA dispatch, decided once. */
MacRowKernel
pickMacRow()
{
#if defined(EIE_KERNEL_X86)
    // avx512bw implies avx512f on every shipped part, but probe what
    // the lanes actually require; boxes without AVX-512 fall through
    // to the unchanged paths below (skip, not fail).
    if (__builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512f"))
        return {macRowAvx512, "avx512"};
    if (__builtin_cpu_supports("avx2"))
        return {macRowAvx2, "avx2"};
    if (__builtin_cpu_supports("sse4.1"))
        return {macRowSse41, "sse4.1"};
#endif
    return {macRowScalar, "scalar"};
}

const MacRowKernel g_mac_row_kernel = pickMacRow();
const MacRowFn g_mac_row = g_mac_row_kernel.fn;

// ------------------------------------------------- slice inner loops

/** Sweep one SoA stream over the gathered sparse panel (the scalar
 *  reference loop; also walks the slice-fused stream). */
void
runStreamReference(const SliceStream &stream,
                   const ActivationPanel &panel, std::size_t batch,
                   std::int64_t *acc, const FixedFormat &weight_fmt,
                   const FixedFormat &act_fmt)
{
    const std::uint32_t *rows = stream.rows.data();
    const std::int32_t *weights = stream.weights.data();
    const std::size_t cols = stream.col_ptr.size() - 1;
    for (std::size_t j = 0; j < cols; ++j) {
        const std::uint32_t n_active = panel.count[j];
        if (n_active == 0)
            continue;
        const std::uint32_t e_begin = stream.col_ptr[j];
        const std::uint32_t e_end = stream.col_ptr[j + 1];
        if (e_begin == e_end)
            continue;
        const std::uint32_t *frames = &panel.frame[j * batch];
        const std::int64_t *values = &panel.value[j * batch];
        for (std::uint32_t e = e_begin; e < e_end; ++e) {
            const std::int64_t w = weights[e];
            std::int64_t *acc_row =
                acc + static_cast<std::size_t>(rows[e]) * batch;
            for (std::uint32_t t = 0; t < n_active; ++t) {
                acc_row[frames[t]] = macFixed(
                    acc_row[frames[t]], w, values[t], weight_fmt,
                    act_fmt);
            }
        }
    }
}

/**
 * Sweep one SoA stream over the per-frame nonzero queues (the
 * actsparse variant's loop). Frames are independent accumulator
 * columns, and within a frame the queue visits columns ascending with
 * at most one stream entry per (row, column) — the exact
 * per-accumulator update order of the reference sweep, so the
 * saturating MAC sequence is preserved bit-for-bit. Only the
 * col_ptr extents of nonzero columns are ever touched.
 */
void
runStreamActSparse(const SliceStream &stream, const QueuePanel &panel,
                   std::size_t batch, std::int64_t *acc,
                   const FixedFormat &weight_fmt,
                   const FixedFormat &act_fmt)
{
    const std::uint32_t *rows = stream.rows.data();
    const std::int32_t *weights = stream.weights.data();
    const std::uint32_t *col_ptr = stream.col_ptr.data();
    if (batch == 1) {
        // The latency path the variant exists for: one accumulator
        // per row (no *batch indexing) and the macFixed() shift and
        // saturation bounds hoisted out of the queue walk. The
        // arithmetic is macFixed() verbatim, so bit-exactness with
        // the general loop (and the reference oracle) is preserved.
        const int shift =
            2 * static_cast<int>(weight_fmt.fracBits) -
            static_cast<int>(act_fmt.fracBits);
        const std::int64_t lo = act_fmt.minRaw();
        const std::int64_t hi = act_fmt.maxRaw();
        const std::uint32_t q_end = panel.begin[1];
        if (stream.hasPacked()) {
            // Streams whose row indices and weight raws fit 16 bits
            // carry a packed (row << 16 | weight) mirror: one 4-byte
            // load per entry instead of two, halving the stream
            // bandwidth the walk is bound by.
            const std::uint32_t *packed = stream.packed.data();
            for (std::uint32_t q = 0; q < q_end; ++q) {
                const std::uint32_t j = panel.col[q];
                const std::int64_t a = panel.value[q];
                const std::uint32_t e_end = col_ptr[j + 1];
                for (std::uint32_t e = col_ptr[j]; e < e_end; ++e) {
                    const std::uint32_t entry = packed[e];
                    const std::int64_t w = static_cast<std::int16_t>(
                        entry & 0xffffu);
                    const std::int64_t product = w * a;
                    const std::int64_t aligned =
                        shift >= 0 ? product >> shift
                                   : product << -shift;
                    std::int64_t sum = acc[entry >> 16] + aligned;
                    sum = sum > hi ? hi : sum;
                    sum = sum < lo ? lo : sum;
                    acc[entry >> 16] = sum;
                }
            }
            return;
        }
        for (std::uint32_t q = 0; q < q_end; ++q) {
            const std::uint32_t j = panel.col[q];
            const std::int64_t a = panel.value[q];
            const std::uint32_t e_end = col_ptr[j + 1];
            for (std::uint32_t e = col_ptr[j]; e < e_end; ++e) {
                const std::int64_t product = weights[e] * a;
                const std::int64_t aligned = shift >= 0
                                                 ? product >> shift
                                                 : product << -shift;
                std::int64_t sum = acc[rows[e]] + aligned;
                sum = sum > hi ? hi : sum;
                sum = sum < lo ? lo : sum;
                acc[rows[e]] = sum;
            }
        }
        return;
    }
    for (std::size_t b = 0; b < batch; ++b) {
        const std::uint32_t q_end = panel.begin[b + 1];
        for (std::uint32_t q = panel.begin[b]; q < q_end; ++q) {
            const std::uint32_t j = panel.col[q];
            const std::int64_t a = panel.value[q];
            const std::uint32_t e_end = col_ptr[j + 1];
            for (std::uint32_t e = col_ptr[j]; e < e_end; ++e) {
                std::int64_t &slot =
                    acc[static_cast<std::size_t>(rows[e]) * batch + b];
                slot = macFixed(slot, weights[e], a, weight_fmt,
                                act_fmt);
            }
        }
    }
}

/** Sweep one SoA stream over the dense panel with the SIMD MAC row
 *  kernel (the vector variant's loop). */
void
runStreamVector(const SliceStream &stream, const DensePanel &panel,
                std::size_t batch, std::int32_t *acc, int shift,
                std::int32_t lo, std::int32_t hi)
{
    const std::uint32_t *rows = stream.rows.data();
    const std::int32_t *weights = stream.weights.data();
    const std::size_t cols = stream.col_ptr.size() - 1;
    for (std::size_t j = 0; j < cols; ++j) {
        if (!panel.active[j])
            continue;
        const std::uint32_t e_begin = stream.col_ptr[j];
        const std::uint32_t e_end = stream.col_ptr[j + 1];
        if (e_begin == e_end)
            continue;
        const std::int32_t *act = &panel.value[j * batch];
        for (std::uint32_t e = e_begin; e < e_end; ++e)
            g_mac_row(acc + static_cast<std::size_t>(rows[e]) * batch,
                      act, weights[e], shift, lo, hi, batch);
    }
}

// ------------------------------------------------------ tile drivers

/** Drain one row batch: non-linearity, then commit per frame. */
template <typename AccT>
void
drainRowBatch(const CompiledLayer &layer, const AccT *acc,
              std::size_t row_begin, std::size_t row_end,
              std::size_t batch, Batch &outputs)
{
    for (std::size_t r = 0; r < row_end - row_begin; ++r) {
        const AccT *acc_row = acc + r * batch;
        for (std::size_t b = 0; b < batch; ++b) {
            std::int64_t value = acc_row[b];
            switch (layer.nonlin) {
              case nn::Nonlinearity::ReLU:
                value = reluRaw(value);
                break;
              case nn::Nonlinearity::None:
                break;
              default:
                fatal("the accelerator only applies ReLU or None; "
                      "other nonlinearities run on the host");
            }
            outputs[b][row_begin + r] = value;
        }
    }
}

/**
 * The shared tile driver of every variant: accumulators zero per row
 * batch and persist across passes — frame-major per row so a PE's
 * writes stay in its own rows — and each tile gathers its panel once
 * before @p tile_fn sweeps it into @p acc.
 */
template <typename AccT, typename Panel, typename TileFn>
void
executeTiles(const CompiledLayer &layer, const Batch &inputs,
             Batch &outputs, Panel &panel, const TileFn &tile_fn)
{
    const std::size_t batch = inputs.size();
    std::vector<AccT> acc;
    for (const auto &batch_tiles : layer.tiles) {
        panic_if(batch_tiles.empty(), "row batch with no tiles");
        const std::size_t row_begin = batch_tiles.front().row_begin;
        const std::size_t row_end = batch_tiles.front().row_end;
        acc.assign((row_end - row_begin) * batch, 0);
        for (const CompiledTile &tile : batch_tiles) {
            panel.gather(inputs, tile.col_begin, tile.col_end);
            tile_fn(tile, acc.data());
        }
        drainRowBatch(layer, acc.data(), row_begin, row_end, batch,
                      outputs);
    }
}

/** Run @p run_pe over every PE slice, pooled when available. */
template <typename RunPe>
void
forEachSlice(const CompiledTile &tile, WorkerPool *pool,
             const RunPe &run_pe)
{
    if (pool && pool->threads() > 1)
        pool->parallelFor(tile.slices.size(), run_pe);
    else
        for (std::size_t k = 0; k < tile.slices.size(); ++k)
            run_pe(k);
}

/** The reference and fused variants: int64 accumulators, sparse
 *  gather panel; fused walks one merged stream serially. */
void
executeSparse(const CompiledLayer &layer, const Batch &inputs,
              WorkerPool *pool, bool fused, Batch &outputs)
{
    const std::size_t batch = inputs.size();
    ActivationPanel panel;
    executeTiles<std::int64_t>(
        layer, inputs, outputs, panel,
        [&](const CompiledTile &tile, std::int64_t *acc) {
            if (fused) {
                runStreamReference(tile.fused, panel, batch, acc,
                                   layer.weight_format,
                                   layer.act_format);
                return;
            }
            forEachSlice(tile, pool, [&](std::size_t k) {
                runStreamReference(tile.slices[k].stream, panel, batch,
                                   acc, layer.weight_format,
                                   layer.act_format);
            });
        });
}

/** The actsparse variant: int64 accumulators, per-frame nonzero
 *  queues; per-slice parallelism as in the reference loop (PE rows
 *  are disjoint), and a single-thread run walks the slice-fused
 *  stream when the layer carries one (one merged column extent
 *  instead of one per PE). */
void
executeActSparse(const CompiledLayer &layer, const Batch &inputs,
                 WorkerPool *pool, Batch &outputs)
{
    const std::size_t batch = inputs.size();
    const unsigned threads = pool ? pool->threads() : 1;
    const bool fused = threads <= 1 && layer.has_fused_stream;
    QueuePanel panel;
    executeTiles<std::int64_t>(
        layer, inputs, outputs, panel,
        [&](const CompiledTile &tile, std::int64_t *acc) {
            if (fused) {
                runStreamActSparse(tile.fused, panel, batch, acc,
                                   layer.weight_format,
                                   layer.act_format);
                return;
            }
            forEachSlice(tile, pool, [&](std::size_t k) {
                runStreamActSparse(tile.slices[k].stream, panel, batch,
                                   acc, layer.weight_format,
                                   layer.act_format);
            });
        });
}

/** The vector variant: int32 accumulators, dense panel, SIMD MAC
 *  rows; per-slice parallelism as in the reference loop. */
void
executeVector(const CompiledLayer &layer, const Batch &inputs,
              WorkerPool *pool, Batch &outputs)
{
    const std::size_t batch = inputs.size();
    const int shift =
        2 * static_cast<int>(layer.weight_format.fracBits) -
        static_cast<int>(layer.act_format.fracBits);
    const auto lo = static_cast<std::int32_t>(layer.act_format.minRaw());
    const auto hi = static_cast<std::int32_t>(layer.act_format.maxRaw());

    DensePanel panel;
    executeTiles<std::int32_t>(
        layer, inputs, outputs, panel,
        [&](const CompiledTile &tile, std::int32_t *acc) {
            forEachSlice(tile, pool, [&](std::size_t k) {
                runStreamVector(tile.slices[k].stream, panel, batch,
                                acc, shift, lo, hi);
            });
        });
}

/**
 * Whether every activation is a valid act_format raw — the bound
 * vectorEligible()'s 32-bit-lane arithmetic actually relies on.
 * Out-of-format inputs (possible from an unvalidated remote client:
 * the wire protocol carries raw int64 activations verbatim) must not
 * crash or silently wrap; runBatch demotes them to the reference
 * loop, which computes the same defined int64 semantics as before
 * the vector variant existed.
 */
bool
withinActFormat(const Batch &inputs, const FixedFormat &fmt)
{
    const std::int64_t lo = fmt.minRaw();
    const std::int64_t hi = fmt.maxRaw();
    for (const auto &input : inputs)
        for (const std::int64_t a : input)
            if (a < lo || a > hi)
                return false;
    return true;
}

/**
 * The compressed variant: each tile slice is decoded on the fly from
 * its compressed-resident stream into a per-slice scratch SliceStream
 * and swept by the existing inner loops — the SIMD dense-batch MAC
 * when the call shape and formats allow it (the same gates runBatch
 * applies to the vector variant), the activation-sparse queue walk
 * everywhere else. The decoded scratch is definitionally identical to
 * the arrays compile() would have kept resident, and the sweeps are
 * the untouched vector/actsparse loops, so outputs are bit-exact with
 * every other variant; only the resident form (and the decode time,
 * reported through @p decode_us_out) differs.
 *
 * Scratch is one stream per PE slice, reused across tiles: slice k is
 * decoded and swept by exactly one worker per tile (forEachSlice
 * indexes are disjoint), so the buffers are race-free, stay
 * tile-sized (cache-resident for the plan's SRAM-scaled tiles) and
 * keep their capacity across column passes.
 */
void
executeCompressed(const CompiledLayer &layer, const Batch &inputs,
                  WorkerPool *pool, Batch &outputs,
                  double *decode_us_out)
{
    const std::size_t batch = inputs.size();
    std::vector<SliceStream> scratch(layer.n_pe);
    std::atomic<std::int64_t> decode_ns{0};

    const auto decode_slice =
        [&](const CompiledTile &tile,
            std::size_t k) -> const SliceStream & {
        const auto start = std::chrono::steady_clock::now();
        tile.slices[k].compressed.decode(scratch[k]);
        decode_ns.fetch_add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count(),
            std::memory_order_relaxed);
        return scratch[k];
    };

    if (vectorEligible(layer) && batch >= kVectorAutoBatch &&
        withinActFormat(inputs, layer.act_format)) {
        const int shift =
            2 * static_cast<int>(layer.weight_format.fracBits) -
            static_cast<int>(layer.act_format.fracBits);
        const auto lo =
            static_cast<std::int32_t>(layer.act_format.minRaw());
        const auto hi =
            static_cast<std::int32_t>(layer.act_format.maxRaw());
        DensePanel panel;
        executeTiles<std::int32_t>(
            layer, inputs, outputs, panel,
            [&](const CompiledTile &tile, std::int32_t *acc) {
                forEachSlice(tile, pool, [&](std::size_t k) {
                    runStreamVector(decode_slice(tile, k), panel,
                                    batch, acc, shift, lo, hi);
                });
            });
    } else {
        QueuePanel panel;
        executeTiles<std::int64_t>(
            layer, inputs, outputs, panel,
            [&](const CompiledTile &tile, std::int64_t *acc) {
                forEachSlice(tile, pool, [&](std::size_t k) {
                    runStreamActSparse(decode_slice(tile, k), panel,
                                       batch, acc,
                                       layer.weight_format,
                                       layer.act_format);
                });
            });
    }
    if (decode_us_out)
        *decode_us_out =
            static_cast<double>(
                decode_ns.load(std::memory_order_relaxed)) /
            1000.0;
}

} // namespace

const char *
simdIsaName()
{
    return g_mac_row_kernel.isa;
}

double
probeActivationDensity(const Batch &inputs)
{
    // Sampling cap: above it the scan strides so the probe touches at
    // most ~kProbeCap elements however large the batch is.
    constexpr std::size_t kProbeCap = 4096;
    std::size_t total = 0;
    for (const auto &input : inputs)
        total += input.size();
    if (total == 0)
        return -1.0;
    const std::size_t stride =
        total <= kProbeCap ? 1 : (total + kProbeCap - 1) / kProbeCap;
    std::size_t sampled = 0;
    std::size_t nonzero = 0;
    for (std::size_t b = 0; b < inputs.size(); ++b) {
        const auto &input = inputs[b];
        // Stagger the start per frame so a strided scan does not keep
        // hitting the same columns of every frame.
        for (std::size_t i = b % stride; i < input.size(); i += stride) {
            ++sampled;
            nonzero += input[i] != 0;
        }
    }
    if (sampled == 0)
        return -1.0;
    return static_cast<double>(nonzero) / static_cast<double>(sampled);
}

Batch
runBatch(const CompiledLayer &layer, const Batch &inputs,
         WorkerPool *pool, KernelVariant variant, DispatchInfo *dispatch)
{
    const std::size_t batch = inputs.size();
    panic_if(!layer.has_host_stream && !layer.has_compressed_stream,
             "layer '%s' compiled without the host kernel arrays "
             "(CompileOptions::host_stream) or a compressed stream",
             layer.name.c_str());
    for (const auto &input : inputs)
        panic_if(input.size() != layer.input_size,
                 "input length %zu != compiled %zu", input.size(),
                 layer.input_size);

    Batch outputs(batch);
    for (auto &output : outputs)
        output.assign(layer.output_size, 0);
    if (batch == 0) {
        if (dispatch)
            *dispatch = DispatchInfo{};
        return outputs;
    }

    const unsigned threads = pool ? pool->threads() : 1;
    const double act_density = probeActivationDensity(inputs);
    KernelVariant resolved =
        resolveKernelVariant(variant, layer, batch, threads,
                             act_density);
    if (resolved == KernelVariant::Vector &&
        !withinActFormat(inputs, layer.act_format))
        resolved = KernelVariant::Reference;
    double decode_us = 0.0;
    switch (resolved) {
      case KernelVariant::Vector:
        executeVector(layer, inputs, pool, outputs);
        break;
      case KernelVariant::Fused:
        executeSparse(layer, inputs, pool, /*fused=*/true, outputs);
        break;
      case KernelVariant::ActSparse:
        executeActSparse(layer, inputs, pool, outputs);
        break;
      case KernelVariant::Compressed:
        executeCompressed(layer, inputs, pool, outputs, &decode_us);
        break;
      case KernelVariant::Reference:
        executeSparse(layer, inputs, pool, /*fused=*/false, outputs);
        break;
      case KernelVariant::Auto:
        panic("resolveKernelVariant returned Auto");
    }
    if (dispatch) {
        dispatch->variant = resolved;
        dispatch->act_density = act_density;
        dispatch->decode_us = decode_us;
    }
    return outputs;
}

} // namespace eie::core::kernel
